"""Benchmark + regression harness for EXT-FORAGE (see DESIGN.md)."""

from conftest import run_once


def test_foraging_field(benchmark, scale, seed):
    run_once(benchmark, "EXT-FORAGE", scale, seed)
