"""Benchmark + regression harness for EXP-L4.13 (see DESIGN.md)."""

from conftest import run_once


def test_origin_visits(benchmark, scale, seed):
    run_once(benchmark, "EXP-L4.13", scale, seed)
