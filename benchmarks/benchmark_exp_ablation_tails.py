"""Benchmark + regression harness for EXT-TAIL (see DESIGN.md)."""

from conftest import run_once


def test_ablation_tails(benchmark, scale, seed):
    run_once(benchmark, "EXT-TAIL", scale, seed)
