"""Overhead of the fault-tolerant runner's checkpoint path.

Two numbers are recorded:

* **checkpoint-path overhead** (the guarded one, target < 5%): chunked run
  *with* durable checkpoints vs the identical chunked run without -- this
  isolates the runner's own costs (atomic npz writes, sha256 checksums,
  manifests) from everything else, so a regression in the checkpoint path
  shows up in the bench trajectory no matter the workload;
* **chunking overhead** (informational): chunked vs single-shot.  This is
  engine economics, not runner cost: every engine invocation pays a fixed
  per-phase-loop price, so small chunks waste vectorization.  Production
  guidance (docs/runner.md): size chunks so each takes seconds, and the
  chunking tax shrinks toward zero;
* **telemetry overhead** (informational): the checkpointed run with a live
  event log + metrics recorder vs without.  The seam is a no-op recorder
  by default, so the guarded numbers above always measure the
  telemetry-disabled path;
* **supervision overhead** (guarded, target < 5%): a pooled run with the
  heartbeat/watchdog armed (``chunk_timeout``) vs the identical pooled run
  without.  Heartbeats ride the engines' existing per-round ``tick()``
  seam and the watchdog is one mtime scan per poll in the parent, so the
  supervised path must stay within noise of the unsupervised one;
* **profiler overhead** (guarded, target <= 10%): the telemetry-enabled
  run with engine phase timers (the default) vs the identical run with
  ``configure(profile=False)``.  The timers are a handful of
  ``perf_counter_ns`` laps per engine *round* (thousands of walks each),
  drained once per chunk, so they must stay near noise.

All timings are persisted to ``BENCH_runner.json`` at the repo root (see
benchmarks/bench_utils.py) so perf trajectories are diffable per commit.
"""

import time

import numpy as np

from bench_utils import record_bench
from repro import telemetry
from repro.distributions.zeta import ZetaJumpDistribution
from repro.engine.vectorized import walk_hitting_times
from repro.runner import HittingTimeTask, Runner

_LAW = ZetaJumpDistribution(2.5)
_TARGET = (12, 8)
_HORIZON = 2_000
_N_WALKS = 40_000
_N_CHUNKS = 4
_SEED = 0
#: CI guard on the checkpoint path; the printed number is the tracked one.
_MAX_CHECKPOINT_OVERHEAD = 0.25
#: CI guard on the heartbeat + watchdog path (ISSUE target: <= 5%, with
#: headroom for shared-runner noise on pool scheduling).
_MAX_SUPERVISION_OVERHEAD = 0.25
#: CI guard on the engine phase timers (profiled vs unprofiled telemetry).
_MAX_PROFILER_OVERHEAD = 0.10


def _single_shot() -> None:
    walk_hitting_times(
        _LAW, _TARGET, horizon=_HORIZON, n=_N_WALKS, rng=np.random.default_rng(_SEED)
    )


def _chunked(checkpoint_dir) -> None:
    task = HittingTimeTask(jumps=_LAW, target=_TARGET, horizon=_HORIZON)
    Runner(checkpoint_dir=checkpoint_dir, n_chunks=_N_CHUNKS).run(
        task, _N_WALKS, _SEED, label=f"bench-{time.monotonic_ns()}"
    )


def _pooled(chunk_timeout) -> None:
    """One pooled run, optionally supervised (heartbeats + watchdog)."""
    task = HittingTimeTask(jumps=_LAW, target=_TARGET, horizon=_HORIZON)
    Runner(n_chunks=_N_CHUNKS, workers=1, chunk_timeout=chunk_timeout).run(
        task, _N_WALKS, _SEED, label=f"bench-{time.monotonic_ns()}"
    )


def _timed(fn, *args) -> float:
    """Median of three runs: one-shot timings of sub-second workloads are
    noisy enough on shared CI hosts to drive the overhead ratios negative."""
    samples = []
    for _ in range(3):
        started = time.perf_counter()
        fn(*args)
        samples.append(time.perf_counter() - started)
    return float(np.median(samples))


def _chunked_with_telemetry(checkpoint_dir, log_path, profile: bool = True) -> float:
    """Time one checkpointed run with a live recorder (events + metrics).

    ``profile=False`` disables the engine phase timers; the difference
    between the two modes is exactly the profiler's cost.
    """
    previous = telemetry.get_recorder()
    recorder = telemetry.configure(log_path=log_path, profile=profile)
    try:
        return _timed(_chunked, checkpoint_dir)
    finally:
        recorder.close()
        telemetry.set_recorder(previous)


def test_runner_checkpoint_overhead(benchmark, tmp_path):
    """Benchmark the checkpointed path; print and persist all timings."""
    _chunked(None)  # warm-up: imports, allocators, zeta tables

    single_seconds = _timed(_single_shot)
    chunked_seconds = _timed(_chunked, None)

    benchmark.pedantic(
        _chunked, args=(tmp_path / "bench",), rounds=3, iterations=1
    )
    checkpointed_seconds = benchmark.stats.stats.median
    telemetry_seconds = _chunked_with_telemetry(
        tmp_path / "bench-telemetry", tmp_path / "events.jsonl"
    )
    telemetry_noprofile_seconds = _chunked_with_telemetry(
        tmp_path / "bench-noprofile", tmp_path / "events-noprofile.jsonl",
        profile=False,
    )
    _pooled(None)  # warm-up: process pool spawn, worker imports
    pooled_seconds = _timed(_pooled, None)
    supervised_seconds = _timed(_pooled, 300.0)
    # Clamp at zero: an extra code path cannot truly be faster, so a
    # negative ratio is timing noise and would poison the bench history.
    checkpoint_overhead = max(0.0, checkpointed_seconds / chunked_seconds - 1.0)
    chunking_overhead = max(0.0, chunked_seconds / single_seconds - 1.0)
    telemetry_overhead = max(0.0, telemetry_seconds / checkpointed_seconds - 1.0)
    profiler_overhead = max(
        0.0, telemetry_seconds / telemetry_noprofile_seconds - 1.0
    )
    supervision_overhead = max(0.0, supervised_seconds / pooled_seconds - 1.0)
    print(
        f"\nsingle-shot {single_seconds:.3f}s | chunked x{_N_CHUNKS} "
        f"{chunked_seconds:.3f}s ({100 * chunking_overhead:+.1f}% engine "
        f"economics) | +checkpointing {checkpointed_seconds:.3f}s "
        f"({100 * checkpoint_overhead:+.1f}% checkpoint path, target < 5%) | "
        f"+telemetry {telemetry_seconds:.3f}s "
        f"({100 * telemetry_overhead:+.1f}%; phase profiler "
        f"{100 * profiler_overhead:+.1f}% of that, target <= 10%) | "
        f"pooled {pooled_seconds:.3f}s "
        f"-> supervised {supervised_seconds:.3f}s "
        f"({100 * supervision_overhead:+.1f}% heartbeat+watchdog, target < 5%)"
    )
    record_bench(
        "runner",
        {
            "single_shot_seconds": single_seconds,
            "chunked_seconds": chunked_seconds,
            "checkpointed_seconds": checkpointed_seconds,
            "telemetry_seconds": telemetry_seconds,
            "telemetry_noprofile_seconds": telemetry_noprofile_seconds,
            "pooled_seconds": pooled_seconds,
            "supervised_seconds": supervised_seconds,
            "chunking_overhead": chunking_overhead,
            "checkpoint_overhead": checkpoint_overhead,
            "telemetry_overhead": telemetry_overhead,
            "profiler_overhead": profiler_overhead,
            "supervision_overhead": supervision_overhead,
            "n_walks": _N_WALKS,
            "n_chunks": _N_CHUNKS,
        },
    )
    assert checkpoint_overhead < _MAX_CHECKPOINT_OVERHEAD, (
        f"checkpoint path overhead {100 * checkpoint_overhead:.1f}% exceeds "
        f"{100 * _MAX_CHECKPOINT_OVERHEAD:.0f}% guard"
    )
    assert supervision_overhead < _MAX_SUPERVISION_OVERHEAD, (
        f"supervision overhead {100 * supervision_overhead:.1f}% exceeds "
        f"{100 * _MAX_SUPERVISION_OVERHEAD:.0f}% guard"
    )
    assert profiler_overhead <= _MAX_PROFILER_OVERHEAD, (
        f"phase profiler overhead {100 * profiler_overhead:.1f}% exceeds "
        f"{100 * _MAX_PROFILER_OVERHEAD:.0f}% guard"
    )
