"""Benchmark + regression harness for EXP-T1.3 (see DESIGN.md)."""

from conftest import run_once


def test_single_hitting_ballistic(benchmark, scale, seed):
    run_once(benchmark, "EXP-T1.3", scale, seed)
