"""Benchmark + regression harness for EXP-C1.4 (see DESIGN.md)."""

from conftest import run_once


def test_parallel_speedup(benchmark, scale, seed):
    run_once(benchmark, "EXP-C1.4", scale, seed)
