"""Frozen pre-fusing engine implementations, for paired benchmarks only.

These are verbatim simplifications of ``walk_hitting_times`` and
``ball_hitting_times`` as they existed before the fused-kernel layer
(cached inverse-CDF jump tables, batched per-round uniforms, flattened
ring testing): the walk engine calls the sampler and the ring sampler
with fresh per-round draws, and the ball engine tests candidate rings in
a Python ``for offset_index in range(2 * radius + 1)`` loop.  The paired
benchmark runs them inside
:func:`repro.distributions.cdf_table.legacy_sampling` so the jump draws
also take the original Devroye-rejection path.

They exist so BENCH_engine.json can record honest before/after timings
(``*_legacy_mean_seconds`` vs ``*_fused_mean_seconds``) on the same
machine in the same run -- do not use them for experiments; they receive
no fixes or features.
"""

from __future__ import annotations

import numpy as np

from repro.engine.results import CENSORED, HittingTimeSample
from repro.engine.vectorized import _as_sampler
from repro.lattice.direct_path import sample_direct_path_nodes
from repro.lattice.rings import sample_ring_offsets
from repro.rng import as_generator


def legacy_walk_hitting_times(
    jumps,
    target,
    *,
    horizon: int,
    n: int,
    rng=None,
    start=(0, 0),
    detect_during_jump: bool = True,
) -> HittingTimeSample:
    """Pre-fusing ``walk_hitting_times`` (lazy 1/8-compaction, per-round
    allocations, one generator call per consumer)."""
    sampler = _as_sampler(jumps)
    rng = as_generator(rng)
    n_walks = int(n)
    tx, ty = int(target[0]), int(target[1])
    times = np.full(n_walks, CENSORED, dtype=np.int64)
    if (int(start[0]), int(start[1])) == (tx, ty):
        return HittingTimeSample(times=np.zeros(n_walks, dtype=np.int64), horizon=horizon)
    idx = np.arange(n_walks)
    pos = np.empty((n_walks, 2), dtype=np.int64)
    pos[:, 0] = int(start[0])
    pos[:, 1] = int(start[1])
    elapsed = np.zeros(n_walks, dtype=np.int64)
    alive = np.ones(n_walks, dtype=bool)
    n_dead = 0
    while idx.size:
        d = sampler.sample(rng, idx)
        d[~alive] = 0
        v = pos + sample_ring_offsets(d, rng)
        m = np.abs(tx - pos[:, 0]) + np.abs(ty - pos[:, 1])
        if detect_during_jump:
            reach = alive & (m <= d)
            hit = np.zeros(idx.shape[0], dtype=bool)
            if np.any(reach):
                nodes = sample_direct_path_nodes(pos[reach], v[reach], m[reach], rng)
                hit[reach] = (nodes[:, 0] == tx) & (nodes[:, 1] == ty)
            hit_step = elapsed + m
        else:
            hit = alive & (v[:, 0] == tx) & (v[:, 1] == ty)
            hit_step = elapsed + np.maximum(d, 1)
        success = hit & (hit_step <= horizon)
        if np.any(success):
            times[idx[success]] = hit_step[success]
        elapsed += np.maximum(d, 1)
        pos = v
        died = alive & (success | (elapsed >= horizon))
        if np.any(died):
            alive &= ~died
            n_dead += int(died.sum())
            if n_dead * 8 >= idx.size:
                idx = idx[alive]
                pos = pos[alive]
                elapsed = elapsed[alive]
                alive = np.ones(idx.size, dtype=bool)
                n_dead = 0
    return HittingTimeSample(times=times, horizon=horizon)


def legacy_ball_hitting_times(
    jumps,
    center,
    *,
    radius: int,
    horizon: int,
    n: int,
    rng=None,
    start=(0, 0),
    detect_during_jump: bool = True,
) -> HittingTimeSample:
    """Pre-fusing ``ball_hitting_times`` (gather/scatter ``active`` index,
    Python loop over the ``2 * radius + 1`` candidate rings)."""
    sampler = _as_sampler(jumps)
    rng = as_generator(rng)
    n_walks = int(n)
    cx, cy = int(center[0]), int(center[1])
    times = np.full(n_walks, CENSORED, dtype=np.int64)
    start_distance = abs(cx - start[0]) + abs(cy - start[1])
    if start_distance <= radius:
        return HittingTimeSample(times=np.zeros(n_walks, np.int64), horizon=horizon)
    pos = np.empty((n_walks, 2), dtype=np.int64)
    pos[:, 0] = int(start[0])
    pos[:, 1] = int(start[1])
    elapsed = np.zeros(n_walks, dtype=np.int64)
    active = np.arange(n_walks)
    while active.size:
        d = sampler.sample(rng, active)
        offsets = sample_ring_offsets(d, rng)
        u = pos[active]
        v = u + offsets
        m = np.abs(cx - u[:, 0]) + np.abs(cy - u[:, 1])
        if detect_during_jump:
            hit = np.zeros(active.shape[0], dtype=bool)
            hit_step = np.zeros(active.shape[0], dtype=np.int64)
            low = np.maximum(m - radius, 1)
            high = np.minimum(d, m + radius)
            reachable = low <= high
            if np.any(reachable):
                rows = np.flatnonzero(reachable)
                for offset_index in range(2 * radius + 1):
                    ring = low[rows] + offset_index
                    valid = ring <= high[rows]
                    test_rows = rows[valid & ~hit[rows]]
                    if test_rows.size == 0:
                        continue
                    nodes = sample_direct_path_nodes(
                        u[test_rows], v[test_rows], (low + offset_index)[test_rows], rng
                    )
                    inside = (
                        np.abs(nodes[:, 0] - cx) + np.abs(nodes[:, 1] - cy)
                    ) <= radius
                    newly = test_rows[inside]
                    hit[newly] = True
                    hit_step[newly] = elapsed[active[newly]] + (low + offset_index)[newly]
        else:
            end_distance = np.abs(v[:, 0] - cx) + np.abs(v[:, 1] - cy)
            hit = end_distance <= radius
            hit_step = elapsed[active] + np.maximum(d, 1)
        success = hit & (hit_step <= horizon)
        times[active[success]] = hit_step[success]
        elapsed[active] += np.maximum(d, 1)
        pos[active] = v
        survivors = ~success & (elapsed[active] < horizon)
        active = active[survivors]
    return HittingTimeSample(times=times, horizon=horizon)
