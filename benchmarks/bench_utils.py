"""Shared helpers for persisting benchmark results.

``record_bench`` merges one benchmark group's numbers into a
``BENCH_<group>.json`` snapshot at the repo root (atomic write via
:mod:`repro.io_utils`, so a crashed benchmark run never leaves a torn
file).  Snapshots are flat ``{metric: value}`` maps plus a ``meta``
block (UTC timestamp, bench scale), diffable across commits to track
perf trajectories without any external benchmarking service.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.io_utils import atomic_write_json

#: Repo root (benchmarks/ lives directly under it).
_ROOT = Path(__file__).resolve().parent.parent


def bench_path(group: str) -> Path:
    """Snapshot path for one benchmark group (e.g. ``runner``, ``engine``)."""
    return _ROOT / f"BENCH_{group}.json"


def record_bench(group: str, metrics: dict) -> Path:
    """Merge ``metrics`` into ``BENCH_<group>.json`` and return the path.

    Existing metrics not named in ``metrics`` are preserved, so per-test
    recorders (one call per pytest-benchmark test) accumulate into one
    snapshot per group.  A metric valued ``None`` is a *tombstone*: it
    deletes the key from the snapshot instead of writing ``null``, so a
    benchmark can scrub a stale value a differently-shaped host left
    behind (e.g. ``pool_speedup`` on a clamped CI box).  A corrupt or
    hand-edited snapshot is replaced rather than crashing the run.
    """
    path = bench_path(group)
    snapshot: dict = {}
    try:
        snapshot = json.loads(path.read_text(encoding="utf-8"))
        if not isinstance(snapshot, dict):
            snapshot = {}
    except (FileNotFoundError, json.JSONDecodeError):
        snapshot = {}
    for key, value in metrics.items():
        if value is None:
            snapshot.pop(key, None)
        else:
            snapshot[key] = _round(value)
    snapshot["meta"] = {
        "generated_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "scale": os.environ.get("REPRO_BENCH_SCALE", "smoke"),
    }
    atomic_write_json(snapshot, path)
    return path


def _round(value):
    if isinstance(value, float):
        return round(value, 6)
    return value
