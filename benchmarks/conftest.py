"""Benchmark configuration.

Each experiment benchmark runs its harness exactly once (pedantic mode) at
the scale given by the REPRO_BENCH_SCALE environment variable (default
"smoke", so the whole suite stays laptop-friendly; export
REPRO_BENCH_SCALE=small or =full to regenerate EXPERIMENTS.md numbers).
"""

import os

import pytest


@pytest.fixture
def scale():
    return os.environ.get("REPRO_BENCH_SCALE", "smoke")


@pytest.fixture
def seed():
    return int(os.environ.get("REPRO_BENCH_SEED", "0"))


def run_once(benchmark, experiment_id, scale, seed):
    """Run one experiment once under the benchmark timer and report it."""
    from repro.experiments.registry import run_experiment

    result = benchmark.pedantic(
        run_experiment,
        args=(experiment_id,),
        kwargs={"scale": scale, "seed": seed},
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    assert result.passed, f"{experiment_id} checks failed:\n{result.render()}"
    return result
