"""Benchmark + regression harness for EXP-E4 (see DESIGN.md)."""

from conftest import run_once


def test_tail_eq4(benchmark, scale, seed):
    run_once(benchmark, "EXP-E4", scale, seed)
