"""Benchmark + regression harness for FIG-1..6 (see DESIGN.md)."""

from conftest import run_once


def test_figures(benchmark, scale, seed):
    run_once(benchmark, "FIG-1..6", scale, seed)
