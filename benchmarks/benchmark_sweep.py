"""Throughput and determinism of the declarative sweep scheduler.

One smoke-size grid (8 points) runs three times -- serially
(``workers=0``), through the shared worker pool over the shared-memory
transport, and through the same pool over the classic pickle transport
-- and the benchmark:

* **asserts three-way bit-identity**: every point's sample and parallel
  estimates must match element-for-element across all executions.  This
  is the sweep's determinism contract (docs/sweep.md): seeds derive from
  the grid-point *index*, never from worker scheduling order, and the
  transport only moves bytes, it never touches the RNG stream;
* **records the paired transport timings** ``sweep_shm_seconds`` /
  ``sweep_pickle_seconds`` so bench-history can track the shm win as a
  same-host ratio (absolute times are noisy on CI; the pair is not);
* **records the honest speedup** ``serial_seconds / pooled_seconds``
  only when the host can grant the requested parallelism.  The pool size
  is the *requested* worker count clamped to ``os.cpu_count()`` --
  oversubscribing a small CI container once produced a fictitious 1.49x
  "speedup" on a single CPU -- so on a clamped host the snapshot carries
  ``"clamped": true`` and *no* ``pool_speedup`` key at all (see
  :func:`repro.telemetry.bench_history.pool_speedup_record`).
"""

import os
import time

import numpy as np

from bench_utils import record_bench
from repro.runner import Runner
from repro.sweep import SweepSpec, run_sweep
from repro.telemetry.bench_history import pool_speedup_record

_SEED = 0
_REQUESTED_WORKERS = 4
_WORKERS = max(1, min(_REQUESTED_WORKERS, os.cpu_count() or 1))


def _spec() -> SweepSpec:
    return SweepSpec(
        axes={"alpha": (2.2, 2.5, 2.8, 3.0), "l": (24, 48)},
        n=2_000,
        horizon=lambda p: p["l"] ** 2,
        k=8,
        n_groups=200,
    )


def _run(workers: int, transport: str = "auto"):
    started = time.perf_counter()
    result = run_sweep(
        _spec(),
        seed=_SEED,
        runner=Runner(workers=workers, pool_transport=transport),
    )
    return result, time.perf_counter() - started


def test_sweep_pool_is_deterministic_and_timed(benchmark):
    """Pooled grid matches serial bit-for-bit on both transports."""
    serial, serial_seconds = _run(workers=0)  # also warms imports/tables

    benchmark.pedantic(_run, args=(_WORKERS, "shm"), rounds=1, iterations=1)
    pooled_shm, shm_seconds = _run(_WORKERS, "shm")
    pooled_pickle, pickle_seconds = _run(_WORKERS, "pickle")

    assert len(serial) == len(pooled_shm) == len(pooled_pickle) == 8
    for a, b, c in zip(serial, pooled_shm, pooled_pickle):
        np.testing.assert_array_equal(a.sample.times, b.sample.times)
        np.testing.assert_array_equal(a.sample.times, c.sample.times)
        np.testing.assert_array_equal(a.parallel, b.parallel)
        np.testing.assert_array_equal(a.parallel, c.parallel)

    pooled_seconds = shm_seconds
    record = pool_speedup_record(
        serial_seconds,
        pooled_seconds,
        workers_requested=_REQUESTED_WORKERS,
        workers=_WORKERS,
        host_cpus=os.cpu_count(),
    )
    speedup = record.get("pool_speedup")
    verdict = (
        f"speedup {speedup:.2f}x" if speedup is not None
        else "clamped host -- no speedup verdict"
    )
    print(
        f"\nsweep 8 points x 2000 walks: serial {serial_seconds:.3f}s | "
        f"pooled x{_WORKERS} shm {shm_seconds:.3f}s / pickle "
        f"{pickle_seconds:.3f}s | {verdict} "
        f"on {os.cpu_count()} CPU(s) | bit-identical: yes"
    )
    record_bench(
        "sweep",
        {
            **record,
            "sweep_shm_seconds": shm_seconds,
            "sweep_pickle_seconds": pickle_seconds,
            "n_points": len(serial),
            "n_walks_per_point": 2_000,
            "bit_identical": True,
        },
    )
