"""Throughput and determinism of the declarative sweep scheduler.

One smoke-size grid (8 points) runs twice -- serially (``workers=0``)
and through the shared worker pool -- and the benchmark:

* **asserts bit-identity**: every point's sample and parallel estimates
  must match element-for-element across the two executions.  This is the
  sweep's determinism contract (docs/sweep.md): seeds derive from the
  grid-point *index*, never from worker scheduling order;
* **records the honest speedup** ``serial_seconds / pooled_seconds`` to
  ``BENCH_sweep.json``.  The pool size is the *requested* worker count
  clamped to ``os.cpu_count()`` -- oversubscribing a small CI container
  once produced a fictitious 1.49x "speedup" on a single CPU -- and both
  the requested and effective counts are recorded, with the host's CPU
  count alongside, so the trajectory is interpretable per machine.
"""

import os
import time

import numpy as np

from bench_utils import record_bench
from repro.runner import Runner
from repro.sweep import SweepSpec, run_sweep

_SEED = 0
_REQUESTED_WORKERS = 4
_WORKERS = max(1, min(_REQUESTED_WORKERS, os.cpu_count() or 1))


def _spec() -> SweepSpec:
    return SweepSpec(
        axes={"alpha": (2.2, 2.5, 2.8, 3.0), "l": (24, 48)},
        n=2_000,
        horizon=lambda p: p["l"] ** 2,
        k=8,
        n_groups=200,
    )


def _run(workers: int):
    started = time.perf_counter()
    result = run_sweep(_spec(), seed=_SEED, runner=Runner(workers=workers))
    return result, time.perf_counter() - started


def test_sweep_pool_is_deterministic_and_timed(benchmark):
    """Pooled grid matches serial bit-for-bit; persist the speedup."""
    serial, serial_seconds = _run(workers=0)  # also warms imports/tables

    benchmark.pedantic(_run, args=(_WORKERS,), rounds=1, iterations=1)
    pooled, pooled_seconds = _run(workers=_WORKERS)

    assert len(serial) == len(pooled) == 8
    for a, b in zip(serial, pooled):
        np.testing.assert_array_equal(a.sample.times, b.sample.times)
        np.testing.assert_array_equal(a.parallel, b.parallel)

    speedup = serial_seconds / pooled_seconds
    print(
        f"\nsweep 8 points x 2000 walks: serial {serial_seconds:.3f}s | "
        f"pooled x{_WORKERS} {pooled_seconds:.3f}s | speedup {speedup:.2f}x "
        f"on {os.cpu_count()} CPU(s) | bit-identical: yes"
    )
    record_bench(
        "sweep",
        {
            "serial_seconds": serial_seconds,
            "pooled_seconds": pooled_seconds,
            # A float: bench-history's *_speedup kind compares it
            # absolutely with inverted direction (a drop past the
            # threshold regresses, a rise never does).
            "pool_speedup": round(speedup, 4),
            "workers_requested": _REQUESTED_WORKERS,
            "workers": _WORKERS,
            "host_cpus": os.cpu_count(),
            "n_points": len(serial),
            "n_walks_per_point": 2_000,
            "bit_identical": True,
        },
    )
