"""Benchmark + regression harness for EXP-L3.9 (see DESIGN.md)."""

from conftest import run_once


def test_monotonicity(benchmark, scale, seed):
    run_once(benchmark, "EXP-L3.9", scale, seed)
