"""Benchmark + regression harness for EXP-T1.6 (see DESIGN.md)."""

from conftest import run_once


def test_random_exponent(benchmark, scale, seed):
    run_once(benchmark, "EXP-T1.6", scale, seed)
