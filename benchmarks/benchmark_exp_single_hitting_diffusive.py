"""Benchmark + regression harness for EXP-T1.2 (see DESIGN.md)."""

from conftest import run_once


def test_single_hitting_diffusive(benchmark, scale, seed):
    run_once(benchmark, "EXP-T1.2", scale, seed)
