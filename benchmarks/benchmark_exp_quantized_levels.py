"""Benchmark + regression harness for EXT-QUANT (see DESIGN.md)."""

from conftest import run_once


def test_quantized_levels(benchmark, scale, seed):
    run_once(benchmark, "EXT-QUANT", scale, seed)
