"""Micro-benchmarks of the simulation engine's hot paths.

These measure raw throughput (proper pytest-benchmark timing loops, unlike
the one-shot experiment benchmarks): the exact Zipf sampler, the uniform
ring-destination sampler, the direct-path ring-marginal sampler, and the
end-to-end walk/flight hitting-time engines.

Each test persists its mean runtime into ``BENCH_engine.json`` at the repo
root (see benchmarks/bench_utils.py), so hot-path perf is diffable per
commit.

The walk and ball engines are additionally recorded as *paired* timings:
``*_fused_mean_seconds`` is the current fused-kernel engine (same
measurement as the headline ``*_mean_seconds`` key) and
``*_legacy_mean_seconds`` re-times the frozen pre-fusing implementations
(benchmarks/legacy_engines.py) under
:func:`repro.distributions.cdf_table.legacy_sampling` on the same
machine in the same run.  bench-history hard-gates the fused keys and
warns when fused is not comfortably ahead of legacy (docs/performance.md).
"""

import numpy as np

from bench_utils import record_bench
from legacy_engines import legacy_ball_hitting_times, legacy_walk_hitting_times
from repro.distributions.cdf_table import get_table, legacy_sampling
from repro.distributions.zeta import ZetaJumpDistribution
from repro.distributions.zipf_sampler import rejection_conditional_zipf
from repro.engine.samplers import HeterogeneousZetaSampler
from repro.engine.vectorized import flight_hitting_times, walk_hitting_times
from repro.lattice.direct_path import sample_direct_path_nodes
from repro.lattice.rings import sample_ring_offsets

_N = 100_000


def _persist(benchmark, name: str) -> None:
    """Record one test's mean seconds into the engine snapshot."""
    record_bench("engine", {f"{name}_mean_seconds": benchmark.stats.stats.mean})


def test_zipf_rejection_sampler(benchmark):
    rng = np.random.default_rng(0)
    alphas = np.full(_N, 2.5)
    benchmark(rejection_conditional_zipf, alphas, rng, _N)
    _persist(benchmark, "zipf_rejection_sampler")


def test_zipf_heterogeneous_sampler(benchmark):
    rng = np.random.default_rng(0)
    sampler = HeterogeneousZetaSampler(rng.uniform(2.0, 3.0, _N))
    indices = np.arange(_N)
    benchmark(sampler.sample, rng, indices)
    _persist(benchmark, "zipf_heterogeneous_sampler")


def test_zeta_distribution_sample(benchmark):
    rng = np.random.default_rng(0)
    law = ZetaJumpDistribution(2.5)
    benchmark(law.sample, rng, _N)
    _persist(benchmark, "zeta_distribution_sample")


def test_ring_offset_sampler(benchmark):
    rng = np.random.default_rng(0)
    distances = np.random.default_rng(1).integers(0, 1000, _N)
    benchmark(sample_ring_offsets, distances, rng)
    _persist(benchmark, "ring_offset_sampler")


def test_direct_path_marginal_sampler(benchmark):
    rng = np.random.default_rng(0)
    starts = np.zeros((_N, 2), dtype=np.int64)
    ends = sample_ring_offsets(np.full(_N, 500, dtype=np.int64), rng)
    rings = np.random.default_rng(2).integers(0, 501, _N)
    benchmark(sample_direct_path_nodes, starts, ends, rings, rng)
    _persist(benchmark, "direct_path_marginal_sampler")


def test_walk_engine_end_to_end(benchmark):
    law = ZetaJumpDistribution(2.5)
    get_table(law.alpha, law.lazy_probability, law.cap)  # build outside the timer

    def run():
        rng = np.random.default_rng(3)
        return walk_hitting_times(law, (24, 12), horizon=1_000, n=2_000, rng=rng)

    sample = benchmark(run)
    _persist(benchmark, "walk_engine_end_to_end")
    _persist(benchmark, "walk_engine_end_to_end_fused")
    assert sample.n == 2_000


def test_walk_engine_end_to_end_legacy(benchmark):
    """The frozen pre-fusing walk engine, for the paired comparison."""
    law = ZetaJumpDistribution(2.5)

    def run():
        rng = np.random.default_rng(3)
        with legacy_sampling():
            return legacy_walk_hitting_times(
                law, (24, 12), horizon=1_000, n=2_000, rng=rng
            )

    sample = benchmark(run)
    _persist(benchmark, "walk_engine_end_to_end_legacy")
    assert sample.n == 2_000


def test_flight_engine_end_to_end(benchmark):
    law = ZetaJumpDistribution(2.5)

    def run():
        rng = np.random.default_rng(4)
        return flight_hitting_times(law, (8, 4), horizon=200, n=2_000, rng=rng)

    sample = benchmark(run)
    _persist(benchmark, "flight_engine_end_to_end")
    assert sample.n == 2_000


def test_ball_target_engine(benchmark):
    from repro.engine.ball_targets import ball_hitting_times

    law = ZetaJumpDistribution(2.5)
    get_table(law.alpha, law.lazy_probability, law.cap)  # build outside the timer

    def run():
        rng = np.random.default_rng(5)
        return ball_hitting_times(law, (24, 12), radius=4, horizon=1_000, n=2_000, rng=rng)

    sample = benchmark(run)
    _persist(benchmark, "ball_target_engine")
    _persist(benchmark, "ball_target_engine_fused")
    assert sample.n == 2_000


def test_ball_target_engine_legacy(benchmark):
    """The frozen pre-fusing ball engine, for the paired comparison."""
    law = ZetaJumpDistribution(2.5)

    def run():
        rng = np.random.default_rng(5)
        with legacy_sampling():
            return legacy_ball_hitting_times(
                law, (24, 12), radius=4, horizon=1_000, n=2_000, rng=rng
            )

    sample = benchmark(run)
    _persist(benchmark, "ball_target_engine_legacy")
    assert sample.n == 2_000


def test_multi_target_engine(benchmark):
    from repro.engine.multi_target import multi_target_search, scatter_poisson_field

    law = ZetaJumpDistribution(2.5)
    field = scatter_poisson_field(0.01, 40, np.random.default_rng(6))

    def run():
        rng = np.random.default_rng(7)
        return multi_target_search(law, field, horizon=2_000, n=32, rng=rng)

    result = benchmark(run)
    _persist(benchmark, "multi_target_engine")
    assert result.n_items == field.shape[0]
