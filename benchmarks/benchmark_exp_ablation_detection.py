"""Benchmark + regression harness for EXT-DET (see DESIGN.md)."""

from conftest import run_once


def test_ablation_detection(benchmark, scale, seed):
    run_once(benchmark, "EXT-DET", scale, seed)
