"""Benchmark + regression harness for EXP-MSD (see DESIGN.md)."""

from conftest import run_once


def test_msd_regimes(benchmark, scale, seed):
    run_once(benchmark, "EXP-MSD", scale, seed)
