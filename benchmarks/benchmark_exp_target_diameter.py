"""Benchmark + regression harness for EXT-DIAM (see DESIGN.md)."""

from conftest import run_once


def test_target_diameter(benchmark, scale, seed):
    run_once(benchmark, "EXT-DIAM", scale, seed)
