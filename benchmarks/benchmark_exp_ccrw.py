"""Benchmark + regression harness for EXT-CCRW (see DESIGN.md)."""

from conftest import run_once


def test_ccrw(benchmark, scale, seed):
    run_once(benchmark, "EXT-CCRW", scale, seed)
