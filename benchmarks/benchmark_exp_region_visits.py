"""Benchmark + regression harness for EXP-L4.12 (see DESIGN.md)."""

from conftest import run_once


def test_region_visits(benchmark, scale, seed):
    run_once(benchmark, "EXP-L4.12", scale, seed)
