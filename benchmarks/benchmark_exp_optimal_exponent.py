"""Benchmark + regression harness for EXP-T1.5 (see DESIGN.md)."""

from conftest import run_once


def test_optimal_exponent(benchmark, scale, seed):
    run_once(benchmark, "EXP-T1.5", scale, seed)
