"""Benchmark + regression harness for EXT-SW (see DESIGN.md)."""

from conftest import run_once


def test_smallworld(benchmark, scale, seed):
    run_once(benchmark, "EXT-SW", scale, seed)
