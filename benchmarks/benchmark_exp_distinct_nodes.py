"""Benchmark + regression harness for EXT-COVER (see DESIGN.md)."""

from conftest import run_once


def test_distinct_nodes(benchmark, scale, seed):
    run_once(benchmark, "EXT-COVER", scale, seed)
