"""Benchmark + regression harness for EXT-1D (see DESIGN.md)."""

from conftest import run_once


def test_line_foraging(benchmark, scale, seed):
    run_once(benchmark, "EXT-1D", scale, seed)
