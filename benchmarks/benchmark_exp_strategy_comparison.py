"""Benchmark + regression harness for EXP-CMP (see DESIGN.md)."""

from conftest import run_once


def test_strategy_comparison(benchmark, scale, seed):
    run_once(benchmark, "EXP-CMP", scale, seed)
