"""Benchmark + regression harness for EXP-L3.2 (see DESIGN.md)."""

from conftest import run_once


def test_direct_path(benchmark, scale, seed):
    run_once(benchmark, "EXP-L3.2", scale, seed)
