"""Benchmark + regression harness for EXP-LC1 (see DESIGN.md)."""

from conftest import run_once


def test_projection(benchmark, scale, seed):
    run_once(benchmark, "EXP-LC1", scale, seed)
