"""Benchmark + regression harness for EXP-T1.1 (see DESIGN.md)."""

from conftest import run_once


def test_single_hitting_super(benchmark, scale, seed):
    run_once(benchmark, "EXP-T1.1", scale, seed)
