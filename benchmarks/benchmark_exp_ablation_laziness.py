"""Benchmark + regression harness for EXT-LAZY (see DESIGN.md)."""

from conftest import run_once


def test_ablation_laziness(benchmark, scale, seed):
    run_once(benchmark, "EXT-LAZY", scale, seed)
