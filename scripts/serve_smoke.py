#!/usr/bin/env python
"""CI smoke test for the estimation daemon (docs/serve.md).

Starts ``repro-experiment serve`` as a real subprocess, then asserts the
acceptance bars end to end:

1. a query streams a theory-tier answer first, then >= 1 progressive
   CI-tightening simulation response, then a converged final;
2. two concurrent identical queries share exactly ONE engine call,
   proven by the daemon's own ``serve.engine_calls`` /
   ``serve.batch_coalesced`` counters;
3. a repeated query is served from the persistent result cache with no
   further engine call;
4. SIGTERM stops the daemon cleanly (exit 0) and removes the socket.

Exit 0 on success, 1 with a diagnostic on any failed assertion.
"""

import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.api.query import EstimateRequest
from repro.serve.client import ServeClient


def fail(message):
    print(f"serve-smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main():
    workdir = Path(tempfile.mkdtemp(prefix="serve-smoke-"))
    socket_path = workdir / "serve.sock"
    daemon = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--socket", str(socket_path),
            "--cache-dir", str(workdir / "cache"),
            "--registry-dir", str(workdir / "registry"),
            "--round-walks", "200", "--max-walks", "4000",
            "--batch-window", "0.4",
        ],
    )
    try:
        deadline = time.monotonic() + 30
        while not socket_path.exists():
            if daemon.poll() is not None:
                fail(f"daemon died during startup (exit {daemon.returncode})")
            if time.monotonic() > deadline:
                fail("daemon never bound its socket")
            time.sleep(0.05)

        # --- bar 1: tiered streaming ---------------------------------------
        request = EstimateRequest(alpha=2.2, l=6, max_ci=0.06)
        with ServeClient(socket_path) as client:
            started = time.monotonic()
            responses = list(client.estimate(request))
        if responses[0].tier != "theory" or not responses[0].approximate:
            fail(f"first response is not a theory surrogate: {responses[0]}")
        progressive = [
            r for r in responses[1:-1] if r.tier == "simulation" and not r.final
        ]
        if not progressive:
            fail("no progressive simulation responses streamed")
        final = responses[-1]
        if not (final.final and final.converged and final.half_width <= 0.06):
            fail(f"final response did not converge: {final}")
        print(
            f"serve-smoke: tiers ok ({len(responses)} responses, "
            f"final CI half-width {final.half_width:.4f} after {final.trials} "
            f"walks, {time.monotonic() - started:.1f}s)"
        )

        # --- bar 2: coalescing ---------------------------------------------
        duplicate = EstimateRequest(alpha=2.4, l=6, max_ci=0.06)
        results = {}

        def query(name):
            with ServeClient(socket_path) as c:
                results[name] = c.query(duplicate)

        threads = [
            threading.Thread(target=query, args=(name,)) for name in ("a", "b")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        if "a" not in results or "b" not in results:
            fail("concurrent duplicate queries did not both complete")
        if (results["a"].p, results["a"].trials) != (
            results["b"].p,
            results["b"].trials,
        ):
            fail("coalesced duplicates returned different answers")

        with ServeClient(socket_path) as client:
            counters = client.stats()["counters"]
        engine_calls = counters.get("serve.engine_calls", 0)
        coalesced = counters.get("serve.batch_coalesced", 0)
        # one call for bar 1's query + exactly one SHARED call for the pair
        if engine_calls != 2:
            fail(f"expected 2 engine calls total, counted {engine_calls}")
        if coalesced < 1:
            fail(f"expected >= 1 coalesced request, counted {coalesced}")
        print(
            f"serve-smoke: coalescing ok (2 concurrent duplicates -> "
            f"1 shared engine call, batch_coalesced={coalesced})"
        )

        # --- bar 3: persistent cache ---------------------------------------
        with ServeClient(socket_path) as client:
            repeat = client.query(request)
            counters = client.stats()["counters"]
        if repeat.tier != "cache":
            fail(f"repeated query was not a cache hit: tier={repeat.tier}")
        if counters.get("serve.engine_calls", 0) != 2:
            fail("the repeated query ran the engine again")
        print("serve-smoke: persistent cache ok (repeat served without engine)")

        # --- bar 4: clean SIGTERM ------------------------------------------
        daemon.send_signal(signal.SIGTERM)
        try:
            code = daemon.wait(timeout=30)
        except subprocess.TimeoutExpired:
            fail("daemon did not exit within 30s of SIGTERM")
        if code != 0:
            fail(f"daemon exited {code} on SIGTERM (expected 0)")
        if socket_path.exists():
            fail("daemon left its socket behind")
        print("serve-smoke: clean shutdown ok (SIGTERM -> exit 0, socket removed)")
        print("serve-smoke: PASS")
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait()


if __name__ == "__main__":
    main()
