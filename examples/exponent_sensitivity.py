"""The checkmark curve: parallel search time as a function of the exponent.

Fix k walkers and a target distance l, sweep the common Levy exponent
alpha over (2, 3], and watch the paper's Theorem 1.5 / Corollary 4.2
shape appear:

* below alpha* = 3 - log k / log l, most groups NEVER find the target
  (the walks overshoot the target scale and escape -- Cor 4.2(c));
* just above alpha*, the search time bottoms out at ~ l^2/k;
* approaching alpha = 3, diffusive redundancy sets in and the time climbs
  polynomially (Cor 4.2(b)).

Run:  python examples/exponent_sensitivity.py
"""

import numpy as np

from repro.analysis.estimators import censored_median
from repro.core.exponents import optimal_exponent
from repro.distributions.zeta import ZetaJumpDistribution
from repro.engine.results import bootstrap_parallel
from repro.engine.vectorized import walk_hitting_times
from repro.experiments.common import default_target
from repro.reporting.table import Table
from repro.reporting.text_plots import ascii_loglog
from repro.rng import as_generator

K = 48
L = 96
N_SINGLE = 2_500
N_GROUPS = 500


def main() -> None:
    rng = as_generator(3)
    target = default_target(L)
    horizon = L * L
    alpha_star = optimal_exponent(K, L)
    print(
        f"k={K} walks, target distance l={L}: "
        f"alpha* = 3 - log k / log l = {alpha_star:.3f}\n"
    )
    table = Table(
        ["alpha", "group success rate", "median parallel time", "penalized mean"],
        title=f"exponent sweep (horizon {horizon} steps)",
    )
    curve = []
    for alpha in np.arange(2.0, 3.01, 0.1):
        pool = walk_hitting_times(
            ZetaJumpDistribution(float(alpha)), target, horizon=horizon, n=N_SINGLE, rng=rng
        )
        parallel = bootstrap_parallel(pool.times, K, N_GROUPS, rng)
        success = float((parallel >= 0).mean())
        median = censored_median(parallel, horizon)
        penalized = float(np.where(parallel < 0, horizon, parallel).mean())
        table.add_row(round(float(alpha), 2), success, median, penalized)
        curve.append((float(alpha), penalized))
    print(table.render())
    print()
    print(
        ascii_loglog(
            {"penalized mean time": curve},
            width=56,
            height=14,
            title="search time vs exponent (note the minimum above alpha*)",
        )
    )
    best = min(curve, key=lambda point: point[1])
    print(
        f"\nEmpirical best exponent: {best[0]:.2f} "
        f"(alpha* = {alpha_star:.2f}; the optimum sits slightly above it, "
        "as Theorem 1.5's +O(log log l / log l) shift predicts)."
    )


if __name__ == "__main__":
    main()
