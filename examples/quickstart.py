"""Quickstart: parallel Levy walk search on Z^2 in ten lines.

Reproduces the headline usage of the paper (Clementi, d'Amore,
Giakkoupis, Natale, PODC 2021): k walkers start at the origin, each picks
a random exponent uniformly from (2, 3) -- knowing neither k nor the
target distance -- and the group finds the target in ~(l^2/k) polylog
steps.

Run:  python examples/quickstart.py
"""

from repro import (
    LevyWalk,
    ParallelLevySearch,
    UniformRandomExponentStrategy,
    optimal_exponent,
    universal_lower_bound,
)


def main() -> None:
    # --- a single Levy walk, step by step --------------------------------
    walk = LevyWalk(alpha_or_distribution=2.5, rng=0)
    trajectory = walk.run(steps=20)
    print("A single Levy walk (alpha=2.5), first 21 positions:")
    print("  " + " -> ".join(str(node) for node in trajectory[:8]) + " ...")
    print(f"  after 20 steps it stands at {walk.position}\n")

    # --- the paper's parallel search --------------------------------------
    k = 64
    target = (40, 30)  # Manhattan distance l = 70
    search = ParallelLevySearch(k=k, strategy=UniformRandomExponentStrategy())
    result = search.find(target, rng=1)

    l = abs(target[0]) + abs(target[1])
    print(f"{k} parallel Levy walks, random exponents, target at distance {l}:")
    if result.found:
        print(
            f"  found at step {result.time} by walk #{result.finder_index} "
            f"(exponent {result.finder_exponent:.3f})"
        )
        print(f"  universal lower bound l^2/k + l = {universal_lower_bound(k, l) + l:.0f}")
        print(f"  -> within a factor {result.time / (universal_lower_bound(k, l) + l):.1f} of it")
    else:
        print(f"  not found within {result.horizon} steps (rerun with more walks)")

    # --- what the oracle would have chosen --------------------------------
    print(
        f"\nFor (k={k}, l={l}) the paper's optimal common exponent is "
        f"alpha* = 3 - log k / log l = {optimal_exponent(k, l):.3f};"
    )
    print("the randomized strategy matches it without knowing k or l (Thm 1.6).")


if __name__ == "__main__":
    main()
