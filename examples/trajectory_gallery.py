"""Trajectory gallery: what the three Levy regimes look like, plus the
paper's geometric figures.

Renders (as ASCII) sample trajectories of a ballistic (alpha = 1.5),
super-diffusive (alpha = 2.5) and diffusive (alpha = 3.5) Levy walk and a
simple random walk, all for the same number of steps -- the qualitative
difference in spatial coverage is the whole story of the paper -- and
then reprints Figures 1-6.

Run:  python examples/trajectory_gallery.py
"""

from repro.lattice.ascii_art import all_figures, render_trajectory
from repro.rng import as_generator
from repro.walks import LevyWalk, SimpleRandomWalk

STEPS = 400
WINDOW = 24


def main() -> None:
    walkers = [
        ("ballistic Levy walk, alpha=1.5", LevyWalk(1.5, rng=as_generator(2))),
        ("super-diffusive Levy walk, alpha=2.5", LevyWalk(2.5, rng=as_generator(2))),
        ("diffusive Levy walk, alpha=3.5", LevyWalk(3.5, rng=as_generator(2))),
        ("lazy simple random walk", SimpleRandomWalk(rng=as_generator(2))),
    ]
    for label, walker in walkers:
        trajectory = walker.run(STEPS)
        distance = abs(walker.position[0]) + abs(walker.position[1])
        print(f"--- {label}: {STEPS} steps, final distance {distance} ---")
        print(render_trajectory(trajectory, radius=WINDOW))
        print(
            "(window radius "
            f"{WINDOW}; '*' visited, 'S' start, 'E' end{' -- escaped the window' if distance > WINDOW else ''})\n"
        )
    print("=== The paper's figures, regenerated ===\n")
    for name, rendering in all_figures():
        print(f"--- {name} ---")
        print(rendering)
        print()


if __name__ == "__main__":
    main()
