"""Central-place foraging: a colony of ants searching for scattered food.

The paper motivates its model with "natural cooperative foraging behavior,
such as the behavior of ants around their nest" (Section 1.1): k
independent non-communicating foragers (like Cataglyphis desert ants,
which lack pheromone trails) leave the same nest and search Z^2.

This example scatters food items at several distance scales and compares
three colonies over the same food field:

* a colony whose ants all use the classical Cauchy exponent alpha = 2;
* a colony whose ants all use a diffusive exponent alpha = 3;
* a colony following the paper's strategy -- every ant draws its own
  exponent uniformly from (2, 3).

Food is *destructive* (an item is consumed by the first ant to step on
it), and we count items retrieved within a fixed time budget.  The
random-exponent colony retrieves items across ALL distance bands, while
each fixed-exponent colony is systematically weak at some band -- the
paper's "no universally optimal exponent" message as an ecology story.

Run:  python examples/foraging_simulation.py
"""

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.strategies import (
    ExponentStrategy,
    FixedExponentStrategy,
    UniformRandomExponentStrategy,
)
from repro.lattice.rings import ring_index_to_offset, ring_size
from repro.reporting.table import Table
from repro.rng import as_generator, spawn
from repro.walks import LevyWalk

IntPoint = Tuple[int, int]

N_ANTS = 24
TIME_BUDGET = 3_000
DISTANCE_BANDS = (8, 16, 32, 64)
ITEMS_PER_BAND = 3


@dataclass
class ForagingOutcome:
    """What one colony retrieved within the time budget."""

    strategy: str
    retrieved_by_band: Dict[int, int]
    first_retrieval_step: int | None

    @property
    def total(self) -> int:
        return sum(self.retrieved_by_band.values())


def scatter_food(rng: np.random.Generator) -> Dict[IntPoint, int]:
    """Place ITEMS_PER_BAND food items on each distance band's ring."""
    food: Dict[IntPoint, int] = {}
    for band in DISTANCE_BANDS:
        for _ in range(ITEMS_PER_BAND):
            index = int(rng.integers(0, ring_size(band)))
            food[ring_index_to_offset(band, index)] = band
    return food


def run_colony(
    strategy: ExponentStrategy,
    food: Dict[IntPoint, int],
    rng: np.random.Generator,
) -> ForagingOutcome:
    """Step every ant in lockstep; food vanishes when first stepped on."""
    exponents = strategy.sample_exponents(N_ANTS, rng)
    ants: List[LevyWalk] = [
        LevyWalk(float(alpha), rng=child)
        for alpha, child in zip(exponents, spawn(rng, N_ANTS))
    ]
    remaining = dict(food)
    retrieved = {band: 0 for band in DISTANCE_BANDS}
    first_step = None
    for step in range(1, TIME_BUDGET + 1):
        if not remaining:
            break
        for ant in ants:
            position = ant.advance()
            band = remaining.pop(position, None)
            if band is not None:
                retrieved[band] += 1
                if first_step is None:
                    first_step = step
    return ForagingOutcome(
        strategy=strategy.describe(),
        retrieved_by_band=retrieved,
        first_retrieval_step=first_step,
    )


def main() -> None:
    rng = as_generator(7)
    food = scatter_food(rng)
    print(
        f"Nest at the origin; {len(food)} food items on rings "
        f"{DISTANCE_BANDS} ({ITEMS_PER_BAND} per ring)."
    )
    print(f"{N_ANTS} ants per colony, {TIME_BUDGET} steps of foraging.\n")

    colonies = [
        FixedExponentStrategy(2.0),
        FixedExponentStrategy(3.0),
        UniformRandomExponentStrategy(),
    ]
    table = Table(
        ["colony"]
        + [f"ring {band}" for band in DISTANCE_BANDS]
        + ["total", "first find (step)"],
        title="Food retrieved per distance band",
    )
    for strategy in colonies:
        outcome = run_colony(strategy, food, as_generator(11))
        table.add_row(
            outcome.strategy,
            *[outcome.retrieved_by_band[band] for band in DISTANCE_BANDS],
            outcome.total,
            outcome.first_retrieval_step,
        )
    print(table.render())
    print(
        "\nThe mixed-exponent colony forages every band: its ballistic-ish "
        "members sweep the far rings while its diffusive-ish members mop up "
        "near the nest (Theorem 1.6's mechanism)."
    )


if __name__ == "__main__":
    main()
