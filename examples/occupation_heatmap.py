"""Occupation heatmaps: watching the monotonicity property.

Renders the exact occupation law of a capped Lévy flight (computed by FFT
convolution -- no Monte-Carlo noise) and the empirical occupation of an
uncapped flight, side by side, for exponents from each regime.  The
diamond-ish level sets illustrate the monotonicity property (Lemma 3.9):
probability never increases when moving from a node ``u`` to any node
``v`` with ``‖v‖∞ ≥ ‖u‖₁``.

Run:  python examples/occupation_heatmap.py
"""

import numpy as np

from repro.distributions.zeta import ZetaJumpDistribution
from repro.engine.exact_occupation import flight_occupation_exact
from repro.engine.visits import flight_occupation_grid
from repro.reporting.heatmap import ascii_heatmap

WINDOW = 18


def crop(grid: np.ndarray, radius: int) -> np.ndarray:
    center = (grid.shape[0] - 1) // 2
    return grid[
        center - radius : center + radius + 1, center - radius : center + radius + 1
    ]


def main() -> None:
    for alpha in (1.5, 2.5, 3.5):
        law = ZetaJumpDistribution(alpha, cap=6)
        exact = flight_occupation_exact(law, n_jumps=6)
        print(
            ascii_heatmap(
                crop(exact.grid, WINDOW),
                title=(
                    f"--- EXACT law of J_6, capped flight, alpha={alpha} "
                    "(log density; 'O' = origin) ---"
                ),
            )
        )
        slack = exact.check_monotonicity(max_radius=WINDOW)
        print(f"Lemma 3.9 exact check: worst slack {slack:.2e} (>= -1e-12: holds)\n")

    rng = np.random.default_rng(0)
    empirical = flight_occupation_grid(
        ZetaJumpDistribution(2.5),
        horizon=12,
        n=300_000,
        radius=WINDOW,
        rng=rng,
        at_time_only=True,
    )
    print(
        ascii_heatmap(
            empirical,
            title=(
                "--- EMPIRICAL law of J_12, uncapped alpha=2.5 flight "
                "(300k samples) ---"
            ),
        )
    )
    print(
        "\nThe level sets interpolate between the L1 diamond (near the "
        "origin) and fuzziness from rare huge jumps -- the geometry behind "
        "Lemma 3.9's 'L1 ball dominates Linf complement' comparison."
    )


if __name__ == "__main__":
    main()
