"""The ANTS problem, solved uniformly with zero advice.

Feinerman and Korman's Ants-Nearby-Treasure-Search problem [14]: k
non-communicating agents leave a nest to find an adversarial target at
unknown distance l.  With zero bits of advice, agents know neither k nor
l.  The paper's Section 1.2.4 observes that its randomized Levy strategy
is exactly such a zero-advice algorithm, and is within polylog factors of
the Omega(l^2/k + l) lower bound.

This example pits the uniform Levy algorithm against the
Feinerman-Korman-style doubling spiral searcher (which cheats: it knows
k) across several target distances, reporting times as multiples of the
universal lower bound.

Run:  python examples/ants_problem.py
"""

import numpy as np

from repro.baselines.spiral_search import SpiralSearch
from repro.core.ants import UniformANTSAlgorithm, universal_lower_bound
from repro.experiments.common import default_target
from repro.reporting.table import Table
from repro.rng import as_generator

K = 32
DISTANCES = (16, 32, 64, 128)
N_RUNS = 20


def main() -> None:
    rng = as_generator(5)
    ants = UniformANTSAlgorithm(k=K)
    spiral = SpiralSearch(k=K)
    print(
        f"ANTS problem with k={K} agents, zero advice.\n"
        f"'uniform-levy' = every agent draws alpha ~ U(2,3) (the paper);\n"
        f"'spiral(FK)'   = doubling spiral probes, and it KNOWS k.\n"
    )
    table = Table(
        [
            "l",
            "lower bound l^2/k + l",
            "uniform-levy median",
            "levy / LB",
            "spiral median",
            "spiral / LB",
        ],
        title=f"median parallel search time over {N_RUNS} runs",
    )
    for l in DISTANCES:
        target = default_target(l)
        horizon = 2 * l * l
        lb = universal_lower_bound(K, l) + l
        levy = ants.sample_search_times(target, n_runs=N_RUNS, horizon=horizon, rng=rng)
        fk = spiral.sample_parallel_hitting_times(
            target, n_runs=N_RUNS, horizon=horizon, rng=rng
        )
        levy_median = float(np.median(levy.hit_times())) if levy.n_hits else float("inf")
        fk_median = float(np.median(fk.hit_times())) if fk.n_hits else float("inf")
        table.add_row(l, lb, levy_median, levy_median / lb, fk_median, fk_median / lb)
    print(table.render())
    print(
        "\nThe uniform Levy algorithm tracks the known-k spiral reference "
        "within small factors at every distance -- without knowing k or l, "
        "with zero coordination, and as a plain random walk an ant could "
        "plausibly execute."
    )


if __name__ == "__main__":
    main()
