"""Kleinberg's small-world lattice -- the paper's Section 2 cousin.

Kleinberg [24] augments a finite lattice with one random long-range link
per node, whose length follows the same power law as a Levy jump; greedy
routing is fast only at one exponent, just as parallel Levy search is
fast only at one exponent.  This subpackage reproduces that comparison
point (see :mod:`repro.smallworld.kleinberg`).
"""

from repro.smallworld.kleinberg import KleinbergGrid, greedy_routing_trial

__all__ = ["KleinbergGrid", "greedy_routing_trial"]
