"""Greedy routing on Kleinberg's small-world lattice (paper Section 2).

The model [24]: an ``n x n`` torus where every node keeps its four grid
edges and one *long-range* link to a random node, chosen with probability
proportional to ``dist^-beta``.  In the paper's parameterization (footnote
4), the long-range link has the law of a Levy jump with *length* exponent
``alpha = beta - 1``: a jump distance ``d`` is chosen with ``P(d) ∝
d * d^-beta = d^-alpha`` (the factor ``d`` counts the ~4d nodes of the
ring), then a uniform node of the ring at distance ``d``.

Kleinberg's theorem: greedy routing (always move to the known contact
closest to the target) takes ``O(log^2 n)`` steps iff ``beta = 2``
(length exponent ``alpha = 1``); any other exponent costs ``poly(n)``.
The paper cites this as "of similar nature as our result ... where
exactly one exponent is optimal" -- and contrasts it with its own fix of
*randomizing* the exponent.  The extension experiment EXT-SW measures the
routing-time-vs-alpha curve and its minimum.

Implementation note: each node's long-range contact is re-sampled on
every visit ("independent copies" variant).  Greedy routes never revisit
a node (the grid distance to the target strictly decreases), so the
variant has exactly the same routing-time law as fixing links up front,
while using O(1) memory instead of O(n^2).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.lattice.rings import ring_index_to_offset, ring_size
from repro.rng import SeedLike, as_generator

IntPoint = Tuple[int, int]


class KleinbergGrid:
    """``n x n`` torus with power-law long-range contacts.

    Parameters
    ----------
    n:
        Torus side length.
    length_exponent:
        The jump-length exponent ``alpha`` (> 0): ``P(d) ∝ d^-alpha`` for
        ``d`` in ``[1, n/2]``.  Kleinberg-optimal at ``alpha = 1``
        (node-choice exponent ``beta = alpha + 1 = 2``).
    """

    def __init__(self, n: int, length_exponent: float) -> None:
        if n < 4:
            raise ValueError(f"torus side must be at least 4, got {n}")
        if length_exponent <= 0:
            raise ValueError(
                f"length exponent must be positive, got {length_exponent}"
            )
        self.n = int(n)
        self.length_exponent = float(length_exponent)
        self.max_distance = self.n // 2
        distances = np.arange(1, self.max_distance + 1, dtype=float)
        weights = distances**-self.length_exponent
        self._distance_pmf = weights / weights.sum()

    # ----------------------------------------------------------- geometry

    def torus_distance(self, a: IntPoint, b: IntPoint) -> int:
        """L1 distance on the torus."""
        dx = abs(a[0] - b[0])
        dy = abs(a[1] - b[1])
        return min(dx, self.n - dx) + min(dy, self.n - dy)

    def wrap(self, node: IntPoint) -> IntPoint:
        return (node[0] % self.n, node[1] % self.n)

    def grid_neighbors(self, node: IntPoint):
        x, y = node
        return [
            self.wrap((x + 1, y)),
            self.wrap((x - 1, y)),
            self.wrap((x, y + 1)),
            self.wrap((x, y - 1)),
        ]

    # ------------------------------------------------------------ contacts

    def sample_long_range_contact(
        self, node: IntPoint, rng: np.random.Generator
    ) -> IntPoint:
        """One long-range contact of ``node``: distance ``d ∝ d^-alpha``,
        then uniform on the ring at distance ``d``."""
        d = int(rng.choice(self.max_distance, p=self._distance_pmf)) + 1
        index = int(rng.integers(0, ring_size(d)))
        ox, oy = ring_index_to_offset(d, index)
        return self.wrap((node[0] + ox, node[1] + oy))

    # ------------------------------------------------------------- routing

    def greedy_route_length(
        self,
        source: IntPoint,
        target: IntPoint,
        rng: SeedLike = None,
        max_steps: int | None = None,
    ) -> int:
        """Steps greedy routing takes from ``source`` to ``target``.

        At each node the router knows its four grid neighbors and its
        long-range contact, and moves to whichever is closest to the
        target (never increasing the distance: a grid neighbor always
        decreases it by 1, so progress is guaranteed and ``max_steps``
        only guards against misuse).
        """
        rng = as_generator(rng)
        source = self.wrap(source)
        target = self.wrap(target)
        if max_steps is None:
            max_steps = 4 * self.n * self.n
        current = source
        steps = 0
        while current != target:
            if steps >= max_steps:
                raise RuntimeError("greedy routing exceeded max_steps")
            candidates = self.grid_neighbors(current)
            candidates.append(self.sample_long_range_contact(current, rng))
            current = min(candidates, key=lambda c: self.torus_distance(c, target))
            steps += 1
        return steps


def greedy_routing_trial(
    n: int,
    length_exponent: float,
    n_routes: int,
    rng: SeedLike = None,
) -> np.ndarray:
    """Route between ``n_routes`` uniform source/target pairs; return steps."""
    rng = as_generator(rng)
    grid = KleinbergGrid(n, length_exponent)
    out = np.empty(n_routes, dtype=np.int64)
    for i in range(n_routes):
        source = (int(rng.integers(0, n)), int(rng.integers(0, n)))
        target = (int(rng.integers(0, n)), int(rng.integers(0, n)))
        out[i] = grid.greedy_route_length(source, target, rng)
    return out
