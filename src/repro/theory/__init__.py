"""Executable forms of the paper's theorems and horizon policies."""

from repro.theory.calibration import CalibratedPowerLaw, calibrate_power_law
from repro.theory.horizons import (
    characteristic_horizon,
    early_time_grid,
    parallel_horizon,
)
from repro.theory.predictions import (
    cor_1_4_probability,
    cor_4_2b_slowdown,
    cor_4_2c_hit_probability,
    cor_5_3_required_k,
    msd_exponent,
    predicted_early_time_slope,
    predicted_hit_probability_slope,
    thm_1_1a_probability,
    thm_1_1a_time,
    thm_1_1b_probability,
    thm_1_1c_probability,
    thm_1_2a_probability,
    thm_1_2a_time,
    thm_1_2b_probability,
    thm_1_3a_probability,
    thm_1_3b_probability,
    thm_1_5_parallel_time,
    thm_1_6_parallel_time,
)

__all__ = [
    "CalibratedPowerLaw",
    "calibrate_power_law",
    "characteristic_horizon",
    "early_time_grid",
    "parallel_horizon",
    "thm_1_1a_probability",
    "thm_1_1a_time",
    "thm_1_1b_probability",
    "thm_1_1c_probability",
    "thm_1_2a_probability",
    "thm_1_2a_time",
    "thm_1_2b_probability",
    "thm_1_3a_probability",
    "thm_1_3b_probability",
    "cor_1_4_probability",
    "cor_4_2b_slowdown",
    "cor_4_2c_hit_probability",
    "cor_5_3_required_k",
    "thm_1_5_parallel_time",
    "thm_1_6_parallel_time",
    "predicted_hit_probability_slope",
    "predicted_early_time_slope",
    "msd_exponent",
]
