"""Closed-form predictions of every theorem, as executable formulas.

Each function evaluates one side of one paper statement at concrete
``(alpha, l, k, t)`` values.  The experiment harnesses compare Monte-Carlo
estimates against these predictions; EXPERIMENTS.md records the outcomes.

Conventions
-----------
* ``l`` is the target's Manhattan distance from the origin, ``k`` the
  number of parallel walks, ``t`` a step count.
* Asymptotic statements are evaluated with all hidden constants set to 1;
  experiments therefore compare *shapes* (log-log slopes, argmins,
  crossover locations), never raw constants.
* Probability bounds are clipped into ``[0, 1]``.
"""

from __future__ import annotations

import math

from repro.core.exponents import (
    Regime,
    characteristic_time,
    gamma_factor,
    mu_factor,
    nu_factor,
    regime,
)


def _clip_probability(p: float) -> float:
    return max(0.0, min(1.0, p))


# --------------------------------------------------------------------------
# Theorem 1.1 / 4.1 -- single walk, super-diffusive alpha in (2, 3)
# --------------------------------------------------------------------------


def thm_1_1a_probability(alpha: float, l: int) -> float:
    """Theorem 4.1(a) lower bound: ``P(tau = O(mu l^(alpha-1))) >= 1/(gamma l^(3-alpha))``."""
    if regime(alpha) is not Regime.SUPERDIFFUSIVE:
        raise ValueError(f"Theorem 1.1 needs alpha in (2, 3), got {alpha}")
    return _clip_probability(
        1.0 / (gamma_factor(alpha, l) * float(l) ** (3.0 - alpha))
    )


def thm_1_1a_time(alpha: float, l: int) -> float:
    """Theorem 4.1(a) time scale ``mu * l^(alpha - 1)``."""
    return mu_factor(alpha, l) * characteristic_time(alpha, l)


def thm_1_1b_probability(alpha: float, l: int, t: float) -> float:
    """Theorem 4.1(b) upper bound ``P(tau <= t) = O(nu mu t^2 / l^(alpha+1))``.

    Valid for ``l <= t = O(l^(alpha-1) / nu)``: early hits are
    quadratically unlikely in ``t``.
    """
    if regime(alpha) is not Regime.SUPERDIFFUSIVE:
        raise ValueError(f"Theorem 1.1 needs alpha in (2, 3), got {alpha}")
    bound = (
        nu_factor(alpha, l)
        * mu_factor(alpha, l)
        * t**2
        / float(l) ** (alpha + 1.0)
    )
    return _clip_probability(bound)


def thm_1_1c_probability(alpha: float, l: int) -> float:
    """Theorem 4.1(c) upper bound ``P(tau < inf) = O(mu log l / l^(3-alpha))``."""
    if regime(alpha) is not Regime.SUPERDIFFUSIVE:
        raise ValueError(f"Theorem 1.1 needs alpha in (2, 3), got {alpha}")
    return _clip_probability(
        mu_factor(alpha, l) * math.log(l) / float(l) ** (3.0 - alpha)
    )


# --------------------------------------------------------------------------
# Theorem 1.2 / 4.3 -- single walk, diffusive alpha in [3, inf)
# --------------------------------------------------------------------------


def thm_1_2a_probability(l: int) -> float:
    """Theorem 1.2(a) lower bound ``P(tau = O(l^2 log^2 l)) >= 1/log^4 l``."""
    return _clip_probability(1.0 / math.log(l) ** 4)


def thm_1_2a_time(l: int) -> float:
    """Theorem 1.2(a) time scale ``l^2 log^2 l``."""
    return float(l) ** 2 * math.log(l) ** 2


def thm_1_2b_probability(l: int, t: float) -> float:
    """Theorem 1.2(b) upper bound ``P(tau <= t) = O(t^2 log l / l^4)``."""
    return _clip_probability(t**2 * math.log(l) / float(l) ** 4)


# --------------------------------------------------------------------------
# Theorem 1.3 / 5.1 / 5.2 -- single walk, ballistic alpha in (1, 2]
# --------------------------------------------------------------------------


def thm_1_3a_probability(alpha: float, l: int) -> float:
    """Theorem 1.3(a) lower bound ``P(tau = O(l)) >= 1/(mu l)``.

    (Theorem 5.1 uses ``mu = min(log l, 1/(2 - alpha))``; Theorem 5.2,
    the ``alpha = 2`` case, has ``mu = log l``.)
    """
    if regime(alpha) is not Regime.BALLISTIC:
        raise ValueError(f"Theorem 1.3 needs alpha in (1, 2], got {alpha}")
    return _clip_probability(1.0 / (_ballistic_mu(alpha, l) * float(l)))


def thm_1_3b_probability(alpha: float, l: int) -> float:
    """Theorem 1.3(b) upper bound ``P(tau < inf) = O(mu log l / l)``."""
    if regime(alpha) is not Regime.BALLISTIC:
        raise ValueError(f"Theorem 1.3 needs alpha in (1, 2], got {alpha}")
    return _clip_probability(_ballistic_mu(alpha, l) * math.log(l) / float(l))


def _ballistic_mu(alpha: float, l: int) -> float:
    log_l = math.log(l)
    if alpha == 2.0:
        return log_l
    return min(log_l, 1.0 / (2.0 - alpha))


# --------------------------------------------------------------------------
# Theorems 1.5 / 1.6 and corollaries -- parallel hitting times
# --------------------------------------------------------------------------


def cor_1_4_probability(alpha: float, l: int, k: int) -> float:
    """Corollary 1.4: ``P(tau_k = O(l^(alpha-1))) >= 1 - exp(-k / (l^(3-alpha) log^2 l))``."""
    if regime(alpha) is not Regime.SUPERDIFFUSIVE:
        raise ValueError(f"Corollary 1.4 needs alpha in (2, 3), got {alpha}")
    rate = k / (float(l) ** (3.0 - alpha) * math.log(l) ** 2)
    return _clip_probability(1.0 - math.exp(-rate))


def thm_1_5_parallel_time(k: int, l: int) -> float:
    """Theorem 1.5(a) deadline ``(l^2 / k) log^6 l`` (plus the ``l`` floor).

    Eq. (1) of the paper: with the tuned exponent,
    ``tau_k = O((l^2/k) log^6 l + l)`` w.h.p.
    """
    return (float(l) ** 2 / k) * math.log(l) ** 6 + float(l)


def thm_1_6_parallel_time(k: int, l: int) -> float:
    """Theorem 1.6 deadline ``(l^2/k) log^7 l + l log^3 l`` (Eq. 2)."""
    return (float(l) ** 2 / k) * math.log(l) ** 7 + float(l) * math.log(l) ** 3


def cor_4_2b_slowdown(alpha: float, k: int, l: int) -> float:
    """Corollary 4.2(b): lower bound scale for over-shooting the exponent.

    For ``alpha* < alpha < 3``, with probability ``1 - o(1)`` the parallel
    hitting time exceeds ``(l^2/k) l^((alpha - alpha*)/2) / log^4 l`` --
    i.e. every constant over-shoot costs a polynomial factor.
    """
    alpha_star = 3.0 - math.log(k) / math.log(l)
    if not alpha > alpha_star:
        raise ValueError("Corollary 4.2(b) applies to alpha above alpha*")
    return (
        (float(l) ** 2 / k)
        * float(l) ** ((alpha - alpha_star) / 2.0)
        / math.log(l) ** 4
    )


def cor_4_2c_hit_probability(alpha: float, k: int, l: int) -> float:
    """Corollary 4.2(c): ``P(tau_k < inf) = O(log^2 l / l^(alpha* - alpha))``.

    Under-shooting the exponent (``alpha <= alpha*``) leaves the target
    unfound *forever*, with probability ``1 - O(log^2 l / l^(alpha*-alpha))``.
    """
    alpha_star = 3.0 - math.log(k) / math.log(l)
    if not alpha <= alpha_star:
        raise ValueError("Corollary 4.2(c) applies to alpha at most alpha*")
    return _clip_probability(
        math.log(l) ** 2 / float(l) ** (alpha_star - alpha)
    )


def cor_5_3_required_k(l: int) -> float:
    """Corollary 5.3(a): ballistic walks need ``k = omega(l log^2 l)``."""
    return float(l) * math.log(l) ** 2


# --------------------------------------------------------------------------
# Scaling exponents (what log-log fits should recover)
# --------------------------------------------------------------------------


def predicted_hit_probability_slope(alpha: float) -> float:
    """d log P(hit within the characteristic time) / d log l.

    Super-diffusive: ``-(3 - alpha)`` (Theorem 1.1(a));
    ballistic: ``-1`` (Theorem 1.3(a));
    diffusive: ``0`` (Theorem 1.2(a) is flat up to polylogs).
    """
    reg = regime(alpha)
    if reg is Regime.SUPERDIFFUSIVE:
        return -(3.0 - alpha)
    if reg is Regime.BALLISTIC:
        return -1.0
    return 0.0


def predicted_early_time_slope() -> float:
    """d log P(tau <= t) / d log t at early times: 2 in every regime.

    Theorems 1.1(b), 1.2(b): the probability of hitting well before the
    characteristic time decays quadratically with the deadline.
    """
    return 2.0


def msd_exponent(alpha: float) -> float:
    """Predicted growth exponent of the typical displacement of a walk.

    After ``t`` steps a Levy walk's displacement scales as ``t`` in the
    ballistic regime, ``t^(1/(alpha-1))`` in the super-diffusive regime
    (the first ``Theta(l^(alpha-1))`` steps stay inside radius
    ``~ l polylog``, Section 1.2.1), and ``t^(1/2)`` in the diffusive
    regime.
    """
    reg = regime(alpha)
    if reg is Regime.BALLISTIC:
        return 1.0
    if reg is Regime.SUPERDIFFUSIVE:
        return 1.0 / (alpha - 1.0)
    return 0.5
