"""Calibrating the theorems' hidden constants from measurements.

The paper's bounds are asymptotic: ``P(tau <= t_l) = Omega(1/(gamma
l^(3-alpha)))`` says nothing about the constant in front.  A reproduction
can do more: fit the constant.  :class:`CalibratedPowerLaw` pairs a
theorem's predicted exponent with a prefactor estimated from measured
``(l, probability)`` points, yielding a *quantitative* predictor usable
for planning (e.g. sizing Monte-Carlo runs via
:mod:`repro.analysis.sequential`) and for spotting drift when the code
changes.

Fitting with the exponent *pinned to the theorem's value* is deliberate:
the free-slope fit (analysis.scaling) answers "is the exponent right?",
while the pinned fit answers "given the theorem, what is the constant?"
-- the residual spread of the pinned fit then quantifies how much of the
measurement the theorem's polynomial part explains.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class CalibratedPowerLaw:
    """``y ~ C x^exponent`` with the exponent fixed by theory."""

    exponent: float
    prefactor: float
    log_residual_std: float
    n_points: int

    def predict(self, x: float) -> float:
        """Point prediction at ``x``."""
        return self.prefactor * x**self.exponent

    def prediction_interval(self, x: float, z: float = 1.96) -> tuple[float, float]:
        """Multiplicative interval from the log-residual spread."""
        center = self.predict(x)
        spread = math.exp(z * self.log_residual_std)
        return (center / spread, center * spread)

    def explains(self, x: float, y: float, z: float = 2.576) -> bool:
        """Does the calibrated law account for the observation ``(x, y)``?"""
        low, high = self.prediction_interval(x, z)
        return low <= y <= high


def calibrate_power_law(
    xs: Sequence[float], ys: Sequence[float], exponent: float
) -> CalibratedPowerLaw:
    """Fit only the prefactor of ``y = C x^exponent`` (exponent pinned).

    The maximum-likelihood ``C`` under log-normal residuals is the
    geometric mean of ``y / x^exponent``.
    """
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("xs and ys must be 1-d arrays of equal length")
    if x.size < 1:
        raise ValueError("need at least one point")
    if np.any(x <= 0) or np.any(y <= 0):
        raise ValueError("calibration needs strictly positive data")
    log_ratio = np.log(y) - exponent * np.log(x)
    log_prefactor = float(log_ratio.mean())
    residual_std = float(log_ratio.std(ddof=1)) if x.size > 1 else 0.0
    return CalibratedPowerLaw(
        exponent=exponent,
        prefactor=math.exp(log_prefactor),
        log_residual_std=residual_std,
        n_points=int(x.size),
    )
