"""Finite-horizon choices for estimating the paper's asymptotic quantities.

Statements like Theorem 1.1(c) ("the probability that ``tau < inf`` ...")
cannot be observed directly in a finite simulation.  This module
centralizes the horizon policy: for each regime it returns a step budget
at which the *remaining* hit probability beyond the horizon is
provably lower-order, so that censored estimates are faithful stand-ins.

Rationale per regime (all from the paper):

* super-diffusive (Theorem 1.1(a) vs (c)): the hitting probability is
  essentially maximized within ``Theta(l^(alpha-1))`` steps -- running
  longer gains at most a polylog factor.  We use
  ``budget_factor * mu * l^(alpha-1)``.
* diffusive (Theorem 1.2(a)): ``O(l^2 log^2 l)`` steps reach the
  ``1/polylog`` plateau.
* ballistic (Theorem 1.3(a) vs (b)): ``O(l)`` steps capture all but a
  polylog factor of the total (finite-horizon = infinite-horizon shape).
"""

from __future__ import annotations

import math

from repro.core.exponents import Regime, mu_factor, regime


def characteristic_horizon(alpha: float, l: int, budget_factor: float = 4.0) -> int:
    """Steps after which the hit probability has plateaued (per regime)."""
    if l < 2:
        raise ValueError(f"target distance must be at least 2, got {l}")
    reg = regime(alpha)
    if reg is Regime.BALLISTIC:
        scale = float(l)
    elif reg is Regime.SUPERDIFFUSIVE:
        scale = mu_factor(alpha, l) * float(l) ** (alpha - 1.0)
    else:
        scale = float(l) ** 2 * math.log(l) ** 2
    return max(l, int(math.ceil(budget_factor * scale)))


def early_time_grid(alpha: float, l: int, n_points: int = 5) -> list[int]:
    """Geometric grid of deadlines ``t`` inside Theorem (b)'s window.

    Theorems 1.1(b)/1.2(b) hold for ``l <= t << characteristic time``; we
    return ``n_points`` geometrically spaced deadlines spanning that
    window (endpoints pulled in by a factor 2 for safety).
    """
    low = float(l)
    high = characteristic_horizon(alpha, l, budget_factor=1.0) / 2.0
    if high <= low:
        return [int(low)]
    ratio = (high / low) ** (1.0 / max(n_points - 1, 1))
    return sorted({int(round(low * ratio**j)) for j in range(n_points)})


def parallel_horizon(k: int, l: int, budget_factor: float = 8.0) -> int:
    """Deadline for parallel-search experiments: ``~ budget * (l^2/k + l)``.

    A small multiple of the universal lower bound ``l^2/k + l`` plus
    polylog headroom; the tuned strategies of Theorems 1.5/1.6 finish
    within it at our scales (their polylog factors are theoretical
    worst-cases with constant 1 and are far above observed times).
    """
    if k < 1 or l < 2:
        raise ValueError("need k >= 1 and l >= 2")
    base = float(l) ** 2 / k + float(l)
    return int(math.ceil(budget_factor * base * max(1.0, math.log(l))))
