"""Log-log scaling fits -- the tool that turns theorems into checks.

The paper's bounds are polynomial laws with polylog corrections:
``P(hit) ~ l^(-(3-alpha))``, ``P(tau <= t) ~ t^2``, displacement
``~ t^(1/(alpha-1))``, parallel time ``~ l^2/k``.  Each experiment fits a
line to ``(log x, log y)`` pairs and compares the slope (with its
standard error) against the predicted exponent; polylog corrections bend
these plots only slightly at our scales and are absorbed into the stated
tolerance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class PowerLawFit:
    """Result of an OLS fit of ``log y = slope * log x + intercept``."""

    slope: float
    intercept: float
    stderr: float
    r_squared: float
    n_points: int

    @property
    def prefactor(self) -> float:
        """``exp(intercept)``: the fitted constant of ``y = C x^slope``."""
        return math.exp(self.intercept)

    def slope_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Normal-approximation confidence interval for the slope."""
        return (self.slope - z * self.stderr, self.slope + z * self.stderr)

    def compatible_with(self, exponent: float, tolerance: float, z: float = 1.96) -> bool:
        """True if ``exponent`` is within tolerance of the slope interval.

        ``tolerance`` is additive slack for polylog corrections on top of
        the statistical interval.
        """
        low, high = self.slope_interval(z)
        return low - tolerance <= exponent <= high + tolerance

    def __str__(self) -> str:
        return (
            f"slope {self.slope:.3f} +- {self.stderr:.3f} "
            f"(R^2 {self.r_squared:.3f}, n={self.n_points})"
        )


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> PowerLawFit:
    """OLS fit of ``y = C x^s`` on log-log axes.

    Points with non-positive ``x`` or ``y`` are rejected (they indicate an
    estimation failure upstream, e.g. a zero-hit cell that should have
    been dropped or re-run with more trials).
    """
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("xs and ys must be 1-d arrays of equal length")
    if np.any(x <= 0) or np.any(y <= 0):
        raise ValueError("power-law fits need strictly positive data")
    if x.size < 2:
        raise ValueError("need at least two points to fit a slope")
    lx = np.log(x)
    ly = np.log(y)
    n = x.size
    mean_x = lx.mean()
    mean_y = ly.mean()
    sxx = float(np.sum((lx - mean_x) ** 2))
    if sxx == 0.0:
        raise ValueError("xs are all equal; slope is undefined")
    sxy = float(np.sum((lx - mean_x) * (ly - mean_y)))
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    residuals = ly - (slope * lx + intercept)
    ss_res = float(np.sum(residuals**2))
    ss_tot = float(np.sum((ly - mean_y) ** 2))
    r_squared = 1.0 if ss_tot == 0.0 else 1.0 - ss_res / ss_tot
    if n > 2:
        stderr = math.sqrt(ss_res / (n - 2) / sxx)
    else:
        stderr = 0.0
    return PowerLawFit(
        slope=slope,
        intercept=intercept,
        stderr=stderr,
        r_squared=r_squared,
        n_points=n,
    )


def geometric_grid(low: int, high: int, n_points: int) -> list[int]:
    """Distinct integers, geometrically spaced in ``[low, high]``.

    The standard x-grid for scaling experiments (log-log fits want evenly
    spaced points in log space).
    """
    if low < 1 or high < low:
        raise ValueError(f"need 1 <= low <= high, got [{low}, {high}]")
    if n_points < 1:
        raise ValueError(f"n_points must be positive, got {n_points}")
    if n_points == 1 or low == high:
        return [low]
    ratio = (high / low) ** (1.0 / (n_points - 1))
    values = sorted({int(round(low * ratio**j)) for j in range(n_points)})
    values[0] = low
    values[-1] = high
    return sorted(set(values))
