"""Discrete power-law exponent estimation (Clauset-Shalizi-Newman style).

Used by EXP-E4 to verify that the implemented jump law really has the
tail of Eq. (4): given samples of the jump distance, the maximum
likelihood estimate of the Zipf exponent should recover the ``alpha``
that was plugged in, and the Kolmogorov-Smirnov distance to the exact
law should vanish with the sample size.

The estimator is the exact discrete MLE: for i.i.d. samples ``x_1..x_n``
from ``P(X = i) ∝ i^(-alpha)`` (``i >= x_min``), the log-likelihood is
``-alpha * sum(log x_j) - n * log zeta(alpha, x_min)``, maximized
numerically over ``alpha``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import optimize, special


@dataclass(frozen=True)
class PowerLawMLE:
    """Fitted discrete power law."""

    alpha: float
    x_min: int
    n_samples: int
    ks_distance: float

    def __str__(self) -> str:
        return (
            f"alpha_hat {self.alpha:.3f} (x_min={self.x_min}, "
            f"n={self.n_samples}, KS {self.ks_distance:.4f})"
        )


def _negative_log_likelihood(alpha: float, log_sum: float, n: int, x_min: int) -> float:
    if alpha <= 1.0:
        return float("inf")
    return alpha * log_sum + n * math.log(float(special.zeta(alpha, x_min)))


def fit_discrete_power_law(
    samples: np.ndarray,
    x_min: int = 1,
    alpha_bracket: tuple[float, float] = (1.01, 12.0),
) -> PowerLawMLE:
    """Maximum-likelihood Zipf exponent of ``samples >= x_min``.

    Samples below ``x_min`` are discarded (Eq. (3)'s lazy mass at 0 must
    be excluded with ``x_min = 1``).
    """
    samples = np.asarray(samples)
    tail = samples[samples >= x_min].astype(float)
    n = int(tail.size)
    if n < 10:
        raise ValueError(f"need at least 10 tail samples, got {n}")
    log_sum = float(np.sum(np.log(tail)))
    result = optimize.minimize_scalar(
        _negative_log_likelihood,
        bounds=alpha_bracket,
        args=(log_sum, n, x_min),
        method="bounded",
    )
    alpha_hat = float(result.x)
    ks = ks_distance_to_zipf(tail.astype(np.int64), alpha_hat, x_min)
    return PowerLawMLE(alpha=alpha_hat, x_min=x_min, n_samples=n, ks_distance=ks)


def ks_distance_to_zipf(samples: np.ndarray, alpha: float, x_min: int = 1) -> float:
    """Kolmogorov-Smirnov distance between samples and the exact Zipf law."""
    samples = np.asarray(samples)
    tail = np.sort(samples[samples >= x_min])
    n = tail.size
    if n == 0:
        raise ValueError("no samples at or above x_min")
    values, counts = np.unique(tail, return_counts=True)
    empirical_cdf = np.cumsum(counts) / n
    mass = float(special.zeta(alpha, x_min))
    model_cdf = 1.0 - special.zeta(alpha, values.astype(float) + 1.0) / mass
    return float(np.max(np.abs(empirical_cdf - model_cdf)))


def tail_exponent_from_survival(
    samples: np.ndarray, grid: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Empirical survival ``P(X >= g)`` on a grid (for Eq. (4) slope fits).

    Returns ``(grid_kept, survival)`` keeping only grid points with a
    non-zero survival estimate.
    """
    samples = np.asarray(samples)
    grid = np.asarray(grid)
    survival = np.array([(samples >= g).mean() for g in grid], dtype=float)
    keep = survival > 0
    return grid[keep], survival[keep]
