"""Streaming (single-pass) statistics for chunk-at-a-time estimation.

The chunked runner produces results incrementally, one chunk at a time,
and the convergence monitor (:mod:`repro.telemetry.convergence`) must
answer "has the estimate converged?" *between* chunks without keeping the
raw samples around.  Everything here is therefore O(1) memory per update
(the proportion keeps its per-batch history -- a few ints per chunk -- so
drift between early and late chunks stays checkable):

* :class:`StreamingMoments` -- Welford's online mean/variance;
* :class:`StreamingProportion` -- success counts with a running Wilson
  interval and relative half-width (the sequential-stopping criterion);
* :class:`RunningMedian` -- exact median over all values seen so far
  (chunk counts are small, so an insertion-sorted list is fine);
* :func:`success_drift_z` -- two-proportion z statistic between the first
  and second half of a batch history (detects non-stationary success
  rates: a bug in seeding, a horizon effect, a bad resume).

Stdlib + the estimators module only: no scipy, so the runner can import
this without dragging the analysis stack's heavier dependencies in.
"""

from __future__ import annotations

import math
from bisect import insort
from typing import List, Optional, Tuple

from repro.analysis.estimators import ProportionEstimate, wilson_interval


class StreamingMoments:
    """Welford's online algorithm: mean and variance in one pass.

    Numerically stable for long streams (no sum-of-squares catastrophic
    cancellation), O(1) state.
    """

    __slots__ = ("n", "mean", "_m2")

    def __init__(self) -> None:
        self.n = 0
        self.mean = 0.0
        self._m2 = 0.0

    def push(self, value: float) -> None:
        self.n += 1
        delta = value - self.mean
        self.mean += delta / self.n
        self._m2 += delta * (value - self.mean)

    @property
    def variance(self) -> float:
        """Unbiased sample variance (NaN until two values are seen)."""
        if self.n < 2:
            return float("nan")
        return self._m2 / (self.n - 1)

    @property
    def std(self) -> float:
        variance = self.variance
        return math.sqrt(variance) if variance == variance else float("nan")


class RunningMedian:
    """Exact running median via an insertion-sorted list.

    The monitor feeds it one value per *chunk* (tens to thousands of
    values), so O(n) insertion is cheaper than a two-heap scheme would
    ever need to be here.
    """

    __slots__ = ("_values",)

    def __init__(self) -> None:
        self._values: List[float] = []

    def push(self, value: float) -> None:
        insort(self._values, float(value))

    @property
    def n(self) -> int:
        return len(self._values)

    @property
    def median(self) -> Optional[float]:
        values = self._values
        if not values:
            return None
        mid = len(values) // 2
        if len(values) % 2:
            return values[mid]
        return 0.5 * (values[mid - 1] + values[mid])


class StreamingProportion:
    """A binomial proportion accumulated batch-by-batch.

    Each ``update(successes, trials)`` folds one chunk's counts in; the
    running Wilson interval and its relative half-width -- the quantity
    ``--stop-when-ci`` thresholds -- are recomputed from the totals, so
    the estimate is exactly what a single-shot run over the merged sample
    would report.
    """

    __slots__ = ("successes", "trials", "batches")

    def __init__(self) -> None:
        self.successes = 0
        self.trials = 0
        #: Per-batch ``(successes, trials)`` history, in arrival order.
        self.batches: List[Tuple[int, int]] = []

    def update(self, successes: int, trials: int) -> None:
        successes = int(successes)
        trials = int(trials)
        if trials < 0:
            raise ValueError(f"trials must be non-negative, got {trials}")
        if not 0 <= successes <= trials:
            raise ValueError(f"successes {successes} out of range [0, {trials}]")
        self.successes += successes
        self.trials += trials
        self.batches.append((successes, trials))

    @property
    def estimate(self) -> ProportionEstimate:
        if self.trials == 0:
            raise ValueError("no trials observed yet")
        return wilson_interval(self.successes, self.trials)

    @property
    def half_width(self) -> float:
        estimate = self.estimate
        return 0.5 * (estimate.high - estimate.low)

    @property
    def rel_half_width(self) -> float:
        """Half-width relative to the point estimate (``inf`` at p = 0).

        Zero observed successes give no scale to be relative to, so the
        sequential stopping rule can never fire on an all-failure stream
        -- the conservative behaviour when estimating tiny probabilities.
        """
        estimate = self.estimate
        if estimate.point <= 0.0:
            return float("inf")
        return 0.5 * (estimate.high - estimate.low) / estimate.point


def success_drift_z(batches: List[Tuple[int, int]]) -> float:
    """Two-proportion z between the first and second half of a history.

    A chunked run with a fixed task should produce exchangeable chunks;
    a large |z| between early and late chunks flags non-stationarity
    (mis-seeded resume, environment drift, a horizon-dependent bug).
    Computed inline (pooled standard error) so this module stays
    scipy-free; callers compare |z| against a threshold instead of a
    p-value.
    """
    if len(batches) < 2:
        return 0.0
    mid = len(batches) // 2
    s_a = sum(s for s, _ in batches[:mid])
    n_a = sum(n for _, n in batches[:mid])
    s_b = sum(s for s, _ in batches[mid:])
    n_b = sum(n for _, n in batches[mid:])
    if n_a == 0 or n_b == 0:
        return 0.0
    pooled = (s_a + s_b) / (n_a + n_b)
    se = math.sqrt(pooled * (1.0 - pooled) * (1.0 / n_a + 1.0 / n_b))
    if se == 0.0:
        return 0.0
    return (s_a / n_a - s_b / n_b) / se
