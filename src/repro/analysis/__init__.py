"""Statistical estimation utilities for the Monte-Carlo experiments."""

from repro.analysis.comparisons import (
    ComparisonResult,
    mann_whitney_u,
    two_proportion_z,
)
from repro.analysis.estimators import (
    ProportionEstimate,
    bootstrap_interval,
    censored_median,
    censored_quantile,
    wilson_bounds,
    wilson_interval,
)
from repro.analysis.msd import DisplacementProfile, displacement_profile
from repro.analysis.powerlaw import (
    PowerLawMLE,
    fit_discrete_power_law,
    ks_distance_to_zipf,
    tail_exponent_from_survival,
)
from repro.analysis.scaling import PowerLawFit, fit_power_law, geometric_grid
from repro.analysis.sequential import (
    SequentialEstimate,
    estimate_probability_sequential,
    required_trials,
)
from repro.analysis.streaming import (
    RunningMedian,
    StreamingMoments,
    StreamingProportion,
    success_drift_z,
)
from repro.analysis.survival import SurvivalCurve, hitting_cdf

__all__ = [
    "ComparisonResult",
    "two_proportion_z",
    "mann_whitney_u",
    "ProportionEstimate",
    "wilson_interval",
    "wilson_bounds",
    "bootstrap_interval",
    "censored_median",
    "censored_quantile",
    "PowerLawFit",
    "fit_power_law",
    "geometric_grid",
    "PowerLawMLE",
    "fit_discrete_power_law",
    "ks_distance_to_zipf",
    "tail_exponent_from_survival",
    "SurvivalCurve",
    "hitting_cdf",
    "DisplacementProfile",
    "displacement_profile",
    "SequentialEstimate",
    "required_trials",
    "estimate_probability_sequential",
    "StreamingMoments",
    "StreamingProportion",
    "RunningMedian",
    "success_drift_z",
]
