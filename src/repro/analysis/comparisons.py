"""Two-sample comparisons used by the experiment checks.

Monte-Carlo experiments constantly ask "is strategy A really better than
strategy B, or is that noise?".  This module provides the two tests the
harnesses rely on:

* :func:`two_proportion_z` -- normal-approximation test for a difference
  of binomial proportions (hit probabilities);
* :func:`mann_whitney_u` -- rank test for stochastic ordering of two
  (possibly censored) hitting-time samples, with censored values treated
  as larger than every observed time (which is exactly their meaning).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.engine.results import CENSORED


@dataclass(frozen=True)
class ComparisonResult:
    """Outcome of a two-sample test."""

    statistic: float
    p_value: float
    #: Positive when the FIRST sample is larger (proportion) / tends to be
    #: larger (ranks).
    direction: float

    def significant(self, level: float = 0.01) -> bool:
        """Two-sided significance at the given level."""
        return self.p_value < level


def two_proportion_z(
    successes_a: int, trials_a: int, successes_b: int, trials_b: int
) -> ComparisonResult:
    """Two-sided two-proportion z-test (pooled standard error)."""
    if min(trials_a, trials_b) <= 0:
        raise ValueError("both samples need at least one trial")
    if not (0 <= successes_a <= trials_a and 0 <= successes_b <= trials_b):
        raise ValueError("successes out of range")
    p_a = successes_a / trials_a
    p_b = successes_b / trials_b
    pooled = (successes_a + successes_b) / (trials_a + trials_b)
    se = math.sqrt(pooled * (1.0 - pooled) * (1.0 / trials_a + 1.0 / trials_b))
    if se == 0.0:
        return ComparisonResult(statistic=0.0, p_value=1.0, direction=p_a - p_b)
    z = (p_a - p_b) / se
    p_value = 2.0 * (1.0 - stats.norm.cdf(abs(z)))
    return ComparisonResult(statistic=z, p_value=float(p_value), direction=p_a - p_b)


def mann_whitney_u(
    times_a: np.ndarray, times_b: np.ndarray, horizon: int
) -> ComparisonResult:
    """Rank test on censored hitting-time samples.

    Censored entries (``CENSORED``) are replaced by ``horizon + 1`` so
    that they rank above every observed time -- the correct stochastic
    treatment, since a censored walk is known to take longer than the
    horizon.  Ties (including between censored values) are handled by
    scipy's tie correction.
    """
    a = np.asarray(times_a, dtype=np.int64)
    b = np.asarray(times_b, dtype=np.int64)
    if a.size == 0 or b.size == 0:
        raise ValueError("both samples must be non-empty")
    a = np.where(a == CENSORED, horizon + 1, a)
    b = np.where(b == CENSORED, horizon + 1, b)
    result = stats.mannwhitneyu(a, b, alternative="two-sided")
    # Direction: positive when sample A tends to be LARGER (slower).
    expected = a.size * b.size / 2.0
    return ComparisonResult(
        statistic=float(result.statistic),
        p_value=float(result.pvalue),
        direction=float(result.statistic - expected),
    )
