"""Point estimates and confidence intervals for Monte-Carlo quantities.

The experiments estimate small probabilities (hitting probabilities decay
polynomially in ``l``), so interval quality at small counts matters: we
use the Wilson score interval for proportions, which behaves sensibly at
0 and n successes, and basic-percentile bootstrap for statistics of
censored hitting-time samples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.rng import SeedLike, as_generator

#: Two-sided z value for the default 95% confidence level.
_Z95 = 1.959963984540054


@dataclass(frozen=True)
class ProportionEstimate:
    """A binomial proportion with a Wilson score interval."""

    successes: int
    trials: int
    low: float
    high: float

    @property
    def point(self) -> float:
        """The plain empirical proportion."""
        return self.successes / self.trials if self.trials else float("nan")

    def __str__(self) -> str:
        return f"{self.point:.4g} [{self.low:.4g}, {self.high:.4g}]"


def wilson_interval(successes: int, trials: int, z: float = _Z95) -> ProportionEstimate:
    """Wilson score interval for a binomial proportion.

    Unlike the normal-approximation ("Wald") interval, the Wilson interval
    never leaves ``[0, 1]`` and stays informative when ``successes`` is 0
    or ``trials`` -- the typical situation when estimating the paper's
    ``1/poly(l)`` hitting probabilities.
    """
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    if not 0 <= successes <= trials:
        raise ValueError(f"successes {successes} out of range [0, {trials}]")
    p_hat = successes / trials
    z2 = z * z
    denominator = 1.0 + z2 / trials
    center = (p_hat + z2 / (2 * trials)) / denominator
    spread = (
        z
        * math.sqrt(p_hat * (1.0 - p_hat) / trials + z2 / (4.0 * trials * trials))
        / denominator
    )
    return ProportionEstimate(
        successes=successes,
        trials=trials,
        low=max(0.0, center - spread),
        high=min(1.0, center + spread),
    )


def wilson_bounds(
    successes: np.ndarray, trials: int, z: float = _Z95
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized Wilson bounds for an array of raw success *counts*.

    Returns ``(low, high)`` float arrays matching ``successes``'s shape.
    Operating on integer counts (not proportions rounded back to counts)
    keeps the interval exact: at ``n = 10^6`` trials a proportion stored
    as a float and re-multiplied can be off by several successes, which
    moves a small-p Wilson bound materially.
    """
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    counts = np.asarray(successes)
    if np.any(counts < 0) or np.any(counts > trials):
        raise ValueError(f"success counts out of range [0, {trials}]")
    p_hat = counts / trials
    z2 = z * z
    denominator = 1.0 + z2 / trials
    center = (p_hat + z2 / (2 * trials)) / denominator
    spread = (
        z
        * np.sqrt(p_hat * (1.0 - p_hat) / trials + z2 / (4.0 * trials * trials))
        / denominator
    )
    return np.maximum(0.0, center - spread), np.minimum(1.0, center + spread)


def bootstrap_interval(
    values: np.ndarray,
    statistic: Callable[[np.ndarray], float],
    n_resamples: int = 1000,
    confidence: float = 0.95,
    rng: SeedLike = None,
) -> tuple[float, float, float]:
    """Percentile bootstrap ``(point, low, high)`` for ``statistic(values)``."""
    values = np.asarray(values)
    if values.size == 0:
        raise ValueError("cannot bootstrap an empty sample")
    rng = as_generator(rng)
    point = float(statistic(values))
    stats = np.empty(n_resamples)
    for i in range(n_resamples):
        resample = values[rng.integers(0, values.size, size=values.size)]
        stats[i] = statistic(resample)
    tail = (1.0 - confidence) / 2.0
    low, high = np.quantile(stats, [tail, 1.0 - tail])
    return point, float(low), float(high)


def censored_median(times: np.ndarray, horizon: int) -> float:
    """Median hitting time of a censored sample (``-1`` marks censoring).

    Censored entries are treated as ``> horizon``; the returned value is
    ``inf`` when fewer than half the walks hit.  (The median, unlike the
    mean, is well defined as long as the hit fraction exceeds 1/2 --
    convenient because the paper's ``tau`` has infinite mean in most
    regimes.)
    """
    times = np.asarray(times)
    n = times.size
    if n == 0:
        raise ValueError("empty sample")
    hits = np.sort(times[times >= 0])
    median_rank = n // 2
    if hits.size <= median_rank:
        return float("inf")
    return float(hits[median_rank])


def censored_quantile(times: np.ndarray, q: float) -> float:
    """Quantile ``q`` of a censored sample (``inf`` when inside the censored mass)."""
    if not 0.0 < q < 1.0:
        raise ValueError(f"q must be in (0, 1), got {q}")
    times = np.asarray(times)
    n = times.size
    if n == 0:
        raise ValueError("empty sample")
    hits = np.sort(times[times >= 0])
    rank = int(math.floor(q * n))
    if hits.size <= rank:
        return float("inf")
    return float(hits[rank])
