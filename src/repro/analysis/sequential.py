"""Sample-size planning and sequential estimation for Monte-Carlo runs.

The paper's quantities are probabilities that decay polynomially in the
target distance, so fixed sample counts either waste work at small ``l``
or starve the estimates at large ``l``.  This module provides:

* :func:`required_trials` -- how many Bernoulli trials are needed so that
  the Wilson interval around an anticipated probability ``p`` has the
  requested *relative* half-width;
* :func:`estimate_probability_sequential` -- draw batches from a Bernoulli
  oracle until the Wilson interval is relatively tight (or a budget is
  exhausted), returning the estimate with its interval.

Both are used by full-scale experiment drivers; the bundled experiment
configs use pre-sized counts for reproducibility of the recorded tables.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.analysis.estimators import ProportionEstimate, wilson_interval

_Z95 = 1.959963984540054


def required_trials(
    anticipated_p: float, relative_half_width: float, z: float = _Z95
) -> int:
    """Trials needed for a CI half-width of ``relative_half_width * p``.

    Uses the normal approximation ``half_width ~ z sqrt(p(1-p)/n)``, i.e.
    ``n ~ z^2 (1-p) / (p eps^2)`` -- the familiar rule that estimating a
    small probability to fixed relative precision costs ``~ 1/p`` trials.
    """
    if not 0.0 < anticipated_p < 1.0:
        raise ValueError(f"anticipated p must be in (0, 1), got {anticipated_p}")
    if relative_half_width <= 0.0:
        raise ValueError(f"relative half-width must be positive, got {relative_half_width}")
    n = (z * z * (1.0 - anticipated_p)) / (
        anticipated_p * relative_half_width * relative_half_width
    )
    return max(1, int(math.ceil(n)))


@dataclass(frozen=True)
class SequentialEstimate:
    """Result of a sequential probability estimation."""

    estimate: ProportionEstimate
    trials_used: int
    converged: bool


def estimate_probability_sequential(
    run_batch: Callable[[int], int],
    batch_size: int,
    relative_half_width: float,
    max_trials: int,
    min_successes: int = 20,
) -> SequentialEstimate:
    """Sample until the Wilson interval is relatively tight.

    Parameters
    ----------
    run_batch:
        Callable mapping a batch size to the number of successes observed
        in that many fresh trials (e.g. a wrapper around the hitting
        engine).
    batch_size:
        Trials per round.
    relative_half_width:
        Stop once ``(high - low) / 2 <= relative_half_width * point`` and
        at least ``min_successes`` successes have been seen.
    max_trials:
        Hard budget; the returned flag says whether the precision target
        was met within it.
    """
    if batch_size < 1:
        raise ValueError(f"batch size must be positive, got {batch_size}")
    if max_trials < batch_size:
        raise ValueError("max_trials must be at least one batch")
    successes = 0
    trials = 0
    while trials < max_trials:
        this_batch = min(batch_size, max_trials - trials)
        successes += int(run_batch(this_batch))
        trials += this_batch
        if successes >= min_successes:
            estimate = wilson_interval(successes, trials)
            half_width = (estimate.high - estimate.low) / 2.0
            if estimate.point > 0 and half_width <= relative_half_width * estimate.point:
                return SequentialEstimate(
                    estimate=estimate, trials_used=trials, converged=True
                )
    return SequentialEstimate(
        estimate=wilson_interval(successes, trials),
        trials_used=trials,
        converged=False,
    )
