"""Displacement statistics of walks: the regime fingerprint.

Section 1.2.1 characterizes the three regimes by how fast a walk spreads:
ballistic walks move at unit speed (displacement ``~ t``), super-diffusive
walks spread as ``t^(1/(alpha-1))``, diffusive walks as ``sqrt(t)``.
EXP-MSD estimates the typical displacement at geometrically spaced times
and fits the growth exponent; :func:`repro.theory.predictions.msd_exponent`
provides the predicted value.

Heavy tails make the raw mean-squared displacement dominated by rare huge
jumps (it is even infinite for ``alpha <= 3`` at the jump level), so the
robust statistic used here is the *median* L1 displacement, optionally
alongside trimmed means.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Union

import numpy as np

from repro.distributions.base import JumpDistribution
from repro.engine.samplers import BatchJumpSampler
from repro.engine.visits import walk_displacement_snapshots
from repro.rng import SeedLike


@dataclass(frozen=True)
class DisplacementProfile:
    """Typical displacement of a walk at a grid of times."""

    steps: np.ndarray
    median_l1: np.ndarray
    mean_l1_trimmed: np.ndarray
    n_walks: int


def displacement_profile(
    jumps: Union[BatchJumpSampler, JumpDistribution],
    steps: Sequence[int],
    n_walks: int,
    rng: SeedLike = None,
    trim: float = 0.05,
) -> DisplacementProfile:
    """Estimate the typical L1 displacement of a Levy walk over time.

    Parameters
    ----------
    jumps:
        Jump law (shared or per-walk).
    steps:
        Snapshot step counts (e.g. a geometric grid).
    n_walks:
        Number of independent walks.
    trim:
        Fraction trimmed from *each* side for the trimmed mean.
    """
    if not 0.0 <= trim < 0.5:
        raise ValueError(f"trim must be in [0, 0.5), got {trim}")
    snaps = walk_displacement_snapshots(jumps, steps, n=n_walks, rng=rng)
    l1 = np.abs(snaps[:, :, 0]) + np.abs(snaps[:, :, 1])
    medians = np.median(l1, axis=1)
    sorted_l1 = np.sort(l1, axis=1)
    cut = int(trim * n_walks)
    trimmed = (
        sorted_l1[:, cut : n_walks - cut].mean(axis=1)
        if n_walks - 2 * cut > 0
        else medians
    )
    return DisplacementProfile(
        steps=np.asarray(sorted(int(s) for s in steps), dtype=np.int64),
        median_l1=medians.astype(float),
        mean_l1_trimmed=np.asarray(trimmed, dtype=float),
        n_walks=n_walks,
    )
