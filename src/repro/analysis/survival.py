"""Censored survival curves for hitting times.

Turns a censored :class:`~repro.engine.results.HittingTimeSample` into the
empirical CDF ``t -> P(tau <= t)`` (every walk shares one censoring
horizon, so the Kaplan-Meier estimator degenerates to the plain ECDF on
``[0, horizon]`` -- no walk leaves the risk set early).  The curves feed
the early-time bounds of Theorems 1.1(b)/1.2(b), which constrain exactly
this function.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.results import HittingTimeSample


@dataclass(frozen=True)
class SurvivalCurve:
    """Empirical hitting-time CDF evaluated on a step grid."""

    steps: np.ndarray
    probability: np.ndarray
    horizon: int
    n_walks: int

    def at(self, t: int) -> float:
        """``P(tau <= t)`` (step function, right-continuous)."""
        if t < 0:
            return 0.0
        if t > self.horizon:
            raise ValueError(f"t={t} beyond the observation horizon {self.horizon}")
        index = int(np.searchsorted(self.steps, t, side="right")) - 1
        return float(self.probability[index]) if index >= 0 else 0.0


def hitting_cdf(
    sample: HittingTimeSample, grid: np.ndarray | None = None
) -> SurvivalCurve:
    """Empirical CDF of a censored hitting-time sample.

    ``grid`` defaults to the distinct observed hitting times; pass an
    explicit grid (e.g. geometric in ``t``) to evaluate the curve at
    chosen deadlines.
    """
    hits = np.sort(sample.hit_times())
    if grid is None:
        steps = np.unique(hits)
    else:
        steps = np.asarray(sorted(set(int(g) for g in grid)), dtype=np.int64)
        if steps.size and steps[-1] > sample.horizon:
            raise ValueError("grid extends beyond the sample horizon")
    counts = np.searchsorted(hits, steps, side="right")
    probability = counts / sample.n
    return SurvivalCurve(
        steps=steps,
        probability=probability,
        horizon=sample.horizon,
        n_walks=sample.n,
    )
