"""Exponent-selection strategies for parallel Levy walk search.

A *strategy* decides which exponent each of the ``k`` walks uses.  The
paper analyses three families:

* a common fixed exponent (Theorems 1.1-1.5) -- optimal only when tuned
  to the unknown ``k`` and ``l``;
* the *oracle* choice ``alpha = alpha*(k, l) + 5 log log l / log l``
  (Theorem 1.5(a)), which requires knowing both ``k`` and ``l``;
* the paper's headline proposal (Theorem 1.6): every walk draws its own
  exponent **independently and uniformly at random from (2, 3)**, which
  needs neither ``k`` nor ``l`` and is within polylog factors of optimal
  for *all* target distances simultaneously.

Strategies only produce exponent vectors; the search itself lives in
:mod:`repro.core.search`.
"""

from __future__ import annotations

import abc
import math

import numpy as np

from repro.core.exponents import clamp_to_superdiffusive, optimal_exponent
from repro.rng import SeedLike, as_generator


class ExponentStrategy(abc.ABC):
    """Assigns an exponent to each of ``k`` walks."""

    #: Short machine-readable identifier (used in experiment tables).
    name: str = "strategy"

    @abc.abstractmethod
    def sample_exponents(self, k: int, rng: SeedLike = None) -> np.ndarray:
        """Return a float array of ``k`` exponents, one per walk."""

    def describe(self) -> str:
        """Human-readable one-liner for reports."""
        return self.name


class FixedExponentStrategy(ExponentStrategy):
    """Every walk uses the same exponent ``alpha`` (Theorems 1.1-1.5)."""

    def __init__(self, alpha: float) -> None:
        if alpha <= 1.0:
            raise ValueError(f"alpha must exceed 1 (Remark 3.5), got {alpha}")
        self.alpha = float(alpha)
        self.name = f"fixed(alpha={self.alpha:g})"

    def sample_exponents(self, k: int, rng: SeedLike = None) -> np.ndarray:
        return np.full(k, self.alpha)


def cauchy_strategy() -> FixedExponentStrategy:
    """All walks use ``alpha = 2`` -- the classical Levy-hypothesis pick.

    Section 2 recounts the line of work arguing ``alpha = 2`` (the Cauchy
    walk) is universally optimal; the paper's point is that in the
    parallel setting it is not.
    """
    strategy = FixedExponentStrategy(2.0)
    strategy.name = "cauchy(alpha=2)"
    return strategy


def diffusive_strategy() -> FixedExponentStrategy:
    """All walks use ``alpha = 3`` -- the boundary diffusive exponent."""
    strategy = FixedExponentStrategy(3.0)
    strategy.name = "diffusive(alpha=3)"
    return strategy


class UniformRandomExponentStrategy(ExponentStrategy):
    """The paper's randomized strategy (Theorem 1.6).

    Each walk's exponent is sampled independently and uniformly at random
    from the open interval ``(low, high)`` -- ``(2, 3)`` in the paper.
    Knowledge of neither ``k`` nor ``l`` is required, yet the parallel
    hitting time is ``O((l^2/k) log^7 l + l log^3 l)`` w.h.p. for every
    target distance ``l`` with ``k >= log^8 l``, which is optimal up to
    polylog factors among *all* strategies (even centralized ones).
    """

    def __init__(self, low: float = 2.0, high: float = 3.0) -> None:
        if not 1.0 < low < high:
            raise ValueError(f"need 1 < low < high, got ({low}, {high})")
        self.low = float(low)
        self.high = float(high)
        self.name = f"uniform-random({self.low:g},{self.high:g})"

    def sample_exponents(self, k: int, rng: SeedLike = None) -> np.ndarray:
        rng = as_generator(rng)
        return rng.uniform(self.low, self.high, size=k)


class OracleExponentStrategy(ExponentStrategy):
    """Theorem 1.5(a)'s choice: needs to know both ``k`` and ``l``.

    All walks share ``alpha = alpha*(k, l) + shift * log log l / log l``,
    clamped into ``(2, 3)``.  Serves as the knows-everything reference the
    randomized strategy is measured against.

    The paper's shift constant is 5, but that value is asymptotic: at
    laptop-scale ``l`` (where ``log log l / log l ~ 0.3``) it pushes every
    exponent to the diffusive edge and erases the very ``alpha*``
    dependence the theorem is about.  The default ``shift_constant=1``
    keeps the theorem's "stay slightly above alpha*" intent while leaving
    the ``k``/``l`` dependence visible; pass ``shift_constant=5`` for the
    literal Theorem 1.5(a) exponent.
    """

    def __init__(self, target_distance: int, shift_constant: float = 1.0) -> None:
        if target_distance < 2:
            raise ValueError(
                f"target distance must be at least 2, got {target_distance}"
            )
        self.target_distance = int(target_distance)
        self.shift_constant = float(shift_constant)
        self.name = f"oracle(l={self.target_distance})"

    def exponent_for(self, k: int) -> float:
        """The common exponent the oracle assigns to ``k`` walks."""
        l = self.target_distance
        log_l = math.log(l)
        shift = self.shift_constant * math.log(max(log_l, math.e)) / log_l
        return clamp_to_superdiffusive(optimal_exponent(k, l) + shift)

    def sample_exponents(self, k: int, rng: SeedLike = None) -> np.ndarray:
        return np.full(k, self.exponent_for(k))
