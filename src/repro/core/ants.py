"""The ANTS problem and the paper's uniform solution (Sections 1.1, 1.2.4).

In the Ants-Nearby-Treasure-Search (ANTS) problem of Feinerman and Korman
[14], ``k`` identical probabilistic agents start at the same nest on Z^2
and search for an adversarially placed target at (unknown) distance ``l``.
Agents do not know ``k``, cannot communicate, and may receive ``b`` bits
of advice before the search starts; [14] shows the optimal expected search
time is ``Theta(l^2/k + l)`` with sufficient advice, and that *no* advice
(``b = 0``) forces a super-constant slowdown for deterministic-advice
schemes.

The paper's contribution to this problem (Section 1.2.4) is a *uniform*
algorithm -- independent of both ``k`` and ``l``, using zero advice:

    every agent performs a Levy walk whose exponent is sampled
    independently and uniformly at random from (2, 3).

By Theorem 1.6 the algorithm is Monte Carlo and finds the target w.h.p.
within ``O((l^2/k) log^7 l + l log^3 l)`` steps, i.e. within polylog
factors of the universal lower bound.  :class:`UniformANTSAlgorithm`
packages exactly that algorithm.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.search import ParallelLevySearch, SearchResult
from repro.core.strategies import UniformRandomExponentStrategy
from repro.engine.results import HittingTimeSample
from repro.rng import SeedLike

IntPoint = Tuple[int, int]


def universal_lower_bound(k: int, l: int) -> float:
    """The ``Omega(l^2/k + l)`` lower bound of [14] (paper Section 1.2.3).

    Any search strategy -- deterministic or randomized, centralized or not
    -- that does not know ``l`` within a constant factor needs
    ``Omega(l^2/k + l)`` steps with constant probability to find a target
    at distance ``l`` with ``k`` agents.
    """
    if k < 1:
        raise ValueError(f"k must be positive, got {k}")
    if l < 1:
        raise ValueError(f"l must be positive, got {l}")
    return max(float(l), float(l) * float(l) / float(k))


class UniformANTSAlgorithm:
    """Advice-free uniform ANTS search via random-exponent Levy walks.

    The agents are oblivious to ``k`` and ``l``; each one independently
    draws ``alpha ~ Uniform(2, 3)`` and runs a Levy walk until some agent
    steps on the target.  This is a thin, problem-framed wrapper around
    :class:`~repro.core.search.ParallelLevySearch` with the
    :class:`~repro.core.strategies.UniformRandomExponentStrategy`.
    """

    def __init__(self, k: int) -> None:
        self._search = ParallelLevySearch(
            k=k, strategy=UniformRandomExponentStrategy()
        )

    @property
    def k(self) -> int:
        """Number of agents."""
        return self._search.k

    def search(
        self,
        target: IntPoint,
        horizon: Optional[int] = None,
        rng: SeedLike = None,
    ) -> SearchResult:
        """Run the agents once against ``target``."""
        return self._search.find(target, horizon=horizon, rng=rng)

    def sample_search_times(
        self,
        target: IntPoint,
        n_runs: int,
        horizon: Optional[int] = None,
        rng: SeedLike = None,
    ) -> HittingTimeSample:
        """Monte-Carlo sample of the algorithm's parallel hitting time."""
        return self._search.sample_parallel_hitting_times(
            target, n_runs=n_runs, horizon=horizon, rng=rng
        )

    def competitive_ratio(self, observed_time: float, target_distance: int) -> float:
        """Observed time divided by the universal lower bound."""
        return observed_time / universal_lower_bound(self.k, target_distance)
