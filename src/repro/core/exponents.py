"""Exponent regimes and the optimal exponent ``alpha*`` (paper Section 1.2).

The paper's central quantitative finding is that for ``k`` parallel Levy
walks searching a target at distance ``l`` there is a *unique* optimal
exponent

    ``alpha*(k, l) = 3 - log k / log l``            (Theorem 1.5)

(up to an additive ``O(log log l / log l)`` term), lying strictly inside
the super-diffusive range ``(2, 3)`` whenever ``polylog l <= k <=
l polylog l``.  Deviating from ``alpha*`` by any constant ``eps`` costs a
``poly(l)`` factor (Corollary 4.2(b)) or leaves the target unfound forever
with probability ``1 - o(1)`` (Corollary 4.2(c)).

This module also defines the three qualitative regimes of a single walk
(Section 1.2.1) and the polylogarithmic correction factors ``mu``, ``nu``
and ``gamma`` that appear throughout Section 4's bounds.
"""

from __future__ import annotations

import enum
import math


class Regime(enum.Enum):
    """Qualitative behavior of a Levy walk by exponent (Section 1.2.1)."""

    #: ``alpha in (1, 2]``: unbounded mean jump length; the walk behaves
    #: like a straight walk in a random direction.
    BALLISTIC = "ballistic"
    #: ``alpha in (2, 3)``: bounded mean, unbounded variance; the regime
    #: containing every optimal exponent.
    SUPERDIFFUSIVE = "superdiffusive"
    #: ``alpha in [3, inf)``: bounded mean and (for ``alpha > 3``)
    #: variance; the walk behaves like a simple random walk.
    DIFFUSIVE = "diffusive"


def regime(alpha: float) -> Regime:
    """Classify exponent ``alpha`` into its regime.

    The threshold case ``alpha = 3`` is grouped with the diffusive regime,
    matching Theorem 1.2 which covers ``alpha in [3, inf)``.
    """
    if alpha <= 1.0:
        raise ValueError(f"alpha must exceed 1 (Remark 3.5), got {alpha}")
    if alpha <= 2.0:
        return Regime.BALLISTIC
    if alpha < 3.0:
        return Regime.SUPERDIFFUSIVE
    return Regime.DIFFUSIVE


def optimal_exponent(k: int, l: int) -> float:
    """The optimal common exponent ``alpha* = 3 - log k / log l``.

    Valid (and inside ``(2, 3)``) for ``1 < k < l``; outside that window
    the formula still returns the paper's expression, whose clamped value
    reflects Theorem 1.5(b, c): every ``alpha >= 3`` is optimal when ``k``
    is polylogarithmic, and every ``alpha in (1, 2]`` is optimal when
    ``k >= l polylog l``.
    """
    if k < 1:
        raise ValueError(f"k must be positive, got {k}")
    if l < 2:
        raise ValueError(f"target distance must be at least 2, got {l}")
    return 3.0 - math.log(k) / math.log(l)


def theorem_1_5_exponent(k: int, l: int) -> float:
    """The exponent used by Theorem 1.5(a): ``alpha* + 5 log log l / log l``.

    The small positive shift keeps the parallel walks on the
    "finite-hitting-time" side of the threshold (compare Corollary 4.2(a)
    with 4.2(c): exponents *below* ``alpha*`` leave the target unfound
    almost surely).
    """
    log_l = math.log(l)
    shift = 5.0 * math.log(max(log_l, math.e)) / log_l
    return optimal_exponent(k, l) + shift


def clamp_to_superdiffusive(alpha: float, margin: float = 1e-3) -> float:
    """Clamp an exponent into the open interval ``(2, 3)``."""
    return min(max(alpha, 2.0 + margin), 3.0 - margin)


def mu_factor(alpha: float, l: int) -> float:
    """``mu = min(log l, 1/(alpha - 2))`` (Theorem 4.1 and Lemma 3.10)."""
    log_l = math.log(l)
    if alpha == 2.0:
        return log_l
    return min(log_l, abs(1.0 / (2.0 - alpha)))


def nu_factor(alpha: float, l: int) -> float:
    """``nu = min(log l, 1/(3 - alpha))`` (Theorem 4.1 and Lemma 4.7)."""
    log_l = math.log(l)
    if alpha == 3.0:
        return log_l
    return min(log_l, abs(1.0 / (3.0 - alpha)))


def gamma_factor(alpha: float, l: int) -> float:
    """``gamma = (log l)^(2/(alpha-1)) / (3 - alpha)^2`` (Theorem 4.1(a))."""
    if not 2.0 < alpha < 3.0:
        raise ValueError(f"gamma is defined for alpha in (2, 3), got {alpha}")
    log_l = math.log(l)
    return log_l ** (2.0 / (alpha - 1.0)) / (3.0 - alpha) ** 2


def characteristic_time(alpha: float, l: int) -> float:
    """``t_l = l^(alpha - 1)``: the time scale of Theorem 1.1(a).

    In the super-diffusive regime, ``Theta(l^(alpha-1))`` steps maximize
    the hitting probability (within polylog factors); fewer steps reduce
    it super-linearly, and more steps gain at most a polylog factor.
    Outside ``(2, 3)`` the relevant scales are ``l^2`` (diffusive) and
    ``l`` (ballistic); this function returns those when applicable.
    """
    if l < 2:
        raise ValueError(f"target distance must be at least 2, got {l}")
    reg = regime(alpha)
    if reg is Regime.BALLISTIC:
        return float(l)
    if reg is Regime.DIFFUSIVE:
        return float(l) ** 2
    return float(l) ** (alpha - 1.0)
