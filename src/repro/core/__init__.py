"""The paper's primary contribution: parallel Levy walk search on Z^2.

* :mod:`repro.core.exponents` -- the optimal exponent ``alpha*(k, l)``,
  regime classification, and the polylog correction factors;
* :mod:`repro.core.strategies` -- exponent-selection strategies, including
  the randomized uniform-(2,3) strategy of Theorem 1.6;
* :mod:`repro.core.search` -- :class:`ParallelLevySearch`, the public
  search API;
* :mod:`repro.core.ants` -- the uniform, advice-free ANTS algorithm.
"""

from repro.core.ants import UniformANTSAlgorithm, universal_lower_bound
from repro.core.exponents import (
    Regime,
    characteristic_time,
    clamp_to_superdiffusive,
    gamma_factor,
    mu_factor,
    nu_factor,
    optimal_exponent,
    regime,
    theorem_1_5_exponent,
)
from repro.core.search import ParallelLevySearch, SearchResult
from repro.core.strategies import (
    ExponentStrategy,
    FixedExponentStrategy,
    OracleExponentStrategy,
    UniformRandomExponentStrategy,
    cauchy_strategy,
    diffusive_strategy,
)

__all__ = [
    "Regime",
    "regime",
    "optimal_exponent",
    "theorem_1_5_exponent",
    "clamp_to_superdiffusive",
    "characteristic_time",
    "mu_factor",
    "nu_factor",
    "gamma_factor",
    "ExponentStrategy",
    "FixedExponentStrategy",
    "UniformRandomExponentStrategy",
    "OracleExponentStrategy",
    "cauchy_strategy",
    "diffusive_strategy",
    "ParallelLevySearch",
    "SearchResult",
    "UniformANTSAlgorithm",
    "universal_lower_bound",
]
