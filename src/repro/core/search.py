"""Parallel Levy walk search -- the package's headline public API.

``k`` independent Levy walks start simultaneously at the origin; the
*parallel hitting time* for a target ``u*`` is the first step at which
some walk visits it (Definition 3.7).  :class:`ParallelLevySearch` wires
an :class:`~repro.core.strategies.ExponentStrategy` to the vectorized
engine and returns censored parallel hitting-time samples.

Typical use::

    from repro.core import ParallelLevySearch, UniformRandomExponentStrategy

    search = ParallelLevySearch(k=64, strategy=UniformRandomExponentStrategy())
    result = search.find(target=(40, 30), rng=0)
    if result.found:
        print(f"target found at step {result.time} by a walk "
              f"with exponent {result.finder_exponent:.3f}")
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.strategies import ExponentStrategy, UniformRandomExponentStrategy
from repro.engine.results import HittingTimeSample, group_minimum
from repro.engine.samplers import HeterogeneousZetaSampler
from repro.engine.vectorized import walk_hitting_times
from repro.lattice.points import l1_norm
from repro.rng import SeedLike, as_generator

IntPoint = Tuple[int, int]

#: Default horizon multiplier: simulate until ``c * (l^2 + l)`` steps.  The
#: universal lower bound is ``Omega(l^2/k + l)`` and every strategy the
#: paper considers succeeds w.h.p. within ``l^2 polylog(l)`` steps, so a
#: small multiple of ``l^2`` is a generous default deadline for ``k >= 1``.
DEFAULT_HORIZON_FACTOR = 4


@dataclass(frozen=True)
class SearchResult:
    """Outcome of one parallel search run.

    Attributes
    ----------
    found:
        Whether some walk visited the target by the deadline.
    time:
        The parallel hitting time (None when not found).
    finder_index:
        Index of the earliest-hitting walk (None when not found).
    finder_exponent:
        That walk's Levy exponent (None when not found).
    k:
        Number of walks.
    horizon:
        The step deadline used.
    exponents:
        The full per-walk exponent vector the strategy produced.
    """

    found: bool
    time: Optional[int]
    finder_index: Optional[int]
    finder_exponent: Optional[float]
    k: int
    horizon: int
    exponents: np.ndarray


class ParallelLevySearch:
    """``k`` parallel Levy walks searching Z^2 from the origin.

    Parameters
    ----------
    k:
        Number of walks ("ants").
    strategy:
        Exponent-selection strategy; defaults to the paper's randomized
        uniform-(2,3) strategy (Theorem 1.6), which needs no knowledge of
        ``k`` or of the target distance.
    detect_during_jump:
        The paper's walks detect the target at every lattice step,
        mid-jump included (True).  False gives the intermittent model of
        [18], where the target is only noticed at jump endpoints.
    """

    def __init__(
        self,
        k: int,
        strategy: Optional[ExponentStrategy] = None,
        detect_during_jump: bool = True,
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be positive, got {k}")
        self.k = int(k)
        self.strategy = strategy or UniformRandomExponentStrategy()
        self.detect_during_jump = bool(detect_during_jump)

    def default_horizon(self, target: IntPoint) -> int:
        """A generous default deadline for a given target."""
        distance = max(int(l1_norm(target)), 1)
        return DEFAULT_HORIZON_FACTOR * (distance * distance + distance)

    def find(
        self,
        target: IntPoint,
        horizon: Optional[int] = None,
        rng: SeedLike = None,
    ) -> SearchResult:
        """Run one parallel search and report the earliest hit."""
        rng = as_generator(rng)
        if horizon is None:
            horizon = self.default_horizon(target)
        exponents = np.asarray(self.strategy.sample_exponents(self.k, rng), dtype=float)
        sample = walk_hitting_times(
            HeterogeneousZetaSampler(exponents),
            target=target,
            horizon=horizon,
            n=self.k,
            rng=rng,
            detect_during_jump=self.detect_during_jump,
        )
        if sample.n_hits == 0:
            return SearchResult(
                found=False,
                time=None,
                finder_index=None,
                finder_exponent=None,
                k=self.k,
                horizon=horizon,
                exponents=exponents,
            )
        masked = np.where(sample.hit_mask, sample.times, np.iinfo(np.int64).max)
        finder = int(np.argmin(masked))
        return SearchResult(
            found=True,
            time=int(sample.times[finder]),
            finder_index=finder,
            finder_exponent=float(exponents[finder]),
            k=self.k,
            horizon=horizon,
            exponents=exponents,
        )

    def sample_parallel_hitting_times(
        self,
        target: IntPoint,
        n_runs: int,
        horizon: Optional[int] = None,
        rng: SeedLike = None,
    ) -> HittingTimeSample:
        """Censored sample of ``n_runs`` i.i.d. parallel hitting times.

        Simulates ``n_runs * k`` walks in one vectorized batch (fresh
        exponents per run, as the strategy dictates) and reduces each
        consecutive block of ``k`` walks to its minimum.
        """
        rng = as_generator(rng)
        if horizon is None:
            horizon = self.default_horizon(target)
        total = n_runs * self.k
        exponents = np.concatenate(
            [
                np.asarray(self.strategy.sample_exponents(self.k, rng), dtype=float)
                for _ in range(n_runs)
            ]
        )
        sample = walk_hitting_times(
            HeterogeneousZetaSampler(exponents),
            target=target,
            horizon=horizon,
            n=total,
            rng=rng,
            detect_during_jump=self.detect_during_jump,
        )
        return HittingTimeSample(
            times=group_minimum(sample.times, self.k), horizon=horizon
        )
