"""One-dimensional Levy walks on Z -- the classical comparison case.

Section 1.1 of the paper: the optimality of the Cauchy exponent
``alpha = 2`` for sparse-target search "was formally shown just for
one-dimensional spaces [4], and does not carry over to higher
dimensions".  This subpackage implements the 1D Levy walk so the
repository can exhibit the contrast directly (experiment EXT-1D).
"""

from repro.line.walk_1d import line_walk_hitting_times

__all__ = ["line_walk_hitting_times"]
