"""The classical 1D Levy foraging model of Viswanathan et al. [38].

Section 1.1 of the paper: "Levy walks with exponent parameter alpha = 2
are optimal for searching sparse randomly distributed revisitable targets
[38].  However, these results were formally shown just for
one-dimensional spaces [4]".  This module implements that 1D model so the
repository can reproduce the classical alpha = 2 peak and contrast it
with the paper's k- and l-dependent optimum on Z^2 (experiment EXT-1D).

Model (the non-destructive variant of [38], discretized to Z):

* target sites sit at every multiple of ``spacing`` (a sparse regular
  array -- the deterministic stand-in for [38]'s Poisson field);
* the searcher starts on a target;
* each flight draws a length ``d`` from Eq. (3)'s law and a direction;
  if a target site lies within the traversed interval, the flight
  *truncates* there (the searcher stops at the first target it meets,
  counts an encounter, and starts the next flight from it); otherwise
  the full ``d`` steps are walked;
* the efficiency is encounters per step.

[4] (Buldyrev et al.) prove the efficiency of this process is maximized
at ``alpha = 2`` as the targets become sparse; because targets are
revisitable and flights restart from a target, neither the ballistic nor
the diffusive extreme can win -- the scale-free Cauchy mix does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.distributions.base import JumpDistribution
from repro.engine.samplers import BatchJumpSampler
from repro.engine.vectorized import _as_sampler
from repro.rng import SeedLike, as_generator


@dataclass(frozen=True)
class EncounterStatistics:
    """Outcome of a 1D foraging run."""

    encounters_per_walker: np.ndarray
    steps_per_walker: np.ndarray

    @property
    def efficiency(self) -> float:
        """Pooled encounters per step (the eta of [38])."""
        total_steps = float(self.steps_per_walker.sum())
        if total_steps == 0:
            return float("nan")
        return float(self.encounters_per_walker.sum()) / total_steps


def line_encounter_rate(
    jumps: Union[BatchJumpSampler, JumpDistribution],
    spacing: int,
    total_steps: int,
    n_walkers: int,
    rng: SeedLike = None,
) -> EncounterStatistics:
    """Run [38]'s 1D foraging process and return encounter statistics.

    Each of ``n_walkers`` independent searchers starts on a target site
    and forages for (at least) ``total_steps`` steps; flights truncate at
    the first target site they traverse.
    """
    sampler = _as_sampler(jumps)
    rng = as_generator(rng)
    if spacing < 2:
        raise ValueError(f"spacing must be at least 2, got {spacing}")
    if total_steps < 1:
        raise ValueError(f"total_steps must be positive, got {total_steps}")
    if n_walkers < 1:
        raise ValueError(f"n_walkers must be positive, got {n_walkers}")
    pos = np.zeros(n_walkers, dtype=np.int64)
    steps = np.zeros(n_walkers, dtype=np.int64)
    encounters = np.zeros(n_walkers, dtype=np.int64)
    indices = np.arange(n_walkers)
    while True:
        active = indices[steps < total_steps]
        if active.size == 0:
            break
        d = sampler.sample(rng, active)
        direction = rng.integers(0, 2, size=active.size) * 2 - 1
        u = pos[active]
        # First target site strictly ahead in the flight's direction:
        # right: the smallest multiple of `spacing` > u;
        # left: the largest multiple of `spacing` < u.
        right_target = (np.floor_divide(u, spacing) + 1) * spacing
        left_target = (np.floor_divide(u - 1, spacing)) * spacing
        ahead = np.where(direction > 0, right_target, left_target)
        gap = np.abs(ahead - u)
        truncated = (d >= gap) & (d > 0)
        travelled = np.where(truncated, gap, d)
        pos[active] = np.where(truncated, ahead, u + direction * d)
        steps[active] += np.maximum(travelled, 1)
        encounters[active] += truncated.astype(np.int64)
    sampler.flush_jump_accounting()
    return EncounterStatistics(
        encounters_per_walker=encounters, steps_per_walker=steps
    )
