"""Vectorized Levy walks on the integer line Z.

The 1D analogue of Definition 3.4: at each phase the walk draws a length
``d`` from Eq. (3)'s law, a uniform direction (left/right), and then moves
``d`` unit steps that way, visiting every integer in between.  On the line
the "direct path" is trivial -- the closed interval between the endpoints
-- so exact mid-jump hit detection is a pair of comparisons: the phase
from ``u`` to ``v`` visits target ``w`` iff ``w`` lies between ``u``
(exclusive) and ``v`` (inclusive), at step ``|w - u|`` of the phase.

This engine exists for the EXT-1D contrast experiment: on Z, a single
Levy walk's search efficiency peaks at the Cauchy exponent ``alpha = 2``
for every target distance ([4]'s classical result, qualitatively), while
on Z^2 the parallel optimum ``alpha*(k, l)`` moves with ``k`` and ``l`` --
the paper's motivating observation.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.distributions.base import JumpDistribution
from repro.engine.results import CENSORED, HittingTimeSample
from repro.engine.samplers import BatchJumpSampler
from repro.engine.vectorized import _as_sampler
from repro.rng import SeedLike, as_generator


def line_walk_hitting_times(
    jumps: Union[BatchJumpSampler, JumpDistribution],
    target: int,
    horizon: int,
    n_walks: int,
    rng: SeedLike = None,
    start: int = 0,
) -> HittingTimeSample:
    """Hitting times of ``n_walks`` independent 1D Levy walks for ``target``.

    Exact semantics: a phase of length ``d`` from ``u`` lasts ``d`` steps
    (1 step when ``d = 0``) and visits ``u +- 1 .. u +- d``; the hit is
    recorded at the step the walk first stands on ``target``.
    """
    sampler = _as_sampler(jumps)
    rng = as_generator(rng)
    if horizon < 0:
        raise ValueError(f"horizon must be non-negative, got {horizon}")
    if n_walks < 1:
        raise ValueError(f"n_walks must be positive, got {n_walks}")
    target = int(target)
    times = np.full(n_walks, CENSORED, dtype=np.int64)
    if int(start) == target:
        return HittingTimeSample(times=np.zeros(n_walks, np.int64), horizon=horizon)
    pos = np.full(n_walks, int(start), dtype=np.int64)
    elapsed = np.zeros(n_walks, dtype=np.int64)
    active = np.arange(n_walks)
    while active.size:
        d = sampler.sample(rng, active)
        direction = rng.integers(0, 2, size=active.size) * 2 - 1
        step = d * direction
        u = pos[active]
        v = u + step
        # The phase visits the half-open integer interval (u, v].
        m = np.abs(target - u)
        hit = (m <= d) & (np.sign(target - u) == np.sign(step))
        hit_step = elapsed[active] + m
        success = hit & (hit_step <= horizon)
        times[active[success]] = hit_step[success]
        elapsed[active] += np.maximum(d, 1)
        pos[active] = v
        survivors = ~success & (elapsed[active] < horizon)
        active = active[survivors]
    sampler.flush_jump_accounting()
    return HittingTimeSample(times=times, horizon=horizon)
