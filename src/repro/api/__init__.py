"""The stable import surface: ``from repro.api import ...``.

Everything re-exported here is supported API with deprecation-shimmed
evolution; internal module paths (``repro.engine.vectorized`` etc.)
remain importable but may reorganise between versions.  The facade
groups the five layers a study touches:

* **distributions** -- jump laws (Eq. (3) zeta law and friends);
* **engines** -- vectorized censored Monte-Carlo samplers.  All engines
  share one calling convention: structural arguments first
  (``jumps``, ``target``/``nodes``/``center``/``targets``), then
  keyword-only ``horizon`` (time budget), ``n`` (sample size), ``rng``;
* **results** -- censored samples and parallel-group reductions;
* **execution** -- the fault-tolerant chunked :class:`Runner` and its
  picklable tasks;
* **sweeps** -- declarative grids (:class:`SweepSpec`) scheduled over
  one shared runner pool (:func:`run_sweep`);
* **search** -- the paper's headline parallel-search objects;
* **queries** -- the v2 typed estimation contract
  (:class:`EstimateRequest` -> :class:`EstimateResponse` via
  :func:`estimate`, cached/theory/simulation tiers, shared with the
  ``repro-experiment serve`` daemon; :func:`warm_estimates` surfaces
  already-known answers from the result cache and run registry).

Typical use::

    from repro.api import SweepSpec, run_sweep, Runner

    spec = SweepSpec(
        axes={"alpha": (2.2, 2.6), "l": (32, 64)},
        n=2_000,
        horizon=lambda p: p["l"] ** 2,
        k=16,
        n_groups=400,
    )
    result = run_sweep(spec, seed=0, runner=Runner(workers=4))
    print(result.summary_table().render())
"""

from repro.api.query import (
    EstimateRequest,
    EstimateResponse,
    estimate,
    warm_estimates,
)
from repro.core.ants import universal_lower_bound
from repro.core.exponents import optimal_exponent
from repro.core.search import ParallelLevySearch, SearchResult
from repro.core.strategies import (
    FixedExponentStrategy,
    OracleExponentStrategy,
    UniformRandomExponentStrategy,
)
from repro.distributions.base import JumpDistribution
from repro.distributions.geometric import GeometricJumpDistribution
from repro.distributions.quantized import QuantizedZetaJumpDistribution
from repro.distributions.unit import UnitJumpDistribution
from repro.distributions.zeta import ZetaJumpDistribution
from repro.engine.ball_targets import ball_hitting_times
from repro.engine.multi_target import ForagingResult, multi_target_search
from repro.engine.reference import reference_hitting_times
from repro.engine.results import (
    CENSORED,
    HittingTimeSample,
    bootstrap_parallel,
    group_minimum,
)
from repro.engine.trajectories import walk_trajectories
from repro.engine.vectorized import flight_hitting_times, walk_hitting_times
from repro.runner import (
    CCRWTask,
    ChunkPlan,
    ForagingTask,
    HittingTimeTask,
    Job,
    RunOutcome,
    Runner,
    RunnerState,
    trap_signals,
)
from repro.sweep import GridPoint, PointResult, SweepResult, SweepSpec, run_sweep

__all__ = [
    # distributions
    "GeometricJumpDistribution",
    "JumpDistribution",
    "QuantizedZetaJumpDistribution",
    "UnitJumpDistribution",
    "ZetaJumpDistribution",
    # engines
    "ball_hitting_times",
    "flight_hitting_times",
    "multi_target_search",
    "reference_hitting_times",
    "walk_hitting_times",
    "walk_trajectories",
    # results
    "CENSORED",
    "ForagingResult",
    "HittingTimeSample",
    "bootstrap_parallel",
    "group_minimum",
    # execution
    "CCRWTask",
    "ChunkPlan",
    "ForagingTask",
    "HittingTimeTask",
    "Job",
    "RunOutcome",
    "Runner",
    "RunnerState",
    "trap_signals",
    # sweeps
    "GridPoint",
    "PointResult",
    "SweepResult",
    "SweepSpec",
    "run_sweep",
    # search
    "FixedExponentStrategy",
    "OracleExponentStrategy",
    "ParallelLevySearch",
    "SearchResult",
    "UniformRandomExponentStrategy",
    "optimal_exponent",
    "universal_lower_bound",
    # queries
    "EstimateRequest",
    "EstimateResponse",
    "estimate",
    "warm_estimates",
]
