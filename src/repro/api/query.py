"""The v2 typed query layer: ``P(hit by t)?`` as a first-class request.

The paper's headline quantity -- the probability that ``k`` parallel
Levy walkers with exponent ``alpha`` hit a target at distance ``l``
within ``t`` steps -- is exactly what the estimation service
(``repro-experiment serve``, :mod:`repro.serve`) answers.  This module
is the single typed contract shared by three call paths:

* the **in-process** convenience :func:`estimate` (no daemon needed);
* the **daemon** (:mod:`repro.serve.daemon`), which coalesces
  concurrent requests and streams progressive refinements;
* the **client** (:mod:`repro.serve.client` / the ``query``
  subcommand), which speaks the same dataclasses over NDJSON.

Callers describe *what* they want -- ``(law, l, k, horizon, target
CI)`` -- never raw engine kwargs (Guinard--Korman, arXiv:2003.13041,
and Levernier et al., arXiv:2002.00278, frame their queries the same
way: hitting probabilities and optimal exponents across target
scalings, not sampler plumbing).  Answers come in three tiers,
cheapest first:

1. ``cache`` -- a persistent result-cache hit (or a run-registry
   warm start via :meth:`repro.telemetry.registry.RunRegistry.lookup`);
2. ``theory`` -- an instant closed-form surrogate from
   :mod:`repro.theory.predictions`, marked ``approximate=True``
   (hidden constants are set to 1, so it is an order-of-magnitude
   answer, not an estimate);
3. ``simulation`` -- Monte-Carlo refinement through the existing
   Runner/telemetry stack until the requested CI is met.

The canonical join key is :func:`repro.telemetry.registry.estimate_key`
(PR 8's spelling), so cache entries, registry records, and live
queries all join on one string.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Mapping, Optional

from repro.telemetry.registry import (
    DEFAULT_REGISTRY_DIR,
    RunRegistry,
    estimate_key,
)

#: Bumped when the request/response wire layout changes incompatibly.
#: Readers ignore unknown fields and default missing ones, so additive
#: growth does not need a bump.
QUERY_SCHEMA_VERSION = 1

#: Answer tiers, cheapest first (docs/serve.md).
TIERS = ("cache", "theory", "simulation")


def canonical_key(
    alpha: float,
    l: int,
    k: int = 1,
    horizon: Optional[int] = None,
    detect: bool = True,
) -> str:
    """The canonical cache/registry join key for one estimate query.

    Built with :func:`repro.telemetry.registry.estimate_key` so the
    spelling (sorted ``k=v`` pairs, ``%g`` floats) matches registry
    records and ``runs compare`` keys exactly.  ``horizon=None``
    resolves to the paper's default budget ``l**2``.
    """
    if horizon is None:
        horizon = int(l) ** 2
    return estimate_key(
        {
            "alpha": float(alpha),
            "l": int(l),
            "k": int(k),
            "horizon": int(horizon),
            "detect": bool(detect),
        }
    )


@dataclass(frozen=True)
class EstimateRequest:
    """One typed hitting-probability query.

    Parameters
    ----------
    alpha:
        Levy exponent of the jump law (Eq. (3) zeta law), ``> 1``.
    l:
        Target's Manhattan distance from the origin, ``>= 1``.
    k:
        Number of parallel walkers (``P(tau_k <= t)``); default 1.
    horizon:
        Step budget ``t``; ``None`` means the paper's ``l**2``.
    max_ci:
        Target *absolute* 95% Wilson half-width for the answer.
        ``None`` accepts any tier (a theory surrogate suffices).
    detect:
        ``True`` -- the paper's model, targets are detected mid-jump;
        ``False`` -- endpoint-only (intermittent) detection.
    """

    alpha: float
    l: int
    k: int = 1
    horizon: Optional[int] = None
    max_ci: Optional[float] = None
    detect: bool = True

    def __post_init__(self) -> None:
        if not self.alpha > 1.0:
            raise ValueError(f"alpha must exceed 1, got {self.alpha}")
        if self.l < 1:
            raise ValueError(f"l must be a positive distance, got {self.l}")
        if self.k < 1:
            raise ValueError(f"k must be a positive walker count, got {self.k}")
        if self.horizon is not None and self.horizon < 1:
            raise ValueError(f"horizon must be positive, got {self.horizon}")
        if self.max_ci is not None and not 0.0 < self.max_ci < 1.0:
            raise ValueError(f"max_ci must be in (0, 1), got {self.max_ci}")

    @property
    def resolved_horizon(self) -> int:
        """The step budget with the ``l**2`` default applied."""
        return int(self.horizon) if self.horizon is not None else int(self.l) ** 2

    @property
    def law(self) -> str:
        """The walk-family string registry records use (``"alpha=2.2"``)."""
        return estimate_key({"alpha": float(self.alpha)})

    @property
    def geometry(self) -> Dict[str, Any]:
        """The params filter for :meth:`RunRegistry.lookup`."""
        return {"l": int(self.l)}

    @property
    def key(self) -> str:
        """The canonical cache key (see :func:`canonical_key`)."""
        return canonical_key(
            self.alpha, self.l, k=self.k, horizon=self.horizon, detect=self.detect
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "alpha": self.alpha,
            "l": self.l,
            "k": self.k,
            "horizon": self.horizon,
            "max_ci": self.max_ci,
            "detect": self.detect,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "EstimateRequest":
        """Build a request from a wire/JSON mapping (unknown keys ignored)."""
        if not isinstance(data, Mapping):
            raise ValueError(f"estimate request is not an object: {data!r}")
        if "alpha" not in data or "l" not in data:
            raise ValueError("estimate request needs at least 'alpha' and 'l'")
        horizon = data.get("horizon")
        max_ci = data.get("max_ci")
        return cls(
            alpha=float(data["alpha"]),
            l=int(data["l"]),
            k=int(data.get("k", 1)),
            horizon=int(horizon) if horizon is not None else None,
            max_ci=float(max_ci) if max_ci is not None else None,
            detect=bool(data.get("detect", True)),
        )


@dataclass(frozen=True)
class EstimateResponse:
    """One answer (possibly one of several progressive ones) to a query.

    ``tier`` names which layer produced it (:data:`TIERS`);
    ``approximate`` marks theory surrogates whose hidden constants are
    set to 1; ``final=False`` marks a progressive response with a
    tighter one still to come; ``seq`` orders the progressive stream.
    ``p``/``low``/``high`` are in *k-walker* space (``1-(1-p1)^k``
    applied monotonically to the single-walk Wilson interval), so the
    same request always reads the same way regardless of tier.
    """

    key: str
    tier: str
    p: float
    low: float
    high: float
    trials: int = 0
    successes: int = 0
    approximate: bool = False
    final: bool = True
    converged: bool = False
    seq: int = 0
    source: str = ""

    @property
    def half_width(self) -> float:
        return 0.5 * (self.high - self.low)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "key": self.key,
            "tier": self.tier,
            "p": round(float(self.p), 8),
            "low": round(float(self.low), 8),
            "high": round(float(self.high), 8),
            "half_width": round(self.half_width, 8),
            "trials": int(self.trials),
            "successes": int(self.successes),
            "approximate": bool(self.approximate),
            "final": bool(self.final),
            "converged": bool(self.converged),
            "seq": int(self.seq),
            "source": str(self.source),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "EstimateResponse":
        """Rehydrate from a wire/JSONL mapping (tolerant, like RunRecord)."""
        if not isinstance(data, Mapping):
            raise ValueError(f"estimate response is not an object: {data!r}")
        key = data.get("key")
        if not isinstance(key, str) or not key:
            raise ValueError("estimate response has no key")
        return cls(
            key=key,
            tier=str(data.get("tier", "simulation")),
            p=float(data.get("p", 0.0)),
            low=float(data.get("low", 0.0)),
            high=float(data.get("high", 1.0)),
            trials=int(data.get("trials", 0)),
            successes=int(data.get("successes", 0)),
            approximate=bool(data.get("approximate", False)),
            final=bool(data.get("final", True)),
            converged=bool(data.get("converged", False)),
            seq=int(data.get("seq", 0)),
            source=str(data.get("source", "")),
        )


# ----------------------------------------------------------- k-walker algebra


def parallel_probability(p_single: float, k: int) -> float:
    """``P(tau_k <= t) = 1 - (1 - p1)^k`` for independent walkers."""
    p_single = max(0.0, min(1.0, float(p_single)))
    if k <= 1:
        return p_single
    return 1.0 - (1.0 - p_single) ** int(k)


def parallel_interval(
    successes: int, trials: int, k: int
) -> Dict[str, float]:
    """The k-walker Wilson interval from single-walk counts.

    The map ``p -> 1-(1-p)^k`` is monotone increasing, so applying it
    to the single-walk interval endpoints yields a valid (conservative)
    interval for the k-walker probability.
    """
    from repro.analysis.estimators import wilson_interval

    single = wilson_interval(int(successes), int(trials))
    return {
        "p": parallel_probability(single.point, k),
        "low": parallel_probability(single.low, k),
        "high": parallel_probability(single.high, k),
    }


# ----------------------------------------------------------- theory surrogate


def theory_estimate(request: EstimateRequest, seq: int = 0) -> EstimateResponse:
    """The instant closed-form tier: theorem bounds with constants at 1.

    Picks the single-walk bound for the request's regime
    (:mod:`repro.theory.predictions`), lifts it to ``k`` walkers, and
    wraps it in a deliberately wide interval (``[p/4, min(1, 4p)]``)
    because asymptotic statements with hidden constants are
    order-of-magnitude answers.  Always ``approximate=True``.
    """
    from repro.core.exponents import Regime, regime
    from repro.theory import predictions

    alpha, l, t = request.alpha, int(request.l), float(request.resolved_horizon)
    reg = regime(alpha)
    if reg is Regime.SUPERDIFFUSIVE:
        if t >= predictions.thm_1_1a_time(alpha, l):
            p1 = predictions.thm_1_1a_probability(alpha, l)
        else:
            p1 = predictions.thm_1_1b_probability(alpha, l, t)
    elif reg is Regime.BALLISTIC:
        p1 = predictions.thm_1_3a_probability(alpha, l) if t >= l else 0.0
    else:  # diffusive, alpha >= 3
        if t >= predictions.thm_1_2a_time(l):
            p1 = predictions.thm_1_2a_probability(l)
        else:
            p1 = predictions.thm_1_2b_probability(l, t)
    p = parallel_probability(p1, request.k)
    return EstimateResponse(
        key=request.key,
        tier="theory",
        p=p,
        low=max(0.0, 0.25 * p),
        high=min(1.0, 4.0 * p) if p > 0 else 1.0 / max(2.0, t),
        approximate=True,
        final=request.max_ci is None,
        seq=seq,
        source="repro.theory",
    )


# --------------------------------------------------------------- warm starts


def _key_token(name: str, value: Any) -> str:
    """One ``name=value`` token in the canonical key spelling."""
    return estimate_key({name: value})


def response_from_registry_estimate(
    row: Mapping[str, Any], request: EstimateRequest, source: str
) -> Optional[EstimateResponse]:
    """A cache-tier response from one registry estimate row, or None.

    The row must carry counts and a horizon matching the request; the
    single-walk Wilson interval is recomputed from the raw counts and
    lifted to ``k`` walkers (registry rows record per-walk Bernoulli
    samples regardless of their sweep's grouping ``k``).
    """
    trials = row.get("trials")
    successes = row.get("successes")
    if not isinstance(trials, int) or not isinstance(successes, int) or trials <= 0:
        return None
    if int(row.get("horizon", -1)) != request.resolved_horizon:
        return None
    params = row.get("params") or {}
    if params.get("detect", True) != request.detect:
        return None
    interval = parallel_interval(successes, trials, request.k)
    return EstimateResponse(
        key=request.key,
        tier="cache",
        trials=trials,
        successes=successes,
        final=True,
        converged=(
            request.max_ci is None
            or 0.5 * (interval["high"] - interval["low"]) <= request.max_ci
        ),
        source=source,
        **interval,
    )


def warm_estimates(
    law: Optional[str] = None,
    geometry: Optional[Mapping[str, Any]] = None,
    max_ci: Optional[float] = None,
    *,
    registry: Optional[RunRegistry] = None,
    registry_dir=None,
    cache=None,
) -> List[EstimateResponse]:
    """Every already-known answer matching a ``(law, geometry, CI)`` filter.

    The one public entry point over the two warm-start stores: the
    persistent result cache (:class:`repro.serve.cache.ResultCache`)
    and the run registry's :meth:`~RunRegistry.lookup` seam.  Returns
    cache-tier :class:`EstimateResponse` objects, cache entries first
    (they are exact served answers), then registry rows from the
    freshest adequate record; deduplicated by canonical key.
    """
    responses: List[EstimateResponse] = []
    seen = set()
    geometry_filter = {
        name: _key_token(name, value) for name, value in dict(geometry or {}).items()
    }
    if cache is not None:
        for entry in cache.entries():
            tokens = set(entry.key.split(" "))
            if law is not None and law not in tokens:
                continue
            if any(token not in tokens for token in geometry_filter.values()):
                continue
            if max_ci is not None and entry.half_width > max_ci:
                continue
            if entry.key not in seen:
                seen.add(entry.key)
                responses.append(entry)
    if registry is None:
        registry = RunRegistry(registry_dir or DEFAULT_REGISTRY_DIR)
    record = registry.lookup(law=law, geometry=geometry, max_ci=max_ci)
    if record is not None:
        geometry = dict(geometry or {})
        for row in record.estimates:
            if law is not None and row.get("law") != law:
                continue
            params = row.get("params") or {}
            if any(params.get(k) != v for k, v in geometry.items()):
                continue
            trials, successes = row.get("trials"), row.get("successes")
            if not isinstance(trials, int) or trials <= 0:
                continue
            if not isinstance(successes, int):
                continue
            half_width = row.get("half_width")
            if max_ci is not None and (
                not isinstance(half_width, (int, float)) or half_width > max_ci
            ):
                continue
            alpha = params.get("alpha")
            l = params.get("l")
            if not isinstance(alpha, (int, float)) or not isinstance(l, int):
                continue
            key = canonical_key(
                float(alpha),
                l,
                k=1,
                horizon=row.get("horizon"),
                detect=bool(params.get("detect", True)),
            )
            if key in seen:
                continue
            seen.add(key)
            interval = parallel_interval(successes, trials, 1)
            responses.append(
                EstimateResponse(
                    key=key,
                    tier="cache",
                    trials=trials,
                    successes=successes,
                    converged=True,
                    source=record.run_id,
                    **interval,
                )
            )
    return responses


# ------------------------------------------------------- the in-process path

#: Legacy engine-kwarg spelling -> unified request field.  Hitting-time
#: queries used to be phrased in raw engine kwargs; each spelling keeps
#: working for one release and emits exactly one DeprecationWarning per
#: call (the `_compat` contract, see repro.engine._compat).
_LEGACY_QUERY_SPELLINGS = {
    "detect_during_jump": "detect",
    "horizon_jumps": "horizon",
    "n_steps": "horizon",
}

#: Legacy sample-size spellings: accepted (they cap the simulation
#: budget) but deprecated -- the v2 contract asks for a CI, not an n.
_LEGACY_BUDGET_SPELLINGS = ("n_walks", "n")


def _apply_legacy_spellings(fields: Dict[str, Any]) -> Optional[int]:
    """Remap legacy engine-kwarg spellings in place; returns a walk cap.

    Emits one combined :class:`DeprecationWarning` listing every legacy
    aspect of the call, mirroring :func:`repro.engine._compat.legacy_api`.
    """
    complaints = []
    for old, new in _LEGACY_QUERY_SPELLINGS.items():
        if old in fields:
            if new in fields:
                raise TypeError(
                    f"estimate() got both legacy {old!r} and its replacement {new!r}"
                )
            fields[new] = fields.pop(old)
            complaints.append(f"keyword {old!r} (use {new!r})")
    max_walks: Optional[int] = None
    for old in _LEGACY_BUDGET_SPELLINGS:
        if old in fields:
            max_walks = int(fields.pop(old))
            complaints.append(
                f"keyword {old!r} (state a CI target via 'max_ci' instead; "
                "treated as a simulation budget cap)"
            )
    if "target" in fields:
        x, y = fields.pop("target")
        fields["l"] = abs(int(x)) + abs(int(y))
        complaints.append("keyword 'target' (use the distance 'l')")
    if complaints:
        warnings.warn(
            "estimate: legacy engine-kwarg spelling -- "
            + "; ".join(complaints)
            + ".  The v2 query contract is EstimateRequest"
            "(alpha, l, k=1, horizon=None, max_ci=None, detect=True).",
            DeprecationWarning,
            stacklevel=3,
        )
    return max_walks


def estimate(
    request: Optional[EstimateRequest] = None,
    *,
    refine: Optional[bool] = None,
    cache=None,
    cache_dir=None,
    registry: Optional[RunRegistry] = None,
    registry_dir=None,
    on_update=None,
    seed: Optional[int] = None,
    round_walks: int = 2_000,
    max_walks: int = 200_000,
    **fields,
) -> EstimateResponse:
    """Answer one hitting-probability query in process (no daemon).

    The same three-tier resolution the daemon performs, synchronously:
    persistent-cache/registry hit, else theory surrogate, else (when
    ``max_ci`` asks for a real CI and ``refine`` is not False)
    Monte-Carlo refinement through the Runner until the CI is met or
    ``max_walks`` is exhausted.  Progressive refinement responses go to
    ``on_update`` (one per Runner ``estimate`` event) when provided.

    Accepts either an :class:`EstimateRequest` or its fields as
    keywords.  Legacy engine-kwarg spellings (``n_walks``,
    ``detect_during_jump``, ``target``, ...) still work for one release
    and emit one :class:`DeprecationWarning` per call.
    """
    legacy_cap = None
    if request is None:
        legacy_cap = _apply_legacy_spellings(fields)
        request = EstimateRequest(**fields)
    elif fields:
        raise TypeError(
            "estimate() takes either a request or field keywords, not both: "
            + ", ".join(sorted(fields))
        )
    if legacy_cap is not None:
        max_walks = legacy_cap
    if refine is None:
        refine = request.max_ci is not None

    if cache is None:
        from repro.serve.cache import ResultCache

        cache = ResultCache(cache_dir) if cache_dir is not None else ResultCache()
    hit = cache.get(request.key, max_ci=request.max_ci)
    if hit is not None:
        return replace(hit, tier="cache", final=True)

    if registry is None:
        registry = RunRegistry(registry_dir or DEFAULT_REGISTRY_DIR)
    record = registry.lookup(
        law=request.law, geometry=request.geometry, max_ci=request.max_ci
    )
    if record is not None:
        for row in record.estimates:
            if row.get("law") != request.law:
                continue
            params = row.get("params") or {}
            if any(params.get(k) != v for k, v in request.geometry.items()):
                continue
            response = response_from_registry_estimate(row, request, record.run_id)
            if response is not None and (
                request.max_ci is None or response.half_width <= request.max_ci
            ):
                cache.put(response)
                return response

    surrogate = theory_estimate(request)
    if not refine:
        return replace(surrogate, final=True)
    if on_update is not None:
        on_update(surrogate)

    from repro.serve.refine import refine_estimate

    final = refine_estimate(
        request,
        publish=on_update,
        seed=seed,
        round_walks=round_walks,
        max_walks=max_walks,
        first_seq=surrogate.seq + 1,
    )
    cache.put(final)
    return final
