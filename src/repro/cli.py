"""Command-line entry point: run paper experiments from a terminal.

Installed as ``repro-experiment`` (see pyproject.toml)::

    repro-experiment list
    repro-experiment run EXP-T1.6 --scale small --seed 1
    repro-experiment run all --scale smoke --csv-dir results/
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.experiments.common import SCALES
from repro.experiments.registry import experiment_ids, run_experiment


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiment",
        description=(
            "Reproduction experiments for 'Search via Parallel Levy Walks "
            "on Z^2' (PODC 2021)."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("list", help="list experiment ids")
    runner = subparsers.add_parser("run", help="run one experiment (or 'all')")
    runner.add_argument("experiment", help="experiment id from 'list', or 'all'")
    runner.add_argument("--scale", choices=SCALES, default="small")
    runner.add_argument("--seed", type=int, default=0)
    runner.add_argument(
        "--csv-dir",
        type=Path,
        default=None,
        help="also dump every result table as CSV into this directory",
    )
    return parser


def _dump_csv(result, csv_dir: Path) -> None:
    csv_dir.mkdir(parents=True, exist_ok=True)
    safe_id = result.experiment_id.replace("/", "_").replace(".", "_")
    for index, table in enumerate(result.tables):
        table.to_csv(csv_dir / f"{safe_id}_table{index}.csv")


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        for experiment_id in experiment_ids():
            print(experiment_id)
        return 0
    targets = experiment_ids() if args.experiment == "all" else [args.experiment]
    all_passed = True
    for experiment_id in targets:
        result = run_experiment(experiment_id, scale=args.scale, seed=args.seed)
        print(result.render())
        print()
        if args.csv_dir is not None:
            _dump_csv(result, args.csv_dir)
        all_passed = all_passed and result.passed
    return 0 if all_passed else 1


if __name__ == "__main__":
    sys.exit(main())
