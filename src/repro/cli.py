"""Command-line entry point: run paper experiments from a terminal.

Installed as ``repro-experiment`` (see pyproject.toml)::

    repro-experiment list
    repro-experiment run EXP-T1.6 --scale small --seed 1
    repro-experiment run all --scale smoke --csv-dir results/
    repro-experiment run EXP-T1.1 --scale full \\
        --checkpoint-dir ckpt/ --chunks 32 --workers 4 --resume \\
        --max-seconds 3600 --stop-when-ci 0.1 \\
        --log-json events.jsonl --metrics-out metrics.json --progress
    repro-experiment report events.jsonl
    repro-experiment profile events.jsonl --diff baseline.jsonl
    repro-experiment watch events.jsonl
    repro-experiment bench-history BENCH_runner.json fresh.json \\
        --max-regression 25%

Telemetry (docs/observability.md): ``--log-json`` appends structured
JSONL events (run/chunk/retry/checkpoint/quarantine/deadline/signal,
plus per-chunk ``estimate`` events with running Wilson CIs and
``incident`` anomaly events), ``--metrics-out`` exports a
counters/gauges/histograms snapshot, ``--progress`` prints a live
heartbeat to stderr.  ``report`` renders an event log into chunk
timelines, estimate/retry/incident summaries, and throughput; ``watch``
follows a *growing* log live; ``--stop-when-ci`` enables sequential
stopping (finish early once the CI is tight -- a *converged* run, exit
0, distinct from a deadline-degraded one); ``bench-history`` diffs
committed ``BENCH_*.json`` snapshots against a fresh benchmark run.

Exit codes (documented in docs/runner.md):

* 0 -- every requested experiment ran and all checks passed (including
  runs that stopped early because their CI target converged);
* 1 -- at least one experiment failed its checks or raised;
* 2 -- usage error (e.g. unknown experiment id);
* 3 -- all checks passed but a walltime budget expired (or checkpointing
  fell back to degraded manifest-only mode under resource pressure), so
  some artefacts are partial (degraded);
* 4 -- at least one grid point was quarantined by the retry circuit
  breaker (a poison point kept failing; the rest of the grid completed);
* 130 -- interrupted by SIGINT/SIGTERM; completed chunks are checkpointed
  and a ``--resume`` rerun continues where this one stopped.

``chaos`` runs the self-validating fault-injection matrix from
:mod:`repro.runner.chaos` (docs/runner.md, "Failure model"): every fault
must end in a classified outcome with the documented exit code.
"""

from __future__ import annotations

import argparse
import sys
import time
import traceback
from pathlib import Path
from typing import Optional, Sequence

from repro.experiments.common import (
    SCALES,
    add_registry_arguments,
    add_runner_arguments,
    add_telemetry_arguments,
    finish_telemetry,
    register_run,
    run_accepts_runner,
    runner_from_args,
    telemetry_from_args,
)
from repro.experiments.registry import experiment_ids, get_experiment, run_experiment
from repro.reporting.table import Table

EXIT_OK = 0
EXIT_FAILED = 1
EXIT_USAGE = 2
EXIT_DEGRADED = 3
EXIT_QUARANTINED = 4
EXIT_INTERRUPTED = 130


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiment",
        description=(
            "Reproduction experiments for 'Search via Parallel Levy Walks "
            "on Z^2' (PODC 2021)."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("list", help="list experiment ids")
    runner = subparsers.add_parser("run", help="run one experiment (or 'all')")
    runner.add_argument("experiment", help="experiment id from 'list', or 'all'")
    runner.add_argument("--scale", choices=SCALES, default="small")
    runner.add_argument("--seed", type=int, default=0)
    runner.add_argument(
        "--csv-dir",
        type=Path,
        default=None,
        help="also dump every result table as CSV into this directory",
    )
    add_runner_arguments(runner)
    add_telemetry_arguments(runner)
    add_registry_arguments(runner)
    sweeper = subparsers.add_parser(
        "sweep",
        help="run a declarative parameter grid over one shared runner pool",
        description=(
            "Declare a grid (axes: --alpha/--bout x --l x --detect), execute "
            "every point over ONE shared pool/deadline/checkpoint "
            "store/telemetry stream, and print the per-point summary.  "
            "Per-point samples are bit-identical across --workers settings "
            "and resumes (see docs/sweep.md)."
        ),
    )
    sweeper.add_argument(
        "--alpha",
        default=None,
        metavar="A1,A2,...",
        help="Levy exponent axis (comma-separated floats)",
    )
    sweeper.add_argument(
        "--bout",
        default=None,
        metavar="B1,B2,...",
        help="CCRW mean-bout-length axis (comma-separated floats); "
        "mutually exclusive with --alpha",
    )
    sweeper.add_argument(
        "--l",
        required=True,
        dest="l_values",
        metavar="L1,L2,...",
        help="target distance axis (comma-separated ints)",
    )
    sweeper.add_argument(
        "--detect",
        default=None,
        metavar="MODE,...",
        help="detection-mode axis: 'during' (paper), 'endpoint' "
        "(intermittent), or both comma-separated",
    )
    sweeper.add_argument(
        "--n-walks",
        type=int,
        default=2_000,
        dest="n_walks",
        help="single walks simulated per grid point (default 2000)",
    )
    sweeper.add_argument(
        "--horizon",
        default="l2",
        help="per-point step budget: an integer, or 'l2' for l^2 (default)",
    )
    sweeper.add_argument(
        "--k",
        type=int,
        default=None,
        help="group size for parallel-time estimates (optional)",
    )
    sweeper.add_argument(
        "--n-groups",
        type=int,
        default=None,
        dest="n_groups",
        help="bootstrap resamples per point (with --k; omit for exact "
        "consecutive-block grouping)",
    )
    sweeper.add_argument("--seed", type=int, default=0)
    sweeper.add_argument(
        "--label", default="sweep", help="label prefix for checkpoints/events"
    )
    sweeper.add_argument(
        "--json",
        type=Path,
        default=None,
        dest="json_out",
        metavar="PATH",
        help="also write the per-point summary as JSON to PATH",
    )
    add_runner_arguments(sweeper)
    add_telemetry_arguments(sweeper)
    add_registry_arguments(sweeper)
    reporter = subparsers.add_parser(
        "report", help="render a --log-json event log into text tables"
    )
    reporter.add_argument("path", type=Path, help="JSONL event log to render")
    reporter.add_argument(
        "--strict",
        action="store_true",
        help="fail on corrupt interior log lines instead of skipping them",
    )
    profiler = subparsers.add_parser(
        "profile",
        help="analyse where walltime went: engine phases, worker "
        "utilization, IPC",
        description=(
            "Render a performance profile from a --log-json event log: "
            "engine phase breakdown (rng / cdf_lookup / state_update / "
            "target_check / compaction) with percentage bars, per-worker "
            "utilization gantt and effective parallelism, IPC bytes and "
            "pickle costs, and the top-N slowest chunks with phase "
            "attribution.  Pure log analysis: works on torn, killed, and "
            "pre-v3 logs (the phase sections degrade to a note)."
        ),
    )
    profiler.add_argument("path", type=Path, help="JSONL event log to profile")
    profiler.add_argument(
        "--diff",
        type=Path,
        default=None,
        metavar="BASELINE",
        help="compare against a baseline event log (before/after a change)",
    )
    profiler.add_argument(
        "--top",
        type=int,
        default=8,
        help="how many slowest chunks to list (default 8)",
    )
    profiler.add_argument(
        "--width", type=int, default=48, help="bar/gantt width (default 48)"
    )
    profiler.add_argument(
        "--strict",
        action="store_true",
        help="fail on corrupt interior log lines instead of skipping them",
    )
    watcher = subparsers.add_parser(
        "watch", help="follow a growing --log-json event log live"
    )
    watcher.add_argument("path", type=Path, help="JSONL event log to follow")
    watcher.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between polls (default 2)",
    )
    watcher.add_argument(
        "--once",
        action="store_true",
        help="render one frame from the current log contents and exit",
    )
    watcher.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        dest="watch_max_seconds",
        help="stop following after this many seconds (default: until the log closes)",
    )
    watcher.add_argument(
        "--width", type=int, default=40, help="bar width for the CI chart"
    )
    bench = subparsers.add_parser(
        "bench-history",
        help="diff two BENCH_*.json benchmark snapshots and fail on regressions",
    )
    bench.add_argument(
        "baseline",
        type=Path,
        nargs="?",
        default=None,
        help="committed snapshot (the reference); omit with --from-registry",
    )
    bench.add_argument(
        "current",
        type=Path,
        nargs="?",
        default=None,
        help="freshly generated snapshot; omit with --from-registry",
    )
    bench.add_argument(
        "--from-registry",
        action="store_true",
        dest="from_registry",
        help="render walltime/estimate/parallelism trend sparklines over "
        "the last registered runs instead of diffing two snapshot files",
    )
    bench.add_argument(
        "--registry-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="registry to read with --from-registry (default .repro-registry/)",
    )
    bench.add_argument(
        "--last",
        type=int,
        default=10,
        metavar="N",
        help="how many registered runs to trend with --from-registry (default 10)",
    )
    bench.add_argument(
        "--max-regression",
        default="25%",
        metavar="PCT",
        help="regression threshold, e.g. 25%% or 0.25 (default 25%%)",
    )
    bench.add_argument(
        "--warn-only",
        action="store_true",
        help=(
            "report regressions without failing (CI's engine-timing mode); "
            "*_fused_mean_seconds regressions still fail"
        ),
    )
    bench.add_argument(
        "--strict",
        action="store_true",
        help=(
            "fail (exit 2) when a snapshot is missing or unparseable; "
            "the default warns and skips the comparison"
        ),
    )
    chaos = subparsers.add_parser(
        "chaos",
        help="run the fault-injection chaos matrix and verify every recovery",
        description=(
            "Inject each requested fault (hang, crash, corrupt-return, "
            "worker-kill, checkpoint corruption, ENOSPC, SIGTERM, poison "
            "point, ...) into a small supervised run and assert it ends in "
            "the documented outcome with the documented exit code and a "
            "bit-identical recovered sample.  Exit 0 iff every scenario "
            "behaves; see docs/runner.md, 'Failure model'."
        ),
    )
    chaos.add_argument(
        "--faults",
        default=None,
        metavar="KIND,...",
        help=(
            "comma-separated fault kinds to run (default: the full matrix); "
            "known kinds: hang, slowdown, crash, corrupt-return, worker-kill, "
            "crash-before-write, crash-after-write, corrupt-checkpoint, "
            "enospc, sigterm, poison"
        ),
    )
    chaos.add_argument(
        "--workers",
        type=int,
        default=2,
        help="pool size for pooled scenarios (default 2)",
    )
    chaos.add_argument(
        "--chunk-timeout",
        type=float,
        default=1.0,
        dest="chunk_timeout",
        help="hung-chunk watchdog timeout in seconds (default 1)",
    )
    chaos.add_argument(
        "--n-walks",
        type=int,
        default=400,
        dest="n_walks",
        help="walks per scenario run (default 400)",
    )
    chaos.add_argument("--seed", type=int, default=42)

    runs = subparsers.add_parser(
        "runs",
        help="inspect the run registry: list, show, compare (drift), gc",
        description=(
            "Every run/sweep/experiment invocation appends a RunRecord "
            "(provenance, outcome, Wilson-CI estimates, phase profile, "
            "incidents) to the append-only registry.  'compare' performs "
            "CI-aware statistical drift detection between two runs: "
            "disjoint 95% Wilson intervals on the same grid point flag "
            "DRIFT (non-zero exit under --strict)."
        ),
    )
    runs_sub = runs.add_subparsers(dest="runs_command", required=True)

    def _registry_dir_flag(p):
        p.add_argument(
            "--registry-dir",
            type=Path,
            default=None,
            metavar="DIR",
            help="registry directory (default .repro-registry/)",
        )

    runs_list = runs_sub.add_parser("list", help="list registered runs")
    _registry_dir_flag(runs_list)
    runs_list.add_argument(
        "--last", type=int, default=None, metavar="N",
        help="only the newest N records",
    )
    runs_list.add_argument(
        "--command", default=None, dest="runs_filter_command",
        metavar="CMD", help="only records of this command (run/sweep/experiment)",
    )
    runs_show = runs_sub.add_parser("show", help="show one run record in full")
    _registry_dir_flag(runs_show)
    runs_show.add_argument(
        "run", help="run id, unique id prefix, or 'last'/'prev'"
    )
    runs_compare = runs_sub.add_parser(
        "compare",
        help="CI-aware drift detection between two registered runs",
    )
    _registry_dir_flag(runs_compare)
    runs_compare.add_argument("run_a", help="baseline run (id/prefix/'prev')")
    runs_compare.add_argument("run_b", help="candidate run (id/prefix/'last')")
    runs_compare.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero when any grid point's Wilson CIs are disjoint",
    )
    runs_gc = runs_sub.add_parser(
        "gc", help="compact the registry, keeping recent records"
    )
    _registry_dir_flag(runs_gc)
    runs_gc.add_argument(
        "--keep", type=int, default=50, metavar="N",
        help="newest records to keep (default 50)",
    )
    runs_gc.add_argument(
        "--max-age-days", type=float, default=None, dest="max_age_days",
        metavar="D", help="additionally drop kept-range records older than D days",
    )
    runs_gc.add_argument(
        "--dry-run", action="store_true", dest="dry_run",
        help="report what would be dropped without rewriting the registry",
    )

    dashboard = subparsers.add_parser(
        "dashboard",
        help="render the run registry as one self-contained HTML file",
        description=(
            "Emit a single static HTML document (inline CSS + SVG, zero "
            "JavaScript, no external assets) with estimate trajectories "
            "per grid point across runs (95% Wilson CIs as whiskers), "
            "walltime and convergence trends, phase-seconds stacked "
            "bars, and the incident/quarantine ledger."
        ),
    )
    dashboard.add_argument("output", type=Path, help="HTML file to write")
    dashboard.add_argument(
        "--registry-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="registry directory (default .repro-registry/)",
    )
    dashboard.add_argument(
        "--last", type=int, default=None, metavar="N",
        help="only render the newest N records",
    )
    dashboard.add_argument(
        "--title", default="Run registry dashboard", help="page title"
    )

    serve = subparsers.add_parser(
        "serve",
        help="run the long-lived estimation daemon (docs/serve.md)",
        description=(
            "Answer typed hitting-probability queries over a unix or TCP "
            "socket (newline-delimited JSON) in three tiers: persistent "
            "result-cache hit, instant theory surrogate, background "
            "Monte-Carlo refinement streaming progressive responses.  "
            "Concurrent queries for the same canonical (law, geometry, "
            "horizon) key coalesce into one shared engine call.  On "
            "startup the run registry's estimates warm the cache, so "
            "prior sweeps answer queries without re-simulating.  SIGTERM "
            "or a client 'shutdown' op stops the daemon cleanly."
        ),
    )
    serve.add_argument(
        "--socket",
        default=None,
        metavar="ADDR",
        help="unix-socket path, or host:port for TCP "
        "(default .repro-serve.sock)",
    )
    serve.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="persistent result-cache directory (default .repro-cache/)",
    )
    serve.add_argument(
        "--registry-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="run registry to warm-start from (default .repro-registry/)",
    )
    serve.add_argument(
        "--no-warm-start",
        action="store_true",
        help="skip the registry entirely (no warm start, no warm lookups)",
    )
    serve.add_argument(
        "--batch-window",
        type=float,
        default=None,
        metavar="SECONDS",
        help="how long a fresh refinement job waits for duplicate queries "
        "to join it before calling the engine (default 0.05)",
    )
    serve.add_argument(
        "--round-walks", type=int, default=2_000, metavar="N",
        help="walks in the first refinement round (rounds double; default 2000)",
    )
    serve.add_argument(
        "--max-walks", type=int, default=200_000, metavar="N",
        help="per-query walk budget (default 200000)",
    )
    serve.add_argument(
        "--chunks", type=int, default=8, metavar="N",
        help="runner chunks per refinement round (default 8)",
    )
    serve.add_argument(
        "--seed", type=int, default=None,
        help="override the per-key deterministic refinement seed",
    )
    add_telemetry_arguments(serve)

    query = subparsers.add_parser(
        "query",
        help="ask a running estimation daemon one typed question",
        description=(
            "Client for 'serve': sends one EstimateRequest and prints "
            "each response line as it streams back (theory surrogate "
            "first, then progressive CI-tightening simulation responses, "
            "then the final answer).  Also exposes the daemon's ping/"
            "stats/shutdown ops."
        ),
    )
    query.add_argument(
        "--socket",
        default=None,
        metavar="ADDR",
        help="daemon address: unix-socket path or host:port "
        "(default .repro-serve.sock)",
    )
    query.add_argument("--alpha", type=float, default=None, help="Levy exponent (> 1)")
    query.add_argument(
        "--l", type=int, default=None, dest="l",
        help="target distance from the origin (>= 1)",
    )
    query.add_argument(
        "--k", type=int, default=1, help="parallel walkers (default 1)"
    )
    query.add_argument(
        "--horizon", type=int, default=None, metavar="T",
        help="step budget (default l**2, the paper's)",
    )
    query.add_argument(
        "--max-ci", type=float, default=None, dest="max_ci", metavar="W",
        help="target absolute 95%% Wilson half-width; omitting it accepts "
        "an instant theory surrogate",
    )
    query.add_argument(
        "--no-detect", action="store_true",
        help="endpoint-only detection (the paper's model detects mid-jump)",
    )
    query.add_argument(
        "--final-only", action="store_true",
        help="suppress progressive lines; print only the final answer",
    )
    query.add_argument(
        "--json", action="store_true", dest="as_json",
        help="print raw response JSON lines instead of the human form",
    )
    query.add_argument(
        "--timeout", type=float, default=600.0, metavar="SECONDS",
        help="socket timeout (default 600)",
    )
    query.add_argument(
        "--stats", action="store_true", help="print daemon stats and exit"
    )
    query.add_argument(
        "--ping", action="store_true", help="liveness probe: exit 0 if alive"
    )
    query.add_argument(
        "--shutdown", action="store_true", help="stop the daemon cleanly"
    )
    return parser


def _dump_csv(result, csv_dir: Path) -> None:
    csv_dir.mkdir(parents=True, exist_ok=True)
    safe_id = result.experiment_id.replace("/", "_").replace(".", "_")
    for index, table in enumerate(result.tables):
        table.to_csv(csv_dir / f"{safe_id}_table{index}.csv")


def _safe_dirname(experiment_id: str) -> str:
    return "".join(c if (c.isalnum() or c in "._-") else "_" for c in experiment_id)


def _run_one(experiment_id: str, args, checkpoint_root: Optional[Path]):
    """Run one experiment with a per-experiment runner (if requested).

    Returns ``(result_or_None, runner_or_None, error_or_None)``.
    """
    runner_args = argparse.Namespace(**vars(args))
    if checkpoint_root is not None:
        runner_args.checkpoint_dir = checkpoint_root / _safe_dirname(experiment_id)
    runner = runner_from_args(runner_args)
    if runner is not None and not run_accepts_runner(get_experiment(experiment_id).run):
        print(
            f"note: {experiment_id} does not support the chunked runner; "
            "running it directly",
            file=sys.stderr,
        )
        runner = None
    try:
        result = run_experiment(
            experiment_id, scale=args.scale, seed=args.seed, runner=runner
        )
        return result, runner, None
    except Exception as exc:  # noqa: BLE001 -- one bad experiment must not kill a sweep
        return None, runner, exc


def _parse_axis(text: Optional[str], convert, option: str) -> Optional[list]:
    if text is None:
        return None
    try:
        values = [convert(part) for part in text.split(",") if part.strip()]
    except ValueError:
        print(f"error: {option} expects comma-separated values, got {text!r}",
              file=sys.stderr)
        return None
    if not values:
        print(f"error: {option} has no values", file=sys.stderr)
        return None
    return values


def _sweep_grid(args) -> int:
    """The ``sweep`` subcommand: declare, schedule, summarise a grid."""
    from repro.io_utils import atomic_write_json
    from repro.runner import trap_signals
    from repro.sweep import SweepSpec, run_sweep

    alphas = _parse_axis(args.alpha, float, "--alpha")
    bouts = _parse_axis(args.bout, float, "--bout")
    ls = _parse_axis(args.l_values, int, "--l")
    if ls is None:
        return EXIT_USAGE
    if (alphas is None) == (bouts is None):
        print("error: give exactly one of --alpha (Levy) or --bout (CCRW)",
              file=sys.stderr)
        return EXIT_USAGE
    axes = {}
    if alphas is not None:
        axes["alpha"] = alphas
    else:
        axes["bout"] = bouts
    axes["l"] = ls
    if args.detect is not None:
        modes = []
        for mode in args.detect.split(","):
            mode = mode.strip()
            if mode == "during":
                modes.append(True)
            elif mode == "endpoint":
                modes.append(False)
            elif mode:
                print(f"error: --detect modes are 'during'/'endpoint', got {mode!r}",
                      file=sys.stderr)
                return EXIT_USAGE
        if bouts is not None and modes:
            print("error: --detect does not apply to the CCRW (--bout) walk",
                  file=sys.stderr)
            return EXIT_USAGE
        if modes:
            axes["detect"] = modes
    if args.horizon == "l2":
        horizon = lambda p: p["l"] ** 2  # noqa: E731
    else:
        try:
            horizon = int(args.horizon)
        except ValueError:
            print(f"error: --horizon expects an integer or 'l2', got {args.horizon!r}",
                  file=sys.stderr)
            return EXIT_USAGE
    spec = SweepSpec(
        axes=axes,
        n=args.n_walks,
        horizon=horizon,
        k=args.k,
        n_groups=args.n_groups,
    )
    from repro.telemetry.registry import estimates_from_sweep, new_run_id

    run_id = new_run_id()
    runner = runner_from_args(args)
    recorder, previous = telemetry_from_args(args, run_id=run_id)
    if recorder is not None:
        recorder.bind(seed=args.seed)
    started = time.monotonic()
    try:
        with trap_signals():
            result = run_sweep(spec, seed=args.seed, runner=runner, label=args.label)
    finally:
        finish_telemetry(args, recorder, previous, run_id=run_id)
    walltime = time.monotonic() - started
    print(result.summary_table().render())
    if result.converged:
        print(f"{result.converged} point(s) stopped early on their CI target")
    if args.json_out is not None:
        atomic_write_json(result.to_dict(), args.json_out)
    if result.interrupted:
        print("interrupted; completed chunks are checkpointed", file=sys.stderr)
        code = EXIT_INTERRUPTED
    elif result.quarantined_points:
        print(
            f"{result.quarantined_points} poison point(s) quarantined by the "
            "retry circuit breaker; the rest of the grid completed",
            file=sys.stderr,
        )
        code = EXIT_QUARANTINED
    elif result.degraded:
        print("walltime budget expired; some points are partial (degraded)",
              file=sys.stderr)
        code = EXIT_DEGRADED
    else:
        code = EXIT_OK
    register_run(
        args,
        command="sweep",
        label=args.label,
        run_id=run_id,
        exit_code=code,
        recorder=recorder,
        estimates=estimates_from_sweep(result),
        walltime_seconds=walltime,
        config={
            "axes": {name: list(values) for name, values in axes.items()},
            "n_walks": args.n_walks,
            "horizon": args.horizon,
            "k": args.k,
            "n_groups": args.n_groups,
            "seed": args.seed,
        },
    )
    return code


def _report(args) -> int:
    from repro.io_utils import CorruptResultError
    from repro.telemetry.report import render_file

    try:
        print(render_file(args.path, strict=args.strict))
    except FileNotFoundError:
        print(f"error: no event log at {args.path}", file=sys.stderr)
        return EXIT_USAGE
    except CorruptResultError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except BrokenPipeError:
        _swallow_broken_pipe()
    return EXIT_OK


def _profile(args) -> int:
    from repro.io_utils import CorruptResultError
    from repro.telemetry.events import read_events
    from repro.telemetry.profile import render_profile, render_profile_diff

    try:
        events = read_events(args.path, strict=args.strict)
        if args.diff is not None:
            baseline = read_events(args.diff, strict=args.strict)
            print(render_profile_diff(events, baseline, width=args.width))
        else:
            print(render_profile(events, top=args.top, width=args.width))
    except FileNotFoundError as exc:
        print(f"error: no event log at {exc}", file=sys.stderr)
        return EXIT_USAGE
    except CorruptResultError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except BrokenPipeError:
        _swallow_broken_pipe()
    return EXIT_OK


def _watch(args) -> int:
    from repro.telemetry.watch import follow

    try:
        return follow(
            args.path,
            sys.stdout,
            interval=args.interval,
            once=args.once,
            max_seconds=args.watch_max_seconds,
            width=args.width,
        )
    except KeyboardInterrupt:
        return EXIT_OK
    except BrokenPipeError:
        _swallow_broken_pipe()
        return EXIT_OK


def _bench_history(args) -> int:
    from repro.telemetry.bench_history import compare_files, parse_threshold

    if args.from_registry:
        from repro.telemetry.bench_history import render_registry_trends
        from repro.telemetry.registry import DEFAULT_REGISTRY_DIR, RunRegistry

        registry = RunRegistry(args.registry_dir or DEFAULT_REGISTRY_DIR)
        records = registry.latest(args.last)
        if not records:
            print(f"warning: no registered runs in {registry.path}",
                  file=sys.stderr)
            return EXIT_OK
        print(render_registry_trends(records))
        return EXIT_OK
    if args.baseline is None or args.current is None:
        print("error: bench-history needs BASELINE and CURRENT snapshots "
              "(or --from-registry)", file=sys.stderr)
        return EXIT_USAGE
    try:
        threshold = parse_threshold(args.max_regression)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    # A missing or unparseable snapshot is expected when a benchmark was
    # renamed or has not been re-baselined yet: warn and skip so one stale
    # file cannot wedge the whole history gate.  --strict restores the
    # hard failure for jobs that must not silently skip comparisons.
    try:
        text, regressed, hard = compare_files(
            args.baseline, args.current, threshold, warn_only=args.warn_only
        )
    except FileNotFoundError as exc:
        severity = "error" if args.strict else "warning"
        print(f"{severity}: no benchmark snapshot at {exc.filename}; "
              "skipping comparison", file=sys.stderr)
        return EXIT_USAGE if args.strict else EXIT_OK
    except ValueError as exc:
        severity = "error" if args.strict else "warning"
        print(f"{severity}: unreadable benchmark snapshot ({exc}); "
              "skipping comparison", file=sys.stderr)
        return EXIT_USAGE if args.strict else EXIT_OK
    print(text)
    # Gated fused-kernel regressions fail even under --warn-only.
    if hard or (regressed and not args.warn_only):
        return EXIT_FAILED
    return EXIT_OK


def _chaos(args) -> int:
    from repro.runner.chaos import DEFAULT_MATRIX, run_chaos_matrix, render_matrix

    faults = None
    if args.faults is not None:
        faults = [part.strip() for part in args.faults.split(",") if part.strip()]
        unknown = sorted(set(faults) - set(DEFAULT_MATRIX))
        if unknown:
            print(
                "error: unknown fault kind(s) "
                + ", ".join(unknown)
                + "; known: "
                + ", ".join(DEFAULT_MATRIX),
                file=sys.stderr,
            )
            return EXIT_USAGE
        if not faults:
            print("error: --faults has no values", file=sys.stderr)
            return EXIT_USAGE
    rows = run_chaos_matrix(
        faults=faults,
        workers=args.workers,
        chunk_timeout=args.chunk_timeout,
        n_walks=args.n_walks,
        seed=args.seed,
    )
    print(render_matrix(rows))
    bad = [row for row in rows if not row.ok]
    if bad:
        print(
            f"{len(bad)} scenario(s) misbehaved: "
            + ", ".join(row.fault for row in bad),
            file=sys.stderr,
        )
        return EXIT_FAILED
    return EXIT_OK


def _open_registry(args):
    from repro.telemetry.registry import DEFAULT_REGISTRY_DIR, RunRegistry

    return RunRegistry(args.registry_dir or DEFAULT_REGISTRY_DIR)


def _runs(args) -> int:
    """The ``runs`` subcommand group: list / show / compare / gc."""
    from repro.io_utils import CorruptResultError
    from repro.telemetry.registry import (
        compare_records,
        render_record,
        render_runs_table,
    )

    registry = _open_registry(args)
    try:
        if args.runs_command == "list":
            records = registry.latest(
                args.last, command=args.runs_filter_command
            )
            if not records:
                print(f"no registered runs in {registry.path}")
                return EXIT_OK
            print(render_runs_table(records))
            return EXIT_OK
        if args.runs_command == "show":
            print(render_record(registry.resolve(args.run)))
            return EXIT_OK
        if args.runs_command == "compare":
            a = registry.resolve(args.run_a)
            b = registry.resolve(args.run_b)
            text, drifted, warned = compare_records(a, b)
            print(text)
            if drifted and args.strict:
                return EXIT_FAILED
            return EXIT_OK
        # gc
        kept, dropped = registry.gc(
            keep=args.keep,
            max_age_days=args.max_age_days,
            dry_run=args.dry_run,
        )
        verb = "would drop" if args.dry_run else "dropped"
        print(
            f"{verb} {len(dropped)} record(s), kept {len(kept)} in "
            f"{registry.path}"
        )
        protected = [
            r.run_id
            for r in kept
            if r.artifacts.get("checkpoint_dir")
            and Path(r.artifacts["checkpoint_dir"]).exists()
        ]
        if protected:
            print(
                f"{len(protected)} record(s) kept regardless of age: their "
                "checkpoint directories still exist"
            )
        return EXIT_OK
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return EXIT_USAGE
    except CorruptResultError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_FAILED
    except BrokenPipeError:
        _swallow_broken_pipe()
        return EXIT_OK


def _dashboard(args) -> int:
    from repro.reporting.dashboard import write_dashboard

    registry = _open_registry(args)
    records = registry.latest(args.last)
    path = write_dashboard(records, args.output, title=args.title)
    print(f"wrote {path} ({len(records)} run(s))")
    if not records:
        print(
            f"note: the registry at {registry.path} is empty; run a sweep "
            "or experiment first",
            file=sys.stderr,
        )
    return EXIT_OK


def _serve(args) -> int:
    """The ``serve`` subcommand: run the estimation daemon until stopped."""
    import asyncio

    from repro.serve import (
        DEFAULT_SOCKET,
        EstimationService,
        ResultCache,
        parse_address,
        serve_forever,
    )
    from repro.serve.daemon import DEFAULT_BATCH_WINDOW
    from repro.telemetry.registry import (
        DEFAULT_REGISTRY_DIR,
        RunRegistry,
        new_run_id,
    )

    run_id = new_run_id()
    recorder, previous = telemetry_from_args(args, run_id=run_id)
    address = parse_address(args.socket or DEFAULT_SOCKET)
    cache = ResultCache(args.cache_dir) if args.cache_dir else ResultCache()
    registry = None
    if not args.no_warm_start:
        registry = RunRegistry(args.registry_dir or DEFAULT_REGISTRY_DIR)
    service = EstimationService(
        cache,
        registry,
        recorder=recorder,
        batch_window=(
            args.batch_window if args.batch_window is not None else DEFAULT_BATCH_WINDOW
        ),
        round_walks=args.round_walks,
        max_walks=args.max_walks,
        chunks=args.chunks,
        seed=args.seed,
    )
    if registry is not None:
        imported = service.warm_start()
        print(
            f"warm start: {imported} estimate(s) from {registry.path}",
            file=sys.stderr,
        )
    print(f"serving on {address}", file=sys.stderr)
    try:
        asyncio.run(serve_forever(address, service))
    except KeyboardInterrupt:
        pass
    finally:
        finish_telemetry(args, recorder, previous, run_id=run_id)
    return EXIT_OK


def _query(args) -> int:
    """The ``query`` subcommand: one request against a running daemon."""
    import json

    from repro.api.query import EstimateRequest
    from repro.serve import DEFAULT_SOCKET, parse_address
    from repro.serve.client import ServeClient

    address = parse_address(args.socket or DEFAULT_SOCKET)
    try:
        client = ServeClient(address, timeout=args.timeout)
    except (OSError, ConnectionError) as exc:
        print(f"error: no daemon at {address}: {exc}", file=sys.stderr)
        return EXIT_FAILED
    with client:
        if args.ping:
            print("alive")
            return EXIT_OK
        if args.stats:
            print(json.dumps(client.stats(), indent=2, sort_keys=True))
            return EXIT_OK
        if args.shutdown:
            client.shutdown()
            print("daemon stopped", file=sys.stderr)
            return EXIT_OK
        if args.alpha is None or args.l is None:
            print(
                "error: query needs --alpha and --l "
                "(or one of --ping/--stats/--shutdown)",
                file=sys.stderr,
            )
            return EXIT_USAGE
        try:
            request = EstimateRequest(
                alpha=args.alpha,
                l=args.l,
                k=args.k,
                horizon=args.horizon,
                max_ci=args.max_ci,
                detect=not args.no_detect,
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_USAGE
        try:
            for response in client.estimate(request, stream=not args.final_only):
                if args.as_json:
                    print(json.dumps(response.to_dict()), flush=True)
                else:
                    marker = "~" if response.approximate else ""
                    state = "final" if response.final else f"#{response.seq}"
                    print(
                        f"[{response.tier}{marker} {state}] "
                        f"p={response.p:.6f} "
                        f"95% CI [{response.low:.6f}, {response.high:.6f}] "
                        f"half={response.half_width:.6f} "
                        f"trials={response.trials}",
                        flush=True,
                    )
        except (ConnectionError, RuntimeError, OSError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_FAILED
    return EXIT_OK


def _swallow_broken_pipe() -> None:
    """Piped into ``head``/``less -F`` which closed stdout early; redirect
    the remaining flush to devnull so no traceback leaks on exit."""
    import os

    os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        try:
            for experiment_id in experiment_ids():
                print(experiment_id)
        except BrokenPipeError:
            _swallow_broken_pipe()
        return EXIT_OK
    if args.command == "sweep":
        return _sweep_grid(args)
    if args.command == "report":
        return _report(args)
    if args.command == "profile":
        return _profile(args)
    if args.command == "watch":
        return _watch(args)
    if args.command == "bench-history":
        return _bench_history(args)
    if args.command == "chaos":
        return _chaos(args)
    if args.command == "runs":
        return _runs(args)
    if args.command == "dashboard":
        return _dashboard(args)
    if args.command == "serve":
        return _serve(args)
    if args.command == "query":
        return _query(args)

    known = experiment_ids()
    if args.experiment == "all":
        targets = known
    elif args.experiment in known:
        targets = [args.experiment]
    else:
        print(
            f"error: unknown experiment {args.experiment!r}; known ids: "
            + ", ".join(known),
            file=sys.stderr,
        )
        return EXIT_USAGE

    from repro.telemetry.registry import new_run_id

    run_id = new_run_id()
    checkpoint_root = args.checkpoint_dir
    statuses = []  # (experiment id, status, detail, seconds)
    any_degraded = False
    interrupted = False
    recorder, previous_recorder = telemetry_from_args(args, run_id=run_id)
    if recorder is not None:
        recorder.bind(scale=args.scale, seed=args.seed)

    def run_with_telemetry(experiment_id):
        """One experiment under bound telemetry context + lifecycle events."""
        if recorder is None:
            return _run_one(experiment_id, args, checkpoint_root)
        recorder.bind(experiment=experiment_id)
        recorder.event("experiment_start", experiment=experiment_id)
        try:
            result, runner, error = _run_one(experiment_id, args, checkpoint_root)
            # Same cause-not-symptom classification as the sweep loop: an
            # analysis raise after a degraded/interrupted runner is not an
            # experiment error.
            if runner is not None and runner.interrupted:
                status = "interrupted"
            elif runner is not None and runner.degraded:
                status = "degraded"
            elif error is not None:
                status = "error"
            else:
                status = "pass" if result.passed else "fail"
            recorder.event("experiment_end", experiment=experiment_id, status=status)
            return result, runner, error
        finally:
            recorder.unbind("experiment")

    started = time.monotonic()
    try:
        code = _run_sweep(
            args, targets, statuses, run_with_telemetry, any_degraded, interrupted
        )
    finally:
        finish_telemetry(args, recorder, previous_recorder, run_id=run_id)
    # Headline estimates: the convergence monitor's final per-label Wilson
    # CIs, recoverable from the (now closed) event log when one was kept.
    estimates = []
    if args.log_json is not None and args.log_json.exists():
        from repro.telemetry.events import read_events
        from repro.telemetry.registry import estimates_from_events

        try:
            estimates = estimates_from_events(read_events(args.log_json))
        except (OSError, ValueError):
            pass
    failed = [
        f"{experiment_id}: {status.lower()}"
        for experiment_id, status, _, _ in statuses
        if status in ("FAIL", "ERROR")
    ]
    register_run(
        args,
        command="run",
        label=args.experiment,
        run_id=run_id,
        exit_code=code,
        recorder=recorder,
        estimates=estimates,
        walltime_seconds=time.monotonic() - started,
        config={"experiment": args.experiment, "scale": args.scale,
                "seed": args.seed},
        notes=failed,
    )
    return code


def _run_sweep(args, targets, statuses, run_one, any_degraded, interrupted) -> int:
    from repro.runner import (
        CheckpointExistsError,
        CheckpointMismatchError,
        stop_requested,
        trap_signals,
    )

    with trap_signals():
        for experiment_id in targets:
            if stop_requested():
                interrupted = True
                statuses.append((experiment_id, "SKIPPED", "interrupted", 0.0))
                continue
            started = time.monotonic()
            result, runner, error = run_one(experiment_id)
            elapsed = time.monotonic() - started
            if error is not None:
                # A raise *after* the runner stopped early is not an
                # experiment bug: the analysis ran on partial (possibly
                # empty) samples.  Classify by cause, not by symptom.
                if runner is not None and (runner.interrupted or stop_requested()):
                    interrupted = True
                    print(
                        f"=== {experiment_id}: INTERRUPTED "
                        "(checkpoints saved; rerun with --resume) ===",
                        file=sys.stderr,
                    )
                    statuses.append(
                        (experiment_id, "SKIPPED", "interrupted; checkpoints saved", elapsed)
                    )
                    continue
                if runner is not None and runner.degraded:
                    any_degraded = True
                    print(
                        f"=== {experiment_id}: DEGRADED — walltime budget "
                        f"expired before the analysis could finish "
                        f"({type(error).__name__}: {error}); completed "
                        "chunks are checkpointed ===",
                        file=sys.stderr,
                    )
                    statuses.append(
                        (experiment_id, "DEGRADED", "budget expired mid-analysis", elapsed)
                    )
                    continue
                if isinstance(error, (CheckpointExistsError, CheckpointMismatchError)):
                    # Checkpoint misuse is a usage problem, not a crash --
                    # the message says exactly how to recover; no traceback.
                    print(f"error: {error}", file=sys.stderr)
                    statuses.append(
                        (experiment_id, "ERROR", f"{type(error).__name__}", elapsed)
                    )
                    continue
                print(f"=== {experiment_id}: ERROR ===", file=sys.stderr)
                traceback.print_exception(type(error), error, error.__traceback__)
                statuses.append(
                    (experiment_id, "ERROR", f"{type(error).__name__}: {error}", elapsed)
                )
                continue
            print(result.render())
            print()
            if args.csv_dir is not None:
                _dump_csv(result, args.csv_dir)
            status = "PASS" if result.passed else "FAIL"
            detail = ""
            if runner is not None and runner.converged:
                detail = "converged early (CI target met)"
            if runner is not None and runner.degraded:
                any_degraded = True
                detail = "degraded (walltime budget hit)"
            if runner is not None and runner.interrupted:
                interrupted = True
                detail = "interrupted; checkpoints saved"
            statuses.append((experiment_id, status, detail, elapsed))
        interrupted = interrupted or stop_requested()

    if len(targets) > 1:
        summary = Table(
            ["experiment", "status", "seconds", "detail"],
            title="sweep summary",
        )
        for experiment_id, status, detail, elapsed in statuses:
            summary.add_row(experiment_id, status, round(elapsed, 2), detail)
        print(summary.render())
        counts = {status: 0 for status in ("PASS", "FAIL", "ERROR", "SKIPPED")}
        for _, status, _, _ in statuses:
            counts[status] = counts.get(status, 0) + 1
        line = (
            f"{counts['PASS']} passed, {counts['FAIL']} failed, "
            f"{counts['ERROR']} errored, {counts['SKIPPED']} skipped"
        )
        if counts.get("DEGRADED", 0):
            line += f", {counts['DEGRADED']} degraded"
        print(line)

    if interrupted:
        return EXIT_INTERRUPTED
    if any(status in ("FAIL", "ERROR") for _, status, _, _ in statuses):
        return EXIT_FAILED
    if any_degraded:
        return EXIT_DEGRADED
    return EXIT_OK


if __name__ == "__main__":
    sys.exit(main())
