"""Quantized (few-level) approximations of the Levy jump law.

Section 2 cites [2, 19]: on the cycle, the cover-time-optimal random walk
with ``m`` distinct jump lengths is the one that *approximates a Levy
walk with exponent 2 using m geometric levels*.  This law ports that
construction to our setting: the jump distance is restricted to the
dyadic lengths ``1, 2, 4, ..., 2^(m-1)``, and level ``j`` receives
exactly the probability mass the true power law puts on the band
``[2^j, 2^(j+1))``.

With ``m = 1`` the walk degenerates to the lazy simple random walk; as
``m`` grows it converges to the true Levy walk on every scale below
``2^m`` -- the EXT-QUANT experiment measures how many levels the search
advantage actually needs (an implementability question for biological or
robotic walkers that cannot draw from an unbounded power law).
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy import special

from repro.distributions.base import JumpDistribution


class QuantizedZetaJumpDistribution(JumpDistribution):
    """Dyadic ``n_levels``-point approximation of Eq. (3)'s law.

    Parameters
    ----------
    alpha:
        Exponent of the approximated power law (> 1).
    n_levels:
        Number of dyadic levels; jump lengths are ``2^0 .. 2^(n_levels-1)``.
        Level ``j < n_levels - 1`` carries the band mass ``P(2^j <= d <
        2^(j+1))`` of the true law; the top level carries the whole
        remaining tail ``P(d >= 2^(n_levels-1))``.
    lazy_probability:
        ``P(d = 0)``, as in the paper.
    """

    def __init__(
        self, alpha: float, n_levels: int, lazy_probability: float = 0.5
    ) -> None:
        if alpha <= 1.0:
            raise ValueError(f"alpha must exceed 1, got {alpha}")
        if n_levels < 1:
            raise ValueError(f"need at least one level, got {n_levels}")
        if not 0.0 <= lazy_probability < 1.0:
            raise ValueError(f"lazy probability must be in [0, 1), got {lazy_probability}")
        self.alpha = float(alpha)
        self.n_levels = int(n_levels)
        self.lazy_probability = float(lazy_probability)
        self.lengths = 2 ** np.arange(n_levels, dtype=np.int64)
        zeta_1 = float(special.zeta(alpha, 1))
        band_mass = []
        for j in range(n_levels):
            low = float(special.zeta(alpha, 2**j))
            if j < n_levels - 1:
                high = float(special.zeta(alpha, 2 ** (j + 1)))
                band_mass.append((low - high) / zeta_1)
            else:
                band_mass.append(low / zeta_1)  # whole remaining tail
        self._level_probabilities = np.asarray(band_mass)
        self._level_probabilities /= self._level_probabilities.sum()

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        out = np.zeros(size, dtype=np.int64)
        moving = rng.random(size) >= self.lazy_probability
        n_moving = int(moving.sum())
        if n_moving:
            levels = rng.choice(
                self.n_levels, size=n_moving, p=self._level_probabilities
            )
            out[moving] = self.lengths[levels]
        return out

    def pmf(self, i) -> np.ndarray:
        i = np.asarray(i)
        out = np.where(i == 0, self.lazy_probability, 0.0)
        for length, probability in zip(self.lengths, self._level_probabilities):
            out = np.where(
                i == length, (1.0 - self.lazy_probability) * probability, out
            )
        return out if out.shape else float(out)

    def tail(self, i) -> np.ndarray:
        i = np.asarray(i)
        out = np.zeros(i.shape, dtype=float)
        for length, probability in zip(self.lengths, self._level_probabilities):
            out = out + np.where(
                i <= length, (1.0 - self.lazy_probability) * probability, 0.0
            )
        out = np.where(i <= 0, 1.0, out)
        return out if out.shape else float(out)

    @property
    def mean(self) -> float:
        return float(
            (1.0 - self.lazy_probability)
            * np.sum(self.lengths * self._level_probabilities)
        )

    @property
    def second_moment(self) -> float:
        return float(
            (1.0 - self.lazy_probability)
            * np.sum(self.lengths.astype(float) ** 2 * self._level_probabilities)
        )

    @property
    def support_max(self) -> Optional[int]:
        return int(self.lengths[-1])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QuantizedZetaJumpDistribution(alpha={self.alpha}, "
            f"n_levels={self.n_levels})"
        )
