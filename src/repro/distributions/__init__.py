"""Jump-length distributions for Levy flights and walks.

The central object is :class:`~repro.distributions.zeta.ZetaJumpDistribution`,
the exact discrete power law of the paper's Eq. (3); the other laws plug
into the same engines to produce baselines and ablations.
"""

from repro.distributions.base import JumpDistribution
from repro.distributions.geometric import GeometricJumpDistribution
from repro.distributions.quantized import QuantizedZetaJumpDistribution
from repro.distributions.unit import ConstantJumpDistribution, UnitJumpDistribution
from repro.distributions.zeta import ZetaJumpDistribution, cauchy_jump_distribution

__all__ = [
    "JumpDistribution",
    "ZetaJumpDistribution",
    "cauchy_jump_distribution",
    "UnitJumpDistribution",
    "ConstantJumpDistribution",
    "GeometricJumpDistribution",
    "QuantizedZetaJumpDistribution",
]
