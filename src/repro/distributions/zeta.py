"""The paper's power-law jump distribution (Eq. 3), sampled exactly.

Equation (3) of the paper defines the jump distance of a Levy walk or
flight with exponent ``alpha`` in ``(1, inf)``:

    P(d = 0) = 1/2,    P(d = i) = c_alpha / i^alpha  for i >= 1,

with ``c_alpha`` the normalizing constant, i.e. ``c_alpha = 1 / (2
zeta(alpha))`` where ``zeta`` is the Riemann zeta function.  The tail obeys
``P(d >= i) = Theta(1 / i^(alpha - 1))`` (Eq. 4).

Exactness matters here: the theorems distinguish exponents that differ by
``Theta(log log l / log l)``, so an approximate sampler (e.g. rounding a
continuous Pareto) could shift measured crossovers.  We sample by inverse
CDF using the Hurwitz zeta function: ``P(d >= i | d >= 1) = zeta(alpha, i)
/ zeta(alpha, 1)``, and the inverse is found by bracketed bisection, which
is exact and fully vectorized.

The class also supports *capping* the distance at a maximum ``cap``
(conditioning on ``d <= cap``).  Capped flights appear in the paper's own
analysis: Lemma 4.5 studies the Levy flight conditioned on the event
``E_t`` that each of the first ``t`` jumps is shorter than
``(t log t)^(1/(alpha-1))``; conditioning i.i.d. jumps on ``E_t`` is the
same as sampling them from the capped law.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np
from scipy import special

from repro.distributions.base import JumpDistribution
from repro.distributions.cdf_table import get_table
from repro.distributions.zipf_sampler import rejection_conditional_zipf

#: Exponents this close to 1 make the normalizing series effectively
#: divergent and are rejected (the paper assumes ``alpha >= 1 + eps``,
#: Remark 3.5).
MIN_EXPONENT = 1.0 + 1e-6


def _hurwitz(alpha: float, q) -> np.ndarray:
    """Hurwitz zeta ``sum_{k>=0} (k + q)^(-alpha)``, vectorized in ``q``."""
    return special.zeta(alpha, q)


#: Largest cap for which truncated moments are computed by exact summation.
_EXACT_SUM_LIMIT = 10_000_000


def _partial_power_sum(s: float, n: int) -> float:
    """Return ``sum_{i=1}^{n} i^(-s)`` for any real ``s`` and ``n >= 1``.

    For ``s > 1`` the sum is the zeta difference ``zeta(s) - zeta(s, n+1)``.
    Otherwise (divergent series; needed for truncated moments of ballistic
    exponents) we sum exactly up to ``_EXACT_SUM_LIMIT`` terms and fall
    back to the Euler-Maclaurin expansion ``n^(1-s)/(1-s) + n^(-s)/2 +
    zeta(s)`` beyond it, whose relative error is ``O(n^(s-1))``.
    """
    if n < 1:
        return 0.0
    if s > 1.0:
        return float(_hurwitz(s, 1) - _hurwitz(s, n + 1))
    if n <= _EXACT_SUM_LIMIT:
        i = np.arange(1, n + 1, dtype=float)
        return float(np.sum(i**-s))
    head = float(np.sum(np.arange(1, _EXACT_SUM_LIMIT + 1, dtype=float) ** -s))
    # Euler-Maclaurin for the remaining block (m, n]:
    # sum_{i=m+1}^{n} i^-s ~= (n^(1-s) - m^(1-s)) / (1-s) + (n^-s - m^-s)/2.
    m = float(_EXACT_SUM_LIMIT)
    if s == 1.0:
        block = math.log(n / m)
    else:
        block = (n ** (1.0 - s) - m ** (1.0 - s)) / (1.0 - s)
    block += (n ** (-s) - m ** (-s)) / 2.0
    return head + block


class ZetaJumpDistribution(JumpDistribution):
    """Discrete power-law jump distance of Eq. (3).

    Parameters
    ----------
    alpha:
        Exponent parameter in ``(1, inf)``.  Regimes (Section 1.2.1):
        *ballistic* for ``alpha in (1, 2]``, *super-diffusive* for
        ``alpha in (2, 3)``, *diffusive* for ``alpha in [3, inf)``.
    cap:
        Optional largest allowed distance; the law is conditioned on
        ``d <= cap`` (``d = 0`` keeps its full probability).
    lazy_probability:
        ``P(d = 0)``; the paper fixes 1/2, exposed for ablations.
    """

    def __init__(
        self,
        alpha: float,
        cap: Optional[int] = None,
        lazy_probability: float = 0.5,
    ) -> None:
        if not alpha >= MIN_EXPONENT:
            raise ValueError(
                f"alpha must be at least {MIN_EXPONENT} (Remark 3.5), got {alpha}"
            )
        if not 0.0 <= lazy_probability < 1.0:
            raise ValueError(f"lazy probability must be in [0, 1), got {lazy_probability}")
        if cap is not None and cap < 1:
            raise ValueError(f"cap must be at least 1, got {cap}")
        self.alpha = float(alpha)
        self.cap = int(cap) if cap is not None else None
        self.lazy_probability = float(lazy_probability)
        # Mass of the truncated series sum_{i=1..cap} i^(-alpha).
        self._tail_offset = (
            0.0 if self.cap is None else float(_hurwitz(self.alpha, self.cap + 1))
        )
        self._series_mass = float(_hurwitz(self.alpha, 1)) - self._tail_offset
        #: The paper's normalizing factor ``c_alpha`` (so that the i >= 1
        #: masses sum to ``1 - lazy_probability``).
        self.c_alpha = (1.0 - self.lazy_probability) / self._series_mass

    # ------------------------------------------------------------------ law

    def pmf(self, i) -> np.ndarray:
        i = np.asarray(i)
        out = np.zeros(i.shape, dtype=float)
        out = np.where(i == 0, self.lazy_probability, out)
        positive = i >= 1
        if self.cap is not None:
            positive = positive & (i <= self.cap)
        base = np.where(positive, i, 1).astype(float)
        out = np.where(positive, self.c_alpha * base ** (-self.alpha), out)
        return out if out.shape else float(out)

    def tail(self, i) -> np.ndarray:
        i = np.asarray(i)
        clipped = np.maximum(i, 1).astype(float)
        partial = _hurwitz(self.alpha, clipped) - self._tail_offset
        if self.cap is not None:
            partial = np.maximum(partial, 0.0)
        out = self.c_alpha * partial
        out = np.where(i <= 0, 1.0, out)
        return out if out.shape else float(out)

    @property
    def mean(self) -> float:
        if self.cap is None:
            if self.alpha <= 2.0:
                return float("inf")
            return self.c_alpha * float(_hurwitz(self.alpha - 1.0, 1))
        return self.c_alpha * _partial_power_sum(self.alpha - 1.0, self.cap)

    @property
    def second_moment(self) -> float:
        if self.cap is None:
            if self.alpha <= 3.0:
                return float("inf")
            return self.c_alpha * float(_hurwitz(self.alpha - 2.0, 1))
        return self.c_alpha * _partial_power_sum(self.alpha - 2.0, self.cap)

    @property
    def support_max(self) -> Optional[int]:
        return self.cap

    # ------------------------------------------------------------- sampling

    def _conditional_tail(self, i: np.ndarray) -> np.ndarray:
        """``G(i) = P(d >= i | d >= 1)`` for integer ``i >= 1``."""
        partial = _hurwitz(self.alpha, i.astype(float)) - self._tail_offset
        if self.cap is not None:
            partial = np.maximum(partial, 0.0)
        return partial / self._series_mass

    def _upper_bracket(self, v: np.ndarray) -> np.ndarray:
        """Return ``hi`` with ``G(hi) < v`` elementwise (for bisection)."""
        if self.cap is not None:
            return np.full(v.shape, self.cap + 1, dtype=np.int64)
        # zeta(alpha, q) <= q^(1-alpha) / (alpha - 1) + q^(-alpha)
        #               <= 2 q^(1-alpha) / (alpha - 1)  for q >= 1, so
        # G(hi) < v holds once hi > (2 / ((alpha-1) Z v))^(1/(alpha-1)).
        exponent = 1.0 / (self.alpha - 1.0)
        bound = (2.0 / ((self.alpha - 1.0) * self._series_mass * v)) ** exponent
        hi = np.ceil(bound).astype(np.int64) + 2
        # Defensive doubling in case of floating slack near v -> 0.
        for _ in range(64):
            bad = self._conditional_tail(hi) >= v
            if not np.any(bad):
                break
            hi = np.where(bad, hi * 2, hi)
        return hi

    def sample(
        self,
        rng: np.random.Generator,
        size: int,
        u: Optional[np.ndarray] = None,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Draw ``size`` exact samples of the jump distance.

        The fast path is the cached inverse-CDF table
        (:mod:`repro.distributions.cdf_table`): one ``searchsorted`` per
        call, exact tail fallback beyond the table.  Laws too heavy-tailed
        to tabulate -- and every law inside a
        :func:`~repro.distributions.cdf_table.legacy_sampling` block --
        use the original samplers: Devroye rejection when uncapped,
        inverse-CDF bisection (bracketed by the cap) when capped.

        ``u`` optionally supplies the per-draw uniforms (engines batch one
        ``rng.random`` call per round and fuse the lazy phase into it);
        ``out`` is an optional int64 destination buffer.
        """
        table = get_table(self.alpha, self.lazy_probability, self.cap)
        if table is not None:
            return table.sample(rng, size, u=u, out=out)
        if u is None:
            u = rng.random(size)
        if out is None:
            out = np.zeros(size, dtype=np.int64)
        else:
            out[:] = 0
        lazy = u < self.lazy_probability
        n_positive = int(size - lazy.sum())
        if n_positive == 0:
            return out
        if self.cap is None:
            out[~lazy] = rejection_conditional_zipf(self.alpha, rng, n_positive)
            return out
        # v ~ U(0, 1]; the sample is the largest i with G(i) >= v.
        v = 1.0 - rng.random(n_positive)
        lo = np.ones(n_positive, dtype=np.int64)  # G(1) = 1 >= v always
        hi = self._upper_bracket(v)  # G(hi) < v
        # Bisection on the integer boundary: invariant G(lo) >= v > G(hi).
        while np.any(hi - lo > 1):
            mid = (lo + hi) // 2
            ge = self._conditional_tail(mid) >= v
            lo = np.where(ge, mid, lo)
            hi = np.where(ge, hi, mid)
        out[~lazy] = lo
        return out

    # ----------------------------------------------------------- utilities

    def capped(self, cap: int) -> "ZetaJumpDistribution":
        """Return this law conditioned on ``d <= cap`` (Lemma 4.5's E_t)."""
        return ZetaJumpDistribution(
            self.alpha, cap=cap, lazy_probability=self.lazy_probability
        )

    def lemma_4_5_cap(self, t: int) -> int:
        """The cap ``(t log t)^(1/(alpha-1))`` of event ``E_t`` (Lemma 4.5)."""
        if t < 2:
            raise ValueError("t must be at least 2")
        return max(1, int((t * math.log(t)) ** (1.0 / (self.alpha - 1.0))))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cap = "" if self.cap is None else f", cap={self.cap}"
        return f"ZetaJumpDistribution(alpha={self.alpha}{cap})"


def cauchy_jump_distribution(**kwargs) -> ZetaJumpDistribution:
    """The Cauchy walk's jump law (``alpha = 2``), see Section 2."""
    return ZetaJumpDistribution(2.0, **kwargs)
