"""Exact vectorized samplers for the conditional Zipf law ``P(d=i) ∝ i^-alpha``.

Both the homogeneous law (:class:`~repro.distributions.zeta.ZetaJumpDistribution`
with ``cap=None``) and the per-walk heterogeneous sampler used by the
randomized strategy of Theorem 1.6 need fast exact draws of

    ``P(d = i | d >= 1) = i^(-alpha) / zeta(alpha)``,  ``i = 1, 2, ...``

Two implementations are provided:

* :func:`rejection_conditional_zipf` -- Devroye's rejection algorithm
  (Non-Uniform Random Variate Generation, 1986, ch. X.6.1), which costs a
  couple of cheap power evaluations per draw, vectorizes over draws *and*
  over per-draw exponents, and is exact.
* :func:`bisection_conditional_zipf` -- inverse-CDF bisection through the
  Hurwitz zeta function; one to two orders of magnitude slower, used as
  the independent ground truth in tests and as a fallback.

Numerical note: draws are clipped at :data:`JUMP_CLIP` (``2**40``).  For
exponent ``alpha`` the probability of exceeding the clip is
``O(2**(-40 (alpha - 1)))`` -- at most ~0.4% for the most extreme
ballistic exponent we ever simulate (``alpha = 1.1``) and below ``1e-12``
for the super-diffusive regime.  A clipped jump is still ~10^12 lattice
steps, i.e. it overshoots every horizon used anywhere in this package, so
clipping only perturbs the (already almost-uniform) direction
discretization of ultra-long jumps; see DESIGN.md Section 3.3.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy import special

#: Jump distances are clipped here to keep positions safely inside int64.
JUMP_CLIP = 1 << 40

#: Rejection rounds before the (guaranteed-terminating) bisection fallback.
_MAX_REJECTION_ROUNDS = 256


def bisection_conditional_zipf(
    alphas: np.ndarray,
    rng: np.random.Generator,
    size: int,
    u: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Inverse-CDF draws of the conditional Zipf law (exact, slow).

    ``alphas`` is broadcast to ``size``; each draw uses its own exponent.
    The CDF is inverted through ``P(d >= i | d >= 1) = zeta(a, i) /
    zeta(a, 1)`` with bracketed integer bisection.  ``u``, when given,
    supplies the tail-uniform draws in ``(0, 1]`` (the draw is
    ``max{i : G(i) >= u}``) instead of consuming ``rng`` -- the CDF-table
    sampler uses this to invert its own leftover uniforms exactly.
    """
    a = np.broadcast_to(np.asarray(alphas, dtype=float), (size,))
    mass = special.zeta(a, 1.0)
    # in (0, 1]; the draw is max{i : G(i) >= v}
    v = 1.0 - rng.random(size) if u is None else np.asarray(u, dtype=float)
    # Bracket from zeta(a, q) <= 2 q^(1-a) / (a-1):
    bound = (2.0 / ((a - 1.0) * mass * v)) ** (1.0 / (a - 1.0))
    hi = np.minimum(np.ceil(bound), float(2 * JUMP_CLIP)).astype(np.int64) + 2
    for _ in range(64):
        bad = special.zeta(a, hi.astype(float)) / mass >= v
        if not np.any(bad):
            break
        hi = np.where(bad, hi * 2, hi)
    lo = np.ones(size, dtype=np.int64)  # G(1) = 1 >= v always
    while np.any(hi - lo > 1):
        mid = (lo + hi) // 2
        ge = special.zeta(a, mid.astype(float)) / mass >= v
        lo = np.where(ge, mid, lo)
        hi = np.where(ge, hi, mid)
    return np.minimum(lo, JUMP_CLIP)


def rejection_conditional_zipf(
    alphas: np.ndarray, rng: np.random.Generator, size: int
) -> np.ndarray:
    """Devroye rejection draws of the conditional Zipf law (exact, fast).

    For each draw with exponent ``a`` (``a > 1``), with ``b = 2**(a-1)``:
    repeat ``X = floor(U**(-1/(a-1)))``, ``T = (1 + 1/X)**(a-1)`` until
    ``V * X * (T - 1) / (b - 1) <= T / b``; accept ``X``.  The dominating
    curve is the continuous Pareto density, and the expected number of
    rounds is uniformly bounded for ``a`` bounded away from 1.
    """
    a = np.broadcast_to(np.asarray(alphas, dtype=float), (size,))
    out = np.empty(size, dtype=np.int64)
    pending = np.arange(size)
    am1 = a - 1.0
    b = 2.0**am1
    rounds = 0
    while pending.size:
        rounds += 1
        if rounds > _MAX_REJECTION_ROUNDS:
            out[pending] = bisection_conditional_zipf(
                a[pending], rng, int(pending.size)
            )
            break
        inv_exp = -1.0 / am1[pending]
        u = 1.0 - rng.random(pending.size)  # in (0, 1], avoids u = 0
        v = rng.random(pending.size)
        x = np.floor(u**inv_exp)
        x = np.minimum(x, float(JUMP_CLIP))
        t = (1.0 + 1.0 / x) ** am1[pending]
        accept = v * x * (t - 1.0) / (b[pending] - 1.0) <= t / b[pending]
        hits = pending[accept]
        out[hits] = x[accept].astype(np.int64)
        pending = pending[~accept]
    return out


def rejection_conditional_zipf_tail(
    alphas: np.ndarray, lower: int, rng: np.random.Generator, size: int
) -> np.ndarray:
    """Exact draws of ``P(d = i) ∝ i^-alpha`` conditioned on ``i > lower``.

    This is Devroye's rejection algorithm shifted to the tail: with
    ``s = lower + 1`` the proposal is ``X = floor(s * U**(-1/(a-1)))``
    (the floor of a continuous Pareto supported on ``[s, inf)``), whose
    mass at ``x`` is ``(x/s)**(1-a) - ((x+1)/s)**(1-a)``.  The target/
    proposal ratio ``T / (x (T - 1))`` with ``T = (1 + 1/x)**(a-1)`` is
    decreasing in ``x``, so it is maximised at ``x = s`` where it equals
    ``b_s / (s (b_s - 1))`` with ``b_s = (1 + 1/s)**(a-1)``; the accept
    test below is that ratio normalised by its maximum.  For ``lower = 0``
    this reduces exactly to :func:`rejection_conditional_zipf`.  The
    acceptance probability *increases* with ``lower`` (the discrete law
    hugs its continuous envelope ever closer), so the expected number of
    rounds stays uniformly bounded.

    Used by the CDF-table sampler for the ``< 1e-6`` of draws that fall
    beyond the precomputed table.
    """
    if lower < 0:
        raise ValueError(f"lower must be non-negative, got {lower}")
    a = np.broadcast_to(np.asarray(alphas, dtype=float), (size,))
    s = float(lower + 1)
    out = np.empty(size, dtype=np.int64)
    pending = np.arange(size)
    am1 = a - 1.0
    b = (1.0 + 1.0 / s) ** am1
    rounds = 0
    while pending.size:
        rounds += 1
        if rounds > _MAX_REJECTION_ROUNDS:
            # Guaranteed-terminating fallback: invert the tail CDF with a
            # uniform squeezed into the tail's conditional range
            # (G(s) = P(d >= s | d >= 1), draws land in {s, s+1, ...}).
            mass = special.zeta(a[pending], 1.0)
            g_s = special.zeta(a[pending], s) / mass
            v = g_s * (1.0 - rng.random(pending.size))  # in (0, G(s)]
            out[pending] = bisection_conditional_zipf(
                a[pending], rng, int(pending.size), u=v
            )
            break
        inv_exp = -1.0 / am1[pending]
        u = 1.0 - rng.random(pending.size)  # in (0, 1], avoids u = 0
        v = rng.random(pending.size)
        x = np.floor(s * u**inv_exp)
        x = np.minimum(x, float(JUMP_CLIP))
        t = (1.0 + 1.0 / x) ** am1[pending]
        accept = v * x * (t - 1.0) / (b[pending] - 1.0) <= t / b[pending] * s
        hits = pending[accept]
        out[hits] = x[accept].astype(np.int64)
        pending = pending[~accept]
    return out
