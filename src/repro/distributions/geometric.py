"""Geometric (exponential-tail) jump law -- an ablation comparator.

The Levy foraging hypothesis contrasts heavy-tailed (power-law) movement
with exponentially-tailed movement (Brownian-like, or "composite
correlated random walk" models; see the discussion of [39] in Section 2).
This law keeps the Levy walk machinery -- lazy step, uniform ring
destination, direct-path traversal -- but replaces the power-law distance
of Eq. (3) with a geometric one of matching mean, so ablation experiments
can attribute search-efficiency differences specifically to the tail.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.distributions.base import JumpDistribution


class GeometricJumpDistribution(JumpDistribution):
    """``P(d = i) = (1 - lazy) * (1 - q) * q^(i-1)`` for ``i >= 1``.

    ``q`` in ``(0, 1)`` is the continuation probability; the conditional
    mean given ``d >= 1`` is ``1 / (1 - q)``.
    """

    def __init__(self, q: float, lazy_probability: float = 0.5) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError(f"q must be in (0, 1), got {q}")
        if not 0.0 <= lazy_probability < 1.0:
            raise ValueError(f"lazy probability must be in [0, 1), got {lazy_probability}")
        self.q = float(q)
        self.lazy_probability = float(lazy_probability)

    @classmethod
    def with_mean(
        cls, conditional_mean: float, lazy_probability: float = 0.5
    ) -> "GeometricJumpDistribution":
        """Build the law whose mean given ``d >= 1`` equals ``conditional_mean``."""
        if conditional_mean <= 1.0:
            raise ValueError(f"conditional mean must exceed 1, got {conditional_mean}")
        return cls(1.0 - 1.0 / conditional_mean, lazy_probability)

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        out = np.zeros(size, dtype=np.int64)
        active = rng.random(size) >= self.lazy_probability
        n_active = int(active.sum())
        if n_active:
            out[active] = rng.geometric(1.0 - self.q, size=n_active)
        return out

    def pmf(self, i) -> np.ndarray:
        i = np.asarray(i)
        positive = i >= 1
        exponent = np.where(positive, i - 1, 0).astype(float)
        mass = (1.0 - self.lazy_probability) * (1.0 - self.q) * self.q**exponent
        out = np.where(i == 0, self.lazy_probability, np.where(positive, mass, 0.0))
        return out if out.shape else float(out)

    def tail(self, i) -> np.ndarray:
        i = np.asarray(i)
        exponent = np.where(i >= 1, i - 1, 0).astype(float)
        out = np.where(
            i <= 0, 1.0, (1.0 - self.lazy_probability) * self.q**exponent
        )
        return out if out.shape else float(out)

    @property
    def mean(self) -> float:
        return (1.0 - self.lazy_probability) / (1.0 - self.q)

    @property
    def second_moment(self) -> float:
        # E[G^2] for geometric G with success prob p = 1 - q is (2 - p)/p^2.
        p = 1.0 - self.q
        return (1.0 - self.lazy_probability) * (2.0 - p) / (p * p)

    @property
    def support_max(self) -> Optional[int]:
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GeometricJumpDistribution(q={self.q})"
