"""Cached inverse-CDF jump tables: the engines' fused sampling kernel.

Every Monte-Carlo engine in this package burns most of its walltime
drawing jump distances from the conditional Zipf law ``P(d = i | d >= 1)
= i^(-alpha) / zeta(alpha)`` (Eq. 3).  The exact Devroye rejection
sampler (:func:`~repro.distributions.zipf_sampler.rejection_conditional_zipf`)
costs two to three fresh ``power`` evaluations per draw *every round*;
this module trades a one-time precomputation for a single ``searchsorted``
per round:

* a :class:`JumpCdfTable` stores ``F(i) = P(d <= i | d >= 1)`` for
  ``i = 1..L`` where ``L`` is chosen so the table covers at least
  ``1 - 1e-6`` of the conditional mass (or the full mass, for capped
  laws).  A draw is ``searchsorted(F, v) + 1`` with ``v ~ U[0, 1)`` --
  the exact inverse CDF on the covered range;
* the rare draws with ``v`` beyond the covered mass fall back to the
  exact tail sampler
  :func:`~repro.distributions.zipf_sampler.rejection_conditional_zipf_tail`
  (conditioned on ``d > L``), so the combined law is *identical* to the
  legacy samplers, not an approximation;
* tables live in a process-global bounded LRU cache keyed by
  ``(alpha, lazy_probability, cap)``, so pooled Runner workers and every
  ``GridPoint`` of a sweep reuse one table per law instead of re-deriving
  normalizing constants per call.

Laws whose table would exceed :data:`MAX_TABLE_ENTRIES` at the target
coverage (strongly ballistic exponents, ``alpha`` close to 1, where the
required length grows like ``(1/tail)^(1/(alpha-1))``) are recorded as
*untabulated* and keep using the legacy samplers, which are already fast
in that regime.

The lazy phase is fused into the same uniform: with lazy probability
``p``, a draw ``u ~ U[0, 1)`` is lazy iff ``u < p``, and otherwise
``v = (u - p) / (1 - p)`` is again uniform and independent of the lazy
indicator -- one ``rng.random`` feeds both decisions.  Engines exploit
this by batching all of a round's uniforms into one generator call.

RNG-stream note: routing through tables changes the *order* in which the
underlying bit stream is consumed, so samples for a fixed seed differ
from pre-table releases (a one-time documented break, see
``docs/performance.md``).  Determinism contracts are unchanged: for a
fixed seed the stream is reproducible, and worker-count / resume
invariance holds because tables carry no RNG state.

The escape hatch :func:`legacy_sampling` disables table routing inside a
``with`` block; the ground-truth statistical tests use it to compare the
table path against the original samplers.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Tuple

import numpy as np
from scipy import special

from repro.distributions.zipf_sampler import (
    rejection_conditional_zipf_tail,
)

#: Target uncovered tail mass: tables cover at least ``1 - TAIL_MASS`` of
#: the conditional (``d >= 1``) law.
TAIL_MASS = 1e-6

#: Hard per-table length bound (float64 entries; 1 << 20 is 8 MiB).  Laws
#: needing more entries than this for the target coverage stay on the
#: legacy samplers.
MAX_TABLE_ENTRIES = 1 << 20

#: Default bound on the number of cached tables (LRU eviction beyond it).
#: Worst-case cache memory is ``MAX_TABLE_ENTRIES * 8 * CACHE_MAX_TABLES``
#: bytes (128 MiB at the defaults); typical sweeps use a handful of small
#: tables (a few thousand entries each).
CACHE_MAX_TABLES = 16

_Key = Tuple[float, float, Optional[int]]


class JumpCdfTable:
    """Truncated conditional-Zipf CDF with an exact tail fallback.

    Parameters
    ----------
    alpha:
        Power-law exponent (``> 1``).
    lazy_probability:
        ``P(d = 0)``, fused into the same uniform draw.
    cap:
        Optional largest distance (law conditioned on ``d <= cap``); the
        table then covers the full conditional mass and never falls back.
    length:
        Table length ``L``; entries are ``F(1) .. F(L)``.
    """

    __slots__ = ("alpha", "lazy_probability", "cap", "cdf", "top")

    def __init__(
        self,
        alpha: float,
        lazy_probability: float,
        cap: Optional[int],
        length: int,
    ) -> None:
        self.alpha = float(alpha)
        self.lazy_probability = float(lazy_probability)
        self.cap = cap
        i = np.arange(1, length + 1, dtype=float)
        weights = i ** (-self.alpha)
        cdf = np.cumsum(weights)
        if cap is not None:
            # Capped law: normalize by the table's own total so
            # ``F(cap) == 1.0`` exactly and no draw can escape the table.
            cdf /= cdf[-1]
        else:
            cdf /= float(special.zeta(self.alpha, 1.0))
        self.cdf = cdf
        #: Covered conditional mass; draws with ``v > top`` use the tail.
        self.top = float(cdf[-1])

    @classmethod
    def from_cdf(
        cls,
        alpha: float,
        lazy_probability: float,
        cap: Optional[int],
        cdf: np.ndarray,
    ) -> "JumpCdfTable":
        """Wrap an already-computed CDF array (no zeta sums re-derived).

        The shared-memory transport uses this to install tables whose
        data lives in a segment published by the parent process
        (:mod:`repro.engine.shm`); ``cdf`` may be a read-only view into
        that segment -- :meth:`sample` never writes to it.
        """
        table = cls.__new__(cls)
        table.alpha = float(alpha)
        table.lazy_probability = float(lazy_probability)
        table.cap = cap
        table.cdf = cdf
        table.top = float(cdf[-1])
        return table

    @property
    def length(self) -> int:
        """Number of table entries (largest distance drawable in-table)."""
        return int(self.cdf.shape[0])

    @property
    def nbytes(self) -> int:
        """Memory footprint of the table data."""
        return int(self.cdf.nbytes)

    def sample(
        self,
        rng: np.random.Generator,
        size: int,
        u: Optional[np.ndarray] = None,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Draw ``size`` jump distances (lazy zeros included).

        ``u`` optionally supplies the per-draw uniforms (shape ``(size,)``
        in ``[0, 1)``) so callers can batch one generator call per round;
        the rare tail fallback always consumes fresh ``rng`` draws.
        ``out``, when given, is the int64 destination buffer.
        """
        if u is None:
            u = rng.random(size)
        if out is None:
            out = np.zeros(size, dtype=np.int64)
        else:
            out[:] = 0
        p = self.lazy_probability
        if p > 0.0:
            moving = u >= p
            # u | u >= p is uniform on [p, 1): rescale to [0, 1).  The
            # lazy indicator and v are exactly independent.
            v = (u[moving] - p) / (1.0 - p)
        else:
            moving = slice(None)
            v = u
        # Smallest i with F(i) >= v; exact inverse CDF on the table range.
        drawn = self.cdf.searchsorted(v, side="left") + 1
        tail = drawn > self.length
        if np.any(tail):
            drawn[tail] = rejection_conditional_zipf_tail(
                self.alpha, self.length, rng, int(tail.sum())
            )
        out[moving] = drawn
        return out


def required_length(alpha: float, tail_mass: float = TAIL_MASS) -> int:
    """Smallest ``L`` with ``P(d > L | d >= 1) <= tail_mass``, exactly.

    The tail is ``zeta(a, L + 1) / zeta(a)``; we binary-search the minimal
    ``L`` within ``[1, MAX_TABLE_ENTRIES]`` (a few dozen Hurwitz-zeta
    evaluations, once per law thanks to the cache).  Returns
    ``MAX_TABLE_ENTRIES + 1`` when even the largest allowed table cannot
    reach the coverage target -- the ballistic regime ``alpha`` near 1,
    where the required length grows like ``tail_mass**(-1/(alpha-1))``
    and the law stays on the legacy samplers.
    """
    mass = float(special.zeta(alpha, 1.0))

    def tail(length: float) -> float:
        return float(special.zeta(alpha, length + 1.0)) / mass

    if tail(float(MAX_TABLE_ENTRIES)) > tail_mass:
        return MAX_TABLE_ENTRIES + 1
    lo, hi = 1, MAX_TABLE_ENTRIES
    while lo < hi:
        mid = (lo + hi) // 2
        if tail(float(mid)) <= tail_mass:
            hi = mid
        else:
            lo = mid + 1
    return lo


class _TableCache:
    """Process-global bounded LRU cache of :class:`JumpCdfTable` objects.

    Also remembers *negative* results (laws too heavy-tailed to tabulate)
    so the length computation runs once per law, and counts hits, misses
    and evictions for the cache-behavior tests and telemetry.
    """

    def __init__(self, max_tables: int = CACHE_MAX_TABLES) -> None:
        self.max_tables = int(max_tables)
        self._lock = threading.Lock()
        self._tables: "OrderedDict[_Key, Optional[JumpCdfTable]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(
        self, alpha: float, lazy_probability: float, cap: Optional[int]
    ) -> Optional[JumpCdfTable]:
        key: _Key = (float(alpha), float(lazy_probability), cap)
        with self._lock:
            if key in self._tables:
                self.hits += 1
                self._tables.move_to_end(key)
                return self._tables[key]
            self.misses += 1
        # Build outside the lock (construction can take milliseconds for
        # long tables); a racing duplicate build is harmless.
        if cap is not None:
            length = int(cap) if cap <= MAX_TABLE_ENTRIES else None
        else:
            needed = required_length(alpha)
            length = needed if needed <= MAX_TABLE_ENTRIES else None
        table = (
            JumpCdfTable(alpha, lazy_probability, cap, length)
            if length is not None
            else None
        )
        with self._lock:
            self._tables[key] = table
            self._tables.move_to_end(key)
            while len(self._tables) > self.max_tables:
                self._tables.popitem(last=False)
                self.evictions += 1
        return table

    def install(self, table: JumpCdfTable) -> None:
        """Insert a prebuilt table under its own key (shared-memory path)."""
        key: _Key = (table.alpha, table.lazy_probability, table.cap)
        with self._lock:
            self._tables[key] = table
            self._tables.move_to_end(key)
            while len(self._tables) > self.max_tables:
                self._tables.popitem(last=False)
                self.evictions += 1

    def stats(self) -> Dict[str, int]:
        with self._lock:
            tables = [t for t in self._tables.values() if t is not None]
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "tables": len(self._tables),
                "entries": sum(t.length for t in tables),
                "bytes": sum(t.nbytes for t in tables),
            }

    def clear(self) -> None:
        with self._lock:
            self._tables.clear()
            self.hits = self.misses = self.evictions = 0


_CACHE = _TableCache()

#: Module switch for the escape hatch (see :func:`legacy_sampling`).
_TABLES_ENABLED = True


def get_table(
    alpha: float, lazy_probability: float = 0.5, cap: Optional[int] = None
) -> Optional[JumpCdfTable]:
    """The cached table for a law, or ``None`` if the law is untabulated
    (table would exceed :data:`MAX_TABLE_ENTRIES`) or tables are disabled
    via :func:`legacy_sampling`."""
    if not _TABLES_ENABLED:
        return None
    return _CACHE.get(alpha, lazy_probability, cap)


def install_table(table: JumpCdfTable) -> None:
    """Install a prebuilt (e.g. shared-memory-backed) table in the cache.

    Eviction of an installed table is harmless: the next ``get_table``
    for the law rebuilds it locally, exactly as on the non-shared path.
    """
    _CACHE.install(table)


def cache_stats() -> Dict[str, int]:
    """Hit/miss/eviction counters and current size of the global cache."""
    return _CACHE.stats()


def clear_cache() -> None:
    """Drop every cached table and reset the counters (tests)."""
    _CACHE.clear()


def set_cache_limit(max_tables: int) -> int:
    """Change the LRU bound; returns the previous one (tests)."""
    previous = _CACHE.max_tables
    if max_tables < 1:
        raise ValueError(f"cache must hold at least one table, got {max_tables}")
    _CACHE.max_tables = int(max_tables)
    return previous


def table_sampling_enabled() -> bool:
    """True unless inside a :func:`legacy_sampling` block."""
    return _TABLES_ENABLED


@contextmanager
def legacy_sampling() -> Iterator[None]:
    """Escape hatch: route all sampling through the pre-table samplers.

    The ground-truth tests run the same draws with and without tables to
    verify the two paths are distributionally identical.  Not thread-safe
    (a module-level switch): intended for tests and benchmarks.
    """
    global _TABLES_ENABLED
    previous = _TABLES_ENABLED
    _TABLES_ENABLED = False
    try:
        yield
    finally:
        _TABLES_ENABLED = previous
