"""Degenerate jump laws: unit jumps and constant jumps.

A Levy walk whose jump distance is 0 with probability 1/2 and 1 otherwise
is exactly the *lazy simple random walk* on Z^2 -- the classical baseline
the paper compares against (Section 2: "When alpha in (3, inf), a Levy walk
on Z^d behaves similarly to a simple random walk", and as alpha -> inf the
jump converges in distribution to that of a simple random walk).  Plugging
:class:`UnitJumpDistribution` into the generic engines yields that baseline
with zero extra code.

:class:`ConstantJumpDistribution` (all mass on one distance) is used in
tests and in ablations that isolate the effect of the jump-length mix.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.distributions.base import JumpDistribution


class UnitJumpDistribution(JumpDistribution):
    """``P(d = 0) = lazy_probability``, ``P(d = 1)`` the rest."""

    def __init__(self, lazy_probability: float = 0.5) -> None:
        if not 0.0 <= lazy_probability < 1.0:
            raise ValueError(f"lazy probability must be in [0, 1), got {lazy_probability}")
        self.lazy_probability = float(lazy_probability)

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return (rng.random(size) >= self.lazy_probability).astype(np.int64)

    def pmf(self, i) -> np.ndarray:
        i = np.asarray(i)
        out = np.where(
            i == 0,
            self.lazy_probability,
            np.where(i == 1, 1.0 - self.lazy_probability, 0.0),
        )
        return out if out.shape else float(out)

    def tail(self, i) -> np.ndarray:
        i = np.asarray(i)
        out = np.where(i <= 0, 1.0, np.where(i == 1, 1.0 - self.lazy_probability, 0.0))
        return out if out.shape else float(out)

    @property
    def mean(self) -> float:
        return 1.0 - self.lazy_probability

    @property
    def second_moment(self) -> float:
        return 1.0 - self.lazy_probability

    @property
    def support_max(self) -> Optional[int]:
        return 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"UnitJumpDistribution(lazy_probability={self.lazy_probability})"


class ConstantJumpDistribution(JumpDistribution):
    """All probability mass on a single distance ``value >= 1``."""

    def __init__(self, value: int) -> None:
        if value < 1:
            raise ValueError(f"constant jump must be at least 1, got {value}")
        self.value = int(value)

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return np.full(size, self.value, dtype=np.int64)

    def pmf(self, i) -> np.ndarray:
        i = np.asarray(i)
        out = np.where(i == self.value, 1.0, 0.0)
        return out if out.shape else float(out)

    def tail(self, i) -> np.ndarray:
        i = np.asarray(i)
        out = np.where(i <= self.value, 1.0, 0.0)
        return out if out.shape else float(out)

    @property
    def mean(self) -> float:
        return float(self.value)

    @property
    def second_moment(self) -> float:
        return float(self.value) ** 2

    @property
    def support_max(self) -> Optional[int]:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ConstantJumpDistribution(value={self.value})"
