"""Abstract interface for jump-length distributions.

Both the Levy flight (Definition 3.3) and the Levy walk (Definition 3.4)
are parameterized by the law of the jump distance ``d``:

    P(d = 0) = 1/2,    P(d = i) = c_alpha / i^alpha  for i >= 1.   (Eq. 3)

This module defines the :class:`JumpDistribution` contract that every
concrete law implements, so that walk processes and simulation engines are
generic in the jump law.  Besides the paper's power law
(:class:`repro.distributions.zeta.ZetaJumpDistribution`) the package ships
a unit-jump law (recovering the lazy simple random walk baseline) and a
geometric law (an exponential-tail ablation).
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np


class JumpDistribution(abc.ABC):
    """Law of a single jump distance ``d`` on the non-negative integers."""

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` i.i.d. jump distances as an int64 array."""

    @abc.abstractmethod
    def pmf(self, i) -> np.ndarray:
        """Return ``P(d = i)`` (vectorized over ``i``)."""

    @abc.abstractmethod
    def tail(self, i) -> np.ndarray:
        """Return ``P(d >= i)`` (vectorized over ``i``).

        For the paper's power law this is the quantity of Eq. (4):
        ``P(d >= i) = Theta(1 / i^(alpha - 1))``.
        """

    def cdf(self, i) -> np.ndarray:
        """Return ``P(d <= i)`` (vectorized over ``i``)."""
        i = np.asarray(i)
        return 1.0 - self.tail(i + 1)

    @property
    @abc.abstractmethod
    def mean(self) -> float:
        """``E[d]``; ``inf`` when the mean diverges (alpha <= 2)."""

    @property
    @abc.abstractmethod
    def second_moment(self) -> float:
        """``E[d^2]``; ``inf`` when it diverges (alpha <= 3)."""

    @property
    def variance(self) -> float:
        """``Var(d)``; ``inf`` when the second moment diverges."""
        second = self.second_moment
        if np.isinf(second):
            return float("inf")
        return second - self.mean**2

    @property
    @abc.abstractmethod
    def support_max(self) -> Optional[int]:
        """Largest attainable distance, or ``None`` if unbounded."""

    def expected_steps_per_jump(self) -> float:
        """``E[max(d, 1)]``: the Levy-walk time cost of one jump phase.

        A jump phase of length ``d >= 1`` takes ``d`` steps; a phase with
        ``d = 0`` takes one step (the walk stays put, Definition 3.4).
        """
        mean = self.mean
        if np.isinf(mean):
            return float("inf")
        return float(mean + self.pmf(0))
