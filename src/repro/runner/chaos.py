"""Chaos-matrix harness: composable fault plans and a recovery matrix.

:class:`~repro.runner.faults.FaultInjector` stages one fault at one hook;
this module composes many into a :class:`ChaosPlan` (picklable, so it
rides into pool workers as the runner's ``fault_injector``) and adds the
fault kinds the supervision layer exists for:

===================  ======================================================
kind                 what it does
===================  ======================================================
hang                 worker sleeps forever (heartbeats stop)
slowdown             worker computes slowly but keeps heartbeating --
                     the watchdog must NOT kill it
crash                chunk raises on its first N attempts, then succeeds
corrupt-return       the chunk's returned payload is replaced by garbage
                     (caught by payload screening, not by checksums)
worker-kill          the worker process dies hard (BrokenProcessPool)
crash-before-write   parent dies after compute, before the checkpoint
crash-after-write    parent dies right after the checkpoint is durable
corrupt-checkpoint   payload garbled on disk, then the parent dies
enospc               the disk probe reports 0 MB free (degraded mode)
sigterm              a SIGTERM storm hits the parent mid-run
===================  ======================================================

Each fault is armed by its own marker file and fires once (the marker is
consumed atomically), so retries and resumes run clean -- the same
convergence contract as :class:`FaultInjector`.  ``ChaosPlan`` is a
context manager whose exit disarms every remaining marker, so a failing
test cannot leak a fault into the next run.

:func:`run_chaos_matrix` drives one scenario per fault kind (plus a
``poison`` grid-point scenario) against a small hitting-time workload and
classifies every outcome -- completed / degraded / quarantined /
interrupted -- together with bit-identity against an un-faulted reference
run.  CI runs it at smoke scale via ``repro-experiment chaos``.
"""

from __future__ import annotations

import os
import signal as _signal
import tempfile
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from shutil import rmtree
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro.distributions.zeta import ZetaJumpDistribution
from repro.reporting.table import Table
from repro.runner.faults import FaultInjected, FaultInjector
from repro.runner.supervision import ResourceGuards, RetryPolicy
from repro.runner.tasks import HittingTimeTask

#: Fault kinds a ChaosPlan can stage (see the module table).
CHAOS_KINDS = (
    "hang",
    "slowdown",
    "crash",
    "corrupt-return",
    "worker-kill",
    "crash-before-write",
    "crash-after-write",
    "corrupt-checkpoint",
    "enospc",
    "sigterm",
)

#: Kinds delegated verbatim to :class:`FaultInjector` hooks.
_DELEGATED = {
    "hang": "hang",
    "worker-kill": "worker-kill",
    "crash-before-write": "crash-before-write",
    "crash-after-write": "crash-after-write",
    "corrupt-checkpoint": "corrupt-checkpoint",
}

#: Scenario order of the full recovery matrix ("poison" is a workload
#: property -- an always-crashing grid point -- not a ChaosPlan fault).
DEFAULT_MATRIX = CHAOS_KINDS + ("poison",)


class ChaosCrash(RuntimeError):
    """Raised by ``crash`` faults and :class:`PoisonTask` executions."""


@dataclass(frozen=True)
class ChaosFault:
    """One staged fault: what, where, and for how long/how often.

    ``attempts`` applies to ``crash`` only: the chunk fails on attempts
    ``1..attempts`` and succeeds afterwards (so ``attempts`` below the
    retry budget tests recovery, above it tests exhaustion/quarantine).
    ``seconds`` is the sleep length of ``hang``/``slowdown``.
    """

    kind: str
    chunk: int = 0
    attempts: int = 1
    seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.kind not in CHAOS_KINDS:
            raise ValueError(f"kind must be one of {CHAOS_KINDS}, got {self.kind!r}")
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")


def parse_fault(spec: str) -> ChaosFault:
    """Parse ``kind[@chunk][#attempts][/seconds]``, e.g. ``crash@1#2``."""
    text = spec.strip()
    seconds = 30.0
    attempts = 1
    chunk = 0
    if "/" in text:
        text, raw = text.rsplit("/", 1)
        seconds = float(raw)
    if "#" in text:
        text, raw = text.rsplit("#", 1)
        attempts = int(raw)
    if "@" in text:
        text, raw = text.rsplit("@", 1)
        chunk = int(raw)
    return ChaosFault(kind=text, chunk=chunk, attempts=attempts, seconds=seconds)


class _CorruptReturn:
    """Stand-in payload delivered by a ``corrupt-return`` fault.

    Its ``n`` can never match the requested chunk size, so the runner's
    payload screening must reject it and retry the chunk.
    """

    n = -1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<corrupt payload injected by chaos plan>"


@dataclass(frozen=True)
class ChaosPlan:
    """A composable set of armed faults, pluggable as a fault injector.

    Exposes the full injector hook surface (``in_worker`` /
    ``before_write`` / ``after_write`` plus the supervision-era
    ``on_return`` and ``disk_probe``), dispatching each hook to every
    staged fault.  Marker files live under ``arm_dir`` (one per fault),
    and both parent and workers derive the paths deterministically, so
    the plan pickles cleanly.
    """

    faults: Tuple[ChaosFault, ...]
    arm_dir: str
    hard_exit: bool = False

    # ---------------------------------------------------------------- arming

    def _arm_path(self, index: int) -> str:
        return os.path.join(
            self.arm_dir, f"chaos-{index:02d}-{self.faults[index].kind}.arm"
        )

    def arm(self) -> "ChaosPlan":
        """Create every fault's marker file; idempotent."""
        os.makedirs(self.arm_dir, exist_ok=True)
        for index in range(len(self.faults)):
            Path(self._arm_path(index)).touch()
        return self

    def disarm(self) -> None:
        """Remove any marker that has not fired (exception-safe cleanup)."""
        for index in range(len(self.faults)):
            try:
                os.unlink(self._arm_path(index))
            except FileNotFoundError:
                pass

    def armed(self, index: int = 0) -> bool:
        return os.path.exists(self._arm_path(index))

    def __enter__(self) -> "ChaosPlan":
        return self.arm()

    def __exit__(self, *exc_info) -> bool:
        self.disarm()
        return False

    def _consume(self, index: int) -> bool:
        try:
            os.unlink(self._arm_path(index))
        except FileNotFoundError:
            return False
        return True

    def _delegate(self, index: int, fault: ChaosFault) -> FaultInjector:
        return FaultInjector(
            mode=_DELEGATED[fault.kind],
            chunk_index=fault.chunk,
            arm_file=self._arm_path(index),
            hang_seconds=fault.seconds,
            hard_exit=self.hard_exit,
        )

    @staticmethod
    def _record(kind: str, chunk: int, hook: str) -> None:
        from repro.telemetry.recorder import get_recorder

        get_recorder().event("fault_injected", mode=kind, chunk=chunk, hook=hook)

    # ------------------------------------------------------------ hook points

    def in_worker(self, chunk_index: int, attempt: int = 1) -> None:
        """Worker-side faults: hang, slowdown, crash-on-Nth, worker-kill."""
        for index, fault in enumerate(self.faults):
            if fault.kind in ("hang", "worker-kill"):
                self._delegate(index, fault).in_worker(chunk_index, attempt)
            elif fault.kind == "slowdown" and chunk_index == fault.chunk:
                if self._consume(index):
                    self._crawl(fault.seconds)
            elif fault.kind == "crash" and chunk_index == fault.chunk:
                if not os.path.exists(self._arm_path(index)):
                    continue
                if attempt < fault.attempts:
                    raise ChaosCrash(
                        f"injected crash at chunk {chunk_index} "
                        f"(attempt {attempt}/{fault.attempts})"
                    )
                # Final staged failure: consume the marker so the next
                # attempt (or a parallel racer) runs clean.
                if self._consume(index) and attempt == fault.attempts:
                    raise ChaosCrash(
                        f"injected crash at chunk {chunk_index} "
                        f"(attempt {attempt}/{fault.attempts})"
                    )

    @staticmethod
    def _crawl(seconds: float) -> None:
        """Burn walltime while keeping the heartbeat alive.

        This is what distinguishes a *straggler* from a *hang*: the round
        loop still ticks, so a correctly tuned watchdog must leave the
        worker alone even though the chunk takes several timeouts.
        """
        from repro.telemetry.recorder import get_recorder

        recorder = get_recorder()
        deadline = time.monotonic() + seconds
        while time.monotonic() < deadline:
            time.sleep(0.05)
            recorder.tick()

    def before_write(self, chunk_index: int) -> None:
        """Parent-side faults firing after compute, before the write."""
        for index, fault in enumerate(self.faults):
            if fault.kind == "crash-before-write":
                self._delegate(index, fault).before_write(chunk_index)
            elif fault.kind == "sigterm" and chunk_index == fault.chunk:
                if self._consume(index):
                    self._record("sigterm", chunk_index, "before_write")
                    # A storm, not a single signal: delivery must coalesce
                    # into one cooperative stop, never a crash.
                    for _ in range(3):
                        os.kill(os.getpid(), _signal.SIGTERM)

    def after_write(self, chunk_index: int, payload_path) -> None:
        """Parent-side faults firing right after the checkpoint commits."""
        for index, fault in enumerate(self.faults):
            if fault.kind in ("crash-after-write", "corrupt-checkpoint"):
                self._delegate(index, fault).after_write(chunk_index, payload_path)

    def on_return(self, chunk_index: int, attempt: int, payload):
        """Parent-side payload swap for ``corrupt-return`` faults."""
        for index, fault in enumerate(self.faults):
            if fault.kind == "corrupt-return" and chunk_index == fault.chunk:
                if self._consume(index):
                    self._record("corrupt-return", chunk_index, "on_return")
                    return _CorruptReturn()
        return payload

    # -------------------------------------------------------- resource seams

    @property
    def needs_guards(self) -> bool:
        return any(fault.kind == "enospc" for fault in self.faults)

    def disk_probe(self) -> Optional[float]:
        """A :class:`ResourceGuards` disk probe simulating ENOSPC.

        Reports 0 MB free while an ``enospc`` fault is armed; ``None``
        (unknown -- never trips) otherwise.  The marker is *not* consumed:
        a full disk stays full for the rest of the run.
        """
        for index, fault in enumerate(self.faults):
            if fault.kind == "enospc" and os.path.exists(self._arm_path(index)):
                return 0.0
        return None


def chaos_plan(specs: Sequence[str] | str, arm_dir, hard_exit: bool = False) -> ChaosPlan:
    """Build a plan from fault specs (``"hang@1,crash@0#2"`` or a list)."""
    if isinstance(specs, str):
        specs = [part for part in specs.split(",") if part.strip()]
    faults = tuple(parse_fault(spec) for spec in specs)
    return ChaosPlan(faults=faults, arm_dir=str(arm_dir), hard_exit=hard_exit)


@dataclass(frozen=True)
class PoisonTask:
    """A grid point that can never complete: every chunk raises.

    Wraps a real task so ``kind``/``merge`` keep working (an empty merge
    yields the usual censored-empty payload); used to prove the per-point
    circuit breaker quarantines the point instead of sinking the sweep.
    """

    inner: Any
    message: str = "poison grid point"

    @property
    def kind(self) -> str:
        return self.inner.kind

    def __call__(self, n: int, seed) -> Any:
        raise ChaosCrash(self.message)

    def merge(self, plan, chunks):
        return self.inner.merge(plan, chunks)


# -------------------------------------------------------------------- matrix


@dataclass
class ChaosOutcome:
    """One row of the recovery matrix: a fault and how the run survived it."""

    fault: str
    outcome: str  # completed / degraded / quarantined / interrupted
    expected: str
    detection: str
    recovery: str
    retries: int = 0
    bit_identical: Optional[bool] = None
    exit_code: int = 0
    ok: bool = False
    detail: str = ""
    notes: List[str] = field(default_factory=list)


#: Documented CLI exit code for each classified outcome (src/repro/cli.py).
OUTCOME_EXIT_CODES = {
    "completed": 0,
    "degraded": 3,
    "quarantined": 4,
    "interrupted": 130,
    "failed": 1,
}


def render_matrix(rows: Sequence[ChaosOutcome]) -> str:
    """The fault × detection × recovery × outcome table (docs/runner.md)."""
    table = Table(
        ["fault", "detection", "recovery", "outcome", "exit", "retries",
         "bit-identical", "ok"],
        title="chaos recovery matrix",
    )
    for row in rows:
        table.add_row(
            row.fault,
            row.detection,
            row.recovery,
            row.outcome,
            row.exit_code,
            row.retries,
            "-" if row.bit_identical is None else row.bit_identical,
            row.ok,
        )
    return table.render()


def _smoke_task() -> HittingTimeTask:
    return HittingTimeTask(
        jumps=ZetaJumpDistribution(2.5), target=(5, 3), horizon=150
    )


def run_chaos_matrix(
    faults: Optional[Sequence[str]] = None,
    workers: int = 2,
    chunk_timeout: float = 1.0,
    n_walks: int = 400,
    n_chunks: int = 4,
    seed: int = 42,
    workdir=None,
) -> List[ChaosOutcome]:
    """Run one scenario per requested fault kind and classify the outcomes.

    Every scenario uses the same smoke workload and compares the final
    merged sample bit-for-bit against an un-faulted serial reference, so
    "recovered" always means *recovered the right answer*.  ``workdir``
    (default: a temp dir, removed afterwards) holds per-scenario arm
    files and checkpoints.
    """
    from repro.runner.runner import (  # local import: runner imports this module's deps
        ChunkFailedError,
        Job,
        Runner,
        trap_signals,
    )

    kinds = list(faults) if faults else list(DEFAULT_MATRIX)
    unknown = [k for k in kinds if k not in DEFAULT_MATRIX]
    if unknown:
        raise ValueError(f"unknown chaos fault(s) {unknown}; pick from {DEFAULT_MATRIX}")

    task = _smoke_task()
    base = Path(workdir) if workdir is not None else Path(tempfile.mkdtemp(prefix="repro-chaos-"))
    cleanup = workdir is None
    policy = RetryPolicy(max_attempts=4, backoff_base=0.01, backoff_max=0.1)
    pooled = max(1, int(workers))
    hang_seconds = max(30.0, 10.0 * chunk_timeout)

    reference = (
        Runner(n_chunks=n_chunks).run(task, n_walks, seed, label="reference").payload
    )

    def identical(payload) -> bool:
        return bool(np.array_equal(payload.times, reference.times))

    def classify(outcome) -> str:
        if outcome.interrupted:
            return "interrupted"
        if getattr(outcome, "quarantined_point", False):
            return "quarantined"
        if outcome.degraded or getattr(outcome, "storage_degraded", False):
            return "degraded"
        return "completed" if outcome.complete else "failed"

    def finish(row: ChaosOutcome, outcome, bit: Optional[bool], expect_ok) -> ChaosOutcome:
        row.outcome = classify(outcome)
        row.retries = outcome.retries
        row.bit_identical = bit
        row.exit_code = OUTCOME_EXIT_CODES.get(row.outcome, 1)
        row.notes = list(outcome.notes)
        row.ok = bool(expect_ok(outcome)) and (bit is None or bit)
        return row

    def scenario(kind: str) -> ChaosOutcome:
        subdir = base / f"scenario-{kind}"
        arm_dir = str(subdir / "arm")
        ckpt = subdir / "checkpoints"

        if kind == "hang":
            row = ChaosOutcome(
                kind, "", expected="completed",
                detection=f"no heartbeat for >{chunk_timeout:g}s (watchdog)",
                recovery="kill pool, reschedule chunk from its seed",
            )
            with ChaosPlan((ChaosFault("hang", chunk=1, seconds=hang_seconds),), arm_dir) as plan:
                runner = Runner(
                    workers=pooled, n_chunks=n_chunks, chunk_timeout=chunk_timeout,
                    retry_policy=policy, fault_injector=plan,
                )
                outcome = runner.run(task, n_walks, seed, label=kind)
            return finish(
                row, outcome, identical(outcome.payload),
                lambda o: o.complete and o.retries >= 1,
            )

        if kind == "slowdown":
            row = ChaosOutcome(
                kind, "", expected="completed",
                detection="none needed: heartbeats keep flowing",
                recovery="watchdog leaves the straggler alone",
            )
            with ChaosPlan(
                (ChaosFault("slowdown", chunk=1, seconds=3.0 * chunk_timeout),), arm_dir
            ) as plan:
                runner = Runner(
                    workers=pooled, n_chunks=n_chunks, chunk_timeout=chunk_timeout,
                    retry_policy=policy, fault_injector=plan,
                )
                outcome = runner.run(task, n_walks, seed, label=kind)
            return finish(
                row, outcome, identical(outcome.payload),
                lambda o: o.complete and o.retries == 0,
            )

        if kind == "worker-kill":
            # Run this scenario over the shared-memory transport when the
            # host supports it: a SIGKILLed worker is exactly the case
            # where a result slab can be orphaned mid-write, so the row
            # also asserts the runner left nothing behind in /dev/shm.
            from repro.engine import shm as _shm

            use_shm = _shm.shm_available()
            row = ChaosOutcome(
                kind, "", expected="completed",
                detection="BrokenProcessPool from the dead worker",
                recovery="rebuild pool, retry in-flight chunks, unlink "
                "the dead worker's shm slabs",
            )
            with ChaosPlan((ChaosFault("worker-kill", chunk=1),), arm_dir) as plan:
                runner = Runner(
                    workers=pooled, n_chunks=n_chunks, retry_policy=policy,
                    fault_injector=plan,
                    pool_transport="shm" if use_shm else "pickle",
                )
                outcome = runner.run(task, n_walks, seed, label=kind)
            leaked = (
                _shm.list_segments(runner.shm_prefix)
                if runner.shm_prefix else []
            )
            row = finish(
                row, outcome, identical(outcome.payload),
                lambda o: o.complete and o.retries >= 1,
            )
            if use_shm:
                if leaked:
                    row.ok = False
                    row.notes.append(
                        f"LEAK: {len(leaked)} shm segment(s) survived the "
                        f"kill: {', '.join(sorted(leaked))}"
                    )
                else:
                    row.notes.append(
                        "shm transport: 0 segments leaked after worker kill"
                    )
            return row

        if kind == "crash":
            row = ChaosOutcome(
                kind, "", expected="completed",
                detection="task exception surfaced by the pool",
                recovery="exponential backoff, retry same seed",
            )
            with ChaosPlan((ChaosFault("crash", chunk=1, attempts=2),), arm_dir) as plan:
                runner = Runner(
                    workers=workers, n_chunks=n_chunks, retry_policy=policy,
                    fault_injector=plan,
                )
                outcome = runner.run(task, n_walks, seed, label=kind)
            return finish(
                row, outcome, identical(outcome.payload),
                lambda o: o.complete and o.retries >= 2,
            )

        if kind == "corrupt-return":
            row = ChaosOutcome(
                kind, "", expected="completed",
                detection="payload screening (size mismatch)",
                recovery="discard payload, retry same seed",
            )
            with ChaosPlan((ChaosFault("corrupt-return", chunk=1),), arm_dir) as plan:
                runner = Runner(
                    workers=workers, n_chunks=n_chunks, retry_policy=policy,
                    fault_injector=plan,
                )
                outcome = runner.run(task, n_walks, seed, label=kind)
            return finish(
                row, outcome, identical(outcome.payload),
                lambda o: o.complete and o.retries >= 1,
            )

        if kind in ("crash-before-write", "crash-after-write", "corrupt-checkpoint"):
            detection = {
                "crash-before-write": "process death; chunk absent on resume",
                "crash-after-write": "process death; chunk durable on resume",
                "corrupt-checkpoint": "checksum validation on resume",
            }[kind]
            recovery = {
                "crash-before-write": "resume recomputes the lost chunk",
                "crash-after-write": "resume skips the durable chunk",
                "corrupt-checkpoint": "quarantine files, recompute chunk",
            }[kind]
            row = ChaosOutcome(kind, "", expected="completed",
                               detection=detection, recovery=recovery)
            with ChaosPlan((ChaosFault(kind, chunk=1),), arm_dir) as plan:
                crashed = False
                try:
                    Runner(
                        checkpoint_dir=ckpt, n_chunks=n_chunks, fault_injector=plan,
                    ).run(task, n_walks, seed, label=kind)
                except FaultInjected:
                    crashed = True
            outcome = Runner(checkpoint_dir=ckpt, n_chunks=n_chunks, resume=True).run(
                task, n_walks, seed, label=kind
            )
            expect_quarantine = kind == "corrupt-checkpoint"
            return finish(
                row, outcome, identical(outcome.payload),
                lambda o: (
                    crashed and o.complete and o.resumed_chunks >= 1
                    and (bool(o.quarantined) == expect_quarantine)
                ),
            )

        if kind == "enospc":
            row = ChaosOutcome(
                kind, "", expected="degraded",
                detection="disk watermark probe (preflight + in-run)",
                recovery="manifest-only checkpoints; payloads recomputed on resume",
            )
            with ChaosPlan((ChaosFault("enospc"),), arm_dir) as plan:
                guards = ResourceGuards(
                    min_disk_mb=1.0, check_every=0.0, disk_probe=plan.disk_probe
                )
                runner = Runner(
                    checkpoint_dir=ckpt, n_chunks=n_chunks, workers=workers,
                    retry_policy=policy, resource_guards=guards,
                )
                outcome = runner.run(task, n_walks, seed, label=kind)
            payloads = list(ckpt.glob("*/chunks/chunk_*.npz"))
            return finish(
                row, outcome, identical(outcome.payload),
                lambda o: o.complete and o.storage_degraded and not payloads,
            )

        if kind == "sigterm":
            row = ChaosOutcome(
                kind, "", expected="completed",
                detection="signal trap (cooperative stop flag)",
                recovery="stop at chunk boundary; checkpoint resume",
            )
            with ChaosPlan((ChaosFault("sigterm", chunk=1),), arm_dir) as plan:
                runner = Runner(
                    checkpoint_dir=ckpt, workers=workers, n_chunks=n_chunks,
                    retry_policy=policy, fault_injector=plan,
                )
                with trap_signals():
                    first = runner.run(task, n_walks, seed, label=kind)
            interrupted = first.interrupted
            outcome = Runner(
                checkpoint_dir=ckpt, workers=workers, n_chunks=n_chunks, resume=True
            ).run(task, n_walks, seed, label=kind)
            return finish(
                row, outcome, identical(outcome.payload),
                lambda o: interrupted and o.complete and o.resumed_chunks >= 1,
            )

        if kind == "poison":
            row = ChaosOutcome(
                kind, "", expected="quarantined",
                detection="per-point circuit breaker (repeated failures)",
                recovery="quarantine the point; siblings complete",
            )
            runner = Runner(
                workers=workers, n_chunks=n_chunks,
                retry_policy=replace(policy, max_attempts=2, quarantine_after=2),
            )
            outcomes = runner.run_many(
                [
                    Job(PoisonTask(task), n_walks, seed, label="poison"),
                    Job(task, n_walks, seed, label="healthy"),
                ]
            )
            poison, healthy = outcomes
            row = finish(
                row, poison, identical(healthy.payload),
                lambda o: o.quarantined_point and healthy.complete,
            )
            return row

        raise AssertionError(f"unhandled chaos kind {kind!r}")  # pragma: no cover

    try:
        rows = []
        for kind in kinds:
            try:
                rows.append(scenario(kind))
            except (ChaosCrash, ChunkFailedError, FaultInjected) as exc:
                rows.append(
                    ChaosOutcome(
                        kind, "failed", expected="recovered",
                        detection="-", recovery="-", exit_code=1, ok=False,
                        detail=f"{type(exc).__name__}: {exc}",
                    )
                )
        return rows
    finally:
        if cleanup:
            rmtree(base, ignore_errors=True)
