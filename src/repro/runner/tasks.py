"""Picklable chunk tasks: what one checkpointable unit of work computes.

A *task* is the runner's unit of sampling.  It must be

* **callable** as ``task(n, seed_sequence)`` returning a payload for ``n``
  walks driven by that seed;
* **mergeable**: ``task.merge(plan, chunks)`` folds per-chunk payloads
  (keyed by chunk index) back into one payload, equal to what a single
  in-order execution of all chunks would produce;
* **picklable**, so it can travel into process-pool workers;
* **fingerprintable**, so a resume can refuse a checkpoint produced by a
  different task configuration.

Two concrete tasks cover the repository's engines: hitting-time sampling
(:class:`HittingTimeTask`, wrapping the walk and flight engines) and
multi-target foraging (:class:`ForagingTask`).  Merging hitting times is a
chunk-order concatenation; merging foraging results takes the earliest
crossing per item across chunks and re-bases discoverer indices by each
chunk's walk offset -- exactly the semantics of one big run, because walks
never interact (see :mod:`repro.engine.multi_target`).
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.distributions.base import JumpDistribution
from repro.engine.multi_target import ForagingResult, multi_target_search
from repro.engine.results import CENSORED, HittingTimeSample
from repro.engine.vectorized import flight_hitting_times, walk_hitting_times
from repro.runner.chunking import ChunkPlan

IntPoint = Tuple[int, int]


def fingerprint(task) -> str:
    """A short stable digest of a task's full configuration.

    Based on the pickle serialization (stable for a fixed configuration),
    it is stored in the run manifest so that resuming with a different
    target, horizon, or jump law is rejected instead of silently mixing
    incompatible chunks.
    """
    return hashlib.sha256(pickle.dumps(task, protocol=4)).hexdigest()[:16]


@dataclass(frozen=True)
class HittingTimeTask:
    """Chunked hitting-time sampling (walk or flight semantics).

    Mirrors the signature of
    :func:`repro.engine.vectorized.walk_hitting_times`; with
    ``flight=True`` it wraps :func:`flight_hitting_times` instead (horizon
    then counts jumps).
    """

    jumps: JumpDistribution
    target: IntPoint
    horizon: int
    detect_during_jump: bool = True
    start: IntPoint = (0, 0)
    flight: bool = False

    #: Payload kind tag used by checkpoint manifests and io_utils codecs.
    kind = "hitting"

    def __call__(self, n: int, seed: np.random.SeedSequence) -> HittingTimeSample:
        rng = np.random.default_rng(seed)
        if self.flight:
            return flight_hitting_times(
                self.jumps, self.target, horizon=self.horizon, n=n, rng=rng, start=self.start
            )
        return walk_hitting_times(
            self.jumps,
            self.target,
            horizon=self.horizon,
            n=n,
            rng=rng,
            start=self.start,
            detect_during_jump=self.detect_during_jump,
        )

    def merge(
        self, plan: ChunkPlan, chunks: Dict[int, HittingTimeSample]
    ) -> HittingTimeSample:
        """Concatenate chunk samples in chunk-index order.

        Accepts a partial set of chunks (deadline/interrupt); the merged
        sample then simply has fewer walks.
        """
        indices = sorted(chunks)
        if not indices:
            return HittingTimeSample(
                times=np.empty(0, dtype=np.int64), horizon=self.horizon
            )
        times = np.concatenate([np.asarray(chunks[i].times, dtype=np.int64) for i in indices])
        return HittingTimeSample(times=times, horizon=self.horizon)


@dataclass(frozen=True)
class CCRWTask:
    """Chunked hitting-time sampling for the composite correlated walk.

    Wraps :func:`repro.walks.composite.ccrw_hitting_times` (the
    two-mode Levy-walk rival swept by EXT-CCRW) into the runner's task
    protocol; payloads are ordinary :class:`HittingTimeSample` objects,
    so checkpoints reuse the ``hitting`` codec.
    """

    target: IntPoint
    horizon: int
    extensive_bout_mean: float = 32.0
    intensive_turn_probability: float = 0.5
    switch_to_extensive: float = 0.05

    kind = "hitting"

    def __call__(self, n: int, seed: np.random.SeedSequence) -> HittingTimeSample:
        from repro.walks.composite import ccrw_hitting_times

        rng = np.random.default_rng(seed)
        times = ccrw_hitting_times(
            self.target,
            self.horizon,
            n,
            rng,
            intensive_turn_probability=self.intensive_turn_probability,
            extensive_bout_mean=self.extensive_bout_mean,
            switch_to_extensive=self.switch_to_extensive,
        )
        return HittingTimeSample(times=times, horizon=self.horizon)

    def merge(
        self, plan: ChunkPlan, chunks: Dict[int, HittingTimeSample]
    ) -> HittingTimeSample:
        """Concatenate chunk samples in chunk-index order."""
        indices = sorted(chunks)
        if not indices:
            return HittingTimeSample(
                times=np.empty(0, dtype=np.int64), horizon=self.horizon
            )
        times = np.concatenate(
            [np.asarray(chunks[i].times, dtype=np.int64) for i in indices]
        )
        return HittingTimeSample(times=times, horizon=self.horizon)


@dataclass(frozen=True)
class ForagingTask:
    """Chunked multi-target foraging over a fixed field of items.

    ``targets`` is stored as a tuple of ``(x, y)`` pairs so the task stays
    hashable and its fingerprint stable.
    """

    jumps: JumpDistribution
    targets: Tuple[IntPoint, ...]
    horizon: int
    start: IntPoint = (0, 0)

    kind = "foraging"

    @staticmethod
    def with_targets(jumps, targets: Sequence[IntPoint], horizon: int, **kw) -> "ForagingTask":
        """Build from any target sequence (e.g. an ``(n, 2)`` array)."""
        as_tuples = tuple((int(x), int(y)) for x, y in np.asarray(targets, dtype=np.int64))
        return ForagingTask(jumps=jumps, targets=as_tuples, horizon=horizon, **kw)

    def __call__(self, n: int, seed: np.random.SeedSequence) -> ForagingResult:
        rng = np.random.default_rng(seed)
        return multi_target_search(
            self.jumps, list(self.targets), horizon=self.horizon, n=n, rng=rng, start=self.start
        )

    def merge(self, plan: ChunkPlan, chunks: Dict[int, ForagingResult]) -> ForagingResult:
        """Earliest crossing per item across chunks; discoverers re-based.

        A chunk's walk ``j`` is global walk ``plan.offsets()[chunk] + j``.
        Ties in discovery time are broken toward the lower chunk index,
        matching a single run where lower-indexed walks win ties only by
        enumeration order (crossings at the same step are exchangeable).
        """
        target_array = np.asarray(self.targets, dtype=np.int64).reshape(-1, 2)
        n_items = target_array.shape[0]
        never = np.iinfo(np.int64).max
        best_time = np.full(n_items, never, dtype=np.int64)
        best_walk = np.full(n_items, -1, dtype=np.int64)
        offsets = plan.offsets()
        for index in sorted(chunks):
            chunk = chunks[index]
            times = np.asarray(chunk.discovery_times, dtype=np.int64)
            walkers = np.asarray(chunk.discoverer, dtype=np.int64)
            observed = np.where(times == CENSORED, never, times)
            better = observed < best_time
            best_time = np.where(better, observed, best_time)
            rebased = np.where(walkers >= 0, walkers + offsets[index], walkers)
            best_walk = np.where(better, rebased, best_walk)
        return ForagingResult(
            targets=target_array,
            discovery_times=np.where(best_time == never, CENSORED, best_time),
            discoverer=best_walk,
            horizon=self.horizon,
        )
