"""Pluggable fault injection for proving the runner's recovery paths.

Real faults (kill -9, OOM, bit rot, a wedged worker) are hard to stage
reliably in a test suite; :class:`FaultInjector` stages them on purpose at
the exact points where they hurt:

* ``crash-before-write``  -- die after computing a chunk, before anything
  reaches disk (the chunk must be recomputed on resume);
* ``crash-after-write``   -- die right after the chunk is durable (resume
  must *skip* it);
* ``corrupt-checkpoint``  -- garble the payload on disk and then die
  (resume must quarantine and recompute, never trust it);
* ``hang``                -- a worker stops making progress (the per-chunk
  timeout must fire and the retry must succeed);
* ``worker-kill``         -- the worker process dies hard (the pool breaks;
  the runner must rebuild it and retry).

An injector is *armed* by an external marker file and fires exactly once:
firing consumes the file first (``os.unlink`` is atomic), so the retried
or resumed execution of the same chunk runs clean.  This mirrors reality
-- a crash does not usually repeat deterministically on the same chunk --
and keeps kill-and-resume tests convergent.  Injectors are picklable, so
they travel into :class:`~concurrent.futures.ProcessPoolExecutor` workers.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

MODES = (
    "crash-before-write",
    "crash-after-write",
    "corrupt-checkpoint",
    "hang",
    "worker-kill",
)

#: Bytes used to garble a payload in ``corrupt-checkpoint`` mode.
_GARBAGE = b"\x00garbled-by-fault-injector\x00"


class FaultInjected(RuntimeError):
    """Raised by a firing injector to simulate an abrupt process death."""


@dataclass(frozen=True)
class FaultInjector:
    """Fires one staged fault at a chosen chunk, then disarms itself.

    Parameters
    ----------
    mode:
        One of :data:`MODES`.
    chunk_index:
        The chunk at which the fault fires.
    arm_file:
        Path of the marker file that arms the injector.  Create it (e.g.
        ``Path(...).touch()``) to arm; the first firing deletes it.
    hang_seconds:
        Sleep length of ``hang`` mode (longer than any sane chunk timeout).
    hard_exit:
        If True, crashes use ``os._exit(FaultInjector.EXIT_CODE)`` -- an
        un-catchable death, for subprocess-based kill tests.  If False
        (default), crashes raise :class:`FaultInjected`, which in-process
        tests can catch before resuming.
    """

    mode: str
    chunk_index: int
    arm_file: str
    hang_seconds: float = 3600.0
    hard_exit: bool = False

    #: Exit status used by ``hard_exit`` crashes (distinct from any CLI code).
    EXIT_CODE = 86

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {self.mode!r}")

    # ---------------------------------------------------------------- arming

    def arm(self) -> "ArmedFault":
        """Arm this injector; see the module-level :func:`arm`."""
        return arm(self)

    # ---------------------------------------------------------------- firing

    def _consume_arm(self, chunk_index: int) -> bool:
        """True exactly once: when armed and aimed at this chunk."""
        if chunk_index != self.chunk_index:
            return False
        try:
            os.unlink(self.arm_file)
        except FileNotFoundError:
            return False
        return True

    def _record(self, hook: str) -> None:
        """Emit a ``fault_injected`` telemetry event (parent-side hooks only).

        The event goes out *before* the staged crash, so a post-mortem
        event log shows the fault even when the process dies right after.
        """
        from repro.telemetry.recorder import get_recorder

        get_recorder().event(
            "fault_injected", mode=self.mode, chunk=self.chunk_index, hook=hook
        )

    def _crash(self) -> None:
        if self.hard_exit:
            os._exit(self.EXIT_CODE)
        raise FaultInjected(f"injected {self.mode} at chunk {self.chunk_index}")

    # ------------------------------------------------------------ hook points

    def in_worker(self, chunk_index: int, attempt: int = 1) -> None:
        """Called inside the worker before a chunk computes (hang/kill modes)."""
        if self.mode == "hang" and self._consume_arm(chunk_index):
            time.sleep(self.hang_seconds)
        elif self.mode == "worker-kill" and self._consume_arm(chunk_index):
            os._exit(1)

    def before_write(self, chunk_index: int) -> None:
        """Called in the parent after compute, before the checkpoint write."""
        if self.mode == "crash-before-write" and self._consume_arm(chunk_index):
            self._record("before_write")
            self._crash()

    def after_write(self, chunk_index: int, payload_path: Optional[Path]) -> None:
        """Called in the parent right after the checkpoint write commits."""
        if self.mode == "crash-after-write" and self._consume_arm(chunk_index):
            self._record("after_write")
            self._crash()
        elif self.mode == "corrupt-checkpoint" and self._consume_arm(chunk_index):
            self._record("after_write")
            if payload_path is not None and Path(payload_path).exists():
                size = Path(payload_path).stat().st_size
                # Truncate and garble: simulates a torn write that somehow
                # reached the final name (e.g. pre-atomic-writer files).
                Path(payload_path).write_bytes(_GARBAGE + b"\x00" * max(0, size // 2))
            self._crash()


class ArmedFault(os.PathLike):
    """Handle on an armed marker file that guarantees its cleanup.

    Historically :func:`arm` returned a bare :class:`~pathlib.Path`; if
    the armed run then died before the fault fired (e.g. an unrelated
    exception), the stale marker survived and re-fired on the *next* run
    in the same directory.  The handle keeps that path interface
    (``os.fspath``/``str``/``exists``) but also works as a context
    manager whose exit -- normal or exceptional -- disarms the fault.
    """

    def __init__(self, path: Path) -> None:
        self.path = Path(path)

    def disarm(self) -> None:
        """Remove the marker file if the fault has not consumed it yet."""
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass

    def exists(self) -> bool:
        return self.path.exists()

    def __fspath__(self) -> str:
        return str(self.path)

    def __str__(self) -> str:
        return str(self.path)

    def __enter__(self) -> Path:
        return self.path

    def __exit__(self, *exc_info) -> bool:
        self.disarm()
        return False


def arm(injector: FaultInjector) -> ArmedFault:
    """Create the injector's marker file (idempotent) and return a handle.

    Use the handle as a context manager (``with arm(injector): ...``) or
    call ``.disarm()`` in a ``finally`` block so an exception between
    arming and firing cannot leave a stale marker behind.
    """
    path = Path(injector.arm_file)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.touch()
    return ArmedFault(path)
