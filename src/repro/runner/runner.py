"""The fault-tolerant chunked runner: checkpoint, resume, deadline, retry.

:class:`Runner` executes a :mod:`~repro.runner.tasks` task as a sequence
of independently seeded chunks (:class:`~repro.runner.chunking.ChunkPlan`)
and makes each chunk durable the moment it finishes:

* **checkpointing** -- every completed chunk is written atomically with a
  checksummed manifest (:mod:`~repro.runner.checkpoint`), so a crash loses
  at most the chunk in flight;
* **resume** -- with ``resume=True`` and a ``checkpoint_dir``, completed
  chunks are validated and skipped; corrupt or stale ones are quarantined
  and recomputed.  Determinism: for a fixed ``(seed, n_total, n_chunks)``
  the merged sample is identical whether the run was uninterrupted,
  killed and resumed, serial, or pooled;
* **deadline** -- ``max_seconds`` is a walltime budget shared by all
  ``run()`` calls of this Runner; when it expires the runner stops
  *between* chunks and returns the merged partial sample flagged
  ``degraded=True`` instead of raising;
* **isolation & retry** -- with ``workers >= 1`` chunks execute in a
  :class:`~concurrent.futures.ProcessPoolExecutor`; a hung chunk is
  detected by ``chunk_timeout``, the pool is killed and rebuilt, and the
  chunk is retried with exponential backoff up to ``max_retries`` times
  (likewise for workers that die outright);
* **signals** -- inside a :func:`trap_signals` block, SIGINT/SIGTERM ask
  the runner to stop at the next chunk boundary; everything finished so
  far is already on disk and the outcome reports ``interrupted=True``.
"""

from __future__ import annotations

import signal as _signal
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.runner import tasks as _tasks
from repro.runner.checkpoint import SCHEMA_VERSION, CheckpointStore
from repro.runner.chunking import ChunkPlan, clamp_chunks
from repro.runner.faults import FaultInjector
from repro.telemetry.convergence import ConvergenceConfig, ConvergenceMonitor
from repro.telemetry.recorder import get_recorder


# ------------------------------------------------------------------- signals


class _SignalTrap:
    def __init__(self) -> None:
        self.triggered: Optional[int] = None


_ACTIVE_TRAP: Optional[_SignalTrap] = None


@contextmanager
def trap_signals(signums=(_signal.SIGINT, _signal.SIGTERM)):
    """Convert SIGINT/SIGTERM into a cooperative stop request.

    While the context is active, the first signal sets a flag that
    :func:`stop_requested` exposes (the runner checks it between chunks);
    a second SIGINT raises :class:`KeyboardInterrupt` as an escape hatch.
    Previous handlers are restored on exit.
    """
    global _ACTIVE_TRAP
    trap = _SignalTrap()

    def _handler(signum, frame):
        if trap.triggered is not None and signum == _signal.SIGINT:
            raise KeyboardInterrupt
        trap.triggered = signum

    previous = {}
    for signum in signums:
        previous[signum] = _signal.signal(signum, _handler)
    outer, _ACTIVE_TRAP = _ACTIVE_TRAP, trap
    try:
        yield trap
    finally:
        _ACTIVE_TRAP = outer
        for signum, handler in previous.items():
            _signal.signal(signum, handler)


def stop_requested() -> bool:
    """True once a trapped SIGINT/SIGTERM has been received."""
    return _ACTIVE_TRAP is not None and _ACTIVE_TRAP.triggered is not None


# ----------------------------------------------------------------- execution


def _execute_chunk(task, index: int, n: int, seed, injector: Optional[FaultInjector]):
    """Run one chunk (in the parent or a pool worker) and return its payload."""
    if injector is not None:
        injector.in_worker(index)
    return index, task(n, seed)


@dataclass
class RunOutcome:
    """What one :meth:`Runner.run` call produced, and how it got there."""

    payload: Any
    plan: ChunkPlan
    completed_chunks: int
    total_chunks: int
    resumed_chunks: int = 0
    degraded: bool = False
    interrupted: bool = False
    converged: bool = False
    quarantined: List[str] = field(default_factory=list)
    retries: int = 0
    notes: List[str] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return self.completed_chunks == self.total_chunks


class ChunkFailedError(RuntimeError):
    """A chunk kept failing after exhausting its retry budget."""


class Runner:
    """Chunked, checkpointed, deadline-aware Monte-Carlo execution.

    Parameters
    ----------
    checkpoint_dir:
        Root directory for durable chunk checkpoints (one subdirectory per
        ``run()`` label).  ``None`` disables persistence (chunked execution,
        deadline, and retry still work).
    n_chunks:
        Default chunk count; clamped to ``[1, n_total]`` per call.
    workers:
        0 runs chunks serially in-process; ``>= 1`` runs them in a process
        pool of that size (isolation: a dying or hanging worker cannot take
        the parent down).
    max_seconds:
        Walltime budget shared across all ``run()`` calls of this Runner
        (the clock starts at the first call).  Expiry degrades, never raises.
    chunk_timeout:
        Per-chunk walltime (pool mode only); a chunk exceeding it is
        killed and retried.
    max_retries:
        Retry budget per chunk for worker death / timeout / task errors.
    backoff_base:
        First retry sleeps this many seconds, doubling per attempt.
    resume:
        Allow continuing an existing checkpoint directory.  Without it, a
        populated directory raises (no silent mixing of runs).
    fault_injector:
        Optional :class:`~repro.runner.faults.FaultInjector` for tests.
    convergence:
        Optional :class:`~repro.telemetry.convergence.ConvergenceConfig`
        enabling sequential stopping: once the running Wilson interval of
        a Bernoulli payload (``.n_hits``/``.n``) is tighter than
        ``rel_ci_width``, the run finishes early with ``converged=True``
        (CLI: ``--stop-when-ci``/``--min-chunks``).  Even without it, a
        live telemetry recorder gets per-chunk ``estimate`` events and
        stall/drift ``incident`` events from a default monitor.
    recorder:
        Telemetry recorder for run/chunk/retry/deadline events and
        metrics.  ``None`` (default) uses the process-global
        :func:`repro.telemetry.get_recorder` seam, a no-op unless the
        CLI (``--log-json``/``--metrics-out``/``--progress``) or a test
        enabled telemetry.
    """

    def __init__(
        self,
        checkpoint_dir=None,
        n_chunks: int = 8,
        workers: int = 0,
        max_seconds: Optional[float] = None,
        chunk_timeout: Optional[float] = None,
        max_retries: int = 3,
        backoff_base: float = 0.05,
        resume: bool = False,
        fault_injector: Optional[FaultInjector] = None,
        convergence: Optional[ConvergenceConfig] = None,
        recorder=None,
    ) -> None:
        if n_chunks < 1:
            raise ValueError(f"n_chunks must be positive, got {n_chunks}")
        if workers < 0:
            raise ValueError(f"workers must be non-negative, got {workers}")
        self.checkpoint_dir = Path(checkpoint_dir) if checkpoint_dir is not None else None
        self.n_chunks = int(n_chunks)
        self.workers = int(workers)
        self.max_seconds = max_seconds
        self.chunk_timeout = chunk_timeout
        self.max_retries = int(max_retries)
        self.backoff_base = float(backoff_base)
        self.resume = bool(resume)
        self.fault_injector = fault_injector
        self.convergence = convergence
        self._recorder = recorder
        self._deadline: Optional[float] = None
        self._labels_used: Dict[str, int] = {}
        #: Aggregate flags over every run() of this Runner (CLI exit codes).
        self.degraded = False
        self.interrupted = False
        self.converged = False

    # ----------------------------------------------------------- small utils

    def _start_clock(self) -> None:
        if self.max_seconds is not None and self._deadline is None:
            self._deadline = time.monotonic() + float(self.max_seconds)

    def _out_of_time(self) -> bool:
        return self._deadline is not None and time.monotonic() >= self._deadline

    def _unique_label(self, label: str) -> str:
        safe = "".join(c if (c.isalnum() or c in "._-") else "_" for c in label) or "sample"
        count = self._labels_used.get(safe, 0)
        self._labels_used[safe] = count + 1
        return safe if count == 0 else f"{safe}-{count + 1}"

    def _store_for(self, label: str, recorder) -> Optional[CheckpointStore]:
        if self.checkpoint_dir is None:
            return None
        return CheckpointStore(self.checkpoint_dir / label, recorder=recorder)

    def _write_checkpoint(self, store, task, index: int, payload, n: int, rec, label) -> None:
        injector = self.fault_injector
        if injector is not None:
            injector.before_write(index)
        path = store.write_chunk(index, task.kind, payload, n) if store else None
        if path is not None and rec.enabled:
            rec.event("checkpoint", label=label, chunk=index, path=str(path))
            rec.metrics.counter("runner.checkpoints_written").add()
        if injector is not None:
            injector.after_write(index, path)

    def _stop_reason(self, rec, label: str, completed: int, total: int) -> Optional[str]:
        """Check the two between-chunk stop conditions, emitting the event.

        Returns ``"signal"``/``"deadline"`` (and records it) or ``None``.
        Each caller returns immediately on a non-None reason, so the
        event is emitted once per stop, not once per remaining chunk.
        """
        reason = None
        if stop_requested():
            reason = "signal"
        elif self._out_of_time():
            reason = "deadline"
        if reason is not None:
            rec.event(reason, label=label, completed=completed, total=total)
            rec.metrics.counter(f"runner.{reason}_stops").add()
        return reason

    def _converged_stop(self, rec, label: str, monitor, completed: int, total: int) -> str:
        """Record a successful sequential stop (CI target met) once."""
        rec.event(
            "converged", label=label, completed=completed, total=total,
            **monitor.stop_fields(),
        )
        rec.metrics.counter("runner.converged_stops").add()
        return "converged"

    def _build_monitor(self, rec, label: str, completed: Dict[int, Any]):
        """A convergence monitor when stopping or telemetry wants one.

        Resumed chunks are folded in silently so a resumed run continues
        from the correct running totals (and may even stop immediately if
        the checkpointed data already meets the CI target).
        """
        if self.convergence is None and not rec.enabled:
            return None
        config = self.convergence if self.convergence is not None else ConvergenceConfig()
        monitor = ConvergenceMonitor(config, rec, label)
        for index in sorted(completed):
            monitor.observe_resumed(completed[index])
        return monitor

    # ------------------------------------------------------------------- run

    def run(self, task, n_total: int, seed: int, label: str = "sample") -> RunOutcome:
        """Execute ``task`` over ``n_total`` walks and merge the chunks.

        Deterministic for fixed ``(seed, n_total, n_chunks)`` regardless of
        interruption, resume, or worker count.  Returns a
        :class:`RunOutcome`; a deadline or signal yields a *partial* merged
        payload with ``degraded``/``interrupted`` set instead of raising.
        """
        self._start_clock()
        rec = self._recorder if self._recorder is not None else get_recorder()
        started = time.monotonic()
        plan = ChunkPlan(
            n_total=int(n_total),
            n_chunks=clamp_chunks(n_total, self.n_chunks),
            seed=int(seed),
        )
        label = self._unique_label(label)
        rec.event(
            "run_start",
            label=label,
            kind=task.kind,
            n_total=plan.n_total,
            n_chunks=plan.n_chunks,
            seed=plan.seed,
            workers=self.workers,
        )
        store = self._store_for(label, rec)
        notes: List[str] = []
        quarantined: List[str] = []
        completed: Dict[int, Any] = {}
        if store is not None:
            manifest = {
                "schema_version": SCHEMA_VERSION,
                "kind": task.kind,
                "task": _tasks.fingerprint(task),
                **plan.describe(),
            }
            had_checkpoint = store.initialise(manifest, resume=self.resume)
            if had_checkpoint:
                state = store.load_completed(task.kind)
                completed = {
                    index: payload
                    for index, payload in state.completed.items()
                    if 0 <= index < plan.n_chunks
                }
                quarantined = [str(p) for p in state.quarantined]
                if completed:
                    notes.append(
                        f"resumed {len(completed)}/{plan.n_chunks} chunks from {store.directory}"
                    )
                if quarantined:
                    notes.append(
                        f"quarantined {len(quarantined)} damaged checkpoint file(s)"
                    )
        resumed = len(completed)
        if resumed or quarantined:
            rec.event(
                "resume",
                label=label,
                resumed=resumed,
                quarantined=len(quarantined),
                total=plan.n_chunks,
            )
            rec.metrics.counter("runner.chunks_resumed").add(resumed)
        pending = [i for i in range(plan.n_chunks) if i not in completed]
        sizes, seeds = plan.sizes(), plan.child_seeds()
        monitor = self._build_monitor(rec, label, completed)

        retries = 0
        reason: Optional[str] = None
        if pending:
            if self.workers >= 1:
                retries, reason = self._run_pooled(
                    task, store, pending, sizes, seeds, completed, notes, rec, label,
                    monitor,
                )
            else:
                reason = self._run_serial(
                    task, store, pending, sizes, seeds, completed, rec, label, monitor
                )
        converged = reason == "converged"
        interrupted = reason is not None and not converged and stop_requested()
        degraded = len(completed) < plan.n_chunks and not interrupted and not converged
        if converged and len(completed) < plan.n_chunks:
            notes.append(
                f"converged after {len(completed)}/{plan.n_chunks} chunks: "
                f"CI half-width target met (--stop-when-ci)"
            )
        if interrupted:
            notes.append(
                f"interrupted by signal after {len(completed)}/{plan.n_chunks} chunks; "
                "completed chunks are checkpointed"
            )
        elif degraded:
            notes.append(
                f"walltime budget exhausted after {len(completed)}/{plan.n_chunks} chunks; "
                "returning censored partial sample (degraded=True)"
            )
        self.degraded = self.degraded or degraded
        self.interrupted = self.interrupted or interrupted
        self.converged = self.converged or converged
        run_seconds = time.monotonic() - started
        rec.event(
            "run_end",
            label=label,
            completed=len(completed),
            total=plan.n_chunks,
            resumed=resumed,
            retries=retries,
            quarantined=len(quarantined),
            degraded=degraded,
            interrupted=interrupted,
            converged=converged,
            seconds=round(run_seconds, 6),
        )
        if rec.enabled:
            walks_done = sum(sizes[i] for i in completed)
            rec.metrics.counter("runner.runs").add()
            rec.metrics.counter("runner.walks_completed").add(walks_done)
            if run_seconds > 0:
                rec.metrics.gauge("runner.samples_per_sec").set(
                    round(walks_done / run_seconds, 3)
                )
        return RunOutcome(
            payload=task.merge(plan, completed),
            plan=plan,
            completed_chunks=len(completed),
            total_chunks=plan.n_chunks,
            resumed_chunks=resumed,
            degraded=degraded,
            interrupted=interrupted,
            converged=converged,
            quarantined=quarantined,
            retries=retries,
            notes=notes,
        )

    # ------------------------------------------------------------ serial mode

    def _run_serial(
        self, task, store, pending, sizes, seeds, completed, rec, label, monitor
    ) -> Optional[str]:
        """Run chunks in-process; returns the early-stop reason, if any."""
        total = len(completed) + len(pending)
        for index in pending:
            reason = self._stop_reason(rec, label, len(completed), total)
            if reason is not None:
                return reason
            if monitor is not None and monitor.should_stop():
                return self._converged_stop(rec, label, monitor, len(completed), total)
            rec.event("chunk_start", label=label, chunk=index, n=sizes[index], attempt=1)
            chunk_started = time.monotonic()
            _, payload = _execute_chunk(task, index, sizes[index], seeds[index], None)
            self._write_checkpoint(store, task, index, payload, sizes[index], rec, label)
            completed[index] = payload
            chunk_seconds = time.monotonic() - chunk_started
            self._record_chunk_end(rec, label, index, sizes[index], chunk_seconds, 1)
            if monitor is not None:
                monitor.observe_chunk(index, payload, chunk_seconds)
        return "signal" if stop_requested() else None

    def _record_chunk_end(
        self, rec, label: str, index: int, n: int, seconds: float, attempt: int
    ) -> None:
        rec.event(
            "chunk_end",
            label=label,
            chunk=index,
            n=n,
            seconds=round(seconds, 6),
            attempt=attempt,
        )
        if rec.enabled:
            rec.metrics.counter("runner.chunks_completed").add()
            rec.metrics.histogram("runner.chunk_seconds").observe(seconds)

    # -------------------------------------------------------------- pool mode

    def _kill_pool(self, executor: ProcessPoolExecutor) -> None:
        # ProcessPoolExecutor has no public "abandon a running worker": a
        # hung or poisoned worker must be killed or shutdown() blocks on it.
        for process in list(getattr(executor, "_processes", {}).values()):
            process.kill()
        executor.shutdown(wait=False, cancel_futures=True)

    def _run_pooled(
        self, task, store, pending, sizes, seeds, completed, notes, rec, label, monitor
    ):
        """Run chunks in a process pool; returns (retries, stop reason or None)."""
        queue = list(pending)
        attempts: Dict[int, int] = {}
        retries = 0
        total = len(completed) + len(pending)
        executor: Optional[ProcessPoolExecutor] = None
        inflight: Dict[Any, tuple] = {}  # future -> (chunk index, submit time)
        poll = 0.05 if self.chunk_timeout is None else min(0.05, self.chunk_timeout / 4)

        def requeue(indices, reason: str) -> bool:
            """Re-queue failed chunks; False when a retry budget is blown."""
            nonlocal retries
            for index in indices:
                attempts[index] = attempts.get(index, 0) + 1
                if attempts[index] > self.max_retries:
                    raise ChunkFailedError(
                        f"chunk {index} failed {attempts[index]} times (last: {reason})"
                    )
                retries += 1
                notes.append(f"retrying chunk {index} (attempt {attempts[index]}: {reason})")
                rec.event(
                    "retry",
                    label=label,
                    chunk=index,
                    attempt=attempts[index],
                    reason=reason,
                )
                rec.metrics.counter("runner.retries").add()
                queue.insert(0, index)
            backoff = self.backoff_base * (2 ** (max(attempts.values(), default=1) - 1))
            time.sleep(min(backoff, 5.0))
            return True

        def rebuild_pool(reason: str) -> None:
            rec.event("pool_rebuild", label=label, reason=reason)
            rec.metrics.counter("runner.pool_rebuilds").add()

        try:
            while queue or inflight:
                reason = self._stop_reason(rec, label, len(completed), total)
                if reason is not None:
                    return retries, reason
                if monitor is not None and monitor.should_stop():
                    # In-flight chunks are abandoned (the finally block
                    # kills the pool); everything completed is checkpointed.
                    return retries, self._converged_stop(
                        rec, label, monitor, len(completed), total
                    )
                if executor is None:
                    executor = ProcessPoolExecutor(max_workers=self.workers)
                while queue and len(inflight) < self.workers:
                    index = queue.pop(0)
                    future = executor.submit(
                        _execute_chunk,
                        task,
                        index,
                        sizes[index],
                        seeds[index],
                        self.fault_injector,
                    )
                    inflight[future] = (index, time.monotonic())
                    rec.event(
                        "chunk_start",
                        label=label,
                        chunk=index,
                        n=sizes[index],
                        attempt=attempts.get(index, 0) + 1,
                    )
                done, _ = wait(list(inflight), timeout=poll, return_when=FIRST_COMPLETED)
                broken: List[int] = []
                for future in done:
                    index, _submitted = inflight.pop(future)
                    try:
                        _, payload = future.result()
                    except BrokenProcessPool:
                        broken.append(index)
                        continue
                    except Exception as exc:  # task error inside the worker
                        requeue([index], f"{type(exc).__name__}: {exc}")
                        continue
                    self._write_checkpoint(store, task, index, payload, sizes[index], rec, label)
                    completed[index] = payload
                    chunk_seconds = time.monotonic() - _submitted
                    self._record_chunk_end(
                        rec, label, index, sizes[index], chunk_seconds,
                        attempts.get(index, 0) + 1,
                    )
                    if monitor is not None:
                        monitor.observe_chunk(index, payload, chunk_seconds)
                if broken:
                    # The pool is poisoned: every other in-flight chunk is
                    # lost with it.  Rebuild and retry them all.
                    broken.extend(index for index, _ in inflight.values())
                    inflight.clear()
                    self._kill_pool(executor)
                    executor = None
                    rebuild_pool("worker process died")
                    requeue(sorted(set(broken)), "worker process died")
                    continue
                if self.chunk_timeout is not None:
                    now = time.monotonic()
                    timed_out = [
                        index
                        for future, (index, submitted) in inflight.items()
                        if now - submitted > self.chunk_timeout
                    ]
                    if timed_out:
                        hung = sorted(
                            set(timed_out)
                            | {index for index, _ in inflight.values()}
                        )
                        inflight.clear()
                        self._kill_pool(executor)
                        executor = None
                        rebuild_pool(f"chunk exceeded {self.chunk_timeout}s timeout")
                        requeue(hung, f"chunk exceeded {self.chunk_timeout}s timeout")
            return retries, ("signal" if stop_requested() else None)
        finally:
            if executor is not None:
                if inflight:
                    self._kill_pool(executor)
                else:
                    executor.shutdown(wait=False, cancel_futures=True)
