"""The fault-tolerant chunked runner: checkpoint, resume, deadline, retry.

:class:`Runner` executes a :mod:`~repro.runner.tasks` task as a sequence
of independently seeded chunks (:class:`~repro.runner.chunking.ChunkPlan`)
and makes each chunk durable the moment it finishes:

* **checkpointing** -- every completed chunk is written atomically with a
  checksummed manifest (:mod:`~repro.runner.checkpoint`), so a crash loses
  at most the chunk in flight;
* **resume** -- with ``resume=True`` and a ``checkpoint_dir``, completed
  chunks are validated and skipped; corrupt or stale ones are quarantined
  and recomputed.  Determinism: for a fixed ``(seed, n_total, n_chunks)``
  the merged sample is identical whether the run was uninterrupted,
  killed and resumed, serial, or pooled;
* **deadline** -- ``max_seconds`` is a walltime budget shared by all
  ``run()`` calls of this Runner; when it expires the runner stops
  *between* chunks and returns the merged partial sample flagged
  ``degraded=True`` instead of raising;
* **isolation & retry** -- with ``workers >= 1`` chunks execute in a
  :class:`~concurrent.futures.ProcessPoolExecutor`; a hung chunk is
  detected by ``chunk_timeout``, the pool is killed and rebuilt, and the
  chunk is retried with exponential backoff up to ``max_retries`` times
  (likewise for workers that die outright);
* **signals** -- inside a :func:`trap_signals` block, SIGINT/SIGTERM ask
  the runner to stop at the next chunk boundary; everything finished so
  far is already on disk and the outcome reports ``interrupted=True``.
"""

from __future__ import annotations

import os
import pickle
import signal as _signal
import tempfile
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.engine import shm as _shm
from repro.engine.ring import ring_scope
from repro.runner import tasks as _tasks
from repro.runner.checkpoint import SCHEMA_VERSION, CheckpointStore
from repro.runner.chunking import ChunkPlan, clamp_chunks
from repro.runner.faults import FaultInjector
from repro.runner.supervision import (
    FATAL,
    ResourceGuards,
    ResourceMonitor,
    RetryPolicy,
    Supervisor,
    chunk_retry_key,
    validate_payload,
)
from repro.telemetry.convergence import ConvergenceConfig, ConvergenceMonitor
from repro.telemetry.recorder import get_recorder


# ------------------------------------------------------------------- signals


class _SignalTrap:
    def __init__(self) -> None:
        self.triggered: Optional[int] = None


_ACTIVE_TRAP: Optional[_SignalTrap] = None


@contextmanager
def trap_signals(signums=(_signal.SIGINT, _signal.SIGTERM)):
    """Convert SIGINT/SIGTERM into a cooperative stop request.

    While the context is active, the first signal sets a flag that
    :func:`stop_requested` exposes (the runner checks it between chunks);
    a second SIGINT raises :class:`KeyboardInterrupt` as an escape hatch.
    Previous handlers are restored on exit.
    """
    global _ACTIVE_TRAP
    trap = _SignalTrap()

    def _handler(signum, frame):
        if trap.triggered is not None and signum == _signal.SIGINT:
            raise KeyboardInterrupt
        trap.triggered = signum

    previous = {}
    for signum in signums:
        previous[signum] = _signal.signal(signum, _handler)
    outer, _ACTIVE_TRAP = _ACTIVE_TRAP, trap
    try:
        yield trap
    finally:
        _ACTIVE_TRAP = outer
        for signum, handler in previous.items():
            _signal.signal(signum, handler)


def stop_requested() -> bool:
    """True once a trapped SIGINT/SIGTERM has been received."""
    return _ACTIVE_TRAP is not None and _ACTIVE_TRAP.triggered is not None


# ----------------------------------------------------------------- execution


def _execute_chunk(
    task,
    index: int,
    n: int,
    seed,
    injector: Optional[FaultInjector],
    attempt: int = 1,
    heartbeat: Optional[Tuple[str, float]] = None,
    profile: bool = False,
    slab: Optional[str] = None,
    ring: int = 0,
):
    """Run one chunk (in the parent or a pool worker).

    Returns ``(index, result, meta)`` where ``meta`` always carries the
    executing process's pid as ``worker_id`` and -- when ``profile`` is
    set -- the chunk's drained engine phase timings (``phases`` seconds
    per stage, ``engines`` call counts).  The parent turns the meta into
    the ``chunk_end``/``phase_profile`` events, which is how phase
    profiles escape pool workers whose recorder is a null
    :class:`WorkerHeartbeat` with no event log of its own.

    ``heartbeat`` is ``(path, interval)``: when set, a
    :class:`~repro.runner.supervision.WorkerHeartbeat` recorder is
    installed for the duration of the chunk so the engine round loops'
    ``tick()`` calls touch the per-chunk heartbeat file the parent's
    watchdog observes.  Installed *before* the injector hook runs, so an
    injected hang is exactly what it simulates: a worker that stopped
    heartbeating mid-chunk.

    ``slab`` (pool mode, shm transport) names the shared-memory segment
    to write the payload into: ``result`` is then a tiny
    :class:`~repro.engine.shm.SlabRef` instead of the pickled payload and
    ``meta["transport"]`` is ``"shm"``.  Payload kinds without a slab
    layout return the payload itself with ``meta["transport"]`` set to
    ``"pickle-fallback"`` so the parent can flag the silent downgrade.

    ``ring > 1`` enables the interleaved walker-ring loop
    (:mod:`repro.engine.ring`) for the chunk's engine calls.  Applied
    identically in serial and pooled execution, so a run's results stay
    bit-identical across worker counts for a fixed ``ring`` setting.
    """
    from repro.telemetry.recorder import get_recorder as _get_recorder

    previous = None
    if heartbeat is not None:
        from repro.runner.supervision import WorkerHeartbeat
        from repro.telemetry.recorder import set_recorder

        path, interval = heartbeat
        previous = set_recorder(WorkerHeartbeat(path, interval))
    try:
        recorder = _get_recorder()
        if (
            profile
            and not recorder.enabled
            and getattr(recorder, "profile", None) is None
        ):
            # Pool worker: its (null) recorder has no accumulator of its
            # own.  Attach one so the engines time their phases; it stays
            # for the worker's lifetime and drain() resets it per chunk.
            from repro.telemetry.profile import PhaseAccumulator

            recorder.profile = PhaseAccumulator()
        if injector is not None:
            injector.in_worker(index, attempt)
        with ring_scope(ring):
            payload = task(n, seed)
        meta: Dict[str, Any] = {"worker_id": os.getpid()}
        if profile:
            accumulator = getattr(_get_recorder(), "profile", None)
            drained = accumulator.drain() if accumulator is not None else None
            if drained is not None:
                meta["phases"], meta["engines"] = drained
        result: Any = payload
        if slab is not None:
            ref = _shm.encode_payload(payload, slab)
            if ref is not None:
                result = ref
                meta["transport"] = "shm"
            else:
                meta["transport"] = "pickle-fallback"
        return index, result, meta
    finally:
        if heartbeat is not None:
            set_recorder(previous)


def _pool_initializer(descriptors) -> None:
    """Attach the run's published CDF tables in a fresh pool worker.

    Passed as the :class:`ProcessPoolExecutor` initializer with the
    registry's picklable descriptors, so *every* pool this Runner builds
    -- including rebuilds after a broken pool or a hung-chunk kill --
    re-attaches the same shared segments instead of re-deriving tables.
    A vanished segment is skipped (the worker derives locally).
    """
    if descriptors:
        _shm.attach_tables(descriptors)


@dataclass(frozen=True)
class Job:
    """One task execution request for :meth:`Runner.run_many`.

    A job is the unit the grid scheduler works with: a picklable task, a
    sample size, a root seed, and a label naming its checkpoint
    subdirectory and telemetry stream.  ``Runner.run(task, n, seed)`` is
    exactly ``run_many([Job(task, n, seed)])[0]``.
    """

    task: Any
    n_total: int
    seed: int
    label: str = "sample"


@dataclass
class _JobState:
    """Mutable per-job bookkeeping shared by the scheduling loops."""

    task: Any
    plan: ChunkPlan
    label: str
    store: Optional[CheckpointStore]
    completed: Dict[int, Any]
    quarantined: List[str]
    notes: List[str]
    resumed: int
    monitor: Any
    sizes: List[int]
    seeds: List[Any]
    started: float
    retries: int = 0
    #: Per-job stop reason ("converged"/"quarantined"); global stops are
    #: passed separately.
    reason: Optional[str] = None
    attempts: Dict[int, int] = field(default_factory=dict)
    #: Total chunk failures (any chunk, any reason) -- feeds the per-point
    #: circuit breaker.
    failures: int = 0
    quarantine_after: Optional[int] = None

    @property
    def stopped(self) -> bool:
        return self.reason is not None


@dataclass
class RunOutcome:
    """What one :meth:`Runner.run` call produced, and how it got there."""

    payload: Any
    plan: ChunkPlan
    completed_chunks: int
    total_chunks: int
    resumed_chunks: int = 0
    degraded: bool = False
    interrupted: bool = False
    converged: bool = False
    quarantined: List[str] = field(default_factory=list)
    retries: int = 0
    notes: List[str] = field(default_factory=list)
    #: The per-point circuit breaker tripped: this job was abandoned as
    #: poison and its payload merges only the chunks that did complete.
    quarantined_point: bool = False
    #: Resource watermarks degraded checkpointing to manifest-only writes.
    storage_degraded: bool = False

    @property
    def complete(self) -> bool:
        return self.completed_chunks == self.total_chunks


class ChunkFailedError(RuntimeError):
    """A chunk kept failing after exhausting its retry budget."""


class Runner:
    """Chunked, checkpointed, deadline-aware Monte-Carlo execution.

    Parameters
    ----------
    checkpoint_dir:
        Root directory for durable chunk checkpoints (one subdirectory per
        ``run()`` label).  ``None`` disables persistence (chunked execution,
        deadline, and retry still work).
    n_chunks:
        Default chunk count; clamped to ``[1, n_total]`` per call.
    workers:
        0 runs chunks serially in-process; ``>= 1`` runs them in a process
        pool of that size (isolation: a dying or hanging worker cannot take
        the parent down).
    max_seconds:
        Walltime budget shared across all ``run()`` calls of this Runner
        (the clock starts at the first call).  Expiry degrades, never raises.
    chunk_timeout:
        Per-chunk *liveness* walltime (pool mode only): workers heartbeat
        from inside the engine round loop, and a chunk silent for longer
        than this is declared hung by the watchdog, its pool killed, and
        the chunk retried (a slow-but-heartbeating straggler is left
        alone).
    max_retries:
        Retry budget per chunk for worker death / timeout / task errors
        (shorthand for ``retry_policy.max_attempts = max_retries + 1``).
    backoff_base:
        First retry sleeps this many seconds, doubling per attempt.
    retry_policy:
        Full declarative control over retry behaviour
        (:class:`~repro.runner.supervision.RetryPolicy`): attempt budget,
        backoff shape, deterministic jitter, error classification, and
        the per-point circuit breaker (``quarantine_after``).  When given
        it supersedes ``max_retries``/``backoff_base``.
    resource_guards:
        Optional :class:`~repro.runner.supervision.ResourceGuards`
        disk/memory watermarks; tripping one degrades checkpointing to
        manifest-only writes (``incident`` events, never a crash).
    resume:
        Allow continuing an existing checkpoint directory.  Without it, a
        populated directory raises (no silent mixing of runs).
    fault_injector:
        Optional :class:`~repro.runner.faults.FaultInjector` for tests.
    convergence:
        Optional :class:`~repro.telemetry.convergence.ConvergenceConfig`
        enabling sequential stopping: once the running Wilson interval of
        a Bernoulli payload (``.n_hits``/``.n``) is tighter than
        ``rel_ci_width``, the run finishes early with ``converged=True``
        (CLI: ``--stop-when-ci``/``--min-chunks``).  Even without it, a
        live telemetry recorder gets per-chunk ``estimate`` events and
        stall/drift ``incident`` events from a default monitor.
    recorder:
        Telemetry recorder for run/chunk/retry/deadline events and
        metrics.  ``None`` (default) uses the process-global
        :func:`repro.telemetry.get_recorder` seam, a no-op unless the
        CLI (``--log-json``/``--metrics-out``/``--progress``) or a test
        enabled telemetry.
    pool_transport:
        ``"shm"`` / ``"pickle"`` / ``"auto"`` -- how pooled chunk results
        cross the pool boundary and whether CDF tables are published to
        workers via shared memory (:mod:`repro.engine.shm`).  ``"auto"``
        (default) picks shm where available.  Bit-identical either way.
    ring_rounds:
        ``> 1`` runs the engines' interleaved walker-ring loop with this
        block depth (:mod:`repro.engine.ring`), in serial and pooled
        execution alike.  0 (default) keeps the legacy round loop.
    """

    def __init__(
        self,
        checkpoint_dir=None,
        n_chunks: int = 8,
        workers: int = 0,
        max_seconds: Optional[float] = None,
        chunk_timeout: Optional[float] = None,
        max_retries: int = 3,
        backoff_base: float = 0.05,
        resume: bool = False,
        fault_injector: Optional[FaultInjector] = None,
        convergence: Optional[ConvergenceConfig] = None,
        recorder=None,
        retry_policy: Optional[RetryPolicy] = None,
        resource_guards: Optional[ResourceGuards] = None,
        heartbeat_interval: Optional[float] = None,
        pool_transport: str = "auto",
        ring_rounds: int = 0,
    ) -> None:
        if n_chunks < 1:
            raise ValueError(f"n_chunks must be positive, got {n_chunks}")
        if workers < 0:
            raise ValueError(f"workers must be non-negative, got {workers}")
        if pool_transport not in ("shm", "pickle", "auto"):
            raise ValueError(
                f"pool_transport must be 'shm', 'pickle' or 'auto', got {pool_transport!r}"
            )
        if ring_rounds < 0:
            raise ValueError(f"ring_rounds must be non-negative, got {ring_rounds}")
        self.checkpoint_dir = Path(checkpoint_dir) if checkpoint_dir is not None else None
        self.n_chunks = int(n_chunks)
        self.workers = int(workers)
        self.max_seconds = max_seconds
        self.chunk_timeout = chunk_timeout
        self.max_retries = int(max_retries)
        self.backoff_base = float(backoff_base)
        self.retry_policy = (
            retry_policy
            if retry_policy is not None
            else RetryPolicy(
                max_attempts=self.max_retries + 1, backoff_base=self.backoff_base
            )
        )
        self.resource_guards = resource_guards
        self.heartbeat_interval = heartbeat_interval
        #: Chunk-result transport for pool mode: "shm" moves payloads as
        #: fixed-layout shared-memory slabs and publishes CDF tables to
        #: workers zero-copy, "pickle" is the legacy pipe transport, and
        #: "auto" (default) uses shm where the platform supports it.
        #: Transport never changes the merged sample -- slab round-trips
        #: are bit-exact -- only how the bytes move.
        self.pool_transport = pool_transport
        #: Engine block depth for the interleaved walker-ring loop; 0/1
        #: keeps the legacy round-by-round loop.  Applied in serial and
        #: pooled execution alike (worker-count invariance holds per
        #: setting; samples differ *between* settings -- see
        #: repro.engine.ring).
        self.ring_rounds = int(ring_rounds)
        #: Segment-name prefix of the last pooled run's shm transport
        #: (tests / leak audits); None until a pooled shm run happens.
        self.shm_prefix: Optional[str] = None
        self.resume = bool(resume)
        self.fault_injector = fault_injector
        self.convergence = convergence
        self._recorder = recorder
        self._deadline: Optional[float] = None
        self._labels_used: Dict[str, int] = {}
        #: Aggregate flags over every run() of this Runner (CLI exit codes).
        self.degraded = False
        self.interrupted = False
        self.converged = False
        self.quarantined_points = 0
        self.storage_degraded = False

    # ----------------------------------------------------------- small utils

    def _start_clock(self) -> None:
        if self.max_seconds is not None and self._deadline is None:
            self._deadline = time.monotonic() + float(self.max_seconds)

    def _out_of_time(self) -> bool:
        return self._deadline is not None and time.monotonic() >= self._deadline

    def _unique_label(self, label: str) -> str:
        safe = "".join(c if (c.isalnum() or c in "._-") else "_" for c in label) or "sample"
        count = self._labels_used.get(safe, 0)
        self._labels_used[safe] = count + 1
        return safe if count == 0 else f"{safe}-{count + 1}"

    def _store_for(self, label: str, recorder) -> Optional[CheckpointStore]:
        if self.checkpoint_dir is None:
            return None
        return CheckpointStore(self.checkpoint_dir / label, recorder=recorder)

    def _write_checkpoint(self, store, task, index: int, payload, n: int, rec, label) -> None:
        injector = self.fault_injector
        if injector is not None:
            injector.before_write(index)
        path = store.write_chunk(index, task.kind, payload, n) if store else None
        if path is not None and rec.enabled:
            rec.event("checkpoint", label=label, chunk=index, path=str(path))
            rec.metrics.counter("runner.checkpoints_written").add()
        if injector is not None:
            injector.after_write(index, path)

    def _screen_payload(self, state: "_JobState", index: int, attempt: int, payload):
        """Validate a chunk's return value before it is trusted.

        Runs the injector's ``on_return`` hook first (the chaos harness's
        corrupted-return fault lives there), then checks the payload's
        sample size against the chunk plan.  A bad payload raises
        :class:`~repro.runner.supervision.CorruptPayloadError`, which the
        callers route through the normal (transient) retry path.
        """
        injector = self.fault_injector
        hook = getattr(injector, "on_return", None) if injector is not None else None
        if hook is not None:
            payload = hook(index, attempt, payload)
        return validate_payload(payload, state.sizes[index], index)

    def _handle_failure(
        self, state: "_JobState", index: int, reason: str, rec, error=None
    ) -> str:
        """Classify one chunk failure; returns ``"retry"``/``"quarantined"``.

        Bumps the chunk's attempt count and the job's failure total, then
        applies the :class:`RetryPolicy`: a transient failure inside the
        attempt budget retries (the *caller* requeues and sleeps the
        policy backoff); an exhausted or fatal one either trips the
        per-point circuit breaker (job quarantined, siblings continue) or
        -- with no breaker configured -- raises :class:`ChunkFailedError`.
        """
        policy = self.retry_policy
        state.attempts[index] = state.attempts.get(index, 0) + 1
        state.failures += 1
        attempts = state.attempts[index]
        fatal = error is not None and policy.classify(error) == FATAL
        exhausted = fatal or attempts >= policy.max_attempts
        breaker = state.quarantine_after
        if exhausted or (breaker is not None and state.failures >= breaker):
            if breaker is not None:
                self._quarantine_point(state, index, reason, rec)
                return "quarantined"
            raise ChunkFailedError(
                f"chunk {index} failed {attempts} times (last: {reason})"
            )
        state.retries += 1
        state.notes.append(f"retrying chunk {index} (attempt {attempts}: {reason})")
        rec.event(
            "retry", label=state.label, chunk=index, attempt=attempts, reason=reason
        )
        rec.metrics.counter("runner.retries").add()
        return "retry"

    def _quarantine_point(self, state: "_JobState", index: int, reason: str, rec) -> None:
        """Trip the circuit breaker: abandon this job, keep its siblings."""
        state.reason = "quarantined"
        state.notes.append(
            f"point quarantined after {state.failures} chunk failure(s) "
            f"(last: chunk {index}: {reason})"
        )
        rec.event(
            "quarantine",
            scope="point",
            label=state.label,
            chunk=index,
            failures=state.failures,
            reason=reason,
            completed=len(state.completed),
            total=state.plan.n_chunks,
        )
        rec.metrics.counter("runner.points_quarantined").add()

    def _check_resources(
        self, monitor: Optional[ResourceMonitor], states, rec, force: bool = False
    ) -> None:
        """Probe the disk/memory watermarks; degrade checkpointing once."""
        if monitor is None or not monitor.check(rec, force=force):
            return
        self.storage_degraded = True
        detail = "; ".join(monitor.reasons)
        for state in states:
            if state.store is not None and not state.store.degraded:
                state.store.degraded = True
                state.notes.append(
                    f"checkpointing degraded to manifests only ({detail})"
                )

    def _stop_reason(self, rec, label: str, completed: int, total: int) -> Optional[str]:
        """Check the two between-chunk stop conditions, emitting the event.

        Returns ``"signal"``/``"deadline"`` (and records it) or ``None``.
        Each caller returns immediately on a non-None reason, so the
        event is emitted once per stop, not once per remaining chunk.
        """
        reason = None
        if stop_requested():
            reason = "signal"
        elif self._out_of_time():
            reason = "deadline"
        if reason is not None:
            rec.event(reason, label=label, completed=completed, total=total)
            rec.metrics.counter(f"runner.{reason}_stops").add()
        return reason

    def _converged_stop(self, rec, label: str, monitor, completed: int, total: int) -> str:
        """Record a successful sequential stop (CI target met) once."""
        rec.event(
            "converged", label=label, completed=completed, total=total,
            **monitor.stop_fields(),
        )
        rec.metrics.counter("runner.converged_stops").add()
        return "converged"

    def _build_monitor(self, rec, label: str, completed: Dict[int, Any]):
        """A convergence monitor when stopping or telemetry wants one.

        Resumed chunks are folded in silently so a resumed run continues
        from the correct running totals (and may even stop immediately if
        the checkpointed data already meets the CI target).
        """
        if self.convergence is None and not rec.enabled:
            return None
        config = self.convergence if self.convergence is not None else ConvergenceConfig()
        monitor = ConvergenceMonitor(config, rec, label)
        for index in sorted(completed):
            monitor.observe_resumed(completed[index])
        return monitor

    # ----------------------------------------------------- prepare / finalize

    def _prepare(self, job: Job, rec) -> _JobState:
        """Build a job's plan/store/monitor and emit its ``run_start``."""
        started = time.monotonic()
        plan = ChunkPlan(
            n_total=int(job.n_total),
            n_chunks=clamp_chunks(job.n_total, self.n_chunks),
            seed=int(job.seed),
        )
        label = self._unique_label(job.label)
        rec.event(
            "run_start",
            label=label,
            kind=job.task.kind,
            n_total=plan.n_total,
            n_chunks=plan.n_chunks,
            seed=plan.seed,
            workers=self.workers,
        )
        store = self._store_for(label, rec)
        notes: List[str] = []
        quarantined: List[str] = []
        completed: Dict[int, Any] = {}
        if store is not None:
            manifest = {
                "schema_version": SCHEMA_VERSION,
                "kind": job.task.kind,
                "task": _tasks.fingerprint(job.task),
                **plan.describe(),
            }
            had_checkpoint = store.initialise(manifest, resume=self.resume)
            if had_checkpoint:
                state = store.load_completed(job.task.kind)
                completed = {
                    index: payload
                    for index, payload in state.completed.items()
                    if 0 <= index < plan.n_chunks
                }
                quarantined = [str(p) for p in state.quarantined]
                if completed:
                    notes.append(
                        f"resumed {len(completed)}/{plan.n_chunks} chunks from {store.directory}"
                    )
                if quarantined:
                    notes.append(
                        f"quarantined {len(quarantined)} damaged checkpoint file(s)"
                    )
        resumed = len(completed)
        if resumed or quarantined:
            rec.event(
                "resume",
                label=label,
                resumed=resumed,
                quarantined=len(quarantined),
                total=plan.n_chunks,
            )
            rec.metrics.counter("runner.chunks_resumed").add(resumed)
        monitor = self._build_monitor(rec, label, completed)
        return _JobState(
            task=job.task,
            plan=plan,
            label=label,
            store=store,
            completed=completed,
            quarantined=quarantined,
            notes=notes,
            resumed=resumed,
            monitor=monitor,
            sizes=list(plan.sizes()),
            seeds=list(plan.child_seeds()),
            started=started,
        )

    def _finalize(self, state: _JobState, rec, global_reason: Optional[str]) -> RunOutcome:
        """Merge a job's chunks, classify the outcome, emit ``run_end``."""
        plan, completed, notes = state.plan, state.completed, state.notes
        reason = state.reason or global_reason
        converged = reason == "converged"
        quarantined_point = reason == "quarantined"
        resolved = converged or quarantined_point
        interrupted = reason is not None and not resolved and stop_requested()
        degraded = (
            len(completed) < plan.n_chunks and not interrupted and not resolved
        )
        storage_degraded = bool(state.store is not None and state.store.degraded)
        if converged and len(completed) < plan.n_chunks:
            notes.append(
                f"converged after {len(completed)}/{plan.n_chunks} chunks: "
                f"CI half-width target met (--stop-when-ci)"
            )
        if interrupted:
            notes.append(
                f"interrupted by signal after {len(completed)}/{plan.n_chunks} chunks; "
                "completed chunks are checkpointed"
            )
        elif degraded:
            notes.append(
                f"walltime budget exhausted after {len(completed)}/{plan.n_chunks} chunks; "
                "returning censored partial sample (degraded=True)"
            )
        self.degraded = self.degraded or degraded
        self.interrupted = self.interrupted or interrupted
        self.converged = self.converged or converged
        self.quarantined_points += int(quarantined_point)
        self.storage_degraded = self.storage_degraded or storage_degraded
        run_seconds = time.monotonic() - state.started
        rec.event(
            "run_end",
            label=state.label,
            completed=len(completed),
            total=plan.n_chunks,
            resumed=state.resumed,
            retries=state.retries,
            quarantined=len(state.quarantined),
            degraded=degraded,
            interrupted=interrupted,
            converged=converged,
            point_quarantined=quarantined_point,
            storage_degraded=storage_degraded,
            seconds=round(run_seconds, 6),
        )
        if rec.enabled:
            walks_done = sum(state.sizes[i] for i in completed)
            rec.metrics.counter("runner.runs").add()
            rec.metrics.counter("runner.walks_completed").add(walks_done)
            if run_seconds > 0:
                rec.metrics.gauge("runner.samples_per_sec").set(
                    round(walks_done / run_seconds, 3)
                )
        return RunOutcome(
            payload=state.task.merge(plan, completed),
            plan=plan,
            completed_chunks=len(completed),
            total_chunks=plan.n_chunks,
            resumed_chunks=state.resumed,
            degraded=degraded,
            interrupted=interrupted,
            converged=converged,
            quarantined=state.quarantined,
            retries=state.retries,
            notes=notes,
            quarantined_point=quarantined_point,
            storage_degraded=storage_degraded,
        )

    # ------------------------------------------------------------------- run

    def run(self, task, n_total: int, seed: int, label: str = "sample") -> RunOutcome:
        """Execute ``task`` over ``n_total`` walks and merge the chunks.

        Deterministic for fixed ``(seed, n_total, n_chunks)`` regardless of
        interruption, resume, or worker count.  Returns a
        :class:`RunOutcome`; a deadline or signal yields a *partial* merged
        payload with ``degraded``/``interrupted`` set instead of raising.
        """
        job = Job(task=task, n_total=int(n_total), seed=int(seed), label=label)
        return self.run_many([job])[0]

    def run_many(
        self, jobs: Sequence[Job], quarantine_after: Optional[int] = None
    ) -> List[RunOutcome]:
        """Execute several jobs over one shared pool, deadline, and stream.

        This is the grid scheduler behind :mod:`repro.sweep`: all jobs'
        chunks feed one queue, interleaved round-robin (chunk 0 of every
        job, then chunk 1, ...), so every grid point makes early progress
        and a per-job convergence monitor that resolves a point frees its
        remaining chunks' worker slots for unresolved points.  Outcomes
        are returned in job order.

        Per-job results are bit-identical to running each job alone (same
        ``(seed, n_total, n_chunks)``), serial or pooled: every chunk's
        seed is a pure function of its own job's plan, never of the
        scheduling order.

        ``quarantine_after`` arms the per-point circuit breaker for this
        call (overriding ``retry_policy.quarantine_after``): a job that
        accumulates that many chunk failures is abandoned as poison --
        ``RunOutcome.quarantined_point`` -- while its siblings complete.
        """
        jobs = list(jobs)
        if not jobs:
            return []
        self._start_clock()
        rec = self._recorder if self._recorder is not None else get_recorder()
        breaker = (
            quarantine_after
            if quarantine_after is not None
            else self.retry_policy.quarantine_after
        )
        if breaker is not None and breaker < 1:
            breaker = None
        states = [self._prepare(job, rec) for job in jobs]
        for state in states:
            state.quarantine_after = breaker
        resources = None
        if self.resource_guards is not None and self.resource_guards.enabled:
            resources = ResourceMonitor(
                self.resource_guards, self.checkpoint_dir or Path(".")
            )
            # Preflight: a disk already below the watermark degrades the
            # run's checkpointing before the first chunk is attempted.
            self._check_resources(resources, states, rec, force=True)
        global_reason: Optional[str] = None
        if any(len(s.completed) < s.plan.n_chunks for s in states):
            if self.workers >= 1:
                global_reason = self._run_pooled(states, rec, resources)
            else:
                global_reason = self._run_serial(states, rec, resources)
        return [self._finalize(state, rec, global_reason) for state in states]

    # ------------------------------------------------------------ scheduling

    @staticmethod
    def _interleaved(states: Sequence[_JobState]) -> List[Tuple[_JobState, int]]:
        """Round-robin (job, chunk) schedule over all pending chunks."""
        queue: List[Tuple[_JobState, int]] = []
        max_chunks = max((s.plan.n_chunks for s in states), default=0)
        for chunk in range(max_chunks):
            for state in states:
                if chunk < state.plan.n_chunks and chunk not in state.completed:
                    queue.append((state, chunk))
        return queue

    @staticmethod
    def _profiling(rec) -> bool:
        """True when the parent recorder wants engine phase profiles."""
        return rec.enabled and getattr(rec, "profile", None) is not None

    def _run_serial(
        self, states: Sequence[_JobState], rec, resources: Optional[ResourceMonitor] = None
    ) -> Optional[str]:
        """Run all pending chunks in-process; returns a global stop reason."""
        profile = self._profiling(rec)
        for state, index in self._interleaved(states):
            if state.stopped:
                continue
            reason = self._stop_reason(
                rec, state.label, len(state.completed), state.plan.n_chunks
            )
            if reason is not None:
                return reason
            if state.monitor is not None and state.monitor.should_stop():
                state.reason = self._converged_stop(
                    rec, state.label, state.monitor,
                    len(state.completed), state.plan.n_chunks,
                )
                continue
            self._check_resources(resources, states, rec)
            while True:
                attempt = state.attempts.get(index, 0) + 1
                # worker_id on chunk_start is serial-only: a pooled
                # chunk's worker is unknown until its result comes back.
                rec.event(
                    "chunk_start", label=state.label, chunk=index,
                    n=state.sizes[index], attempt=attempt, worker_id=os.getpid(),
                )
                chunk_started = time.monotonic()
                try:
                    _, payload, meta = _execute_chunk(
                        state.task, index, state.sizes[index], state.seeds[index],
                        self.fault_injector, attempt, None, profile,
                        None, self.ring_rounds,
                    )
                    payload = self._screen_payload(state, index, attempt, payload)
                except Exception as exc:
                    verdict = self._handle_failure(
                        state, index, f"{type(exc).__name__}: {exc}", rec, exc
                    )
                    if verdict == "quarantined":
                        break
                    time.sleep(
                        self.retry_policy.backoff(
                            state.attempts[index],
                            chunk_retry_key(state.label, index),
                        )
                    )
                    continue
                # Outside the retry guard on purpose: a checkpoint-hook
                # fault (FaultInjected) simulates parent death and must
                # propagate, not be retried.
                self._write_checkpoint(
                    state.store, state.task, index, payload, state.sizes[index],
                    rec, state.label,
                )
                state.completed[index] = payload
                chunk_seconds = time.monotonic() - chunk_started
                self._record_chunk_end(
                    rec, state.label, index, state.sizes[index], chunk_seconds,
                    attempt, meta=meta,
                )
                if state.monitor is not None:
                    state.monitor.observe_chunk(index, payload, chunk_seconds)
                break
        return "signal" if stop_requested() else None

    def _record_chunk_end(
        self,
        rec,
        label: str,
        index: int,
        n: int,
        seconds: float,
        attempt: int,
        meta: Optional[Dict[str, Any]] = None,
        ipc: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Emit the chunk's phase_profile (if any) and chunk_end events.

        ``meta`` is :func:`_execute_chunk`'s third return value
        (``worker_id`` plus drained phase timings); ``ipc`` is the
        parent-side serialization accounting for pooled results.  The
        phase_profile goes first so the chunk_end flush makes both
        durable together.
        """
        meta = meta or {}
        worker_id = meta.get("worker_id")
        worker_fields = {} if worker_id is None else {"worker_id": worker_id}
        phases = meta.get("phases")
        if phases:
            rec.event(
                "phase_profile",
                label=label,
                chunk=index,
                attempt=attempt,
                phases=phases,
                engines=meta.get("engines") or {},
                **worker_fields,
            )
        rec.event(
            "chunk_end",
            label=label,
            chunk=index,
            n=n,
            seconds=round(seconds, 6),
            attempt=attempt,
            **worker_fields,
            **(ipc or {}),
        )
        if rec.enabled:
            rec.metrics.counter("runner.chunks_completed").add()
            rec.metrics.histogram("runner.chunk_seconds").observe(seconds)
            for phase, phase_seconds in (phases or {}).items():
                rec.metrics.counter(f"engine.phase_seconds.{phase}").add(
                    phase_seconds
                )
            if ipc:
                rec.metrics.counter("runner.ipc_bytes").add(ipc.get("ipc_bytes", 0))
                rec.metrics.counter("runner.pickle_seconds").add(
                    ipc.get("pickle_seconds", 0.0)
                )
                rec.metrics.counter("runner.unpickle_seconds").add(
                    ipc.get("unpickle_seconds", 0.0)
                )
                if ipc.get("shm_bytes"):
                    rec.metrics.counter("runner.shm_bytes").add(ipc["shm_bytes"])
                if ipc.get("shm_seconds"):
                    rec.metrics.counter("runner.shm_seconds").add(ipc["shm_seconds"])
                if ipc.get("transport") == "pickle-fallback":
                    rec.metrics.counter("runner.shm_fallbacks").add()

    # -------------------------------------------------------------- pool mode

    def _kill_pool(self, executor: ProcessPoolExecutor) -> None:
        # ProcessPoolExecutor has no public "abandon a running worker": a
        # hung or poisoned worker must be killed or shutdown() blocks on it.
        for process in list(getattr(executor, "_processes", {}).values()):
            process.kill()
        executor.shutdown(wait=False, cancel_futures=True)

    def _run_pooled(
        self, states: Sequence[_JobState], rec, resources: Optional[ResourceMonitor] = None
    ) -> Optional[str]:
        """Run all pending chunks over one shared process pool.

        Returns a global stop reason ("deadline"/"signal") or None; per-job
        convergence stops are recorded on each job's ``_JobState.reason``
        and simply release that job's queued chunks back to the pool.

        With ``chunk_timeout`` set, a :class:`Supervisor` watchdog watches
        per-chunk heartbeat files that workers touch from inside the
        engine round loops; a chunk silent past the timeout gets its pool
        killed and is rescheduled from its original seed (bit-identical),
        while a slow-but-heartbeating straggler is left alone.
        """
        queue = self._interleaved(states)
        profile = self._profiling(rec)
        use_shm = self.pool_transport != "pickle" and _shm.shm_available()
        if self.pool_transport == "shm" and not use_shm:
            # Explicit shm on a host without working named shared memory:
            # degrade to pickle loudly, never fail the run over transport.
            rec.event(
                "incident", kind="shm_unavailable", action="pickle-transport"
            )
            for state in states:
                state.notes.append(
                    "shm transport unavailable on this host; using pickle"
                )
        registry: Optional[_shm.SharedTableRegistry] = None
        table_descriptors: Tuple[_shm.TableSegment, ...] = ()
        if use_shm:
            # Publish every job's CDF tables once; workers of every pool
            # this run builds (rebuilds included) attach the same
            # segments via the pool initializer.
            registry = _shm.SharedTableRegistry()
            self.shm_prefix = registry.prefix
            registry.publish_for_tasks([s.task for s in states])
            table_descriptors = registry.descriptors()
            if rec.enabled and table_descriptors:
                rec.event(
                    "shm_tables",
                    tables=len(table_descriptors),
                    bytes=registry.nbytes,
                )
                rec.metrics.counter("runner.shm_table_bytes").add(registry.nbytes)
        executor: Optional[ProcessPoolExecutor] = None
        # future -> (job state, chunk index, submit time, slab name)
        inflight: Dict[Any, Tuple[_JobState, int, float, Optional[str]]] = {}
        poll = 0.05 if self.chunk_timeout is None else min(0.05, self.chunk_timeout / 4)
        supervisor: Optional[Supervisor] = None
        hb_interval = 0.0
        if self.chunk_timeout is not None:
            supervisor = Supervisor(
                tempfile.mkdtemp(prefix="repro-hb-"), float(self.chunk_timeout)
            ).start()
            hb_interval = (
                float(self.heartbeat_interval)
                if self.heartbeat_interval is not None
                else max(0.02, min(0.5, float(self.chunk_timeout) / 5.0))
            )

        def requeue(entries) -> None:
            """Handle failed (job, chunk, reason, error) tuples.

            Retryable chunks go back to the queue head and the policy
            backoff is slept once (the longest of the batch); exhausted
            ones quarantine their point or raise per the policy.
            """
            delay = 0.0
            for state, index, reason, error in entries:
                if state.stopped:
                    continue
                verdict = self._handle_failure(state, index, reason, rec, error)
                if verdict == "quarantined":
                    continue
                queue.insert(0, (state, index))
                delay = max(
                    delay,
                    self.retry_policy.backoff(
                        state.attempts[index], chunk_retry_key(state.label, index)
                    ),
                )
            # A quarantined point's remaining chunks are dropped so its
            # slots go to healthy jobs.
            queue[:] = [(s, i) for s, i in queue if not s.stopped]
            if delay > 0:
                time.sleep(delay)

        def rebuild_pool(label: str, reason: str) -> None:
            rec.event("pool_rebuild", label=label, reason=reason)
            rec.metrics.counter("runner.pool_rebuilds").add()

        try:
            while queue or inflight:
                probe = next((s for s in states if not s.stopped), states[0])
                reason = self._stop_reason(
                    rec, probe.label, len(probe.completed), probe.plan.n_chunks
                )
                if reason is not None:
                    return reason
                newly_stopped = False
                for state in states:
                    if state.stopped or state.monitor is None:
                        continue
                    if state.monitor.should_stop():
                        # The job's in-flight chunks are left to finish (or
                        # die with the pool); its queued chunks are dropped
                        # so the freed slots go to unresolved jobs.
                        state.reason = self._converged_stop(
                            rec, state.label, state.monitor,
                            len(state.completed), state.plan.n_chunks,
                        )
                        newly_stopped = True
                if newly_stopped:
                    queue = [(s, i) for s, i in queue if not s.stopped]
                if all(s.stopped for s in states):
                    # Every job resolved: abandon in-flight chunks (the
                    # finally block kills the pool); completed chunks are
                    # checkpointed.
                    return None
                self._check_resources(resources, states, rec)
                if executor is None:
                    executor = ProcessPoolExecutor(
                        max_workers=self.workers,
                        initializer=_pool_initializer,
                        initargs=(table_descriptors,),
                    )
                while queue and len(inflight) < self.workers:
                    state, index = queue.pop(0)
                    attempt = state.attempts.get(index, 0) + 1
                    # The parent names the chunk's result slab up front so
                    # it can always unlink it, even if the worker dies
                    # mid-write; a fresh attempt gets a fresh name.
                    slab = (
                        _shm.slab_name(registry.prefix, state.label, index, attempt)
                        if registry is not None
                        else None
                    )
                    heartbeat = None
                    if supervisor is not None:
                        heartbeat = (
                            supervisor.register(state.label, index, slab=slab),
                            hb_interval,
                        )
                    future = executor.submit(
                        _execute_chunk,
                        state.task,
                        index,
                        state.sizes[index],
                        state.seeds[index],
                        self.fault_injector,
                        attempt,
                        heartbeat,
                        profile,
                        slab,
                        self.ring_rounds,
                    )
                    inflight[future] = (state, index, time.monotonic(), slab)
                    rec.event(
                        "chunk_start",
                        label=state.label,
                        chunk=index,
                        n=state.sizes[index],
                        attempt=attempt,
                    )
                done, _ = wait(list(inflight), timeout=poll, return_when=FIRST_COMPLETED)
                broken: List[Tuple[_JobState, int]] = []
                for future in done:
                    state, index, _submitted, slab = inflight.pop(future)
                    if supervisor is not None:
                        supervisor.unregister(state.label, index)
                    attempt = state.attempts.get(index, 0) + 1
                    slab_ref: Optional[_shm.SlabRef] = None
                    decode_seconds = 0.0
                    try:
                        _, result, meta = future.result()
                        if isinstance(result, _shm.SlabRef):
                            # shm transport: the worker shipped a handle;
                            # copy the payload out and unlink the slab.
                            slab_ref = result
                            decode_started = time.perf_counter()
                            payload = _shm.decode_slab(slab_ref)
                            decode_seconds = time.perf_counter() - decode_started
                        else:
                            payload = result
                        payload = self._screen_payload(state, index, attempt, payload)
                    except BrokenProcessPool:
                        if slab is not None:
                            _shm.unlink_if_exists(slab)
                        broken.append((state, index))
                        continue
                    except Exception as exc:  # task error inside the worker
                        if slab is not None:
                            _shm.unlink_if_exists(slab)
                        requeue([(state, index, f"{type(exc).__name__}: {exc}", exc)])
                        continue
                    self._write_checkpoint(
                        state.store, state.task, index, payload,
                        state.sizes[index], rec, state.label,
                    )
                    state.completed[index] = payload
                    chunk_seconds = time.monotonic() - _submitted
                    ipc = None
                    if rec.enabled:
                        if slab_ref is not None:
                            # shm transport: the only bytes that crossed
                            # the pipe are the pickled SlabRef handle; the
                            # payload moved through the slab (zero-copy on
                            # the worker side, one copy-out here).
                            ipc = {
                                "ipc_bytes": len(
                                    pickle.dumps(
                                        slab_ref, protocol=pickle.HIGHEST_PROTOCOL
                                    )
                                ),
                                "shm_bytes": slab_ref.nbytes,
                                "shm_seconds": round(decode_seconds, 6),
                                "pickle_seconds": 0.0,
                                "unpickle_seconds": 0.0,
                                "transport": "shm",
                            }
                        else:
                            # Pool IPC accounting: the executor already
                            # paid one pickle/unpickle moving this payload
                            # across the process boundary; re-serializing
                            # it here measures that cost directly
                            # (enabled-path only, once per chunk).
                            pickle_started = time.perf_counter()
                            blob = pickle.dumps(
                                payload, protocol=pickle.HIGHEST_PROTOCOL
                            )
                            pickled_at = time.perf_counter()
                            pickle.loads(blob)
                            ipc = {
                                "ipc_bytes": len(blob),
                                "pickle_seconds": round(
                                    pickled_at - pickle_started, 6
                                ),
                                "unpickle_seconds": round(
                                    time.perf_counter() - pickled_at, 6
                                ),
                                "transport": meta.get("transport", "pickle"),
                            }
                    self._record_chunk_end(
                        rec, state.label, index, state.sizes[index], chunk_seconds,
                        attempt, meta=meta, ipc=ipc,
                    )
                    if state.monitor is not None:
                        state.monitor.observe_chunk(index, payload, chunk_seconds)
                if broken:
                    # The pool is poisoned: every other in-flight chunk is
                    # lost with it.  Rebuild and retry them all.
                    broken.extend(
                        (state, index) for state, index, _, _ in inflight.values()
                    )
                    for state, index, _, slab in inflight.values():
                        if supervisor is not None:
                            supervisor.unregister(state.label, index)
                        if slab is not None:
                            # The worker may have died before, during, or
                            # after writing its slab; unlink whatever made
                            # it to /dev/shm.
                            _shm.unlink_if_exists(slab)
                    inflight.clear()
                    self._kill_pool(executor)
                    executor = None
                    rebuild_pool(probe.label, "worker process died")
                    lost, seen = [], set()
                    for state, index in broken:
                        if (id(state), index) not in seen:
                            seen.add((id(state), index))
                            lost.append((state, index, "worker process died", None))
                    requeue(lost)
                    continue
                hung = supervisor.take_hung() if supervisor is not None else {}
                if hung:
                    # The watchdog flagged silent chunks.  A hung worker
                    # takes the whole pool with it: retry every in-flight
                    # chunk against a fresh pool (completed-but-unprocessed
                    # futures were drained above, so nothing is lost twice).
                    for (label, chunk), silent in sorted(hung.items()):
                        # The worker wrote its pid into the heartbeat file
                        # on first touch, so even a hung chunk can be
                        # attributed to a specific worker process.
                        pid = supervisor.worker_pid(label, chunk)
                        rec.event(
                            "heartbeat",
                            label=label,
                            chunk=chunk,
                            status="hung",
                            silent=round(silent, 3),
                            timeout=self.chunk_timeout,
                            **({} if pid is None else {"worker_id": pid}),
                        )
                        rec.metrics.counter("runner.hung_chunks").add()
                    lost = []
                    for state, index, _, slab in inflight.values():
                        supervisor.unregister(state.label, index)
                        if slab is not None:
                            _shm.unlink_if_exists(slab)
                        if (state.label, index) in hung:
                            reason = (
                                f"no heartbeat for {hung[(state.label, index)]:.1f}s "
                                f"(timeout {self.chunk_timeout}s)"
                            )
                        else:
                            reason = "pool killed to recover a hung chunk"
                        lost.append((state, index, reason, None))
                    inflight.clear()
                    self._kill_pool(executor)
                    executor = None
                    rebuild_pool(
                        probe.label,
                        f"hung-chunk watchdog ({self.chunk_timeout}s timeout)",
                    )
                    requeue(lost)
            return "signal" if stop_requested() else None
        finally:
            if supervisor is not None:
                supervisor.stop()
            if executor is not None:
                if inflight:
                    self._kill_pool(executor)
                else:
                    executor.shutdown(wait=False, cancel_futures=True)
            for _state, _index, _submitted, slab in inflight.values():
                if slab is not None:
                    _shm.unlink_if_exists(slab)
            if registry is not None:
                registry.close()
                # Backstop sweep: anything under this run's prefix that
                # survived the targeted unlinks above (e.g. a slab written
                # by a worker we SIGKILLed mid-encode) is a leak; reap it
                # and make the leak visible.
                leaked = _shm.cleanup_segments(registry.prefix)
                if leaked:
                    rec.event(
                        "incident",
                        kind="shm_leak",
                        segments=len(leaked),
                        action="reaped",
                    )
                    rec.metrics.counter("runner.shm_segments_reaped").add(
                        len(leaked)
                    )
