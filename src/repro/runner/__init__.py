"""Fault-tolerant Monte-Carlo execution: chunked, checkpointed, resumable.

Public surface:

* :class:`~repro.runner.runner.Runner` -- chunked execution with durable
  checkpoints, resume, walltime deadline, worker isolation and retry;
* :class:`~repro.runner.runner.RunOutcome` -- merged payload + provenance;
* :class:`~repro.runner.checkpoint.RunnerState` -- inspect/recover a
  checkpoint directory (``RunnerState.load(checkpoint_dir)``);
* :class:`~repro.runner.tasks.HittingTimeTask` /
  :class:`~repro.runner.tasks.ForagingTask` -- picklable chunk tasks
  wrapping the vectorized engines;
* :class:`~repro.runner.chunking.ChunkPlan` -- deterministic chunk seeds
  (``SeedSequence.spawn``), the reason chunked == single-shot;
* :class:`~repro.runner.faults.FaultInjector` -- staged crashes for tests;
* :class:`~repro.runner.supervision.RetryPolicy` /
  :class:`~repro.runner.supervision.ResourceGuards` /
  :class:`~repro.runner.supervision.Supervisor` -- the supervision layer:
  declarative retry with seeded backoff and a per-point circuit breaker,
  disk/memory watermarks, and the heartbeat-driven hung-chunk watchdog;
* :class:`~repro.runner.chaos.ChaosPlan` /
  :func:`~repro.runner.chaos.run_chaos_matrix` -- composable fault plans
  and the recovery matrix harness (CLI: ``repro-experiment chaos``);
* :func:`~repro.runner.runner.trap_signals` -- SIGINT/SIGTERM -> graceful
  checkpoint-and-stop.

See ``docs/runner.md`` for the checkpoint layout, resume semantics, and
the failure model.
"""

from repro.runner.chaos import (
    CHAOS_KINDS,
    ChaosCrash,
    ChaosFault,
    ChaosPlan,
    PoisonTask,
    chaos_plan,
    run_chaos_matrix,
)
from repro.runner.checkpoint import (
    SCHEMA_VERSION,
    CheckpointError,
    CheckpointExistsError,
    CheckpointMismatchError,
    CheckpointStore,
    RunnerState,
)
from repro.runner.chunking import ChunkPlan, clamp_chunks
from repro.runner.faults import MODES as FAULT_MODES
from repro.runner.faults import ArmedFault, FaultInjected, FaultInjector, arm
from repro.runner.runner import (
    ChunkFailedError,
    Job,
    RunOutcome,
    Runner,
    stop_requested,
    trap_signals,
)
from repro.runner.supervision import (
    CorruptPayloadError,
    ResourceGuards,
    ResourceMonitor,
    RetryPolicy,
    Supervisor,
    WorkerHeartbeat,
)
from repro.runner.tasks import CCRWTask, ForagingTask, HittingTimeTask, fingerprint

__all__ = [
    "SCHEMA_VERSION",
    "ArmedFault",
    "CHAOS_KINDS",
    "ChaosCrash",
    "ChaosFault",
    "ChaosPlan",
    "CheckpointError",
    "CheckpointExistsError",
    "CheckpointMismatchError",
    "CCRWTask",
    "CheckpointStore",
    "ChunkFailedError",
    "ChunkPlan",
    "CorruptPayloadError",
    "FAULT_MODES",
    "FaultInjected",
    "FaultInjector",
    "ForagingTask",
    "HittingTimeTask",
    "Job",
    "PoisonTask",
    "ResourceGuards",
    "ResourceMonitor",
    "RetryPolicy",
    "RunOutcome",
    "Runner",
    "RunnerState",
    "Supervisor",
    "WorkerHeartbeat",
    "arm",
    "chaos_plan",
    "clamp_chunks",
    "fingerprint",
    "run_chaos_matrix",
    "stop_requested",
    "trap_signals",
]
