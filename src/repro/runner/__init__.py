"""Fault-tolerant Monte-Carlo execution: chunked, checkpointed, resumable.

Public surface:

* :class:`~repro.runner.runner.Runner` -- chunked execution with durable
  checkpoints, resume, walltime deadline, worker isolation and retry;
* :class:`~repro.runner.runner.RunOutcome` -- merged payload + provenance;
* :class:`~repro.runner.checkpoint.RunnerState` -- inspect/recover a
  checkpoint directory (``RunnerState.load(checkpoint_dir)``);
* :class:`~repro.runner.tasks.HittingTimeTask` /
  :class:`~repro.runner.tasks.ForagingTask` -- picklable chunk tasks
  wrapping the vectorized engines;
* :class:`~repro.runner.chunking.ChunkPlan` -- deterministic chunk seeds
  (``SeedSequence.spawn``), the reason chunked == single-shot;
* :class:`~repro.runner.faults.FaultInjector` -- staged crashes for tests;
* :func:`~repro.runner.runner.trap_signals` -- SIGINT/SIGTERM -> graceful
  checkpoint-and-stop.

See ``docs/runner.md`` for the checkpoint layout and resume semantics.
"""

from repro.runner.checkpoint import (
    SCHEMA_VERSION,
    CheckpointError,
    CheckpointExistsError,
    CheckpointMismatchError,
    CheckpointStore,
    RunnerState,
)
from repro.runner.chunking import ChunkPlan, clamp_chunks
from repro.runner.faults import MODES as FAULT_MODES
from repro.runner.faults import FaultInjected, FaultInjector, arm
from repro.runner.runner import (
    ChunkFailedError,
    Job,
    RunOutcome,
    Runner,
    stop_requested,
    trap_signals,
)
from repro.runner.tasks import CCRWTask, ForagingTask, HittingTimeTask, fingerprint

__all__ = [
    "SCHEMA_VERSION",
    "CheckpointError",
    "CheckpointExistsError",
    "CheckpointMismatchError",
    "CCRWTask",
    "CheckpointStore",
    "ChunkFailedError",
    "ChunkPlan",
    "FAULT_MODES",
    "FaultInjected",
    "FaultInjector",
    "ForagingTask",
    "HittingTimeTask",
    "Job",
    "RunOutcome",
    "Runner",
    "RunnerState",
    "arm",
    "clamp_chunks",
    "fingerprint",
    "stop_requested",
    "trap_signals",
]
