"""Supervised execution: heartbeats, watchdog, retry policy, resource guards.

Four cooperating pieces defend a long pooled run against the failure
modes that dominate parallel Monte-Carlo (docs/runner.md, "Failure
model"):

* :class:`WorkerHeartbeat` -- a recorder installed inside each pool
  worker for the duration of one chunk.  The vectorized engines call
  ``get_recorder().tick()`` once per round loop; here that touches a
  per-chunk heartbeat file (rate-limited), so liveness is observable
  from outside the process without any shared memory or locks.
* :class:`Supervisor` -- the hung-chunk watchdog: a daemon thread that
  scans the heartbeat files and flags any chunk silent for longer than
  ``chunk_timeout``.  The thread only *detects*; the runner's single
  scheduling thread consumes the flags, kills the pool, and reschedules
  the chunk with its original :class:`~numpy.random.SeedSequence` child
  seed, so the recovered sample stays bit-identical.
* :class:`RetryPolicy` -- declarative retry: attempt budget,
  deterministic exponential backoff with seeded jitter, and an error
  classifier (transient vs. fatal).  "Poison" is not a class an
  exception can carry on its own -- it emerges from repetition -- so the
  per-point circuit breaker (``quarantine_after``) lives at the job
  level: a grid point whose failures cross the breaker is quarantined
  (``RunOutcome.quarantined_point``) and the rest of the sweep proceeds.
* :class:`ResourceGuards` / :class:`ResourceMonitor` -- preflight and
  in-run disk/memory watermarks.  Tripping a watermark never crashes the
  run: checkpointing degrades to manifest-only writes (payloads are
  skipped, provenance is kept) and an ``incident`` event is emitted.

Everything here is deliberately free of runner imports so the runner,
the chaos harness (:mod:`repro.runner.chaos`) and tests can compose the
pieces independently.
"""

from __future__ import annotations

import os
import shutil
import threading
import time
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.telemetry.recorder import NullRecorder

#: Error classes returned by :meth:`RetryPolicy.classify`.
TRANSIENT = "transient"
FATAL = "fatal"

#: Exception types never worth retrying: the process state (not the
#: chunk) is the problem, or the user asked to stop.
_FATAL_TYPES = (MemoryError, KeyboardInterrupt, SystemExit)


class CorruptPayloadError(RuntimeError):
    """A chunk returned a payload inconsistent with what was requested."""


def validate_payload(payload, expected_n: int, chunk_index: int):
    """Screen a chunk's return value before it is trusted or persisted.

    A payload carrying an ``n`` (sample size) must match the chunk's
    requested size; payload kinds without an ``n`` (e.g. foraging
    results, which are per-target) pass through.  Raises
    :class:`CorruptPayloadError` -- a *transient* failure, so the chunk
    is retried from its original seed.
    """
    if payload is None:
        raise CorruptPayloadError(f"chunk {chunk_index} returned no payload")
    observed = getattr(payload, "n", None)
    if observed is not None and int(observed) != int(expected_n):
        raise CorruptPayloadError(
            f"chunk {chunk_index} returned a corrupt payload "
            f"(n={observed!r}, expected {int(expected_n)})"
        )
    return payload


# ----------------------------------------------------------------- heartbeats


class WorkerHeartbeat(NullRecorder):
    """Recorder installed in a pool worker while it computes one chunk.

    Inherits the :class:`NullRecorder` no-op surface (``enabled`` stays
    False, so engine accounting stays off) and overrides only ``tick``:
    the engines' round loops call it unconditionally, and every
    ``interval`` seconds the heartbeat file's mtime is refreshed.  The
    parent's :class:`Supervisor` reads those mtimes -- file mtime is the
    entire protocol, so it works across processes with no locks and
    degrades harmlessly if the directory vanishes.
    """

    def __init__(self, path, interval: float = 0.5) -> None:
        super().__init__()
        self.path = str(path)
        self.interval = float(interval)
        self._last = 0.0
        self.beats = 0
        self.touch(force=True)

    def touch(self, force: bool = False) -> None:
        now = time.monotonic()
        if not force and now - self._last < self.interval:
            return
        self._last = now
        try:
            if self.beats == 0:
                # First touch stamps the worker's pid into the file, so
                # the parent can attribute a hung chunk to a specific
                # worker process (Supervisor.worker_pid).
                with open(self.path, "wb") as fh:
                    fh.write(str(os.getpid()).encode("ascii"))
            else:
                with open(self.path, "ab"):
                    pass
            os.utime(self.path)
        except OSError:  # a vanished tmpdir must never kill the worker
            return
        self.beats += 1

    def tick(self) -> None:
        self.touch()


class Supervisor:
    """Hung-chunk watchdog over a directory of heartbeat files.

    ``register(label, chunk)`` starts watching a chunk (baseline = now,
    so a worker that dies before its first touch is still caught);
    ``unregister`` stops on completion.  A daemon thread scans every
    ``poll`` seconds and moves chunks silent past ``timeout`` into a
    hung set that the scheduling thread drains with :meth:`take_hung` --
    the thread itself never kills anything or emits telemetry, keeping
    the recorder single-threaded.
    """

    def __init__(self, directory, timeout: float, poll: Optional[float] = None) -> None:
        self.directory = Path(directory)
        self.timeout = float(timeout)
        self.poll = (
            float(poll) if poll is not None else max(0.02, min(0.25, self.timeout / 4.0))
        )
        self._lock = threading.Lock()
        #: (label, chunk) -> (heartbeat path, registration wall-clock time).
        self._watch: Dict[Tuple[str, int], Tuple[str, float]] = {}
        self._hung: Dict[Tuple[str, int], float] = {}
        #: (label, chunk) -> shared-memory slab name the chunk's worker
        #: will write its result into (shm transport only).  Tracked so a
        #: chunk still registered when the supervisor stops -- a worker
        #: killed by the watchdog or lost with the run -- gets its
        #: orphaned segment unlinked.
        self._slabs: Dict[Tuple[str, int], str] = {}
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------- lifecycle

    def start(self) -> "Supervisor":
        self.directory.mkdir(parents=True, exist_ok=True)
        self._thread = threading.Thread(
            target=self._loop, name="repro-supervisor", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        shutil.rmtree(self.directory, ignore_errors=True)
        with self._lock:
            slabs = [name for name in self._slabs.values() if name]
            self._slabs.clear()
        if slabs:
            # Still-registered chunks belong to workers that never
            # returned (hung, SIGKILLed, or abandoned with the run);
            # their result slabs would otherwise outlive the run.
            from repro.engine.shm import unlink_if_exists

            for name in slabs:
                unlink_if_exists(name)

    def __enter__(self) -> "Supervisor":
        return self.start()

    def __exit__(self, *exc_info) -> bool:
        self.stop()
        return False

    # ------------------------------------------------------------- watching

    def heartbeat_path(self, label: str, chunk: int) -> str:
        safe = "".join(c if (c.isalnum() or c in "._-") else "_" for c in str(label))
        return str(self.directory / f"{safe}-{int(chunk):05d}.hb")

    def register(self, label: str, chunk: int, slab: Optional[str] = None) -> str:
        """Watch one (label, chunk); returns the worker's heartbeat path.

        ``slab`` optionally names the shared-memory segment the chunk's
        worker will write its result into; the supervisor reaps it if the
        chunk is still registered when the watchdog stops.
        """
        path = self.heartbeat_path(label, chunk)
        with self._lock:
            self._watch[(label, chunk)] = (path, time.time())
            self._hung.pop((label, chunk), None)
            if slab is not None:
                self._slabs[(label, chunk)] = slab
        return path

    def unregister(self, label: str, chunk: int) -> Optional[str]:
        """Stop watching a chunk; returns its tracked slab name, if any."""
        with self._lock:
            self._watch.pop((label, chunk), None)
            self._hung.pop((label, chunk), None)
            return self._slabs.pop((label, chunk), None)

    def worker_pid(self, label: str, chunk: int) -> Optional[int]:
        """Pid the worker stamped into its heartbeat file, if readable.

        None when the worker died before its first touch, the file was
        cleaned up, or the contents are not a pid (pre-stamp files were
        empty -- absence degrades to unattributed, never an error).
        """
        try:
            text = Path(self.heartbeat_path(label, chunk)).read_text(
                encoding="ascii", errors="replace"
            ).strip()
            return int(text) if text else None
        except (OSError, ValueError):
            return None

    def watched(self) -> int:
        with self._lock:
            return len(self._watch)

    def oldest_silence(self) -> float:
        """Longest current silence (seconds) over all watched chunks."""
        now = time.time()
        with self._lock:
            entries = list(self._watch.values())
        if not entries:
            return 0.0
        return max(now - self._last_beat(path, baseline) for path, baseline in entries)

    # ------------------------------------------------------------- detection

    @staticmethod
    def _last_beat(path: str, baseline: float) -> float:
        try:
            return max(baseline, os.path.getmtime(path))
        except OSError:
            return baseline

    def scan_once(self, now: Optional[float] = None) -> Dict[Tuple[str, int], float]:
        """One watchdog pass; returns the chunks newly flagged as hung."""
        now = time.time() if now is None else now
        with self._lock:
            entries = list(self._watch.items())
        newly: Dict[Tuple[str, int], float] = {}
        for key, (path, baseline) in entries:
            silent = now - self._last_beat(path, baseline)
            if silent > self.timeout:
                newly[key] = silent
        if newly:
            with self._lock:
                for key, silent in newly.items():
                    if key in self._watch:
                        del self._watch[key]
                        self._hung[key] = silent
        return newly

    def take_hung(self) -> Dict[Tuple[str, int], float]:
        """Drain the hung set: (label, chunk) -> seconds of silence."""
        with self._lock:
            hung, self._hung = self._hung, {}
        return hung

    def _loop(self) -> None:
        while not self._stop.wait(self.poll):
            self.scan_once()


# --------------------------------------------------------------- retry policy


@dataclass(frozen=True)
class RetryPolicy:
    """Declarative retry behaviour for failed chunks.

    ``max_attempts`` bounds attempts *per chunk* (first try included).
    Backoff before attempt ``k+1`` is
    ``min(backoff_base * backoff_factor**(k-1), backoff_max)`` scaled by
    a deterministic jitter in ``[1-jitter, 1+jitter]`` seeded from
    ``(key, attempt)`` -- reproducible, but de-synchronised across
    chunks so a pool rebuild does not stampede.

    ``quarantine_after`` is the per-point circuit breaker: once a job
    accumulates that many chunk failures (any chunks, any reasons), the
    whole point is quarantined instead of raising, and sibling jobs
    continue.  ``None`` disables the breaker (a lone exhausted chunk
    then raises :class:`~repro.runner.runner.ChunkFailedError`, the
    pre-supervision behaviour).
    """

    max_attempts: int = 4
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 5.0
    jitter: float = 0.25
    quarantine_after: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base < 0 or self.backoff_factor < 1 or self.backoff_max < 0:
            raise ValueError(
                "backoff_base/backoff_max must be >= 0 and backoff_factor >= 1"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")
        if self.quarantine_after is not None and self.quarantine_after < 1:
            raise ValueError(
                f"quarantine_after must be >= 1 or None, got {self.quarantine_after}"
            )

    def classify(self, error: BaseException) -> str:
        """``"transient"`` (retryable) or ``"fatal"`` (stop immediately).

        Task exceptions default to transient: a chunk is a pure function
        of its seed, so most observed failures (a dying worker, a torn
        payload, an OS hiccup) are environmental.  Persistently failing
        chunks still terminate via ``max_attempts`` -- that repetition,
        not the exception type, is what identifies a *poison* input.
        """
        return FATAL if isinstance(error, _FATAL_TYPES) else TRANSIENT

    def backoff(self, attempt: int, key: int = 0) -> float:
        """Seconds to sleep before retrying after failure ``attempt``."""
        if self.backoff_base <= 0:
            return 0.0
        delay = self.backoff_base * self.backoff_factor ** (max(int(attempt), 1) - 1)
        delay = min(delay, self.backoff_max)
        if self.jitter:
            word = np.random.SeedSequence(
                (int(key) & 0xFFFFFFFF, max(int(attempt), 1))
            ).generate_state(1)[0]
            delay *= 1.0 - self.jitter + 2.0 * self.jitter * (float(word) / 2.0**32)
        return float(delay)


def chunk_retry_key(label: str, chunk: int) -> int:
    """Stable jitter seed for one (run label, chunk) pair."""
    return zlib.crc32(f"{label}:{int(chunk)}".encode())


# ------------------------------------------------------------ resource guards


def free_disk_mb(directory=".") -> Optional[float]:
    """Free space (MB) of the filesystem holding ``directory``; None if unknown."""
    try:
        return shutil.disk_usage(str(directory)).free / 1e6
    except OSError:
        return None


def available_memory_mb() -> Optional[float]:
    """MemAvailable (MB) from /proc/meminfo; None where unavailable."""
    try:
        with open("/proc/meminfo", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("MemAvailable:"):
                    return float(line.split()[1]) / 1e3  # kB -> MB
    except (OSError, ValueError, IndexError):
        return None
    return None


@dataclass(frozen=True)
class ResourceGuards:
    """Disk/memory watermarks below which checkpointing degrades.

    A watermark of 0 disables that guard.  ``disk_probe``/``memory_probe``
    override the default probes (``shutil.disk_usage`` / /proc/meminfo)
    -- the seam tests and the chaos harness's ENOSPC simulation use; a
    probe returning ``None`` means "unknown", which never trips.
    """

    min_disk_mb: float = 0.0
    min_memory_mb: float = 0.0
    check_every: float = 2.0
    disk_probe: Optional[Callable[[], Optional[float]]] = None
    memory_probe: Optional[Callable[[], Optional[float]]] = None

    @property
    def enabled(self) -> bool:
        return self.min_disk_mb > 0 or self.min_memory_mb > 0


class ResourceMonitor:
    """Rate-limited watermark checks; trips once and stays degraded.

    The monitor never raises and never un-degrades: flapping back to
    full checkpointing mid-run would leave a directory where some chunks
    have payloads and some do not for no discernible reason.  Resume
    recomputes the payload-less chunks.
    """

    def __init__(self, guards: ResourceGuards, directory=None) -> None:
        self.guards = guards
        self.directory = Path(directory) if directory is not None else Path(".")
        self.degraded = False
        self.reasons: List[str] = []
        self._next_check = 0.0

    def _free_disk(self) -> Optional[float]:
        if self.guards.disk_probe is not None:
            return self.guards.disk_probe()
        return free_disk_mb(self.directory if self.directory.exists() else ".")

    def _free_memory(self) -> Optional[float]:
        if self.guards.memory_probe is not None:
            return self.guards.memory_probe()
        return available_memory_mb()

    def check(self, rec, force: bool = False) -> bool:
        """Probe the watermarks; True when this call *newly* degraded.

        Emits one ``incident`` event (kind ``low_disk``/``low_memory``)
        per tripped watermark, with the observed headroom.
        """
        if self.degraded or not self.guards.enabled:
            return False
        now = time.monotonic()
        if not force and now < self._next_check:
            return False
        self._next_check = now + max(float(self.guards.check_every), 0.0)
        tripped: List[Tuple[str, float, float]] = []
        if self.guards.min_disk_mb > 0:
            free = self._free_disk()
            if free is not None and free < self.guards.min_disk_mb:
                tripped.append(("low_disk", free, self.guards.min_disk_mb))
        if self.guards.min_memory_mb > 0:
            free = self._free_memory()
            if free is not None and free < self.guards.min_memory_mb:
                tripped.append(("low_memory", free, self.guards.min_memory_mb))
        if not tripped:
            return False
        for kind, free, watermark in tripped:
            self.reasons.append(
                f"{kind}: {free:.0f}MB free < {watermark:.0f}MB watermark"
            )
            rec.event(
                "incident",
                kind=kind,
                free_mb=round(free, 1),
                watermark_mb=watermark,
                action="degraded-checkpoints",
            )
            rec.metrics.counter("runner.resource_incidents").add()
        self.degraded = True
        return True
