"""Durable checkpoints: atomic chunk persistence, validation, quarantine.

Layout of a checkpoint directory (one directory per runner invocation,
i.e. per ``(task, n_total, seed)`` triple)::

    <dir>/
      manifest.json            run-level identity (schema, seed, chunking,
                               task fingerprint) -- written once, validated
                               on resume
      chunks/
        chunk_00003.npz        payload: the chunk's HittingTimeSample or
                               ForagingResult (atomic write)
        chunk_00003.json       per-chunk manifest: index, size, kind,
                               schema version, sha256 of the payload bytes
      quarantine/              damaged files are *moved* here on load, so a
                               resume never crashes on a half-written or
                               bit-rotted chunk and the evidence survives

Commit protocol: the payload ``.npz`` is written first, then the sidecar
manifest.  Both writes are atomic, and a chunk counts as completed only
when its manifest exists, parses, and its checksum matches the payload
bytes on disk -- so a crash at *any* instant leaves either a completed
chunk or a quarantinable partial, never a silently wrong sample.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.io_utils import (
    CorruptResultError,
    atomic_write_bytes,
    atomic_write_json,
    load_payload,
    payload_bytes,
    sha256_hex,
)

#: Version stamp of the checkpoint format; chunks written by a different
#: version are quarantined rather than trusted.
SCHEMA_VERSION = 1

_MANIFEST_NAME = "manifest.json"
_CHUNKS_DIR = "chunks"
_QUARANTINE_DIR = "quarantine"

#: Run-manifest keys that must match exactly for a resume to be accepted.
_IDENTITY_KEYS = ("schema_version", "kind", "seed", "n_total", "n_chunks", "task")


class CheckpointError(RuntimeError):
    """Base class for checkpoint-layer failures."""


class CheckpointMismatchError(CheckpointError):
    """The directory holds a checkpoint of a *different* run."""


class CheckpointExistsError(CheckpointError):
    """The directory holds a checkpoint but resuming was not requested."""


def _chunk_stem(index: int) -> str:
    return f"chunk_{index:05d}"


class CheckpointStore:
    """Reads and writes one run's checkpoint directory.

    ``recorder`` (optional) receives a ``quarantine`` telemetry event per
    damaged file moved aside; ``None`` falls back to the process-global
    :func:`repro.telemetry.get_recorder` seam at call time.
    """

    def __init__(self, directory, recorder=None) -> None:
        self.directory = Path(directory)
        self.chunks_dir = self.directory / _CHUNKS_DIR
        self.quarantine_dir = self.directory / _QUARANTINE_DIR
        self.manifest_path = self.directory / _MANIFEST_NAME
        self._recorder = recorder
        #: Degraded mode (set by the runner's resource guards): chunk
        #: writes skip the payload and keep a manifest-only record, so a
        #: low-disk run keeps its provenance without risking ENOSPC.
        self.degraded = False

    def _rec(self):
        if self._recorder is not None:
            return self._recorder
        from repro.telemetry.recorder import get_recorder

        return get_recorder()

    # ------------------------------------------------------------- manifest

    def read_manifest(self) -> Optional[Dict[str, Any]]:
        """The run manifest, or ``None`` if this directory has none yet."""
        if not self.manifest_path.exists():
            return None
        try:
            return json.loads(self.manifest_path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise CorruptResultError(
                f"unreadable run manifest {self.manifest_path}: {exc}"
            ) from exc

    def initialise(self, manifest: Dict[str, Any], resume: bool) -> bool:
        """Create or validate the run manifest.

        Returns True when an existing compatible checkpoint was found (the
        caller may then load completed chunks).  Raises
        :class:`CheckpointExistsError` if a checkpoint exists but
        ``resume`` is False, and :class:`CheckpointMismatchError` if the
        existing manifest identifies a different run.
        """
        existing = self.read_manifest()
        if existing is None:
            self.chunks_dir.mkdir(parents=True, exist_ok=True)
            atomic_write_json(manifest, self.manifest_path)
            return False
        if not resume:
            raise CheckpointExistsError(
                f"{self.directory} already holds a checkpoint; pass resume=True "
                "(CLI: --resume) to continue it, or point at a fresh directory"
            )
        mismatched = [
            key
            for key in _IDENTITY_KEYS
            if existing.get(key) != manifest.get(key)
        ]
        if mismatched:
            details = ", ".join(
                f"{key}: checkpoint={existing.get(key)!r} != requested={manifest.get(key)!r}"
                for key in mismatched
            )
            raise CheckpointMismatchError(
                f"checkpoint in {self.directory} belongs to a different run ({details})"
            )
        self.chunks_dir.mkdir(parents=True, exist_ok=True)
        return True

    # --------------------------------------------------------------- chunks

    def chunk_paths(self, index: int) -> Dict[str, Path]:
        stem = _chunk_stem(index)
        return {
            "payload": self.chunks_dir / f"{stem}.npz",
            "manifest": self.chunks_dir / f"{stem}.json",
        }

    def write_chunk(self, index: int, kind: str, payload, n: int) -> Optional[Path]:
        """Durably record one completed chunk (payload first, then manifest).

        In degraded mode only the sidecar manifest is written (flagged
        ``"degraded": true`` and returning ``None``): a resume sees the
        chunk as not-yet-run and recomputes it, but the run's history
        stays on disk for post-mortems.
        """
        paths = self.chunk_paths(index)
        if self.degraded:
            atomic_write_json(
                {
                    "schema_version": SCHEMA_VERSION,
                    "chunk_index": index,
                    "n": int(n),
                    "kind": kind,
                    "degraded": True,
                },
                paths["manifest"],
            )
            return None
        data = payload_bytes(kind, payload)
        atomic_write_bytes(data, paths["payload"])
        atomic_write_json(
            {
                "schema_version": SCHEMA_VERSION,
                "chunk_index": index,
                "n": int(n),
                "kind": kind,
                "checksum": f"sha256:{sha256_hex(data)}",
            },
            paths["manifest"],
        )
        return paths["payload"]

    def quarantine(self, *paths: Path) -> List[Path]:
        """Move damaged files out of the way (never delete evidence)."""
        moved = []
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        for path in paths:
            if path is None or not path.exists():
                continue
            destination = self.quarantine_dir / path.name
            counter = 0
            while destination.exists():
                counter += 1
                destination = self.quarantine_dir / f"{path.name}.{counter}"
            os.replace(path, destination)
            moved.append(destination)
        if moved:
            rec = self._rec()
            for destination in moved:
                rec.event("quarantine", path=str(destination))
            rec.metrics.counter("runner.files_quarantined").add(len(moved))
        return moved

    def load_completed(self, kind: str) -> "RunnerState":
        """Scan the chunk directory, validating and quarantining as needed.

        A chunk is accepted only if its sidecar manifest parses, carries
        the current schema version and the expected kind tag, its checksum
        matches the payload bytes on disk, and the payload deserializes.
        Anything else is moved to ``quarantine/`` and the chunk is treated
        as not-yet-run.
        """
        manifest = self.read_manifest()
        completed: Dict[int, Any] = {}
        quarantined: List[Path] = []
        if not self.chunks_dir.exists():
            return RunnerState(
                directory=self.directory,
                manifest=manifest,
                completed=completed,
                quarantined=quarantined,
            )
        for manifest_path in sorted(self.chunks_dir.glob("chunk_*.json")):
            payload_path = manifest_path.with_suffix(".npz")
            try:
                chunk_meta = json.loads(manifest_path.read_text())
                if chunk_meta.get("degraded"):
                    # Manifest-only record from a resource-degraded run:
                    # there is no payload to trust, so the chunk simply
                    # counts as not-yet-run (no quarantine -- this state
                    # is intentional, not damage).
                    continue
                if chunk_meta.get("schema_version") != SCHEMA_VERSION:
                    raise CorruptResultError(
                        f"stale schema version {chunk_meta.get('schema_version')!r} "
                        f"(expected {SCHEMA_VERSION})"
                    )
                if chunk_meta.get("kind") != kind:
                    raise CorruptResultError(
                        f"kind mismatch: chunk says {chunk_meta.get('kind')!r}, "
                        f"run expects {kind!r}"
                    )
                index = int(chunk_meta["chunk_index"])
                recorded = str(chunk_meta.get("checksum", ""))
                actual = f"sha256:{sha256_hex(payload_path.read_bytes())}"
                if recorded != actual:
                    raise CorruptResultError(
                        f"checksum mismatch ({recorded} != {actual})"
                    )
                completed[index] = load_payload(kind, payload_path)
            except (CorruptResultError, OSError, KeyError, TypeError, ValueError):
                quarantined.extend(self.quarantine(payload_path, manifest_path))
        # A payload without a sidecar manifest is an uncommitted partial
        # write (crash between the two atomic writes): quarantine it too.
        for payload_path in sorted(self.chunks_dir.glob("chunk_*.npz")):
            if not payload_path.with_suffix(".json").exists():
                quarantined.extend(self.quarantine(payload_path))
        return RunnerState(
            directory=self.directory,
            manifest=manifest,
            completed=completed,
            quarantined=quarantined,
        )


@dataclass
class RunnerState:
    """Recovered state of a checkpoint directory.

    ``RunnerState.load(checkpoint_dir)`` is the public inspection /
    recovery entry point: it detects completed chunks, validates each one
    (schema version + kind tag + payload checksum), quarantines anything
    damaged, and reports what a resumed run may skip.
    """

    directory: Path
    manifest: Optional[Dict[str, Any]]
    completed: Dict[int, Any] = field(default_factory=dict)
    quarantined: List[Path] = field(default_factory=list)

    @classmethod
    def load(cls, checkpoint_dir, kind: Optional[str] = None) -> "RunnerState":
        """Recover the state of ``checkpoint_dir`` (see class docstring).

        ``kind`` defaults to the kind recorded in the run manifest; pass it
        explicitly to validate a directory whose manifest is lost.
        """
        store = CheckpointStore(checkpoint_dir)
        manifest = store.read_manifest()
        if kind is None:
            kind = (manifest or {}).get("kind", "hitting")
        return store.load_completed(kind)

    @property
    def completed_indices(self) -> List[int]:
        return sorted(self.completed)
