"""Deterministic chunk plans for resumable Monte-Carlo sampling.

A :class:`ChunkPlan` splits a request for ``n_total`` walks into
``n_chunks`` contiguous blocks and gives every block its own child seed
via :meth:`numpy.random.SeedSequence.spawn`.  Two properties make this the
foundation of fault tolerance:

* **reproducibility** -- spawning is a pure function of the root seed and
  the chunk index, so a resumed process reconstructs exactly the seeds of
  the chunks it still has to run;
* **order independence** -- chunks are statistically independent streams,
  so they can run serially, in a process pool, or across interrupted
  sessions and the merged sample is identical as long as the merge keeps
  chunk-index order.

Consequently a run is identified by the triple ``(seed, n_total,
n_chunks)``: any execution of the same triple -- uninterrupted, killed and
resumed, serial or pooled -- yields the same merged sample bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np


@dataclass(frozen=True)
class ChunkPlan:
    """A deterministic split of ``n_total`` walks into seeded chunks."""

    n_total: int
    n_chunks: int
    seed: int

    def __post_init__(self) -> None:
        if self.n_total < 1:
            raise ValueError(f"n_total must be positive, got {self.n_total}")
        if not 1 <= self.n_chunks <= self.n_total:
            raise ValueError(
                f"n_chunks must be in [1, n_total={self.n_total}], got {self.n_chunks}"
            )

    def sizes(self) -> List[int]:
        """Chunk sizes; the remainder is spread over the first chunks."""
        base, extra = divmod(self.n_total, self.n_chunks)
        return [base + (1 if index < extra else 0) for index in range(self.n_chunks)]

    def offsets(self) -> List[int]:
        """Global index of the first walk of each chunk (for attribution)."""
        offsets, total = [], 0
        for size in self.sizes():
            offsets.append(total)
            total += size
        return offsets

    def child_seeds(self) -> List[np.random.SeedSequence]:
        """One independent :class:`~numpy.random.SeedSequence` per chunk."""
        return list(np.random.SeedSequence(self.seed).spawn(self.n_chunks))

    def chunk(self, index: int) -> Tuple[int, np.random.SeedSequence]:
        """The ``(size, child_seed)`` pair of one chunk."""
        if not 0 <= index < self.n_chunks:
            raise ValueError(f"chunk index {index} out of range [0, {self.n_chunks})")
        return self.sizes()[index], self.child_seeds()[index]

    def describe(self) -> dict:
        """JSON-ready identity of the plan (stored in the run manifest)."""
        return {"n_total": self.n_total, "n_chunks": self.n_chunks, "seed": self.seed}


def clamp_chunks(n_total: int, n_chunks: int) -> int:
    """The largest usable chunk count: at least 1, at most ``n_total``."""
    return max(1, min(int(n_chunks), int(n_total)))
