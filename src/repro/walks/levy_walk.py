"""The Levy walk process (paper Definition 3.4).

A Levy walk moves through *jump phases*.  At the start of a phase at node
``u`` it samples a distance ``d`` from Eq. (3) and a uniformly random node
``v`` of ``R_d(u)``; if ``d = 0`` the phase lasts one step and the walk
stays put, otherwise the phase lasts ``d`` steps during which the walk
traverses a uniformly random *direct path* from ``u`` to ``v`` (Definition
3.1), one lattice step per time unit.  Unlike the Levy flight, the walk
visits every node on the way -- hence it can find a target mid-jump -- and
it is not a Markov chain (the position mid-phase does not determine the
law of the next step).
"""

from __future__ import annotations

from typing import List, Optional, Union

from repro.distributions.base import JumpDistribution
from repro.distributions.zeta import ZetaJumpDistribution
from repro.lattice.direct_path import sample_direct_path
from repro.rng import SeedLike
from repro.walks.base import IntPoint, JumpProcess
from repro.walks.levy_flight import _uniform_ring_offset


class LevyWalk(JumpProcess):
    """Levy walk with exponent ``alpha`` (or any custom jump law).

    Parameters
    ----------
    alpha_or_distribution:
        Either the exponent ``alpha`` of Eq. (3) or a ready-made
        :class:`~repro.distributions.base.JumpDistribution`.
    start:
        Start node (the origin by default).
    rng:
        Seed or generator.
    """

    def __init__(
        self,
        alpha_or_distribution: Union[float, JumpDistribution],
        start: IntPoint = (0, 0),
        rng: SeedLike = None,
    ) -> None:
        super().__init__(start=start, rng=rng)
        if isinstance(alpha_or_distribution, JumpDistribution):
            self.distribution = alpha_or_distribution
        else:
            self.distribution = ZetaJumpDistribution(float(alpha_or_distribution))
        self._pending: List[IntPoint] = []  # remaining nodes of current phase

    @property
    def alpha(self) -> Optional[float]:
        """The exponent, when the jump law is the paper's power law."""
        return getattr(self.distribution, "alpha", None)

    @property
    def in_phase(self) -> bool:
        """True while inside a jump phase (some steps of it remain)."""
        return bool(self._pending)

    def _begin_phase(self) -> None:
        u = self.position
        d = int(self.distribution.sample(self._rng, 1)[0])
        if d == 0:
            # A zero-length jump is a one-step phase that stays put.
            self._pending = [u]
            return
        ox, oy = _uniform_ring_offset(d, self._rng)
        v = (u[0] + ox, u[1] + oy)
        path = sample_direct_path(u, v, self._rng)
        self._pending = path[1:]  # the d steps of the phase

    def advance(self) -> IntPoint:
        if not self._pending:
            self._begin_phase()
        self.position = self._pending.pop(0)
        self.time += 1
        return self.position

    def reset(self) -> None:
        super().reset()
        self._pending = []
