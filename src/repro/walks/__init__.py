"""Jump processes on Z^2: Levy flights/walks and baselines.

Definitions 3.3 and 3.4 of the paper, plus the two classical comparison
processes (lazy simple random walk and straight ballistic walk).  These
are exact object-level implementations; the high-throughput Monte-Carlo
counterparts live in :mod:`repro.engine`.
"""

from repro.walks.base import JumpProcess, displacement
from repro.walks.composite import CompositeCorrelatedWalk, ccrw_hitting_times
from repro.walks.ballistic import BallisticWalk, ray_node
from repro.walks.levy_flight import LevyFlight
from repro.walks.levy_walk import LevyWalk
from repro.walks.simple_random_walk import SimpleRandomWalk

__all__ = [
    "JumpProcess",
    "displacement",
    "LevyFlight",
    "LevyWalk",
    "SimpleRandomWalk",
    "BallisticWalk",
    "ray_node",
    "CompositeCorrelatedWalk",
    "ccrw_hitting_times",
]
