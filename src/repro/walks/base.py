"""Object-level jump processes (paper Section 3.1).

A *(discrete-time) jump process on Z^2* is an infinite sequence of random
positions ``(J_t), t >= 0`` with ``J_0`` the start node.  This module
defines the common object-level interface: one call to
:meth:`JumpProcess.advance` moves the process forward by exactly one time
step (one lattice step for a Levy walk, one jump for a Levy flight) and
returns the new position.

The object-level processes favour clarity and exactness (Python integers,
no overflow) over speed; the Monte-Carlo experiments use the vectorized
engines of :mod:`repro.engine`, which are cross-validated against these
reference implementations in the test suite.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Tuple

from repro.lattice.points import l1_distance
from repro.rng import SeedLike, as_generator

IntPoint = Tuple[int, int]


class JumpProcess(abc.ABC):
    """A discrete-time random process on Z^2, advanced one step at a time.

    Attributes
    ----------
    start:
        The node ``J_0``; the paper's walks all start at the origin.
    position:
        Current node ``J_t``.
    time:
        Current step index ``t``.
    """

    def __init__(self, start: IntPoint = (0, 0), rng: SeedLike = None) -> None:
        self.start: IntPoint = (int(start[0]), int(start[1]))
        self.position: IntPoint = self.start
        self.time: int = 0
        self._rng = as_generator(rng)

    @abc.abstractmethod
    def advance(self) -> IntPoint:
        """Advance the process by one time step and return ``J_{t+1}``."""

    def reset(self) -> None:
        """Return to the start node at time 0 (randomness is not rewound)."""
        self.position = self.start
        self.time = 0

    def run(self, steps: int) -> List[IntPoint]:
        """Advance ``steps`` times; return ``[J_0, J_1, ..., J_steps]``."""
        trajectory = [self.position]
        for _ in range(steps):
            trajectory.append(self.advance())
        return trajectory

    def hitting_time(self, target: IntPoint, horizon: int) -> Optional[int]:
        """First step ``t <= horizon`` at which the process visits ``target``.

        Returns ``None`` if the target is not visited by the horizon.  The
        paper's hitting time (Definition 3.7) is the first step ``t >= 0``
        with ``J_t = u*``; in particular a process starting on the target
        has hitting time 0.
        """
        target = (int(target[0]), int(target[1]))
        if self.position == target:
            return self.time
        while self.time < horizon:
            if self.advance() == target:
                return self.time
        return None


def displacement(process: JumpProcess) -> int:
    """Manhattan distance of the process from its start node."""
    return l1_distance(process.position, process.start)
