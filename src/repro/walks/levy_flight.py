"""The Levy flight process (paper Definition 3.3).

A Levy flight teleports: at every time step it samples a jump distance
``d`` from Eq. (3) and moves directly to a uniformly random node of
``R_d(u)``.  Unlike the Levy walk it does *not* traverse the intermediate
nodes, so one time step equals one jump.  The flight restricted to jump
endpoints is a Markov chain and is *monotone radial* (Definition 3.8):
``P(J_{t+1} = v | J_t = u)`` depends only on ``||u - v||_1`` and is
non-increasing in it -- the key to the monotonicity property of Lemma 3.9
that drives the paper's upper bounds.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from repro.distributions.base import JumpDistribution
from repro.distributions.zeta import ZetaJumpDistribution
from repro.lattice.rings import ring_index_to_offset, ring_size
from repro.rng import SeedLike
from repro.walks.base import IntPoint, JumpProcess


def _uniform_ring_offset(d: int, rng: np.random.Generator) -> Tuple[int, int]:
    """Exact uniform offset on ``R_d(0)`` (scalar, overflow-free)."""
    if d == 0:
        return (0, 0)
    index = int(rng.integers(0, ring_size(d)))
    return ring_index_to_offset(d, index)


class LevyFlight(JumpProcess):
    """Levy flight with exponent ``alpha`` (or any custom jump law).

    Parameters
    ----------
    alpha_or_distribution:
        Either the exponent ``alpha`` of Eq. (3) or a ready-made
        :class:`~repro.distributions.base.JumpDistribution`.
    start:
        Start node ``J_0`` (the origin by default, as in the paper).
    rng:
        Seed or generator.
    """

    def __init__(
        self,
        alpha_or_distribution: Union[float, JumpDistribution],
        start: IntPoint = (0, 0),
        rng: SeedLike = None,
    ) -> None:
        super().__init__(start=start, rng=rng)
        if isinstance(alpha_or_distribution, JumpDistribution):
            self.distribution = alpha_or_distribution
        else:
            self.distribution = ZetaJumpDistribution(float(alpha_or_distribution))

    @property
    def alpha(self) -> Optional[float]:
        """The exponent, when the jump law is the paper's power law."""
        return getattr(self.distribution, "alpha", None)

    def advance(self) -> IntPoint:
        d = int(self.distribution.sample(self._rng, 1)[0])
        ox, oy = _uniform_ring_offset(d, self._rng)
        self.position = (self.position[0] + ox, self.position[1] + oy)
        self.time += 1
        return self.position
