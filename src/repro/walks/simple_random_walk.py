"""Lazy simple random walk on Z^2 -- the classical baseline.

At every step the walk stays put with probability 1/2 and otherwise moves
to a uniformly random lattice neighbor.  This is exactly the Levy walk
whose jump law puts mass 1/2 on distance 0 and 1/2 on distance 1
(:class:`~repro.distributions.unit.UnitJumpDistribution`); the standalone
implementation here is both a convenience and an independent cross-check
used by the test suite.  The paper (Section 2) notes that Levy walks with
``alpha -> inf`` converge to this process, and its hitting time for a
target at distance ``l`` is ``Theta(l^2 log l)``-ish with polylog success
probability -- the slow extreme the Levy strategies beat.
"""

from __future__ import annotations

from repro.rng import SeedLike
from repro.walks.base import IntPoint, JumpProcess

_NEIGHBOR_OFFSETS = ((1, 0), (0, 1), (-1, 0), (0, -1))


class SimpleRandomWalk(JumpProcess):
    """Lazy simple random walk (stay with probability ``laziness``)."""

    def __init__(
        self,
        start: IntPoint = (0, 0),
        laziness: float = 0.5,
        rng: SeedLike = None,
    ) -> None:
        if not 0.0 <= laziness < 1.0:
            raise ValueError(f"laziness must be in [0, 1), got {laziness}")
        super().__init__(start=start, rng=rng)
        self.laziness = float(laziness)

    def advance(self) -> IntPoint:
        if self._rng.random() >= self.laziness:
            ox, oy = _NEIGHBOR_OFFSETS[int(self._rng.integers(0, 4))]
            self.position = (self.position[0] + ox, self.position[1] + oy)
        self.time += 1
        return self.position
