"""Composite correlated random walk (CCRW) -- the biological rival model.

The paper notes (Section 2) that Levy walks are "the most prominent
movement model in biology [32], at least among models with comparable
mathematical simplicity and elegance [39]".  The reference [39]
(Pyke's critique) centres on the main competing explanation of observed
animal tracks: the *composite correlated random walk*, a two-mode
Markovian walk with

* an **intensive** mode: short, tortuous movement (frequent turning) --
  area-restricted search near resources, and
* an **extensive** mode: long, nearly straight relocation bouts.

A CCRW produces step-length mixtures that can masquerade as power laws
over 1-2 decades, which is why the empirical Levy-vs-CCRW debate exists.
This module implements a lattice CCRW so the repository can compare the
models *functionally* (search efficiency, EXT-CCRW) rather than just
statistically: a CCRW has a characteristic relocation scale (the mean
extensive bout), so -- unlike a Levy walk -- it cannot be efficient at
all target distances simultaneously.

Model (discrete, on Z^2): the walker always occupies a lattice node and
has a current axis direction.  Each step it moves one node in its
direction, then, depending on mode, possibly turns (uniform new
direction) and possibly switches mode; bout lengths are geometric.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.rng import SeedLike
from repro.walks.base import IntPoint, JumpProcess

_DIRECTIONS = ((1, 0), (0, 1), (-1, 0), (0, -1))


class CompositeCorrelatedWalk(JumpProcess):
    """Two-mode correlated walk on Z^2.

    Parameters
    ----------
    intensive_turn_probability:
        Per-step probability of picking a fresh uniform direction while in
        the intensive (local search) mode; high values give Brownian-like
        local meandering.
    extensive_bout_mean:
        Mean length (steps) of an extensive (relocation) bout; bouts are
        geometric and the walker holds its direction throughout.
    switch_to_extensive:
        Per-step probability of leaving the intensive mode.
    start, rng:
        As for every :class:`JumpProcess`.
    """

    def __init__(
        self,
        intensive_turn_probability: float = 0.5,
        extensive_bout_mean: float = 32.0,
        switch_to_extensive: float = 0.05,
        start: IntPoint = (0, 0),
        rng: SeedLike = None,
    ) -> None:
        if not 0.0 < intensive_turn_probability <= 1.0:
            raise ValueError("intensive turn probability must be in (0, 1]")
        if extensive_bout_mean < 1.0:
            raise ValueError("extensive bout mean must be at least 1")
        if not 0.0 < switch_to_extensive < 1.0:
            raise ValueError("switch probability must be in (0, 1)")
        super().__init__(start=start, rng=rng)
        self.intensive_turn_probability = float(intensive_turn_probability)
        self.extensive_bout_mean = float(extensive_bout_mean)
        self.switch_to_extensive = float(switch_to_extensive)
        self._direction = _DIRECTIONS[int(self._rng.integers(0, 4))]
        self._extensive_steps_left = 0  # 0 = intensive mode

    @property
    def mode(self) -> str:
        """Current mode: ``"intensive"`` or ``"extensive"``."""
        return "extensive" if self._extensive_steps_left > 0 else "intensive"

    def _maybe_transition(self) -> None:
        if self._extensive_steps_left > 0:
            self._extensive_steps_left -= 1
            if self._extensive_steps_left == 0:
                # Bout over: drop into intensive mode with a fresh heading.
                self._direction = _DIRECTIONS[int(self._rng.integers(0, 4))]
            return
        if self._rng.random() < self.switch_to_extensive:
            # Start a relocation bout: geometric length, fresh heading.
            self._extensive_steps_left = int(
                self._rng.geometric(1.0 / self.extensive_bout_mean)
            )
            self._direction = _DIRECTIONS[int(self._rng.integers(0, 4))]
        elif self._rng.random() < self.intensive_turn_probability:
            self._direction = _DIRECTIONS[int(self._rng.integers(0, 4))]

    def advance(self) -> IntPoint:
        self._maybe_transition()
        dx, dy = self._direction
        self.position = (self.position[0] + dx, self.position[1] + dy)
        self.time += 1
        return self.position

    def reset(self) -> None:
        super().reset()
        self._extensive_steps_left = 0
        self._direction = _DIRECTIONS[int(self._rng.integers(0, 4))]


def ccrw_hitting_times(
    target: Tuple[int, int],
    horizon: int,
    n_walks: int,
    rng: np.random.Generator,
    intensive_turn_probability: float = 0.5,
    extensive_bout_mean: float = 32.0,
    switch_to_extensive: float = 0.05,
) -> np.ndarray:
    """Vectorized censored hitting times of ``n_walks`` independent CCRWs.

    Returns an int64 array with ``-1`` for walks that did not hit the
    target within ``horizon`` steps.  The walk advances one lattice step
    per round for every walker simultaneously (CCRWs have no long jumps
    to shortcut, so step-level simulation is the exact and natural cost).
    """
    from repro.engine.results import CENSORED

    if horizon < 0:
        raise ValueError(f"horizon must be non-negative, got {horizon}")
    if n_walks < 1:
        raise ValueError(f"n_walks must be positive, got {n_walks}")
    tx, ty = int(target[0]), int(target[1])
    times = np.full(n_walks, CENSORED, dtype=np.int64)
    if (tx, ty) == (0, 0):
        return np.zeros(n_walks, dtype=np.int64)
    pos = np.zeros((n_walks, 2), dtype=np.int64)
    # Directions as indices into _DIRECTIONS.
    heading = rng.integers(0, 4, size=n_walks)
    bout_left = np.zeros(n_walks, dtype=np.int64)
    alive = np.ones(n_walks, dtype=bool)
    direction_table = np.array(_DIRECTIONS, dtype=np.int64)
    p_switch = switch_to_extensive
    p_turn = intensive_turn_probability
    for step in range(1, horizon + 1):
        idx = np.flatnonzero(alive)
        if idx.size == 0:
            break
        # Mode transitions.
        in_bout = bout_left[idx] > 0
        bout_left[idx[in_bout]] -= 1
        bout_ends = idx[in_bout][bout_left[idx[in_bout]] == 0]
        if bout_ends.size:
            heading[bout_ends] = rng.integers(0, 4, size=bout_ends.size)
        intensive = idx[~in_bout]
        if intensive.size:
            u = rng.random(intensive.size)
            starting = intensive[u < p_switch]
            if starting.size:
                bout_left[starting] = rng.geometric(
                    1.0 / extensive_bout_mean, size=starting.size
                )
                heading[starting] = rng.integers(0, 4, size=starting.size)
            staying = intensive[u >= p_switch]
            if staying.size:
                turning = staying[rng.random(staying.size) < p_turn]
                if turning.size:
                    heading[turning] = rng.integers(0, 4, size=turning.size)
        # Move one step.
        pos[idx] += direction_table[heading[idx]]
        hit = (pos[idx, 0] == tx) & (pos[idx, 1] == ty)
        if np.any(hit):
            times[idx[hit]] = step
            alive[idx[hit]] = False
    return times
