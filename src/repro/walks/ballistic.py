"""Straight walk along a random direction -- the ballistic extreme.

The paper's ballistic regime ``alpha in (1, 2]`` "is similar to that of a
straight walk along a random direction" (Section 1.2.1): jumps are so long
that a single jump phase typically dwarfs the target distance.  This
module implements the idealized limit: the walk picks a uniformly random
real direction once and forever follows the direct-path discretization of
that ray -- at step ``i`` it stands on the node of ``R_i(start)`` closest
to the point at arc-parameter ``i`` of the ray (the same nearest-node rule
as Definition 3.1, applied to an infinite segment).

Such a walk reaches distance ``l`` in exactly ``l`` steps and hits a given
target at distance ``l`` with probability ``Theta(1/l)`` (it crosses the
ring ``R_l`` at a single node, roughly uniform over the ``4l`` ring
nodes); it never returns, so a miss is forever -- matching Theorem 1.3's
``P(tau < inf) = O(log^2 l / l)`` shape for the ballistic regime.
"""

from __future__ import annotations

import math

from repro.rng import SeedLike
from repro.walks.base import IntPoint, JumpProcess


def ray_node(start: IntPoint, angle: float, i: int) -> IntPoint:
    """Node of ``R_i(start)`` closest to the ray at L1 arc-length ``i``.

    The ray direction is ``(cos(angle), sin(angle))``; the point of the ray
    at Manhattan distance ``i`` from the start is ``i * (cx, cy) /
    (|cx| + |cy|)``, and we return the nearest lattice node on the ring
    (ties have probability zero for a continuous random angle).
    """
    if i == 0:
        return start
    cx, cy = math.cos(angle), math.sin(angle)
    norm = abs(cx) + abs(cy)
    x_abs = round(i * abs(cx) / norm)
    y_abs = i - x_abs
    sx = 1 if cx >= 0 else -1
    sy = 1 if cy >= 0 else -1
    return (start[0] + sx * x_abs, start[1] + sy * y_abs)


class BallisticWalk(JumpProcess):
    """Walk that follows one random ray at unit speed, forever."""

    def __init__(self, start: IntPoint = (0, 0), rng: SeedLike = None) -> None:
        super().__init__(start=start, rng=rng)
        self.angle = float(self._rng.uniform(0.0, 2.0 * math.pi))

    def advance(self) -> IntPoint:
        self.time += 1
        self.position = ray_node(self.start, self.angle, self.time)
        return self.position
