"""ASCII log-log scatter plots for terminal-friendly experiment output."""

from __future__ import annotations

import math
from typing import Dict, Sequence

_MARKERS = "ox+*#@%&"


def ascii_loglog(
    series: Dict[str, Sequence[tuple[float, float]]],
    width: int = 64,
    height: int = 20,
    title: str | None = None,
) -> str:
    """Render named ``(x, y)`` series on log-log axes as text.

    Non-positive coordinates are skipped (they have no log-log position).
    Each series gets one marker character; overlapping points show the
    later series' marker.
    """
    points = {
        name: [(x, y) for x, y in pts if x > 0 and y > 0]
        for name, pts in series.items()
    }
    flat = [p for pts in points.values() for p in pts]
    if not flat:
        raise ValueError("nothing to plot: no positive points")
    log_x = [math.log10(x) for x, _ in flat]
    log_y = [math.log10(y) for _, y in flat]
    x_lo, x_hi = min(log_x), max(log_x)
    y_lo, y_hi = min(log_y), max(log_y)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for index, (name, pts) in enumerate(points.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in pts:
            col = int((math.log10(x) - x_lo) / x_span * (width - 1))
            row = int((math.log10(y) - y_lo) / y_span * (height - 1))
            grid[height - 1 - row][col] = marker
    lines = []
    if title:
        lines.append(title)
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={name}" for i, name in enumerate(points)
    )
    lines.append(legend)
    lines.append(f"y: 1e{y_lo:.2f} .. 1e{y_hi:.2f} (log scale)")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f"x: 1e{x_lo:.2f} .. 1e{x_hi:.2f} (log scale)")
    return "\n".join(lines)
