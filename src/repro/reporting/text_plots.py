"""ASCII plots (log-log scatter, horizontal bars) for terminal output."""

from __future__ import annotations

import math
from typing import Dict, Sequence, Tuple

_MARKERS = "ox+*#@%&"


def ascii_bars(
    items: Sequence[Tuple[str, float]],
    width: int = 48,
    title: str | None = None,
    unit: str = "",
) -> str:
    """Render labelled non-negative values as horizontal bars.

    Used by ``repro-experiment report`` for per-chunk walltime timelines.
    Bars are linearly scaled to the maximum value; each row shows the
    label, the bar, and the numeric value.
    """
    if not items:
        raise ValueError("nothing to plot: no bars")
    values = [max(0.0, float(value)) for _, value in items]
    peak = max(values) or 1.0
    label_width = max(len(str(label)) for label, _ in items)
    lines = [title] if title else []
    for (label, _), value in zip(items, values):
        bar = "#" * max(1 if value > 0 else 0, round(value / peak * width))
        lines.append(
            f"{str(label).ljust(label_width)} |{bar.ljust(width)}| "
            f"{value:.3g}{unit}"
        )
    return "\n".join(lines)


#: Sparkline ramp, low to high (ASCII-only, like the rest of the module).
_SPARK_RAMP = " .:-=+*#%@"


def sparkline(values: Sequence[float], width: int = 32) -> str:
    """Compress a numeric series into one line of ramp characters.

    Values are scaled linearly between the series min and max (a flat
    series renders mid-ramp); series longer than ``width`` are bucketed
    by averaging so the full history always fits.  Used by
    ``repro-experiment watch`` for CI half-width shrink histories.
    """
    values = [float(v) for v in values]
    if not values:
        return ""
    if len(values) > width:
        # Average into `width` buckets, preserving order.
        bucketed = []
        for i in range(width):
            lo = i * len(values) // width
            hi = max(lo + 1, (i + 1) * len(values) // width)
            bucketed.append(sum(values[lo:hi]) / (hi - lo))
        values = bucketed
    low, high = min(values), max(values)
    span = high - low
    if span == 0:
        return _SPARK_RAMP[len(_SPARK_RAMP) // 2] * len(values)
    top = len(_SPARK_RAMP) - 1
    return "".join(
        _SPARK_RAMP[round((v - low) / span * top)] for v in values
    )


def ascii_loglog(
    series: Dict[str, Sequence[tuple[float, float]]],
    width: int = 64,
    height: int = 20,
    title: str | None = None,
) -> str:
    """Render named ``(x, y)`` series on log-log axes as text.

    Non-positive coordinates are skipped (they have no log-log position).
    Each series gets one marker character; overlapping points show the
    later series' marker.
    """
    points = {
        name: [(x, y) for x, y in pts if x > 0 and y > 0]
        for name, pts in series.items()
    }
    flat = [p for pts in points.values() for p in pts]
    if not flat:
        raise ValueError("nothing to plot: no positive points")
    log_x = [math.log10(x) for x, _ in flat]
    log_y = [math.log10(y) for _, y in flat]
    x_lo, x_hi = min(log_x), max(log_x)
    y_lo, y_hi = min(log_y), max(log_y)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for index, (name, pts) in enumerate(points.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in pts:
            col = int((math.log10(x) - x_lo) / x_span * (width - 1))
            row = int((math.log10(y) - y_lo) / y_span * (height - 1))
            grid[height - 1 - row][col] = marker
    lines = []
    if title:
        lines.append(title)
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={name}" for i, name in enumerate(points)
    )
    lines.append(legend)
    lines.append(f"y: 1e{y_lo:.2f} .. 1e{y_hi:.2f} (log scale)")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f"x: 1e{x_lo:.2f} .. 1e{x_hi:.2f} (log scale)")
    return "\n".join(lines)
