"""Plain-text reporting: tables, markdown, ASCII plots and heatmaps."""

from repro.reporting.heatmap import ascii_heatmap
from repro.reporting.markdown import (
    result_to_markdown,
    results_to_markdown,
    table_to_markdown,
)
from repro.reporting.table import Table
from repro.reporting.text_plots import ascii_bars, ascii_loglog, sparkline

__all__ = [
    "Table",
    "ascii_bars",
    "ascii_loglog",
    "sparkline",
    "ascii_heatmap",
    "table_to_markdown",
    "result_to_markdown",
    "results_to_markdown",
]
