"""``repro-experiment dashboard``: the registry as one static HTML file.

The run registry (:mod:`repro.telemetry.registry`) remembers every run's
headline estimates, phase profile and incident counters; this module
renders that memory as a *single self-contained* HTML document -- inline
CSS, inline SVG, **zero** JavaScript, no external assets -- so the file
can be committed, attached to a CI build, or opened from a mail client
and still work in twenty years.  The same zero-dependency ethos as the
text tables, one rung up the presentation ladder.

Sections, in order:

* **Overview** -- one table row per registered run (id, command, git
  revision, outcome, points, walltime, incidents);
* **Estimate trajectories** -- per grid-point key (law, l, k, ...), an
  SVG chart of the Wilson point estimate across runs in registration
  order, each point wearing its 95% CI as a whisker; drift is visible as
  a marker stepping outside its neighbours' whiskers;
* **Walltime & convergence trends** -- SVG sparklines of run walltime
  and of converged/total points per run;
* **Phase seconds** -- one stacked horizontal bar per run, phases
  colour-coded with a shared legend: where the engine time went, run
  over run;
* **Incident ledger** -- every run with non-zero incident counters
  (retries, quarantined points, hung chunks, ...), newest last.

Everything is computed from :class:`~repro.telemetry.registry.RunRecord`
objects alone -- no event-log access -- so rendering is fast and works
after ``runs gc`` removed the underlying artifacts.
"""

from __future__ import annotations

import html
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

#: Fixed colour wheel for phase bars (dark-on-light friendly).  Phases
#: are assigned colours by first appearance across the run sequence, so
#: the same phase keeps its colour in every bar.
PHASE_COLORS = (
    "#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#76b7b2",
    "#edc948", "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac",
)

_OUTCOME_COLORS = {
    "ok": "#2e7d32",
    "degraded": "#f9a825",
    "quarantined": "#ef6c00",
    "failed": "#c62828",
    "interrupted": "#6a1b9a",
}

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, 'Helvetica Neue',
       Arial, sans-serif; margin: 2rem auto; max-width: 72rem;
       color: #212121; background: #fafafa; padding: 0 1rem; }
h1 { font-size: 1.5rem; border-bottom: 2px solid #4e79a7; padding-bottom: .3rem; }
h2 { font-size: 1.15rem; margin-top: 2rem; }
h3 { font-size: .95rem; margin: 1rem 0 .25rem; font-weight: 600; }
table { border-collapse: collapse; font-size: .85rem; width: 100%; }
th, td { border: 1px solid #ddd; padding: .3rem .55rem; text-align: left; }
th { background: #eceff1; }
tr:nth-child(even) td { background: #f5f5f5; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
code { background: #eceff1; padding: .05rem .3rem; border-radius: 3px;
       font-size: .85em; }
.meta { color: #616161; font-size: .8rem; }
.chart { background: #fff; border: 1px solid #e0e0e0; border-radius: 4px;
         padding: .5rem; margin: .5rem 0 1rem; }
.legend { font-size: .8rem; margin: .25rem 0 .75rem; }
.legend span.swatch { display: inline-block; width: .8em; height: .8em;
                      margin: 0 .3em 0 1em; vertical-align: -0.05em;
                      border-radius: 2px; }
.outcome { font-weight: 600; }
.empty { color: #757575; font-style: italic; }
"""


def _esc(value: Any) -> str:
    return html.escape(str(value), quote=True)


def _fmt(value: Optional[float], digits: int = 4) -> str:
    if value is None:
        return "-"
    return format(float(value), f".{digits}g")


def _outcome_cell(outcome: str) -> str:
    color = _OUTCOME_COLORS.get(outcome, "#212121")
    return f'<span class="outcome" style="color:{color}">{_esc(outcome)}</span>'


def _short_id(run_id: str) -> str:
    # 20260808T101500Z-a1b2c3 -> a1b2c3 (the date half is in its own column)
    return run_id.rsplit("-", 1)[-1] if "-" in run_id else run_id


# ------------------------------------------------------------------ SVG bits


def _svg_open(width: int, height: int) -> str:
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        f'role="img" font-family="inherit">'
    )


def _scale(
    value: float, lo: float, hi: float, pixel_lo: float, pixel_hi: float
) -> float:
    if hi <= lo:
        return (pixel_lo + pixel_hi) / 2.0
    frac = (value - lo) / (hi - lo)
    return pixel_lo + frac * (pixel_hi - pixel_lo)


def estimate_trajectory_svg(
    points: Sequence[Mapping[str, Any]],
    width: int = 520,
    height: int = 150,
) -> str:
    """One grid-point key's estimate across runs, CIs as whiskers.

    ``points`` is a chronological list of ``{"run_id", "p", "low",
    "high"}`` dicts (``p`` may be None for runs where the point had an
    empty sample: those runs leave a visible gap).
    """
    pad_l, pad_r, pad_t, pad_b = 46, 10, 8, 22
    xs = list(range(len(points)))
    values = [
        v
        for point in points
        for v in (point.get("p"), point.get("low"), point.get("high"))
        if isinstance(v, (int, float))
    ]
    parts = [_svg_open(width, height)]
    if not values:
        parts.append(
            f'<text x="{width // 2}" y="{height // 2}" text-anchor="middle" '
            f'font-size="12" fill="#757575">no data</text></svg>'
        )
        return "".join(parts)
    lo, hi = min(values), max(values)
    span = hi - lo
    lo -= 0.08 * span or 0.01
    hi += 0.08 * span or 0.01
    plot_l, plot_r = pad_l, width - pad_r
    plot_t, plot_b = pad_t, height - pad_b

    def x_at(i: int) -> float:
        if len(xs) == 1:
            return (plot_l + plot_r) / 2.0
        return _scale(i, 0, len(xs) - 1, plot_l, plot_r)

    def y_at(v: float) -> float:
        return _scale(v, lo, hi, plot_b, plot_t)  # flipped: SVG y grows down

    # Axis frame and y tick labels.
    parts.append(
        f'<rect x="{plot_l}" y="{plot_t}" width="{plot_r - plot_l}" '
        f'height="{plot_b - plot_t}" fill="none" stroke="#e0e0e0"/>'
    )
    for tick in (lo, (lo + hi) / 2.0, hi):
        y = y_at(tick)
        parts.append(
            f'<text x="{plot_l - 4}" y="{y + 3:.1f}" text-anchor="end" '
            f'font-size="9" fill="#757575">{tick:.3g}</text>'
        )
        parts.append(
            f'<line x1="{plot_l}" y1="{y:.1f}" x2="{plot_r}" y2="{y:.1f}" '
            f'stroke="#eeeeee"/>'
        )
    # Connect consecutive runs that both have estimates.
    previous: Optional[Tuple[float, float]] = None
    for i, point in enumerate(points):
        p = point.get("p")
        if not isinstance(p, (int, float)):
            previous = None
            continue
        x, y = x_at(i), y_at(float(p))
        if previous is not None:
            parts.append(
                f'<line x1="{previous[0]:.1f}" y1="{previous[1]:.1f}" '
                f'x2="{x:.1f}" y2="{y:.1f}" stroke="#4e79a7" stroke-width="1.5"/>'
            )
        previous = (x, y)
    # CI whiskers, then markers on top.
    for i, point in enumerate(points):
        p, low, high = point.get("p"), point.get("low"), point.get("high")
        x = x_at(i)
        if isinstance(low, (int, float)) and isinstance(high, (int, float)):
            y_low, y_high = y_at(float(low)), y_at(float(high))
            parts.append(
                f'<line x1="{x:.1f}" y1="{y_low:.1f}" x2="{x:.1f}" '
                f'y2="{y_high:.1f}" stroke="#9ab5d4" stroke-width="3" '
                f'stroke-linecap="round" opacity="0.7"/>'
            )
        if isinstance(p, (int, float)):
            parts.append(
                f'<circle cx="{x:.1f}" cy="{y_at(float(p)):.1f}" r="3" '
                f'fill="#4e79a7"><title>{_esc(point.get("run_id", "?"))}: '
                f'p={float(p):.4g}</title></circle>'
            )
        label = _short_id(str(point.get("run_id", "")))
        parts.append(
            f'<text x="{x:.1f}" y="{height - 8}" text-anchor="middle" '
            f'font-size="8" fill="#757575">{_esc(label)}</text>'
        )
    parts.append("</svg>")
    return "".join(parts)


def trend_svg(
    values: Sequence[Optional[float]],
    labels: Sequence[str],
    width: int = 520,
    height: int = 90,
    color: str = "#59a14f",
    unit: str = "",
) -> str:
    """A compact polyline sparkline of one scalar across runs."""
    pad_l, pad_r, pad_t, pad_b = 46, 10, 6, 18
    numeric = [v for v in values if isinstance(v, (int, float))]
    parts = [_svg_open(width, height)]
    if not numeric:
        parts.append(
            f'<text x="{width // 2}" y="{height // 2}" text-anchor="middle" '
            f'font-size="12" fill="#757575">no data</text></svg>'
        )
        return "".join(parts)
    lo, hi = min(numeric), max(numeric)
    span = hi - lo
    lo -= 0.1 * span or 0.01
    hi += 0.1 * span or 0.01
    plot_l, plot_r = pad_l, width - pad_r
    plot_t, plot_b = pad_t, height - pad_b

    def x_at(i: int) -> float:
        if len(values) == 1:
            return (plot_l + plot_r) / 2.0
        return _scale(i, 0, len(values) - 1, plot_l, plot_r)

    def y_at(v: float) -> float:
        return _scale(v, lo, hi, plot_b, plot_t)

    for tick in (min(numeric), max(numeric)):
        parts.append(
            f'<text x="{plot_l - 4}" y="{y_at(tick) + 3:.1f}" text-anchor="end" '
            f'font-size="9" fill="#757575">{tick:.3g}{_esc(unit)}</text>'
        )
    previous: Optional[Tuple[float, float]] = None
    for i, value in enumerate(values):
        if not isinstance(value, (int, float)):
            previous = None
            continue
        x, y = x_at(i), y_at(float(value))
        if previous is not None:
            parts.append(
                f'<line x1="{previous[0]:.1f}" y1="{previous[1]:.1f}" '
                f'x2="{x:.1f}" y2="{y:.1f}" stroke="{color}" stroke-width="1.5"/>'
            )
        parts.append(
            f'<circle cx="{x:.1f}" cy="{y:.1f}" r="2.5" fill="{color}">'
            f"<title>{_esc(labels[i])}: {float(value):.4g}{_esc(unit)}</title>"
            f"</circle>"
        )
        previous = (x, y)
    parts.append("</svg>")
    return "".join(parts)


def phase_bars_svg(
    runs: Sequence[Tuple[str, Mapping[str, float]]],
    colors: Mapping[str, str],
    width: int = 640,
    bar_height: int = 16,
    gap: int = 6,
) -> str:
    """One stacked horizontal bar of phase seconds per run."""
    pad_l, pad_r = 120, 60
    height = len(runs) * (bar_height + gap) + gap
    totals = [sum(phases.values()) for _, phases in runs]
    max_total = max(totals) if totals else 0.0
    parts = [_svg_open(width, height)]
    plot_w = width - pad_l - pad_r
    for row, ((label, phases), total) in enumerate(zip(runs, totals)):
        y = gap + row * (bar_height + gap)
        parts.append(
            f'<text x="{pad_l - 6}" y="{y + bar_height - 4}" text-anchor="end" '
            f'font-size="10" fill="#424242">{_esc(label)}</text>'
        )
        x = float(pad_l)
        for name in sorted(phases, key=phases.get, reverse=True):
            seconds = phases[name]
            if seconds <= 0 or max_total <= 0:
                continue
            segment = plot_w * seconds / max_total
            parts.append(
                f'<rect x="{x:.1f}" y="{y}" width="{max(segment, 0.5):.1f}" '
                f'height="{bar_height}" fill="{colors.get(name, "#bab0ac")}">'
                f"<title>{_esc(name)}: {seconds:.3g}s</title></rect>"
            )
            x += segment
        parts.append(
            f'<text x="{x + 5:.1f}" y="{y + bar_height - 4}" font-size="9" '
            f'fill="#757575">{total:.3g}s</text>'
        )
    parts.append("</svg>")
    return "".join(parts)


# ----------------------------------------------------------------- assembly


def _trajectories(records: Sequence) -> Dict[str, List[Dict[str, Any]]]:
    """Per estimate key, the chronological (run, p, CI) series."""
    series: Dict[str, List[Dict[str, Any]]] = {}
    for record in records:
        for estimate in record.estimates:
            key = str(estimate.get("key", "?"))
            series.setdefault(key, []).append(
                {
                    "run_id": record.run_id,
                    "p": estimate.get("p"),
                    "low": estimate.get("low"),
                    "high": estimate.get("high"),
                    "trials": estimate.get("trials"),
                    "status": estimate.get("status"),
                }
            )
    return series


def _phase_colors(records: Sequence) -> Dict[str, str]:
    colors: Dict[str, str] = {}
    for record in records:
        for name in sorted(record.phases, key=record.phases.get, reverse=True):
            if name not in colors:
                colors[name] = PHASE_COLORS[len(colors) % len(PHASE_COLORS)]
    return colors


def render_dashboard(records: Sequence, title: str = "Run registry dashboard") -> str:
    """The full single-file HTML document for a record sequence.

    ``records`` must be chronological (oldest first), exactly as
    :meth:`RunRegistry.records` returns them.  An empty sequence renders
    a valid empty-state page rather than failing, so the CI step works
    on a fresh registry too.
    """
    generated = max((r.created_at for r in records), default="-")
    out: List[str] = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{_esc(title)}</title>",
        f"<style>{_CSS}</style>",
        "</head><body>",
        f"<h1>{_esc(title)}</h1>",
        f'<p class="meta">{len(records)} registered run(s)'
        f" &middot; newest {_esc(generated)}"
        " &middot; rendered by <code>repro-experiment dashboard</code>"
        " (self-contained, no scripts)</p>",
    ]
    if not records:
        out.append(
            '<p class="empty">The registry is empty. Runs register themselves '
            "automatically; see <code>repro-experiment sweep --help</code> "
            "(<code>--registry-dir</code>).</p>"
        )
        out.append("</body></html>")
        return "\n".join(out)

    # ------------------------------------------------------------ overview
    out.append("<h2>Overview</h2>")
    out.append(
        "<table><tr><th>run id</th><th>created (UTC)</th><th>command</th>"
        "<th>label</th><th>git</th><th>scale</th><th>outcome</th>"
        "<th>points</th><th>converged</th><th>walltime</th>"
        "<th>incidents</th></tr>"
    )
    for record in records:
        converged = sum(
            1 for e in record.estimates if e.get("status") == "converged"
        )
        incident_total = sum(record.incidents.values())
        out.append(
            "<tr>"
            f"<td><code>{_esc(record.run_id)}</code></td>"
            f"<td>{_esc(record.created_at)}</td>"
            f"<td>{_esc(record.command)}</td>"
            f"<td>{_esc(record.label or '-')}</td>"
            f"<td><code>{_esc(record.git_rev or '?')}</code></td>"
            f"<td>{_esc(record.scale or '-')}</td>"
            f"<td>{_outcome_cell(record.outcome)}</td>"
            f'<td class="num">{len(record.estimates)}</td>'
            f'<td class="num">{converged}</td>'
            f'<td class="num">{_fmt(record.walltime_seconds)}s</td>'
            f'<td class="num">{incident_total or "-"}</td>'
            "</tr>"
        )
    out.append("</table>")

    # ------------------------------------------------- estimate trajectories
    out.append("<h2>Estimate trajectories</h2>")
    out.append(
        '<p class="meta">Wilson point estimates per grid point across runs, '
        "95% CIs as whiskers. A marker stepping outside its neighbours' "
        "whiskers is statistical drift (<code>runs compare</code> flags "
        "it).</p>"
    )
    series = _trajectories(records)
    if series:
        for key in sorted(series):
            out.append(f"<h3><code>{_esc(key)}</code></h3>")
            out.append(
                f'<div class="chart">{estimate_trajectory_svg(series[key])}</div>'
            )
    else:
        out.append('<p class="empty">No estimates registered yet.</p>')

    # ----------------------------------------------------------- trends
    out.append("<h2>Walltime &amp; convergence trends</h2>")
    labels = [record.run_id for record in records]
    out.append("<h3>walltime (seconds)</h3>")
    out.append(
        '<div class="chart">'
        + trend_svg(
            [record.walltime_seconds for record in records], labels, unit="s"
        )
        + "</div>"
    )
    converged_fracs: List[Optional[float]] = []
    for record in records:
        if record.estimates:
            converged_fracs.append(
                sum(1 for e in record.estimates if e.get("status") == "converged")
                / len(record.estimates)
            )
        else:
            converged_fracs.append(None)
    out.append("<h3>converged points (fraction of grid)</h3>")
    out.append(
        '<div class="chart">'
        + trend_svg(converged_fracs, labels, color="#b07aa1")
        + "</div>"
    )

    # ------------------------------------------------------- phase bars
    out.append("<h2>Phase seconds</h2>")
    phase_runs = [
        (_short_id(record.run_id), record.phases)
        for record in records
        if record.phases
    ]
    if phase_runs:
        colors = _phase_colors(records)
        legend = "".join(
            f'<span class="swatch" style="background:{color}"></span>{_esc(name)}'
            for name, color in colors.items()
        )
        out.append(f'<div class="legend">{legend}</div>')
        out.append(f'<div class="chart">{phase_bars_svg(phase_runs, colors)}</div>')
    else:
        out.append(
            '<p class="empty">No phase profiles registered (runs without '
            "telemetry record no phases).</p>"
        )

    # --------------------------------------------------- incident ledger
    out.append("<h2>Incident &amp; quarantine ledger</h2>")
    incident_rows = [
        record
        for record in records
        if record.incidents or record.outcome not in ("ok",)
    ]
    if incident_rows:
        out.append(
            "<table><tr><th>run id</th><th>created (UTC)</th><th>outcome</th>"
            "<th>counters</th><th>notes</th></tr>"
        )
        for record in incident_rows:
            counters = (
                ", ".join(
                    f"{name}={value}"
                    for name, value in sorted(record.incidents.items())
                    if value
                )
                or "-"
            )
            out.append(
                "<tr>"
                f"<td><code>{_esc(record.run_id)}</code></td>"
                f"<td>{_esc(record.created_at)}</td>"
                f"<td>{_outcome_cell(record.outcome)}</td>"
                f"<td>{_esc(counters)}</td>"
                f"<td>{_esc('; '.join(record.notes) or '-')}</td>"
                "</tr>"
            )
        out.append("</table>")
    else:
        out.append(
            '<p class="empty">No incidents: every registered run finished '
            "clean.</p>"
        )

    out.append("</body></html>")
    return "\n".join(out)


def write_dashboard(records: Sequence, path, title: str = "Run registry dashboard"):
    """Render and atomically write the dashboard file; returns the Path."""
    from pathlib import Path

    from repro.io_utils import atomic_write_bytes

    text = render_dashboard(records, title=title)
    return atomic_write_bytes(text.encode("utf-8"), Path(path))
