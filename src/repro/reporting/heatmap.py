"""ASCII heatmaps for occupation grids.

Renders a 2D probability/visit grid (as produced by
:func:`repro.engine.visits.flight_occupation_grid` or
:func:`repro.engine.exact_occupation.flight_occupation_exact`) as
log-scaled density characters, terminal-friendly.
"""

from __future__ import annotations

import math

import numpy as np

#: Density ramp from empty to dense.
_RAMP = " .:-=+*#%@"


def ascii_heatmap(
    grid: np.ndarray,
    title: str | None = None,
    log_scale: bool = True,
    mark_center: bool = True,
) -> str:
    """Render a square occupancy grid as text.

    Cells with zero mass render as spaces; positive cells are bucketed
    into the density ramp, by default on a log scale (occupation laws
    span many orders of magnitude).  The grid's center cell (the origin)
    is marked ``O`` when ``mark_center`` is set.
    """
    grid = np.asarray(grid, dtype=float)
    if grid.ndim != 2 or grid.shape[0] != grid.shape[1]:
        raise ValueError("grid must be a square 2-d array")
    if np.any(grid < 0):
        raise ValueError("grid values must be non-negative")
    positive = grid[grid > 0]
    lines = []
    if title:
        lines.append(title)
    if positive.size == 0:
        lines.append("(empty grid)")
        return "\n".join(lines)
    if log_scale:
        low = math.log(float(positive.min()))
        high = math.log(float(positive.max()))
    else:
        low = float(positive.min())
        high = float(positive.max())
    span = (high - low) or 1.0
    side = grid.shape[0]
    center = (side - 1) // 2
    # Row 0 of the output is the TOP of the window (largest y): the grid
    # convention is grid[x + r, y + r], so we iterate y from high to low.
    for y in range(side - 1, -1, -1):
        row_chars = []
        for x in range(side):
            value = grid[x, y]
            if mark_center and x == center and y == center:
                row_chars.append("O")
            elif value <= 0:
                row_chars.append(" ")
            else:
                scaled = math.log(value) if log_scale else value
                bucket = int((scaled - low) / span * (len(_RAMP) - 1))
                row_chars.append(_RAMP[max(1, bucket)])
        lines.append("".join(row_chars))
    return "\n".join(lines)
