"""Plain-text tables -- the output format of every experiment.

The paper's "tables" are its theorem statements; our harnesses print one
aligned text table per experiment with the measured and predicted
quantities side by side, and can also dump CSV for external plotting.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import List, Optional, Sequence


def _format_cell(value, float_format: str) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == float("inf"):
            return "inf"
        return format(value, float_format)
    return str(value)


class Table:
    """A titled, column-aligned text table."""

    def __init__(self, columns: Sequence[str], title: Optional[str] = None) -> None:
        if not columns:
            raise ValueError("a table needs at least one column")
        self.columns = list(columns)
        self.title = title
        self.rows: List[list] = []

    def add_row(self, *values) -> None:
        """Append one row; must match the column count."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        self.rows.append(list(values))

    def render(self, float_format: str = ".4g") -> str:
        """Return the aligned text rendering."""
        cells = [self.columns] + [
            [_format_cell(v, float_format) for v in row] for row in self.rows
        ]
        widths = [max(len(row[i]) for row in cells) for i in range(len(self.columns))]
        lines = []
        if self.title:
            lines.append(self.title)
        header = "  ".join(name.ljust(widths[i]) for i, name in enumerate(cells[0]))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in cells[1:]:
            lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)

    def to_csv(self, path) -> None:
        """Write the table (with header) as CSV."""
        path = Path(path)
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(self.columns)
            writer.writerows(self.rows)

    def column(self, name: str) -> list:
        """Extract one column by name."""
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def __str__(self) -> str:
        return self.render()
