"""Markdown rendering of experiment results (powers EXPERIMENTS.md).

EXPERIMENTS.md is a generated artifact: ``scripts/generate_experiments_md.py``
runs every registered experiment at a chosen scale and renders the results
through this module, so the recorded paper-vs-measured numbers are always
regenerable from one command.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.reporting.table import Table, _format_cell

if TYPE_CHECKING:  # avoid a circular import: experiments.common uses Table
    from repro.experiments.common import ExperimentResult


def table_to_markdown(table: Table, float_format: str = ".4g") -> str:
    """Render a :class:`Table` as a GitHub-flavored markdown table."""
    lines = []
    if table.title:
        lines.append(f"**{table.title}**")
        lines.append("")
    header = "| " + " | ".join(table.columns) + " |"
    separator = "|" + "|".join([" --- "] * len(table.columns)) + "|"
    lines.append(header)
    lines.append(separator)
    for row in table.rows:
        cells = [_format_cell(value, float_format) for value in row]
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def result_to_markdown(result: ExperimentResult) -> str:
    """Render one experiment's full result as a markdown section."""
    lines: List[str] = [
        f"## {result.experiment_id} — {result.title}",
        "",
        f"*scale:* `{result.scale}` · *seed:* `{result.seed}` · "
        f"*verdict:* {'✅ all checks passed' if result.passed else '❌ some checks failed'}",
        "",
    ]
    for table in result.tables:
        lines.append(table_to_markdown(table))
        lines.append("")
    if result.checks:
        lines.append("**Checks (paper-predicted shape vs measured):**")
        lines.append("")
        for check in result.checks:
            status = "✅" if check.passed else "❌"
            detail = f" — {check.detail}" if check.detail else ""
            lines.append(f"- {status} {check.description}{detail}")
        lines.append("")
    for note in result.notes:
        lines.append(f"> {note}")
        lines.append("")
    return "\n".join(lines)


def results_to_markdown(results: List[ExperimentResult], preamble: str = "") -> str:
    """Render a full EXPERIMENTS.md document."""
    parts = []
    if preamble:
        parts.append(preamble.rstrip())
        parts.append("")
    passed = sum(1 for r in results if r.passed)
    parts.append(
        f"**Summary: {passed}/{len(results)} experiments passed all their "
        "checks.**"
    )
    parts.append("")
    parts.append("| experiment | title | checks |")
    parts.append("| --- | --- | --- |")
    for result in results:
        n_pass = sum(1 for c in result.checks if c.passed)
        parts.append(
            f"| [{result.experiment_id}](#{_anchor(result)}) | {result.title} "
            f"| {n_pass}/{len(result.checks)} |"
        )
    parts.append("")
    for result in results:
        parts.append(result_to_markdown(result))
    return "\n".join(parts)


def _anchor(result: ExperimentResult) -> str:
    """GitHub-style anchor for the result's section heading."""
    heading = f"{result.experiment_id} — {result.title}"
    anchor = heading.lower()
    keep = []
    for char in anchor:
        if char.isalnum():
            keep.append(char)
        elif char in (" ", "-"):
            keep.append("-")
    return "".join(keep).replace("--", "-").strip("-")
