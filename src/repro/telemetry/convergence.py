"""Streaming convergence monitoring for the chunked runner.

The paper's headline quantities are small hitting probabilities (e.g.
Theorem 1.1(a)'s ``Omega(1/l^{3-alpha} log^2 l)``), so a sweep is only as
trustworthy as its estimator's confidence interval -- and only as cheap
as the moment it could have stopped.  :class:`ConvergenceMonitor` rides
inside :meth:`repro.runner.Runner.run`, consuming each chunk's merged
payload as it completes, and provides three things:

* **running estimates** -- for payloads exposing the Bernoulli duck type
  (``.n_hits`` / ``.n``, i.e. :class:`~repro.engine.results
  .HittingTimeSample`), a streaming success count with a running Wilson
  interval, emitted as an ``estimate`` event per chunk;
* **sequential stopping** -- with a configured relative CI half-width
  target (CLI: ``--stop-when-ci``), :meth:`should_stop` turns true once
  the running interval is tight enough, and the runner finishes early
  with ``converged=True`` -- a *successful* early exit, distinct from a
  ``deadline``-degraded one;
* **anomaly detection** -- chunk walltimes far above the running median
  (a wedged worker, a pathological seed) and success-rate drift between
  the first and second half of the chunk history (mis-seeded resume,
  non-stationarity) are surfaced as ``incident`` events.

Payloads without the Bernoulli duck type (e.g. foraging results) still
get walltime stall detection; they simply never produce ``estimate``
events, so a CI-based stop can never fire for them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.streaming import (
    RunningMedian,
    StreamingProportion,
    success_drift_z,
)


@dataclass(frozen=True)
class ConvergenceConfig:
    """Tuning knobs for :class:`ConvergenceMonitor`.

    Parameters
    ----------
    rel_ci_width:
        Stop once the 95% Wilson half-width drops below this fraction of
        the point estimate (``None`` monitors without ever stopping).
    min_chunks:
        Never stop before this many chunks have been observed -- a single
        lucky chunk must not end a sweep.
    min_successes:
        Never stop before this many successes; below it the Wilson
        interval is formally tight around 0 long before the estimate is
        meaningful for the paper's ``1/poly(l)`` probabilities.
    stall_factor / min_stall_chunks:
        A chunk slower than ``stall_factor`` times the running median of
        at least ``min_stall_chunks`` prior chunks raises a
        ``slow_chunk`` incident.
    drift_z / min_drift_chunks:
        |two-proportion z| between the first and second half of the chunk
        history above ``drift_z`` (once at least ``min_drift_chunks``
        chunks are in) raises a ``success_drift`` incident, once per run.
    """

    rel_ci_width: Optional[float] = None
    min_chunks: int = 3
    min_successes: int = 10
    stall_factor: float = 5.0
    min_stall_chunks: int = 4
    drift_z: float = 4.0
    min_drift_chunks: int = 6

    def __post_init__(self) -> None:
        if self.rel_ci_width is not None and not self.rel_ci_width > 0:
            raise ValueError(
                f"rel_ci_width must be positive, got {self.rel_ci_width}"
            )
        if self.min_chunks < 1:
            raise ValueError(f"min_chunks must be positive, got {self.min_chunks}")
        if self.stall_factor <= 1.0:
            raise ValueError(f"stall_factor must exceed 1, got {self.stall_factor}")


class ConvergenceMonitor:
    """Per-``run()`` streaming estimator state (one instance per label).

    The runner feeds it resumed chunks silently (:meth:`observe_resumed`,
    so a resumed run starts from the correct totals without re-emitting
    history) and live chunks as they complete (:meth:`observe_chunk`).
    """

    def __init__(self, config: ConvergenceConfig, recorder, label: str) -> None:
        self.config = config
        self._rec = recorder
        self._label = label
        self._proportion = StreamingProportion()
        self._chunk_walltimes = RunningMedian()
        self._chunks_observed = 0
        self._drift_flagged = False
        #: True once the CI target is met (latched; chunks only add data).
        self.converged = False

    # ------------------------------------------------------------- ingestion

    def observe_resumed(self, payload) -> None:
        """Fold a checkpointed chunk in without events or stall checks."""
        self._ingest(payload)
        self._chunks_observed += 1
        self._update_converged()

    def observe_chunk(self, index: int, payload, seconds: float) -> None:
        """Fold one freshly computed chunk in and emit telemetry."""
        self._check_stall(index, seconds)
        self._chunk_walltimes.push(seconds)
        had_counts = self._ingest(payload)
        self._chunks_observed += 1
        if not had_counts:
            return
        self._update_converged()
        self._emit_estimate(index)
        self._check_drift()

    def _ingest(self, payload) -> bool:
        """Fold a Bernoulli payload's counts in; False if it has none."""
        n_hits = getattr(payload, "n_hits", None)
        n = getattr(payload, "n", None)
        if n_hits is None or n is None:
            return False
        self._proportion.update(int(n_hits), int(n))
        return True

    # -------------------------------------------------------------- stopping

    def _update_converged(self) -> None:
        config = self.config
        if config.rel_ci_width is None or self.converged:
            return
        proportion = self._proportion
        if proportion.trials == 0 or self._chunks_observed < config.min_chunks:
            return
        if proportion.successes < config.min_successes:
            return
        if proportion.rel_half_width <= config.rel_ci_width:
            self.converged = True

    def should_stop(self) -> bool:
        """True once the runner may finish early with ``converged`` status."""
        return self.converged

    def stop_fields(self) -> dict:
        """CI details stamped onto the runner's ``converged`` event."""
        estimate = self._proportion.estimate
        return {
            "target": self.config.rel_ci_width,
            "successes": estimate.successes,
            "trials": estimate.trials,
            "p": round(estimate.point, 8),
            "low": round(estimate.low, 8),
            "high": round(estimate.high, 8),
            "rel_half_width": round(self._proportion.rel_half_width, 6),
        }

    # --------------------------------------------------------------- events

    def _emit_estimate(self, index: int) -> None:
        proportion = self._proportion
        estimate = proportion.estimate
        fields = {
            "label": self._label,
            "chunk": index,
            "successes": estimate.successes,
            "trials": estimate.trials,
            "p": round(estimate.point, 8),
            "low": round(estimate.low, 8),
            "high": round(estimate.high, 8),
            "half_width": round(proportion.half_width, 8),
        }
        # rel_half_width is inf at p = 0, which JSON cannot carry; omit it.
        rel = proportion.rel_half_width
        if rel != float("inf"):
            fields["rel_half_width"] = round(rel, 6)
        if self.config.rel_ci_width is not None:
            fields["target"] = self.config.rel_ci_width
            fields["converged"] = self.converged
        self._rec.event("estimate", **fields)

    def _incident(self, kind: str, **fields) -> None:
        self._rec.event("incident", kind=kind, label=self._label, **fields)
        self._rec.metrics.counter("runner.incidents").add()

    def _check_stall(self, index: int, seconds: float) -> None:
        if self._chunk_walltimes.n < self.config.min_stall_chunks:
            return
        median = self._chunk_walltimes.median
        if median is None or median <= 0.0:
            return
        if seconds > self.config.stall_factor * median:
            self._incident(
                "slow_chunk",
                chunk=index,
                seconds=round(seconds, 6),
                median_seconds=round(median, 6),
                factor=round(seconds / median, 2),
            )

    def _check_drift(self) -> None:
        if self._drift_flagged:
            return
        batches = self._proportion.batches
        if len(batches) < self.config.min_drift_chunks:
            return
        z = success_drift_z(batches)
        if abs(z) > self.config.drift_z:
            self._drift_flagged = True
            mid = len(batches) // 2
            self._incident(
                "success_drift",
                z=round(z, 3),
                threshold=self.config.drift_z,
                first_half_chunks=mid,
                second_half_chunks=len(batches) - mid,
            )
