"""``repro-experiment bench-history``: diff committed benchmark snapshots.

The benchmarks persist flat ``BENCH_<group>.json`` snapshots at the repo
root (see ``benchmarks/bench_utils.py``), so perf is diffable per commit
-- but a diff is only useful if something reads it.  This command
compares a *baseline* snapshot (the committed one) against a *current*
one (a fresh benchmark run) and fails past a configurable regression
threshold, which is what CI's ``bench-regression`` job runs.

Comparison semantics, by metric-name suffix:

* ``*_seconds`` -- wall times; compared **relatively**: a regression is
  ``current/baseline - 1 > threshold``;
* ``*_overhead`` -- already-relative ratios (e.g. telemetry's +33%
  means 0.33); compared **absolutely**: a regression is
  ``current - baseline > threshold`` (a 25% threshold tolerates the
  overhead growing by up to 25 *percentage points* of the base time);
* ``*_speedup`` -- absolute ratios where **bigger is better** (e.g. the
  sweep's pool speedup): compared absolutely with the regression
  direction inverted -- a regression is
  ``baseline - current > threshold`` (the speedup *fell* by more than
  ``threshold``); a rising speedup never regresses.  Speedup verdicts
  are annotated with the snapshots' *effective vs requested* worker
  counts (``workers`` / ``workers_requested``): a pool speedup measured
  with 1 effective worker on a clamped CI host is ~1.0 by construction,
  so comparing it against a 4-worker baseline would either fake a
  regression or -- worse -- mask a real one behind "not comparable"
  noise.  Differing effective worker counts make the speedup DRIFT
  (never a regression verdict either way); a clamped host (effective <
  requested on either side) is called out loudly;
* everything else (``n_walks``, ``n_chunks``, ``meta``) is
  configuration: differing values make every timing comparison
  apples-to-oranges, so they are reported as config drift (never a
  regression by themselves, but a loud warning).

Two extra rules guard the fused engine kernels (docs/performance.md):

* ``*_fused_mean_seconds`` keys are **gated**: a regression past the
  threshold fails the command even under ``--warn-only`` (absolute
  engine walltimes are noisy on CI, but the fused keys are the whole
  point of the kernel layer, so they hard-fail);
* every ``X_fused_mean_seconds`` with a sibling ``X_legacy_mean_seconds``
  in the *current* snapshot is checked for a minimum speedup of
  :data:`MIN_FUSED_SPEEDUP`; falling short warns (the paired timings
  come from the same run on the same machine, so the ratio is stable
  even where absolute times are not).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.reporting.table import Table

#: Suffix of the paired fused-kernel timing keys; these gate CI even
#: under ``--warn-only``.
FUSED_SUFFIX = "_fused_mean_seconds"

#: Suffix of the frozen pre-fusing timings recorded alongside.
LEGACY_SUFFIX = "_legacy_mean_seconds"

#: Minimum legacy/fused ratio before the comparison warns.
MIN_FUSED_SPEEDUP = 1.3


def pool_speedup_record(
    serial_seconds: float,
    pooled_seconds: float,
    *,
    workers_requested: int,
    workers: int,
    host_cpus: Optional[int],
) -> Dict:
    """The speedup portion of a pool-benchmark snapshot, honestly clamped.

    A ``pool_speedup`` measured where the host cannot grant the requested
    parallelism (``host_cpus < workers_requested``) is ~1.0 by
    construction -- recording it would either fake a regression against a
    wide-host baseline or teach the history that 1.0 is normal.  On such
    hosts the key is *omitted* entirely (no verdict is possible) and
    ``"clamped": true`` is recorded in its place so the snapshot says why.

    Whichever of ``pool_speedup`` / ``clamped`` does not apply is set to
    ``None``: benchmark snapshots are *merged* per run (see
    ``benchmarks/bench_utils.record_bench``), and ``None`` is the merge's
    tombstone -- it scrubs a stale value left by an earlier run on a
    differently-shaped host.
    """
    record: Dict = {
        "serial_seconds": serial_seconds,
        "pooled_seconds": pooled_seconds,
        "workers_requested": workers_requested,
        "workers": workers,
        "host_cpus": host_cpus,
    }
    if host_cpus is None or host_cpus < workers_requested:
        record["clamped"] = True
        record["pool_speedup"] = None
    else:
        # A float: bench-history's *_speedup kind compares it absolutely
        # with inverted direction (a drop past the threshold regresses,
        # a rise never does).
        record["pool_speedup"] = round(serial_seconds / pooled_seconds, 4)
        record["clamped"] = None
    return record


def parse_threshold(text: str) -> float:
    """``"25%"`` -> 0.25; ``"0.25"`` -> 0.25.  Raises ValueError otherwise."""
    text = str(text).strip()
    if text.endswith("%"):
        value = float(text[:-1]) / 100.0
    else:
        value = float(text)
    if value <= 0:
        raise ValueError(f"regression threshold must be positive, got {text!r}")
    return value


@dataclass(frozen=True)
class MetricDelta:
    """One metric's baseline-vs-current comparison."""

    name: str
    baseline: Optional[float]
    current: Optional[float]
    #: "seconds" (relative), "overhead" (absolute), "speedup" (absolute,
    #: regression = decrease) or "config".
    kind: str
    #: Signed change: ratio-1 for seconds, difference for overhead.
    delta: Optional[float]
    regressed: bool
    note: str = ""
    #: Gated metrics (``*_fused_mean_seconds``) fail even with --warn-only.
    gated: bool = False
    #: False when the two measurements describe different workloads (e.g.
    #: speedups from different effective worker counts): rendered DRIFT,
    #: never a regression verdict.
    comparable: bool = True


def _numeric_metrics(snapshot: Dict) -> Dict[str, float]:
    return {
        name: float(value)
        for name, value in snapshot.items()
        if isinstance(value, (int, float)) and not isinstance(value, bool)
    }


def _worker_context(snapshot: Dict) -> Tuple[Optional[int], Optional[int]]:
    """``(effective, requested)`` worker counts from a snapshot, if recorded.

    ``BENCH_sweep.json`` records both: ``workers`` is what the pool
    actually ran with after host clamping, ``workers_requested`` what the
    benchmark asked for.  Older snapshots may carry neither.
    """

    def _int(name: str) -> Optional[int]:
        value = snapshot.get(name)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return int(value)
        return None

    effective = _int("workers")
    requested = _int("workers_requested")
    return effective, requested if requested is not None else effective


def _kind(name: str) -> str:
    if name.endswith("_seconds"):
        return "seconds"
    if name.endswith("_overhead"):
        return "overhead"
    if name.endswith("_speedup"):
        return "speedup"
    return "config"


def compare_snapshots(
    baseline: Dict, current: Dict, threshold: float
) -> List[MetricDelta]:
    """Compare two flat snapshot dicts; one :class:`MetricDelta` per metric."""
    base = _numeric_metrics(baseline)
    cur = _numeric_metrics(current)
    base_workers, base_requested = _worker_context(baseline)
    cur_workers, cur_requested = _worker_context(current)
    deltas: List[MetricDelta] = []
    for name in sorted(set(base) | set(cur)):
        kind = _kind(name)
        b, c = base.get(name), cur.get(name)
        comparable = True
        if b is None or c is None:
            deltas.append(
                MetricDelta(
                    name, b, c, kind, None, False,
                    note="only in current" if b is None else "only in baseline",
                )
            )
            continue
        if kind == "seconds":
            delta = (c - b) / b if b > 0 else 0.0
            regressed = delta > threshold
            note = f"{delta:+.1%}"
        elif kind == "overhead":
            delta = c - b
            regressed = delta > threshold
            note = f"{delta:+.3f} (absolute)"
        elif kind == "speedup":
            delta = c - b
            regressed = -delta > threshold
            note = f"{delta:+.3f} (absolute, higher is better)"
            workers_note = _speedup_workers_note(
                base_workers, base_requested, cur_workers, cur_requested
            )
            if workers_note:
                note = f"{note} {workers_note}"
            if (
                base_workers is not None
                and cur_workers is not None
                and base_workers != cur_workers
            ):
                # A speedup from N effective workers says nothing about
                # one from M: neither a regression nor a pass.
                comparable = False
                regressed = False
        else:
            delta = c - b
            regressed = False
            note = "config drift -- timings not comparable" if b != c else ""
        deltas.append(
            MetricDelta(
                name, b, c, kind, delta, regressed, note,
                gated=name.endswith(FUSED_SUFFIX),
                comparable=comparable,
            )
        )
    return deltas


def _speedup_workers_note(
    base_workers: Optional[int],
    base_requested: Optional[int],
    cur_workers: Optional[int],
    cur_requested: Optional[int],
) -> str:
    """The ``[workers ...]`` annotation on a speedup delta, or ``""``."""

    def _one(effective: Optional[int], requested: Optional[int]) -> str:
        if effective is None:
            return "?"
        if requested is not None and requested != effective:
            return f"{effective} (of {requested} requested)"
        return str(effective)

    if base_workers is None and cur_workers is None:
        return ""
    return f"[workers: {_one(base_workers, base_requested)} -> " \
        f"{_one(cur_workers, cur_requested)}]"


def fused_speedup_warnings(
    current: Dict, min_ratio: float = MIN_FUSED_SPEEDUP
) -> List[str]:
    """Warnings for fused timings not comfortably ahead of their legacy pair.

    Looks only at the *current* snapshot: each ``X_fused_mean_seconds``
    with a sibling ``X_legacy_mean_seconds`` must show
    ``legacy / fused >= min_ratio``.
    """
    metrics = _numeric_metrics(current)
    warnings: List[str] = []
    for name in sorted(metrics):
        if not name.endswith(FUSED_SUFFIX):
            continue
        stem = name[: -len(FUSED_SUFFIX)]
        fused = metrics[name]
        legacy = metrics.get(stem + LEGACY_SUFFIX)
        if legacy is None or fused <= 0:
            continue
        ratio = legacy / fused
        if ratio < min_ratio:
            warnings.append(
                f"warning: {stem} fused path is only {ratio:.2f}x faster than "
                f"its recorded legacy timing (expected >= {min_ratio:.1f}x)"
            )
    return warnings


def render_comparison(
    deltas: List[MetricDelta], threshold: float, warn_only: bool = False
) -> Tuple[str, List[str]]:
    """Render the comparison table; returns ``(text, regressed names)``."""
    table = Table(
        ["metric", "baseline", "current", "change", "verdict"],
        title=f"bench history (regression threshold {threshold:.0%})",
    )
    regressed: List[str] = []
    drifted = False
    clamped: List[str] = []
    for delta in deltas:
        if delta.kind == "speedup" and "(of " in delta.note:
            clamped.append(delta.name)
        if delta.regressed:
            regressed.append(delta.name)
            # Gated (fused-kernel) metrics stay hard failures even in
            # warn-only mode.
            verdict = "WARN" if warn_only and not delta.gated else "REGRESSED"
        elif not delta.comparable:
            verdict = "DRIFT"
            drifted = True
        elif delta.kind == "config" and delta.note:
            verdict = "DRIFT"
            drifted = True
        elif delta.baseline is None or delta.current is None:
            verdict = "n/a"
        elif delta.kind == "config":
            verdict = "same"
        else:
            verdict = "ok"
        table.add_row(delta.name, delta.baseline, delta.current, delta.note, verdict)
    lines = [table.render()]
    if drifted:
        lines.append(
            "warning: benchmark configuration drifted between snapshots; "
            "timing verdicts compare different workloads"
        )
    if clamped:
        lines.append(
            "warning: speedup(s) measured on a clamped host (fewer effective "
            f"than requested workers): {', '.join(clamped)}; a flat speedup "
            "here does NOT clear the pool of a real regression"
        )
    hard = [d.name for d in deltas if d.regressed and d.gated]
    soft = [name for name in regressed if name not in hard]
    if warn_only:
        if soft:
            lines.append(
                f"warning: {len(soft)} metric(s) past the {threshold:.0%} "
                f"threshold: {', '.join(soft)}"
            )
        if hard:
            lines.append(
                f"FAIL: {len(hard)} fused metric(s) past the {threshold:.0%} "
                f"threshold (gated even with --warn-only): {', '.join(hard)}"
            )
    elif regressed:
        lines.append(
            f"FAIL: {len(regressed)} metric(s) past the {threshold:.0%} "
            f"threshold: {', '.join(regressed)}"
        )
    if not regressed:
        lines.append("no regressions past the threshold")
    return "\n".join(lines), regressed


def render_registry_trends(records) -> str:
    """``bench-history --from-registry``: trend sparklines across runs.

    Instead of a pairwise snapshot diff, render how the registered runs'
    headline numbers moved over time: walltime, effective parallelism,
    incident totals, and the Wilson point estimate per grid-point key.
    Pure rendering -- no thresholds, no exit-code policy -- because a
    trend is a thing to *look at*; ``runs compare`` is the gate.
    """
    from repro.reporting.text_plots import sparkline

    def _row(table: Table, name: str, values: List[Optional[float]]) -> None:
        numeric = [v for v in values if v is not None]
        table.add_row(
            name,
            sparkline([v if v is not None else 0.0 for v in values]),
            numeric[0] if numeric else None,
            numeric[-1] if numeric else None,
        )

    lines = [
        f"registry trends over {len(records)} run(s) "
        f"({records[0].run_id} .. {records[-1].run_id})"
    ]
    table = Table(["metric", "trend (old -> new)", "first", "last"])
    _row(table, "walltime_seconds", [r.walltime_seconds for r in records])
    _row(
        table,
        "effective_parallelism",
        [r.pool.get("effective_parallelism") for r in records],
    )
    _row(
        table,
        "incidents_total",
        [float(sum(r.incidents.values())) if r.incidents else 0.0 for r in records],
    )
    estimate_keys: List[str] = []
    for record in records:
        for estimate in record.estimates:
            key = str(estimate.get("key", "?"))
            if key not in estimate_keys:
                estimate_keys.append(key)
    for key in estimate_keys:
        values: List[Optional[float]] = []
        for record in records:
            match = next(
                (e for e in record.estimates if str(e.get("key")) == key), None
            )
            p = match.get("p") if match else None
            values.append(float(p) if isinstance(p, (int, float)) else None)
        _row(table, f"p[{key}]", values)
    lines.append(table.render())
    lines.append(
        "gaps render as 0 in the sparkline (run missing that metric/point); "
        "use 'repro-experiment runs compare' for CI-aware drift verdicts"
    )
    return "\n".join(lines)


def load_snapshot(path) -> Dict:
    """Load one ``BENCH_*.json`` file (ValueError on a non-object)."""
    path = Path(path)
    snapshot = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(snapshot, dict):
        raise ValueError(f"benchmark snapshot {path} is not a JSON object")
    return snapshot


def compare_files(
    baseline_path, current_path, threshold: float, warn_only: bool = False
) -> Tuple[str, List[str], List[str]]:
    """File-level entry point used by the CLI.

    Returns ``(text, regressed, hard)`` where ``hard`` lists the gated
    (``*_fused_mean_seconds``) regressions that must fail the command
    regardless of ``--warn-only``; fused-vs-legacy speedup warnings are
    appended to ``text``.
    """
    baseline = load_snapshot(baseline_path)
    current = load_snapshot(current_path)
    deltas = compare_snapshots(baseline, current, threshold)
    text, regressed = render_comparison(deltas, threshold, warn_only=warn_only)
    speedup_lines = fused_speedup_warnings(current)
    if speedup_lines:
        text = "\n".join([text, *speedup_lines])
    hard = [d.name for d in deltas if d.regressed and d.gated]
    return text, regressed, hard
