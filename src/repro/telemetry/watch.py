"""``repro-experiment watch PATH``: live view of a growing event log.

``report`` answers "what happened"; ``watch`` answers "what is happening"
-- it follows a JSONL event log that another process is still appending
to and re-renders, every few seconds, the running estimates (point ± CI
and relative half-width per metric, with a sparkline of the half-width
shrinking), throughput, and recent incidents.

Following a file that is being written concurrently has two sharp edges,
both handled by :class:`LogFollower`:

* **torn tails** -- the writer flushes whole lines, but a poll can still
  race mid-flush (or the writer may have been killed mid-line), so any
  trailing bytes without a newline are carried over to the next poll
  instead of being parsed;
* **interior damage** -- a line that never becomes valid JSON is simply
  skipped: a live console is the wrong place to die on a corrupt record
  (``report --strict`` is the place to reject such a log).

The follower exits on its own when the log says the writers are done: the
buffered :class:`~repro.telemetry.events.EventLogWriter` appends a
``log_close`` trailer per ``log_open`` header, so "closes >= opens > 0"
means no process is still appending.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.reporting.table import Table
from repro.reporting.text_plots import ascii_bars, sparkline

#: Incident-ish event types surfaced in the "recent incidents" section
#: ("heartbeat" = the hung-chunk watchdog fired on a silent worker).
_WATCH_INCIDENTS = (
    "incident", "deadline", "signal", "quarantine", "fault_injected",
    "pool_rebuild", "retry", "heartbeat",
)

#: How many recent incidents the console keeps on screen.
_MAX_INCIDENTS = 8

#: Window (seconds of log time) for the live effective-parallelism line.
_PARALLELISM_WINDOW = 30.0


class LogFollower:
    """Incremental JSONL reader, tolerant of a file still being written.

    Each :meth:`poll` returns the events appended since the previous
    poll.  A partial final line (no trailing newline yet) is buffered and
    re-tried next poll; a shrunk or replaced file resets the follower to
    the start (the log was truncated and restarted).
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._offset = 0
        self._partial = ""

    def poll(self) -> List[Dict]:
        try:
            size = self.path.stat().st_size
        except FileNotFoundError:
            return []
        if size < self._offset:
            self._offset = 0
            self._partial = ""
        if size == self._offset:
            return []
        with open(self.path, "rb") as handle:
            handle.seek(self._offset)
            data = handle.read()
            self._offset = handle.tell()
        text = self._partial + data.decode("utf-8", errors="replace")
        lines = text.split("\n")
        # The fragment after the last newline is an incomplete (possibly
        # torn) line: keep it for the next poll, never parse it now.
        self._partial = lines.pop()
        events = []
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict):
                events.append(record)
        return events


def _run_key(event: Dict) -> str:
    label = event.get("label", "?")
    experiment = event.get("experiment")
    return f"{experiment}/{label}" if experiment else str(label)


class WatchState:
    """Accumulated view of everything seen so far (incremental consume)."""

    def __init__(self) -> None:
        #: run key -> last estimate event for that key.
        self.estimates: Dict[str, Dict] = {}
        #: run key -> history of relative half-widths (for sparklines).
        self.rel_history: Dict[str, List[float]] = {}
        self.incidents: List[Dict] = []
        self.walks_computed = 0
        self.compute_seconds = 0.0
        #: Recent (start t, end t) busy intervals from chunk_end events,
        #: trimmed to the parallelism window; feeds the live
        #: effective-parallelism line.
        self.busy_intervals: List[tuple] = []
        #: Distinct worker_id values seen on chunk events.
        self.workers: set = set()
        self.elapsed = 0.0
        self.n_events = 0
        self.opens = 0
        self.closes = 0
        self.converged: List[str] = []
        #: run keys whose point was quarantined by the circuit breaker.
        self.quarantined: List[str] = []

    def consume(self, events: List[Dict]) -> None:
        for event in events:
            self.n_events += 1
            self.elapsed = max(self.elapsed, float(event.get("t", 0.0)))
            type_ = event.get("type")
            if type_ == "log_open":
                self.opens += 1
            elif type_ == "log_close":
                self.closes += 1
            elif type_ == "estimate":
                key = _run_key(event)
                self.estimates[key] = event
                rel = event.get("rel_half_width")
                if rel is not None:
                    self.rel_history.setdefault(key, []).append(float(rel))
            elif type_ == "chunk_end":
                self.walks_computed += int(event.get("n", 0))
                seconds = float(event.get("seconds", 0.0))
                self.compute_seconds += seconds
                end_t = float(event.get("t", 0.0))
                self.busy_intervals.append((max(end_t - seconds, 0.0), end_t))
                cutoff = self.elapsed - _PARALLELISM_WINDOW
                self.busy_intervals = [
                    iv for iv in self.busy_intervals if iv[1] >= cutoff
                ]
                worker = event.get("worker_id")
                if worker is not None:
                    self.workers.add(worker)
            elif type_ == "converged":
                key = _run_key(event)
                if key not in self.converged:
                    self.converged.append(key)
            elif type_ == "quarantine" and event.get("scope") == "point":
                key = _run_key(event)
                if key not in self.quarantined:
                    self.quarantined.append(key)
            if type_ in _WATCH_INCIDENTS:
                self.incidents.append(event)
                del self.incidents[:-_MAX_INCIDENTS]

    @property
    def finished(self) -> bool:
        """True once every opener of the log has appended its trailer."""
        return self.opens > 0 and self.closes >= self.opens

    def effective_parallelism(self) -> Optional[float]:
        """Busy-worker ratio over the recent window: sum busy / walltime.

        1.0 means one chunk in flight at all times; N workers fully busy
        read N.  The number that explains a pool speedup -- chunk
        intervals come from completed chunk_end events, so a chunk still
        in flight is not counted yet.
        """
        if not self.busy_intervals:
            return None
        lo = max(
            self.elapsed - _PARALLELISM_WINDOW,
            min(start for start, _ in self.busy_intervals),
        )
        span = self.elapsed - lo
        if span <= 0:
            return None
        busy = sum(
            max(0.0, min(end, self.elapsed) - max(start, lo))
            for start, end in self.busy_intervals
        )
        return busy / span


def render_watch(state: WatchState, width: int = 40) -> str:
    """One full console frame for the current state."""
    sections = []
    header = (
        f"events: {state.n_events}   log elapsed: {state.elapsed:.2f}s   "
        f"writers: {state.opens - state.closes} active"
    )
    if state.compute_seconds > 0:
        header += (
            f"\ncomputed {state.walks_computed} walks in "
            f"{state.compute_seconds:.2f}s of chunk time "
            f"({state.walks_computed / state.compute_seconds:.0f} walks/sec)"
        )
    parallelism = state.effective_parallelism()
    if parallelism is not None:
        header += (
            f"\neffective parallelism: {parallelism:.2f}x over the last "
            f"{min(_PARALLELISM_WINDOW, state.elapsed):.0f}s"
        )
        if state.workers:
            header += f" ({len(state.workers)} worker(s) seen)"
    sections.append(header)
    if state.estimates:
        table = Table(
            ["run", "successes", "trials", "p", "ci95", "rel hw", "shrink"],
            title="running estimates (95% Wilson CI)",
        )
        for key in sorted(state.estimates):
            estimate = state.estimates[key]
            rel = estimate.get("rel_half_width")
            name = key
            if key in state.converged:
                name += " *converged*"
            if key in state.quarantined:
                name += " *quarantined*"
            table.add_row(
                name,
                estimate.get("successes"),
                estimate.get("trials"),
                estimate.get("p"),
                f"[{estimate.get('low')}, {estimate.get('high')}]",
                rel if rel is not None else "inf",
                sparkline(state.rel_history.get(key, []), width=16),
            )
        sections.append(table.render())
        bars = [
            (key, float(state.estimates[key].get("rel_half_width") or 0.0))
            for key in sorted(state.estimates)
            if state.estimates[key].get("rel_half_width") is not None
        ]
        if bars:
            sections.append(
                ascii_bars(bars, width=width, title="relative CI half-width (lower is tighter)")
            )
    else:
        sections.append(
            "no estimate events yet -- estimates appear once a runner-driven "
            "Bernoulli metric (hitting sample) completes a chunk"
        )
    if state.incidents:
        table = Table(["t", "type", "run", "detail"], title="recent incidents")
        for incident in state.incidents:
            detail = {
                key: value
                for key, value in incident.items()
                if key not in ("t", "type", "span", "experiment", "scale", "seed", "label")
            }
            table.add_row(
                incident.get("t"),
                incident.get("type"),
                _run_key(incident),
                " ".join(f"{k}={v}" for k, v in sorted(detail.items())),
            )
        sections.append(table.render())
    if state.quarantined:
        sections.append(
            "quarantined points (circuit breaker): " + ", ".join(state.quarantined)
        )
    if state.finished:
        sections.append("log closed -- all writers finished")
    return "\n\n".join(sections)


def follow(
    path,
    stream,
    interval: float = 2.0,
    once: bool = False,
    max_seconds: Optional[float] = None,
    width: int = 40,
) -> int:
    """Follow ``path`` and re-render frames to ``stream`` until done.

    Returns a CLI exit code: 0 on a clean finish (log closed, ``--once``,
    or ``--max-seconds`` elapsed), 2 if the file never appeared.
    """
    path = Path(path)
    follower = LogFollower(path)
    state = WatchState()
    started = time.monotonic()
    clear = "\x1b[2J\x1b[H" if getattr(stream, "isatty", lambda: False)() else ""
    while True:
        state.consume(follower.poll())
        if state.n_events or path.exists():
            print(clear + render_watch(state, width=width), file=stream, flush=True)
        elif once:
            print(f"error: no event log at {path}", file=stream, flush=True)
            return 2
        else:
            print(f"waiting for {path} ...", file=stream, flush=True)
        if once or state.finished:
            return 0
        if max_seconds is not None and time.monotonic() - started >= max_seconds:
            return 0
        time.sleep(interval)
