"""Process-local metrics: counters, gauges, fixed-bucket histograms.

Zero-dependency (stdlib only, importable from the hottest code paths
without dragging numpy/scipy/io machinery in) and zero-cost when unused:
the engines only touch a registry after checking
``get_recorder().enabled``, so the default (disabled) telemetry path
never allocates a metric.

Snapshot model: metrics accumulate in process memory and are exported on
demand as one JSON document (``MetricsRegistry.snapshot()`` /
``write_json()``, the latter atomic via :mod:`repro.io_utils`).  There is
no background thread and no sampling; what you export is exactly what was
counted.

Naming convention (documented in docs/observability.md): dotted
lower-case paths, ``<layer>.<quantity>`` -- e.g. ``runner.retries``,
``engine.steps``, ``engine.jump_length_decades``.
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from typing import Dict, List, Optional, Sequence, Union

Number = Union[int, float]

#: Upper bounds of the jump-length decade histogram: bucket 0 is ``d < 1``
#: (lazy phases), bucket k is ``10^(k-1) <= d < 10^k``, the last bucket is
#: the overflow.  Covers every distance representable on the paper's
#: ``n x n`` grids up to n = 10^9.
DECADE_BOUNDS = tuple(10**k for k in range(10))

#: Default buckets for duration histograms (seconds), log-spaced from
#: 1 ms to ~1 h; chunk walltimes vary by orders of magnitude across alpha.
DURATION_BOUNDS = (
    0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0,
    100.0, 300.0, 1000.0, 3600.0,
)


class Counter:
    """A monotonically increasing integer (events happened N times)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (got {amount})")
        self.value += amount

    def snapshot(self) -> Dict[str, Number]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Optional[Number] = None

    def set(self, value: Number) -> None:
        self.value = value

    def snapshot(self) -> Dict[str, Optional[Number]]:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Fixed-bucket histogram: counts per ``[bounds[i-1], bounds[i])``.

    ``bounds`` are strictly increasing upper bounds; values below
    ``bounds[0]`` land in bucket 0 and values ``>= bounds[-1]`` in the
    implicit overflow bucket, so there are ``len(bounds) + 1`` buckets.
    Fixed buckets keep observation O(log n_buckets) and snapshots
    mergeable across runs (same bounds => addable counts).
    """

    __slots__ = ("name", "bounds", "counts", "total", "sum", "min", "max")

    def __init__(self, name: str, bounds: Sequence[Number]) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ValueError(f"histogram {name} needs at least one bucket bound")
        if any(b >= c for b, c in zip(bounds, bounds[1:])):
            raise ValueError(f"histogram {name} bounds must be strictly increasing")
        self.name = name
        self.bounds = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.total = 0
        self.sum = 0.0
        self.min: Optional[Number] = None
        self.max: Optional[Number] = None

    def observe(self, value: Number) -> None:
        self.counts[bisect_right(self.bounds, value)] += 1
        self.total += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def add_bucket_counts(self, counts: Sequence[int]) -> None:
        """Bulk-merge pre-bucketed counts (e.g. from ``numpy.bincount``).

        ``counts`` may be shorter than the bucket list (missing tail
        buckets mean zero); per-value sum/min/max are not tracked for
        bulk merges.
        """
        if len(counts) > len(self.counts):
            raise ValueError(
                f"histogram {self.name} has {len(self.counts)} buckets, "
                f"got {len(counts)} counts"
            )
        for index, count in enumerate(counts):
            self.counts[index] += int(count)
            self.total += int(count)

    def snapshot(self) -> Dict[str, object]:
        return {
            "type": "histogram",
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "total": self.total,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }


class MetricsRegistry:
    """Get-or-create home for every metric of one process.

    Thread-safe for creation (the runner's pool bookkeeping and a
    progress printer may race); individual updates are plain int/float
    operations under the GIL.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, factory, kind):
        metric = self._metrics.get(name)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(name)
                if metric is None:
                    metric = factory()
                    self._metrics[name] = metric
        if not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} already registered as {type(metric).__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, lambda: Counter(name), Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, lambda: Gauge(name), Gauge)

    def histogram(self, name: str, bounds: Sequence[Number] = DURATION_BOUNDS) -> Histogram:
        histogram = self._get_or_create(name, lambda: Histogram(name, bounds), Histogram)
        if histogram.bounds != tuple(float(b) for b in bounds):
            raise ValueError(
                f"histogram {name!r} already registered with bounds {histogram.bounds}"
            )
        return histogram

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def snapshot(self) -> Dict[str, Dict]:
        """One JSON-ready dict: metric name -> typed snapshot."""
        return {name: self._metrics[name].snapshot() for name in self.names()}

    def write_json(self, path, meta: Optional[Dict] = None) -> None:
        """Atomically export :meth:`snapshot` as pretty JSON.

        ``meta`` (e.g. ``{"run_id": ..., "created_at": ...}``) is stored
        under the reserved ``"_meta"`` key -- underscore-prefixed so it
        can never collide with a dotted metric name, and shaped like a
        typed snapshot (``"type": "meta"``) so readers that iterate the
        document's typed entries need no special case.
        """
        # Local import: io_utils pulls in the engine stack, which itself
        # imports the telemetry recorder -- a module-level import here
        # would create a cycle.
        from repro.io_utils import atomic_write_json

        snapshot = self.snapshot()
        if meta:
            snapshot["_meta"] = {"type": "meta", **meta}
        atomic_write_json(snapshot, path)
