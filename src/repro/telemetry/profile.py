"""Phase-level performance profiling: hot-loop accumulator + log analysis.

Two halves live here on purpose:

* :class:`PhaseAccumulator` is the measurement instrument.  The engines'
  round loops wrap their stages (``rng``, ``cdf_lookup``,
  ``state_update``, ``target_check``, ``compaction``) in
  :meth:`~PhaseAccumulator.lap` calls on the accumulator hanging off
  ``get_recorder().profile`` -- ``None`` when profiling is off, so the
  disabled path costs one attribute load and an ``is None`` test per
  stage per *round* (each round advances thousands of walks).  Timings
  accumulate as ``perf_counter_ns`` deltas and are drained once per
  chunk by the Runner (the same once-per-engine-call discipline as the
  jump-decade histogram), which emits ONE ``phase_profile`` event and
  bumps the ``engine.phase_seconds.*`` counters.  Engine calls outside
  any runner are drained by ``TelemetryRecorder.close()`` into a
  residual ``phase_profile`` event.
* the analysis functions below (:func:`summarize_profile`,
  :func:`render_profile`, :func:`render_profile_diff`) are pure event-log
  consumers behind ``repro-experiment profile events.jsonl``: phase
  breakdown with percentage bars, per-worker utilization (effective
  parallelism = sum of busy time / walltime -- the number that explains
  a 1.07x pool speedup), IPC accounting, and the top-N slowest chunks
  with phase attribution.

Import-cycle note: the recorder imports :class:`PhaseAccumulator` and the
engines import the recorder, so module level here must stay stdlib-only;
the table/bars renderers are imported lazily inside the analysis
functions.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

#: The named hot-loop stages the engines time, in loop order.  ``lap``
#: accepts any name, but these are the ones the vectorized engines emit
#: (docs/observability.md, "Profiling").
PHASES = ("rng", "cdf_lookup", "state_update", "target_check", "compaction")


class PhaseAccumulator:
    """Nanosecond phase timers, cheap enough for the engine round loops.

    Usage inside a hot loop::

        prof.start()          # anchor the lap clock (top of each round)
        ...rng draw...
        prof.lap("rng")       # charge elapsed nanos since the anchor
        ...table lookup...
        prof.lap("cdf_lookup")

    ``lap`` charges the time since the previous ``lap``/``start`` to the
    named phase, so consecutive laps tile a round exactly.  ``finish``
    counts one completed engine invocation.  :meth:`drain` converts the
    nanos to seconds, returns them, and resets -- the runner calls it
    once per chunk.
    """

    __slots__ = ("_nanos", "_engine_calls", "_mark")

    def __init__(self) -> None:
        self._nanos: Dict[str, int] = {}
        self._engine_calls: Dict[str, int] = {}
        self._mark = 0

    def start(self) -> None:
        """(Re)anchor the lap clock; call at the top of each round."""
        self._mark = time.perf_counter_ns()

    def lap(self, phase: str) -> None:
        """Charge the time since the previous lap/start to ``phase``."""
        now = time.perf_counter_ns()
        nanos = self._nanos
        nanos[phase] = nanos.get(phase, 0) + (now - self._mark)
        self._mark = now

    def finish(self, engine: str) -> None:
        """Count one completed engine invocation under ``engine``."""
        calls = self._engine_calls
        calls[engine] = calls.get(engine, 0) + 1

    @property
    def empty(self) -> bool:
        return not self._nanos and not self._engine_calls

    def drain(self) -> Optional[Tuple[Dict[str, float], Dict[str, int]]]:
        """Return ``(phase_seconds, engine_calls)`` and reset; None if empty."""
        if self.empty:
            return None
        phases = {
            phase: round(nanos / 1e9, 9) for phase, nanos in self._nanos.items()
        }
        engines = dict(self._engine_calls)
        self._nanos = {}
        self._engine_calls = {}
        return phases, engines


# --------------------------------------------------------------- log analysis


@dataclass
class WorkerUsage:
    """One worker's accumulated busy time, reconstructed from chunk_end."""

    worker: str
    chunks: int = 0
    busy_seconds: float = 0.0
    #: (start t, end t) per chunk, in log time (chunk_end's t minus its
    #: duration; in pooled mode this includes submit->start queueing).
    intervals: List[Tuple[float, float]] = field(default_factory=list)


@dataclass
class ProfileSummary:
    """Everything :func:`render_profile` needs, from the log alone."""

    n_events: int = 0
    elapsed: float = 0.0
    schema: Optional[int] = None
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    engine_calls: Dict[str, int] = field(default_factory=dict)
    #: One row per chunk_end: run/chunk/attempt/worker/seconds/t/phases/ipc.
    chunks: List[Dict] = field(default_factory=list)
    chunk_seconds: float = 0.0
    walks: int = 0
    workers: Dict[str, WorkerUsage] = field(default_factory=dict)
    ipc_bytes: int = 0
    pickle_seconds: float = 0.0
    unpickle_seconds: float = 0.0
    #: Shared-memory transport accounting (zero on pickle-transport logs):
    #: slab payload bytes that bypassed the result pipe, the parent-side
    #: copy-out time, and how many chunks used each path.
    shm_bytes: int = 0
    shm_seconds: float = 0.0
    shm_chunks: int = 0
    #: Chunks that *asked* for shm but shipped pickled payloads anyway
    #: (non-slab payload type, or slab creation failed in the worker).
    fallback_chunks: int = 0
    #: Number of phase_profile events seen (0 on a pre-v3 log).
    profile_events: int = 0

    @property
    def phase_total(self) -> float:
        return sum(self.phase_seconds.values())

    @property
    def span(self) -> Tuple[float, float]:
        """(first chunk start, last chunk end) in log time."""
        intervals = [iv for usage in self.workers.values() for iv in usage.intervals]
        if not intervals:
            return (0.0, 0.0)
        return (min(t0 for t0, _ in intervals), max(t1 for _, t1 in intervals))

    @property
    def span_seconds(self) -> float:
        t0, t1 = self.span
        return max(t1 - t0, 0.0)

    @property
    def effective_parallelism(self) -> Optional[float]:
        """Sum of per-worker busy time over the walltime it spanned."""
        span = self.span_seconds
        if span <= 0:
            return None
        busy = sum(usage.busy_seconds for usage in self.workers.values())
        return busy / span


def _run_key(event: Dict) -> str:
    label = event.get("label", "?")
    experiment = event.get("experiment")
    return f"{experiment}/{label}" if experiment else str(label)


def _worker_key(event: Dict) -> str:
    worker = event.get("worker_id")
    return str(worker) if worker is not None else "unattributed"


def summarize_profile(events: Sequence[Dict]) -> ProfileSummary:
    """Aggregate phase/worker/IPC structure from a flat event list.

    Pure log analysis: works on torn, killed, or resumed logs, and on
    pre-v3 logs with no ``phase_profile`` events at all (the phase
    sections simply come out empty).
    """
    summary = ProfileSummary()
    #: (run key, chunk, attempt) -> chunk row, for phase attribution.
    by_chunk: Dict[Tuple, Dict] = {}
    #: Same key -> phases seen before their chunk_end (the runner emits
    #: phase_profile first, so this is the common order).
    pending_phases: Dict[Tuple, Dict[str, float]] = {}
    for event in events:
        summary.n_events += 1
        summary.elapsed = max(summary.elapsed, float(event.get("t", 0.0)))
        type_ = event.get("type")
        if type_ == "log_open":
            schema = event.get("schema")
            if isinstance(schema, int):
                summary.schema = schema
        elif type_ == "chunk_end":
            key = _run_key(event)
            seconds = float(event.get("seconds", 0.0))
            end_t = float(event.get("t", 0.0))
            row = {
                "run": key,
                "chunk": event.get("chunk"),
                "attempt": event.get("attempt", 1),
                "worker": _worker_key(event),
                "seconds": seconds,
                "t_end": end_t,
                "phases": None,
                "ipc_bytes": event.get("ipc_bytes"),
                "transport": event.get("transport"),
            }
            summary.chunks.append(row)
            chunk_key = (key, row["chunk"], row["attempt"])
            by_chunk[chunk_key] = row
            if chunk_key in pending_phases:
                row["phases"] = pending_phases.pop(chunk_key)
            summary.chunk_seconds += seconds
            summary.walks += int(event.get("n", 0))
            usage = summary.workers.setdefault(
                row["worker"], WorkerUsage(row["worker"])
            )
            usage.chunks += 1
            usage.busy_seconds += seconds
            usage.intervals.append((max(end_t - seconds, 0.0), end_t))
            for name in ("ipc_bytes", "pickle_seconds", "unpickle_seconds"):
                value = event.get(name)
                if value is not None:
                    if name == "ipc_bytes":
                        summary.ipc_bytes += int(value)
                    else:
                        setattr(
                            summary, name, getattr(summary, name) + float(value)
                        )
            shm_bytes = event.get("shm_bytes")
            if shm_bytes is not None:
                summary.shm_bytes += int(shm_bytes)
                summary.shm_seconds += float(event.get("shm_seconds", 0.0))
                summary.shm_chunks += 1
            if event.get("transport") == "pickle-fallback":
                summary.fallback_chunks += 1
        elif type_ == "phase_profile":
            summary.profile_events += 1
            phases = event.get("phases") or {}
            for phase, seconds in phases.items():
                summary.phase_seconds[phase] = summary.phase_seconds.get(
                    phase, 0.0
                ) + float(seconds)
            for engine, calls in (event.get("engines") or {}).items():
                summary.engine_calls[engine] = summary.engine_calls.get(
                    engine, 0
                ) + int(calls)
            if event.get("chunk") is not None:
                chunk_key = (
                    _run_key(event), event.get("chunk"), event.get("attempt", 1)
                )
                row = by_chunk.get(chunk_key)
                as_floats = {k: float(v) for k, v in phases.items()}
                if row is not None:
                    row["phases"] = as_floats
                else:
                    pending_phases[chunk_key] = as_floats
    return summary


def _phase_attribution(phases: Optional[Dict[str, float]], top: int = 2) -> str:
    """``"state_update 45%, rng 23%"`` for one chunk's phase dict."""
    if not phases:
        return "-"
    total = sum(phases.values())
    if total <= 0:
        return "-"
    ranked = sorted(phases.items(), key=lambda kv: kv[1], reverse=True)[:top]
    return ", ".join(f"{name} {100 * sec / total:.0f}%" for name, sec in ranked)


def _gantt(summary: ProfileSummary, width: int) -> List[str]:
    """One busy/idle strip per worker over the chunk-activity span."""
    t0, t1 = summary.span
    span = t1 - t0
    if span <= 0 or not summary.workers:
        return []
    label_width = max(len(w) for w in summary.workers)
    lines = []
    for worker in sorted(summary.workers):
        cells = ["."] * width
        for start, end in summary.workers[worker].intervals:
            lo = int((start - t0) / span * (width - 1))
            hi = int((end - t0) / span * (width - 1))
            for cell in range(max(lo, 0), min(hi, width - 1) + 1):
                cells[cell] = "#"
        lines.append(f"{worker.ljust(label_width)} |{''.join(cells)}|")
    return lines


def render_profile(events: Sequence[Dict], top: int = 8, width: int = 48) -> str:
    """The full plain-text profile for one event log."""
    from repro.reporting.table import Table
    from repro.reporting.text_plots import ascii_bars

    summary = summarize_profile(events)
    sections: List[str] = []
    header = [
        f"events: {summary.n_events}   elapsed: {summary.elapsed:.2f}s   "
        f"chunks: {len(summary.chunks)}   "
        f"schema: {'v%d' % summary.schema if summary.schema else '?'}"
    ]
    if summary.chunks:
        header.append(
            f"chunk time: {summary.chunk_seconds:.2f}s over "
            f"{summary.span_seconds:.2f}s of walltime ({summary.walks} walks)"
        )
    sections.append("\n".join(header))

    if summary.phase_seconds:
        total = summary.phase_total
        lines = []
        if summary.chunk_seconds > 0:
            lines.append(
                f"{summary.profile_events} profiled chunk(s): phase timers "
                f"cover {total:.2f}s = "
                f"{100 * total / summary.chunk_seconds:.1f}% of chunk time"
            )
        bars = sorted(
            summary.phase_seconds.items(), key=lambda kv: kv[1], reverse=True
        )
        labelled = [
            (f"{name} {100 * seconds / total:5.1f}%", seconds)
            for name, seconds in bars
        ]
        lines.append(
            ascii_bars(labelled, width=width, title="engine phase breakdown", unit="s")
        )
        if summary.engine_calls:
            lines.append(
                "engine calls: "
                + ", ".join(
                    f"{engine}={calls}"
                    for engine, calls in sorted(summary.engine_calls.items())
                )
            )
        sections.append("\n".join(lines))
    else:
        sections.append(
            "no phase_profile events in this log (schema v2 or earlier, or "
            "profiling disabled) -- phase breakdown unavailable; worker and "
            "chunk timings below are still exact"
        )

    if summary.workers:
        span = summary.span_seconds
        table = Table(
            ["worker", "chunks", "busy s", "utilization"],
            title="worker utilization",
        )
        for worker in sorted(summary.workers):
            usage = summary.workers[worker]
            table.add_row(
                worker,
                usage.chunks,
                round(usage.busy_seconds, 3),
                f"{100 * usage.busy_seconds / span:.0f}%" if span > 0 else "-",
            )
        lines = [table.render()]
        gantt = _gantt(summary, width)
        if gantt:
            lines.append(f"busy gantt over {span:.2f}s ('#' = chunk in flight)")
            lines.extend(gantt)
        parallelism = summary.effective_parallelism
        if parallelism is not None:
            lines.append(
                f"effective parallelism: {parallelism:.2f}x "
                f"(sum of busy time {sum(u.busy_seconds for u in summary.workers.values()):.2f}s "
                f"/ {span:.2f}s walltime)"
            )
        sections.append("\n".join(lines))

    if summary.ipc_bytes or summary.shm_bytes:
        lines = [
            f"IPC: {summary.ipc_bytes} result bytes pickled in "
            f"{summary.pickle_seconds:.3f}s, unpickled in "
            f"{summary.unpickle_seconds:.3f}s"
        ]
        if summary.shm_bytes:
            lines.append(
                f"shm: {summary.shm_bytes} slab bytes over "
                f"{summary.shm_chunks} chunk(s), copied out in "
                f"{summary.shm_seconds:.3f}s (pipe carried handles only)"
            )
        if summary.fallback_chunks:
            lines.append(
                f"warning: {summary.fallback_chunks} chunk(s) fell back to "
                "pickle transport despite shm being requested (non-slab "
                "payload or slab creation failure)"
            )
        sections.append("\n".join(lines))

    if summary.chunks:
        slowest = sorted(
            summary.chunks, key=lambda row: row["seconds"], reverse=True
        )[: max(int(top), 1)]
        # Only grow a transport column when the log carries transport info
        # (pooled v4+ runs); serial/older logs keep the narrow table.
        transports = {row["transport"] for row in summary.chunks}
        show_transport = transports != {None}
        columns = ["run", "chunk", "worker", "seconds", "ipc bytes"]
        if show_transport:
            columns.append("transport")
        columns.append("phase attribution")
        table = Table(columns, title=f"slowest {len(slowest)} chunk(s)")
        for row in slowest:
            cells = [
                row["run"],
                row["chunk"],
                row["worker"],
                round(row["seconds"], 3),
                row["ipc_bytes"],
            ]
            if show_transport:
                transport = row["transport"] or "-"
                # The fallback marker is the loud one: the chunk asked for
                # shm and did not get it.
                cells.append(
                    "PICKLE-FALLBACK" if transport == "pickle-fallback"
                    else transport
                )
            cells.append(_phase_attribution(row["phases"]))
            table.add_row(*cells)
        sections.append(table.render())
    else:
        sections.append(
            "no chunk_end events found -- was the run executed with "
            "--log-json and a runner flag (--chunks/--workers)?"
        )
    return "\n\n".join(sections)


def render_profile_diff(
    events: Sequence[Dict], baseline_events: Sequence[Dict], width: int = 48
) -> str:
    """Before/after comparison of two logs (``profile LOG --diff BASELINE``).

    Phase times compare relatively (like ``*_seconds`` in bench-history);
    headline chunk time, throughput, effective parallelism, and IPC bytes
    are summarized side by side.
    """
    from repro.reporting.table import Table

    current = summarize_profile(events)
    baseline = summarize_profile(baseline_events)
    sections: List[str] = []

    def _change(base: float, cur: float) -> str:
        if base <= 0:
            return "n/a"
        return f"{(cur - base) / base:+.1%}"

    names = sorted(
        set(current.phase_seconds) | set(baseline.phase_seconds),
        key=lambda name: current.phase_seconds.get(name, 0.0),
        reverse=True,
    )
    if names:
        table = Table(
            ["phase", "baseline s", "current s", "change"],
            title="phase breakdown vs baseline",
        )
        for name in names:
            base = baseline.phase_seconds.get(name)
            cur = current.phase_seconds.get(name)
            table.add_row(
                name,
                round(base, 4) if base is not None else None,
                round(cur, 4) if cur is not None else None,
                _change(base or 0.0, cur or 0.0) if base and cur else "n/a",
            )
        sections.append(table.render())
    else:
        sections.append(
            "no phase_profile events in either log -- comparing chunk "
            "timings only"
        )

    headline = Table(
        ["metric", "baseline", "current", "change"], title="headline"
    )
    headline.add_row(
        "chunk seconds",
        round(baseline.chunk_seconds, 3),
        round(current.chunk_seconds, 3),
        _change(baseline.chunk_seconds, current.chunk_seconds),
    )
    if baseline.walks and current.walks:
        base_tp = baseline.walks / baseline.chunk_seconds if baseline.chunk_seconds else 0.0
        cur_tp = current.walks / current.chunk_seconds if current.chunk_seconds else 0.0
        headline.add_row(
            "walks/sec", round(base_tp, 1), round(cur_tp, 1), _change(base_tp, cur_tp)
        )
    base_par = baseline.effective_parallelism
    cur_par = current.effective_parallelism
    if base_par is not None or cur_par is not None:
        headline.add_row(
            "effective parallelism",
            round(base_par, 2) if base_par is not None else None,
            round(cur_par, 2) if cur_par is not None else None,
            _change(base_par or 0.0, cur_par or 0.0)
            if base_par and cur_par
            else "n/a",
        )
    if baseline.ipc_bytes or current.ipc_bytes:
        headline.add_row(
            "IPC bytes",
            baseline.ipc_bytes,
            current.ipc_bytes,
            _change(float(baseline.ipc_bytes), float(current.ipc_bytes)),
        )
    sections.append(headline.render())
    return "\n\n".join(sections)
