"""Render a telemetry event log back into the repo's text views.

``repro-experiment report events.jsonl`` consumes the JSONL written by
:class:`repro.telemetry.events.EventLogWriter` and reconstructs, post
hoc, what the run did: one row per runner invocation, the full per-chunk
timeline (including retries and which attempt finally landed), a retry /
incident summary (deadlines, signals, quarantined checkpoints, injected
faults), and throughput.  It is pure event-log analysis: no simulation
state is needed, so it works on logs from killed, resumed, or remote
runs -- exactly the situations where post-hoc visibility matters.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.reporting.table import Table
from repro.reporting.text_plots import ascii_bars

#: Event types surfaced in the incident table ("incident" covers the
#: convergence monitor's anomalies -- slow_chunk / success_drift -- and
#: the resource monitor's low_disk / low_memory degradations;
#: "heartbeat" is the hung-chunk watchdog firing).
_INCIDENT_TYPES = (
    "deadline", "signal", "quarantine", "fault_injected", "pool_rebuild",
    "incident", "heartbeat",
)

#: Cap on bars in the chunk-duration chart (longest chunks win).
_MAX_BARS = 24


def _run_key(event: Dict) -> str:
    label = event.get("label", "?")
    experiment = event.get("experiment")
    return f"{experiment}/{label}" if experiment else str(label)


class RunSummary:
    """Accumulated view of one ``run_start`` .. ``run_end`` lifecycle."""

    def __init__(self, key: str, start_event: Dict) -> None:
        self.key = key
        self.start_event = start_event
        self.end_event: Optional[Dict] = None
        self.resumed = 0
        self.retries = 0
        self.chunk_ends: List[Dict] = []
        #: Last ``estimate`` event seen for this run (running Wilson CI).
        self.last_estimate: Optional[Dict] = None
        self.n_estimates = 0

    @property
    def n_total(self) -> Optional[int]:
        return self.start_event.get("n_total")

    @property
    def status(self) -> str:
        if self.end_event is None:
            return "unfinished"
        if self.end_event.get("interrupted"):
            return "interrupted"
        if self.end_event.get("point_quarantined"):
            return "quarantined"
        if self.end_event.get("converged"):
            return "converged"
        if self.end_event.get("degraded"):
            return "degraded"
        return "ok"

    @property
    def seconds(self) -> Optional[float]:
        if self.end_event is None:
            return None
        return self.end_event.get("seconds")

    @property
    def walks_computed(self) -> int:
        return sum(int(e.get("n", 0)) for e in self.chunk_ends)

    @property
    def compute_seconds(self) -> float:
        return sum(float(e.get("seconds", 0.0)) for e in self.chunk_ends)


def summarize_events(events: Sequence[Dict]) -> Dict[str, object]:
    """Structure a flat event list into runs, chunks, retries, incidents."""
    runs: Dict[str, RunSummary] = {}
    #: Latest unique key per raw run key: a killed-and-resumed run (or a
    #: re-run into the same log) repeats ``run_start`` under one label;
    #: each invocation gets its own summary and later events attach to
    #: the newest one.
    current: Dict[str, str] = {}
    order: List[str] = []
    chunk_starts: Dict[tuple, Dict] = {}
    chunks: List[Dict] = []
    phase_seconds: Dict[str, float] = {}
    n_phase_profiles = 0
    retries: List[Dict] = []
    incidents: List[Dict] = []
    quarantined_points: List[Dict] = []
    experiments: List[str] = []
    for event in events:
        type_ = event.get("type")
        key = _run_key(event)
        if type_ == "run_start":
            unique = key
            while unique in runs:
                unique = unique + "+"
            current[key] = unique
            key = unique
            runs[key] = RunSummary(key, event)
            order.append(key)
        else:
            key = current.get(key, key)
        if type_ == "resume" and key in runs:
            runs[key].resumed = int(event.get("resumed", 0))
        elif type_ == "chunk_start":
            chunk_starts[(key, event.get("chunk"), event.get("attempt", 1))] = event
        elif type_ == "chunk_end":
            start = chunk_starts.get((key, event.get("chunk"), event.get("attempt", 1)))
            row = dict(event)
            row["run"] = key
            row["t_start"] = start.get("t") if start else None
            chunks.append(row)
            if key in runs:
                runs[key].chunk_ends.append(event)
        elif type_ == "phase_profile":
            n_phase_profiles += 1
            for phase, seconds in (event.get("phases") or {}).items():
                phase_seconds[phase] = phase_seconds.get(phase, 0.0) + float(seconds)
        elif type_ == "retry":
            retries.append(dict(event, run=key))
            if key in runs:
                runs[key].retries += 1
        elif type_ in _INCIDENT_TYPES:
            incidents.append(dict(event, run=key))
            if type_ == "quarantine" and event.get("scope") == "point":
                quarantined_points.append(dict(event, run=key))
        elif type_ == "estimate" and key in runs:
            runs[key].last_estimate = event
            runs[key].n_estimates += 1
        elif type_ == "run_end" and key in runs:
            runs[key].end_event = event
        elif type_ == "experiment_start":
            experiment = event.get("experiment")
            if experiment and experiment not in experiments:
                experiments.append(experiment)
    return {
        "runs": [runs[key] for key in order],
        "chunks": chunks,
        "phase_seconds": phase_seconds,
        "n_phase_profiles": n_phase_profiles,
        "retries": retries,
        "incidents": incidents,
        "quarantined_points": quarantined_points,
        "experiments": experiments,
        "n_events": len(events),
        "elapsed": max((float(e.get("t", 0.0)) for e in events), default=0.0),
    }


def _runs_table(runs: Sequence[RunSummary]) -> Table:
    table = Table(
        [
            "run", "walks", "chunks", "resumed", "retries",
            "status", "seconds", "walks/sec",
        ],
        title="runner invocations",
    )
    for run in runs:
        end = run.end_event or {}
        completed = end.get("completed")
        total = end.get("total", run.start_event.get("n_chunks"))
        throughput = (
            run.walks_computed / run.compute_seconds if run.compute_seconds else None
        )
        table.add_row(
            run.key,
            run.n_total,
            f"{completed if completed is not None else '?'}/{total}",
            run.resumed,
            run.retries,
            run.status,
            run.seconds,
            throughput,
        )
    return table


def _chunks_table(chunks: Sequence[Dict]) -> Table:
    table = Table(
        ["run", "chunk", "walks", "attempt", "worker", "t_start", "seconds"],
        title="chunk timeline (completion order)",
    )
    for chunk in chunks:
        table.add_row(
            chunk["run"],
            chunk.get("chunk"),
            chunk.get("n"),
            chunk.get("attempt", 1),
            chunk.get("worker_id"),
            chunk.get("t_start"),
            chunk.get("seconds"),
        )
    return table


def _retries_table(retries: Sequence[Dict]) -> Table:
    table = Table(["t", "run", "chunk", "attempt", "reason"], title="retries")
    for retry in retries:
        table.add_row(
            retry.get("t"),
            retry["run"],
            retry.get("chunk"),
            retry.get("attempt"),
            retry.get("reason"),
        )
    return table


def _retry_timeline_table(retries: Sequence[Dict]) -> Table:
    """Per-chunk retry history: how often each chunk struggled, and why."""
    table = Table(
        ["run", "chunk", "attempts", "first t", "last t", "reasons"],
        title="retry timeline (per chunk)",
    )
    grouped: Dict[tuple, List[Dict]] = {}
    for retry in retries:
        grouped.setdefault((retry["run"], retry.get("chunk")), []).append(retry)
    for (run, chunk), rows in sorted(grouped.items(), key=lambda kv: (kv[0][0], kv[0][1] or 0)):
        reasons = []
        for row in rows:
            reason = str(row.get("reason", "?"))
            if reason not in reasons:
                reasons.append(reason)
        times = [float(r.get("t", 0.0)) for r in rows]
        table.add_row(
            run,
            chunk,
            len(rows),
            round(min(times), 3),
            round(max(times), 3),
            "; ".join(reasons),
        )
    return table


def _quarantined_table(points: Sequence[Dict]) -> Table:
    """One row per poison point the circuit breaker fenced off."""
    table = Table(
        ["t", "run", "chunk", "failures", "chunks done", "last error"],
        title="quarantined points (circuit breaker)",
    )
    for point in points:
        completed = point.get("completed")
        total = point.get("total")
        table.add_row(
            point.get("t"),
            point["run"],
            point.get("chunk"),
            point.get("failures"),
            f"{completed}/{total}" if completed is not None else None,
            point.get("reason"),
        )
    return table


def _estimates_table(runs: Sequence[RunSummary]) -> Table:
    table = Table(
        ["run", "successes", "trials", "p", "ci95", "rel half-width", "status"],
        title="final estimates (running Wilson CI)",
    )
    for run in runs:
        estimate = run.last_estimate
        if estimate is None:
            continue
        rel = estimate.get("rel_half_width")
        table.add_row(
            run.key,
            estimate.get("successes"),
            estimate.get("trials"),
            estimate.get("p"),
            f"[{estimate.get('low')}, {estimate.get('high')}]",
            rel if rel is not None else "inf",
            run.status,
        )
    return table


def _incidents_table(incidents: Sequence[Dict]) -> Table:
    table = Table(["t", "type", "run", "detail"], title="incidents")
    for incident in incidents:
        detail = {
            key: value
            for key, value in incident.items()
            if key not in ("t", "type", "run", "span", "experiment", "scale", "seed", "label")
        }
        table.add_row(
            incident.get("t"),
            incident.get("type"),
            incident["run"],
            " ".join(f"{k}={v}" for k, v in sorted(detail.items())),
        )
    return table


def render_report(events: Sequence[Dict], width: int = 48) -> str:
    """The full plain-text report for one event log."""
    summary = summarize_events(events)
    runs: List[RunSummary] = summary["runs"]  # type: ignore[assignment]
    chunks: List[Dict] = summary["chunks"]  # type: ignore[assignment]
    sections = []
    header = [
        f"events: {summary['n_events']}   "
        f"elapsed: {summary['elapsed']:.2f}s   "
        f"runner invocations: {len(runs)}"
    ]
    if summary["experiments"]:
        header.append("experiments: " + ", ".join(summary["experiments"]))  # type: ignore[arg-type]
    total_walks = sum(run.walks_computed for run in runs)
    total_compute = sum(run.compute_seconds for run in runs)
    if total_compute:
        header.append(
            f"computed {total_walks} walks in {total_compute:.2f}s of chunk time "
            f"({total_walks / total_compute:.0f} walks/sec)"
        )
    sections.append("\n".join(header))
    if runs:
        sections.append(_runs_table(runs).render())
    if any(run.last_estimate is not None for run in runs):
        sections.append(_estimates_table(runs).render())
    if chunks:
        sections.append(_chunks_table(chunks).render())
        slowest = sorted(chunks, key=lambda c: c.get("seconds", 0.0), reverse=True)
        bars = [
            (f"{c['run']}#{c.get('chunk')}", float(c.get("seconds", 0.0)))
            for c in slowest[:_MAX_BARS]
        ]
        sections.append(
            ascii_bars(bars, width=width, title="slowest chunks (walltime)", unit="s")
        )
    phase_seconds: Dict[str, float] = summary["phase_seconds"]  # type: ignore[assignment]
    if phase_seconds:
        total_phase = sum(phase_seconds.values())
        bars = [
            (f"{phase} {100 * seconds / total_phase:5.1f}%", seconds)
            for phase, seconds in sorted(
                phase_seconds.items(), key=lambda kv: kv[1], reverse=True
            )
        ]
        sections.append(
            ascii_bars(bars, width=width, title="engine phase breakdown", unit="s")
            + "\n(full phase/worker/IPC analysis: repro-experiment profile)"
        )
    if summary["retries"]:
        sections.append(_retries_table(summary["retries"]).render())  # type: ignore[arg-type]
        sections.append(_retry_timeline_table(summary["retries"]).render())  # type: ignore[arg-type]
    if summary["quarantined_points"]:
        sections.append(_quarantined_table(summary["quarantined_points"]).render())  # type: ignore[arg-type]
    if summary["incidents"]:
        sections.append(_incidents_table(summary["incidents"]).render())  # type: ignore[arg-type]
    if not runs and not chunks:
        sections.append(
            "no runner events found -- was the run executed with --log-json "
            "and a runner flag (--chunks/--workers/--checkpoint-dir)?"
        )
    return "\n\n".join(sections)


def render_file(path, strict: bool = False, width: int = 48) -> str:
    """Load ``path`` (JSONL) and render the report."""
    from repro.telemetry.events import read_events

    return render_report(read_events(path, strict=strict), width=width)
