"""The recorder seam: one global object every layer emits through.

Design constraints (why this module looks the way it does):

* **zero cost when disabled** -- the default recorder is a
  :class:`NullRecorder` whose methods do nothing and whose ``span`` is a
  shared reusable no-op context manager; hot loops guard any non-trivial
  accounting behind ``get_recorder().enabled``;
* **no repro imports at module level** -- the vectorized engines import
  this module, and the event-log writer imports :mod:`repro.io_utils`,
  which imports the engines.  Keeping this module stdlib-only (the writer
  is imported lazily inside :func:`configure`) breaks the cycle;
* **single seam** -- ``Runner``, ``CheckpointStore``, ``FaultInjector``,
  the engines, the experiment harnesses, and the CLI all call
  :func:`get_recorder`; enabling telemetry in one place
  (:func:`configure` / :func:`set_recorder`) lights up every layer.

Event records are flat JSON objects.  Every event carries ``t`` (seconds
of monotonic elapsed time since the recorder was created), ``type``, the
recorder's bound context (experiment id, scale, seed, ...), and the id of
the innermost open span, so a post-hoc reader can reconstruct the
``run > chunk > task`` nesting.  See docs/observability.md for the schema.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.profile import PhaseAccumulator


class _NullSpan:
    """Reusable no-op context manager (one shared instance, no allocation)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullRecorder:
    """The default recorder: does nothing, costs (almost) nothing.

    ``metrics`` is still a real registry so code may unconditionally do
    ``rec.metrics.counter(...)`` in cold paths; hot paths must guard with
    ``rec.enabled`` instead.

    ``profile`` is the phase-profiling seam, deliberately decoupled from
    ``enabled``: pool workers run a (null) :class:`WorkerHeartbeat`
    recorder, yet still profile by having the runner attach a
    :class:`~repro.telemetry.profile.PhaseAccumulator` here and drain it
    into the chunk result.  ``None`` means "don't time phases", which the
    engines test once per stage per round.
    """

    enabled = False
    profile: Optional[PhaseAccumulator] = None

    def __init__(self) -> None:
        self.metrics = MetricsRegistry()

    def event(self, type_: str, **fields) -> None:
        pass

    def tick(self) -> None:
        """Liveness pulse from engine round loops; no-op by default.

        :class:`~repro.runner.supervision.WorkerHeartbeat` overrides this
        to touch a per-chunk heartbeat file inside pool workers.
        """

    def span(self, name: str, **fields) -> _NullSpan:
        return _NULL_SPAN

    def bind(self, **fields) -> None:
        pass

    def unbind(self, *names: str) -> None:
        pass

    @contextmanager
    def bound(self, **fields) -> Iterator[None]:
        yield

    def close(self) -> None:
        pass


#: Event types the ``--progress`` heartbeat renders (others stay silent).
_PROGRESS_TYPES = frozenset(
    {
        "run_start",
        "resume",
        "chunk_end",
        "retry",
        "pool_rebuild",
        "quarantine",
        "heartbeat",
        "deadline",
        "signal",
        "incident",
        "converged",
        "run_end",
        "experiment_start",
        "experiment_end",
    }
)

# "estimate" flushes too (it follows chunk_end immediately, and a live
# `watch` should see the CI tighten per chunk, not one chunk late).
#: Event types that flush the buffered event-log writer to disk.  These
#: are the chunk/run boundaries and every rare "something notable
#: happened" event, so the on-disk log is durable at each boundary while
#: the per-event hot path (spans, chunk_start, estimates) stays a pure
#: in-memory append.  A kill therefore loses at most the buffered tail
#: of the current chunk -- the same granularity the checkpoint store
#: guarantees for the data itself.
_FLUSH_TYPES = frozenset(
    {
        "run_start",
        "resume",
        "chunk_end",
        "checkpoint",
        "retry",
        "pool_rebuild",
        "quarantine",
        "heartbeat",
        "fault_injected",
        "deadline",
        "signal",
        "incident",
        "estimate",
        "converged",
        "phase_profile",
        "run_end",
        "experiment_start",
        "experiment_end",
    }
)


class TelemetryRecorder:
    """A live recorder: events to JSONL, metrics to a registry, heartbeat.

    Parameters
    ----------
    writer:
        Anything with ``write(record: dict)`` and ``close()`` -- normally
        an :class:`repro.telemetry.events.EventLogWriter`.  ``None``
        keeps metrics/spans/progress without an event log.
    metrics:
        Registry to accumulate into (default: a fresh one).
    progress:
        A text stream (e.g. ``sys.stderr``); when set, a one-line
        heartbeat is printed for the coarse lifecycle events so a long
        run is observable live without tailing the JSONL.
    context:
        Initial bound fields stamped onto every event (seed, experiment
        id, scale, ...).
    profile:
        When true (the default), a
        :class:`~repro.telemetry.profile.PhaseAccumulator` is attached
        so the engines time their hot-loop stages; the Runner drains it
        once per chunk into ``phase_profile`` events.  ``False`` leaves
        ``self.profile`` as ``None`` and the engines skip every timer
        (the path the ``profiler_overhead`` benchmark isolates).

    Spans are tracked on a plain instance stack: the runner and the
    experiment harnesses emit from the parent process's single thread
    (pool workers have their own -- null -- recorder), so no thread-local
    machinery is needed.
    """

    enabled = True

    def __init__(
        self,
        writer=None,
        metrics: Optional[MetricsRegistry] = None,
        progress=None,
        context: Optional[Dict] = None,
        profile: bool = True,
    ) -> None:
        self.writer = writer
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.progress = progress
        self.profile: Optional[PhaseAccumulator] = (
            PhaseAccumulator() if profile else None
        )
        self.context: Dict = dict(context or {})
        self._t0 = time.monotonic()
        self._span_stack = []  # span ids, innermost last
        self._next_span_id = 1

    # -------------------------------------------------------------- context

    def elapsed(self) -> float:
        """Monotonic seconds since this recorder was created."""
        return time.monotonic() - self._t0

    def bind(self, **fields) -> None:
        """Stamp ``fields`` onto every subsequent event."""
        self.context.update(fields)

    def unbind(self, *names: str) -> None:
        for name in names:
            self.context.pop(name, None)

    @contextmanager
    def bound(self, **fields) -> Iterator[None]:
        """Temporarily bind context fields (restores previous values)."""
        previous = {name: self.context.get(name, _MISSING) for name in fields}
        self.bind(**fields)
        try:
            yield
        finally:
            for name, value in previous.items():
                if value is _MISSING:
                    self.context.pop(name, None)
                else:
                    self.context[name] = value

    # --------------------------------------------------------------- events

    def tick(self) -> None:
        """Liveness pulse from engine round loops; nothing to do live.

        The seam exists for :class:`~repro.runner.supervision.WorkerHeartbeat`
        (installed inside pool workers); the parent-side live recorder has
        no per-round obligations.
        """

    def event(self, type_: str, **fields) -> None:
        """Emit one structured event (and maybe a heartbeat line)."""
        record = {"t": round(self.elapsed(), 6), "type": type_}
        if self.context:
            record.update(self.context)
        if self._span_stack:
            record["span"] = self._span_stack[-1]
        record.update(fields)
        if self.writer is not None:
            self.writer.write(record)
            if type_ in _FLUSH_TYPES:
                flush = getattr(self.writer, "flush", None)
                if flush is not None:
                    flush()
        if self.progress is not None and type_ in _PROGRESS_TYPES:
            self._heartbeat(record)

    @contextmanager
    def span(self, name: str, **fields) -> Iterator[int]:
        """A nested traced region: ``span_start``/``span_end`` events.

        The yielded span id appears as ``span`` on every event emitted
        inside, so hung or slow regions are reconstructable post-hoc.
        ``span_end`` is emitted even when the body raises (with
        ``ok=False`` and the exception type).
        """
        span_id = self._next_span_id
        self._next_span_id += 1
        parent = self._span_stack[-1] if self._span_stack else None
        self.event("span_start", span=span_id, name=name, parent=parent, **fields)
        self._span_stack.append(span_id)
        started = time.monotonic()
        error: Optional[str] = None
        try:
            yield span_id
        except BaseException as exc:
            error = type(exc).__name__
            raise
        finally:
            self._span_stack.pop()
            end_fields = {"seconds": round(time.monotonic() - started, 6), "ok": error is None}
            if error is not None:
                end_fields["error"] = error
            self.event("span_end", span=span_id, name=name, **end_fields)

    def close(self) -> None:
        # Engine calls made outside any runner chunk (analysis helpers,
        # direct API use) accumulate phase time nobody drains; flush them
        # as one residual phase_profile so the log's phase totals stay
        # consistent with the engine.phase_seconds.* counters.
        accumulator = self.profile
        if accumulator is not None and not accumulator.empty:
            drained = accumulator.drain()
            if drained is not None:
                phases, engines = drained
                for phase, seconds in phases.items():
                    self.metrics.counter(f"engine.phase_seconds.{phase}").add(seconds)
                self.event(
                    "phase_profile", scope="residual", phases=phases, engines=engines
                )
        if self.writer is not None:
            self.writer.close()

    # ------------------------------------------------------------ heartbeat

    def _heartbeat(self, record: Dict) -> None:
        type_ = record["type"]
        parts = []
        if type_ == "chunk_end":
            parts.append(
                f"chunk {record.get('chunk')} done in {record.get('seconds', 0):.2f}s "
                f"({record.get('n')} walks)"
            )
        elif type_ == "retry":
            parts.append(
                f"retry chunk {record.get('chunk')} "
                f"attempt {record.get('attempt')}: {record.get('reason')}"
            )
        elif type_ == "run_start":
            parts.append(
                f"run start: {record.get('n_total')} walks in "
                f"{record.get('n_chunks')} chunks"
            )
        elif type_ == "run_end":
            parts.append(
                f"run end: {record.get('completed')}/{record.get('total')} chunks"
                + (" DEGRADED" if record.get("degraded") else "")
                + (" INTERRUPTED" if record.get("interrupted") else "")
            )
        elif type_ == "resume":
            parts.append(f"resumed {record.get('resumed')} checkpointed chunk(s)")
        elif type_ == "converged":
            parts.append(
                f"converged after {record.get('completed')}/{record.get('total')} "
                f"chunks: p={record.get('p')} "
                f"[{record.get('low')}, {record.get('high')}] "
                f"(rel half-width {record.get('rel_half_width')} "
                f"<= {record.get('target')})"
            )
        else:
            detail = {
                key: value
                for key, value in record.items()
                if key not in ("t", "type", "span")
            }
            parts.append(" ".join(f"{k}={v}" for k, v in sorted(detail.items())) or type_)
        label = record.get("label") or record.get("experiment")
        prefix = f"[{record['t']:9.2f}s] {type_:<12}"
        suffix = f" [{label}]" if label else ""
        print(prefix + " " + " ".join(parts) + suffix, file=self.progress, flush=True)


class _Missing:
    __slots__ = ()


_MISSING = _Missing()

_RECORDER: "NullRecorder | TelemetryRecorder" = NullRecorder()


def get_recorder():
    """The process-global recorder (a no-op unless telemetry is enabled)."""
    return _RECORDER


def set_recorder(recorder):
    """Install ``recorder`` globally; returns the previous one.

    Pass ``None`` to reset to a fresh :class:`NullRecorder`.
    """
    global _RECORDER
    previous = _RECORDER
    _RECORDER = recorder if recorder is not None else NullRecorder()
    return previous


@contextmanager
def use_recorder(recorder) -> Iterator:
    """Scoped :func:`set_recorder`: restores the previous recorder on exit."""
    previous = set_recorder(recorder)
    try:
        yield recorder
    finally:
        set_recorder(previous)


def configure(
    log_path=None,
    metrics: Optional[MetricsRegistry] = None,
    progress=None,
    context: Optional[Dict] = None,
    profile: bool = True,
    run_id: Optional[str] = None,
) -> TelemetryRecorder:
    """Build a :class:`TelemetryRecorder` and install it globally.

    ``log_path`` enables the append-only JSONL event log.  ``profile``
    controls the engine phase timers (on by default; the accumulators
    cost nanoseconds per round).  ``run_id`` -- normally the run
    registry's id for this run -- is stamped into the log's ``log_open``
    header so the log and its registry record join unambiguously.
    Returns the recorder; callers should ``set_recorder(previous)`` (or
    use :func:`use_recorder`) and ``recorder.close()`` when done.
    """
    writer = None
    if log_path is not None:
        # Lazy import: events -> io_utils -> engine -> (this module).
        from repro.telemetry.events import EventLogWriter

        writer = EventLogWriter(log_path, run_id=run_id)
    recorder = TelemetryRecorder(
        writer=writer,
        metrics=metrics,
        progress=progress,
        context=context,
        profile=profile,
    )
    set_recorder(recorder)
    return recorder
