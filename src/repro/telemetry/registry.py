"""The persistent run registry: cross-run memory for every Runner/sweep run.

PRs 2--7 made *individual* runs richly observable (events, metrics,
convergence CIs, phase profiles), but each run was a throwaway JSONL
file: nothing remembered what ``P(hit by t)`` looked like last week, so
regressions in *statistics* -- not just seconds -- went unnoticed.  This
module is the cross-run layer:

* :class:`RunRecord` -- one immutable summary of a finished run: run id,
  config hash, seed, git revision, event-schema version, outcome and
  exit code, headline estimates with Wilson CIs per grid point, a
  phase-profile summary, pool/IPC totals, and artifact paths;
* :class:`RunRegistry` -- an append-only JSONL store
  (``<registry-dir>/runs.jsonl``, default ``.repro-registry/``) with the
  event log's durability contract: every record lands in ONE ``O_APPEND``
  write (:func:`repro.io_utils.append_line`), concurrent registrars never
  interleave, and readers tolerate a torn final line.  Registration even
  self-heals after a kill-mid-register: if the file's tail is torn (no
  trailing newline), the next record starts on a fresh line instead of
  gluing itself onto the fragment;
* :func:`compare_records` -- CI-aware statistical drift detection between
  two runs: a grid point whose Wilson intervals are *disjoint* is flagged
  as DRIFT (``runs compare --strict`` exits non-zero), and a point whose
  interval overlap shrank past a threshold warns, alongside
  phase/walltime diffs in the ``profile --diff`` style;
* :meth:`RunRegistry.lookup` -- the estimation-service seam (ROADMAP):
  given a law, a geometry filter and a maximum CI half-width, return the
  freshest registered record that already answers the query, so future
  sweeps (and the planned ``repro-serve`` daemon) can warm-start from
  prior results instead of re-simulating.

Scientific motivation for drift detection: the literature *disputes* the
paper's headline claims (Levernier et al., arXiv:2002.00278, argue
inverse-square is non-optimal for d >= 2; Guinard--Korman,
arXiv:2003.13041, tie optimality to target size), so a silent shift in
our measured estimates between code versions is exactly the kind of bug
that could flip a scientific conclusion.  The registry makes such shifts
loud.

Import-cycle note: like :mod:`repro.telemetry.events`, this module pulls
in :mod:`repro.io_utils` (which imports the engines), so the recorder
must never import it at module level; the CLI and tests import it
directly.
"""

from __future__ import annotations

import json
import os
import subprocess
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.io_utils import (
    CorruptResultError,
    append_text,
    atomic_write_bytes,
    open_append,
    sha256_hex,
)

#: Bumped when the record layout changes incompatibly.  Readers ignore
#: unknown fields and default missing ones, so additive growth does not
#: need a bump.
RECORD_VERSION = 1

#: Default registry location (CLI: ``--registry-dir``).
DEFAULT_REGISTRY_DIR = ".repro-registry"

#: The append-only record file inside the registry directory.
REGISTRY_FILENAME = "runs.jsonl"

#: Exit-code -> outcome classification (mirrors docs/runner.md).
_OUTCOMES = {
    0: "ok",
    1: "failed",
    2: "usage-error",
    3: "degraded",
    4: "quarantined",
    130: "interrupted",
}


def outcome_for_exit_code(code: int) -> str:
    """The documented outcome name for a CLI exit code."""
    return _OUTCOMES.get(int(code), f"exit-{int(code)}")


def utc_now_iso() -> str:
    """Wall-clock UTC timestamp, second resolution, ISO 8601 with Z."""
    return datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")


def new_run_id() -> str:
    """A fresh, time-sortable, collision-resistant run id.

    ``YYYYmmddTHHMMSSZ-xxxxxx``: the UTC second plus three random bytes,
    so ids sort chronologically in ``runs list`` while concurrent
    registrars in the same second still never collide.
    """
    stamp = datetime.now(timezone.utc).strftime("%Y%m%dT%H%M%SZ")
    return f"{stamp}-{os.urandom(3).hex()}"


def git_revision(cwd: Optional[Path] = None) -> Optional[str]:
    """The current short git revision, or None outside a repo / without git."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=str(cwd) if cwd is not None else None,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if proc.returncode != 0:
        return None
    rev = proc.stdout.strip()
    return rev or None


def config_hash(config: Mapping[str, Any]) -> str:
    """A short stable hash of a run's configuration (spec, flags, seed).

    Canonical JSON (sorted keys, ``default=str``) so logically equal
    configs hash equal regardless of dict ordering or Path-vs-str types.
    """
    text = json.dumps(config, sort_keys=True, separators=(",", ":"), default=str)
    return sha256_hex(text.encode("utf-8"))[:12]


def estimate_key(params: Mapping[str, Any]) -> str:
    """Canonical ``k=v`` key for one grid point's scalar params.

    Sorted by name so two runs whose specs enumerated axes in different
    orders still join on the same key in ``runs compare`` and the
    dashboard trajectories.
    """
    parts = []
    for name in sorted(params):
        value = params[name]
        if isinstance(value, float):
            parts.append(f"{name}={value:g}")
        elif isinstance(value, (int, str, bool)):
            parts.append(f"{name}={value}")
    return " ".join(parts)


# ------------------------------------------------------------------ the record


@dataclass(frozen=True)
class RunRecord:
    """One registered run: provenance, outcome, headline statistics.

    ``estimates`` is a list of per-grid-point dicts::

        {"key": "alpha=2.2 detect=True k=8 l=24",  # canonical join key
         "label": "sweep-point-0000",              # telemetry label
         "law": "alpha=2.2",                       # walk family
         "params": {...},                          # scalar grid params
         "trials": 2000, "successes": 93,
         "p": 0.0465, "low": 0.0381, "high": 0.0566,   # 95% Wilson
         "half_width": 0.00925, "horizon": 576,
         "status": "complete"}                     # runner outcome

    Schema documented in docs/observability.md ("Run registry &
    dashboard").  :meth:`from_dict` tolerates unknown fields and defaults
    missing ones, so old readers survive new writers and vice versa.
    """

    run_id: str
    created_at: str
    command: str
    label: str = ""
    seed: Optional[int] = None
    scale: Optional[str] = None
    config_hash: Optional[str] = None
    git_rev: Optional[str] = None
    event_schema: Optional[int] = None
    record_version: int = RECORD_VERSION
    outcome: str = "ok"
    exit_code: int = 0
    estimates: List[Dict[str, Any]] = field(default_factory=list)
    #: Phase name -> seconds, summed over the run (the phase_profile sum).
    phases: Dict[str, float] = field(default_factory=dict)
    walltime_seconds: Optional[float] = None
    workers: Optional[int] = None
    #: Pool effectiveness: {"effective_parallelism": ..., "pool_speedup": ...}
    pool: Dict[str, Any] = field(default_factory=dict)
    #: IPC totals: {"ipc_bytes": ..., "pickle_seconds": ..., "unpickle_seconds": ...}
    ipc: Dict[str, Any] = field(default_factory=dict)
    #: Incident ledger counters: incidents, retries, quarantined_points, ...
    incidents: Dict[str, int] = field(default_factory=dict)
    #: Artifact paths: events / metrics / checkpoint_dir / json / output.
    artifacts: Dict[str, str] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "run_id": self.run_id,
            "created_at": self.created_at,
            "command": self.command,
            "label": self.label,
            "seed": self.seed,
            "scale": self.scale,
            "config_hash": self.config_hash,
            "git_rev": self.git_rev,
            "event_schema": self.event_schema,
            "record_version": self.record_version,
            "outcome": self.outcome,
            "exit_code": self.exit_code,
            "estimates": list(self.estimates),
            "phases": dict(self.phases),
            "walltime_seconds": self.walltime_seconds,
            "workers": self.workers,
            "pool": dict(self.pool),
            "ipc": dict(self.ipc),
            "incidents": dict(self.incidents),
            "artifacts": dict(self.artifacts),
            "notes": list(self.notes),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunRecord":
        if not isinstance(data, Mapping):
            raise CorruptResultError(f"run record is not an object: {data!r}")
        run_id = data.get("run_id")
        if not isinstance(run_id, str) or not run_id:
            raise CorruptResultError("run record has no run_id")

        def _dict(name) -> Dict:
            value = data.get(name)
            return dict(value) if isinstance(value, Mapping) else {}

        def _list(name) -> List:
            value = data.get(name)
            return list(value) if isinstance(value, (list, tuple)) else []

        return cls(
            run_id=run_id,
            created_at=str(data.get("created_at", "")),
            command=str(data.get("command", "?")),
            label=str(data.get("label", "")),
            seed=data.get("seed"),
            scale=data.get("scale"),
            config_hash=data.get("config_hash"),
            git_rev=data.get("git_rev"),
            event_schema=data.get("event_schema"),
            record_version=int(data.get("record_version", RECORD_VERSION)),
            outcome=str(data.get("outcome", "ok")),
            exit_code=int(data.get("exit_code", 0)),
            estimates=[e for e in _list("estimates") if isinstance(e, Mapping)],
            phases={
                str(k): float(v)
                for k, v in _dict("phases").items()
                if isinstance(v, (int, float))
            },
            walltime_seconds=data.get("walltime_seconds"),
            workers=data.get("workers"),
            pool=_dict("pool"),
            ipc=_dict("ipc"),
            incidents={
                str(k): int(v)
                for k, v in _dict("incidents").items()
                if isinstance(v, (int, float))
            },
            artifacts={str(k): str(v) for k, v in _dict("artifacts").items()},
            notes=[str(n) for n in _list("notes")],
        )


# ------------------------------------------------------- estimate extraction


def estimates_from_sweep(result) -> List[Dict[str, Any]]:
    """Per-grid-point headline estimates from a :class:`SweepResult`.

    Each point with a non-empty Bernoulli sample gets its 95% Wilson
    interval; empty (quarantined/never-started) points are recorded with
    ``trials: 0`` and no interval so the dashboard can show the gap.
    """
    from repro.analysis.estimators import wilson_interval

    rows: List[Dict[str, Any]] = []
    for point_result in result.results:
        point = point_result.point
        outcome = point_result.outcome
        params = {
            name: value
            for name, value in point.params.items()
            if isinstance(value, (int, float, str, bool))
        }
        if point.k is not None:
            params.setdefault("k", point.k)
        if "bout" in params:
            law = estimate_key({"bout": params["bout"]})
        elif "alpha" in params:
            law = estimate_key({"alpha": params["alpha"]})
        else:
            law = "custom"
        if outcome.interrupted:
            status = "interrupted"
        elif outcome.quarantined_point:
            status = "quarantined"
        elif outcome.converged:
            status = "converged"
        elif outcome.degraded:
            status = "degraded"
        else:
            status = "complete"
        row: Dict[str, Any] = {
            "key": estimate_key(params),
            "label": f"{result.label}-{point.label}",
            "law": law,
            "params": params,
            "horizon": int(point.horizon),
            "trials": int(point_result.sample.n),
            "status": status,
        }
        sample = point_result.sample
        if sample.n:
            estimate = wilson_interval(int(sample.n_hits), int(sample.n))
            row.update(
                successes=estimate.successes,
                p=round(estimate.point, 8),
                low=round(estimate.low, 8),
                high=round(estimate.high, 8),
                half_width=round(0.5 * (estimate.high - estimate.low), 8),
            )
        rows.append(row)
    return rows


def estimates_from_events(events: Iterable[Mapping[str, Any]]) -> List[Dict[str, Any]]:
    """Final per-label estimates from an event log's ``estimate`` stream.

    Used by the ``run`` command, whose experiments do not expose a sweep
    result: the convergence monitor already emitted running Wilson CIs
    per chunk, and the *last* event per label is the merged-run estimate.
    """
    final: Dict[str, Dict[str, Any]] = {}
    for event in events:
        if event.get("type") != "estimate":
            continue
        label = str(event.get("label", "?"))
        row = {
            "key": label,
            "label": label,
            "law": None,
            "params": {},
            "trials": int(event.get("trials", 0)),
            "successes": int(event.get("successes", 0)),
            "p": event.get("p"),
            "low": event.get("low"),
            "high": event.get("high"),
            "status": "converged" if event.get("converged") else "complete",
        }
        low, high = event.get("low"), event.get("high")
        if isinstance(low, (int, float)) and isinstance(high, (int, float)):
            row["half_width"] = round(0.5 * (float(high) - float(low)), 8)
        final[label] = row
    return [final[label] for label in sorted(final)]


def summary_from_recorder(recorder) -> Dict[str, Any]:
    """Phase/IPC/incident summaries from a live recorder's metrics.

    Returns ``{"phases": ..., "ipc": ..., "incidents": ...}`` built from
    the documented counter names (docs/observability.md); empty dicts
    when telemetry was off.
    """
    phases: Dict[str, float] = {}
    ipc: Dict[str, Any] = {}
    incidents: Dict[str, int] = {}
    if recorder is None or not getattr(recorder, "enabled", False):
        return {"phases": phases, "ipc": ipc, "incidents": incidents}
    prefix = "engine.phase_seconds."
    for name, snap in recorder.metrics.snapshot().items():
        value = snap.get("value")
        if value in (None, 0):
            continue
        if name.startswith(prefix):
            phases[name[len(prefix):]] = round(float(value), 6)
        elif name == "runner.ipc_bytes":
            ipc["ipc_bytes"] = int(value)
        elif name in ("runner.pickle_seconds", "runner.unpickle_seconds"):
            ipc[name.split(".", 1)[1]] = round(float(value), 6)
        elif name in (
            "runner.incidents",
            "runner.retries",
            "runner.points_quarantined",
            "runner.hung_chunks",
            "runner.pool_rebuilds",
            "runner.files_quarantined",
            "runner.deadline_stops",
            "runner.signal_stops",
        ):
            incidents[name.split(".", 1)[1]] = int(value)
    return {"phases": phases, "ipc": ipc, "incidents": incidents}


# ------------------------------------------------------------------ the store


class RunRegistry:
    """Append-only JSONL store of :class:`RunRecord` objects.

    Durability contract (shared with the event log): one record per
    line, each appended in a single ``O_APPEND`` write, so concurrent
    registrars -- pooled sweeps, parallel CI jobs -- never interleave
    mid-record and a kill can only tear the final line.  Readers skip a
    torn tail; :meth:`register` heals one by starting the next record on
    a fresh line.
    """

    def __init__(self, directory=DEFAULT_REGISTRY_DIR) -> None:
        self.directory = Path(directory)

    @property
    def path(self) -> Path:
        return self.directory / REGISTRY_FILENAME

    # ------------------------------------------------------------- writing

    def register(self, record: RunRecord) -> RunRecord:
        """Append one record atomically; returns it for chaining."""
        line = json.dumps(
            record.to_dict(), separators=(",", ":"), sort_keys=True, default=str
        )
        # Self-heal a torn tail: if the last registrar was killed
        # mid-write the file ends without a newline, and a plain append
        # would glue this record onto the fragment, losing both.  The
        # leading newline goes down in the SAME single write as the
        # record, so the heal cannot itself be torn apart.
        prefix = "\n" if self._tail_is_torn() else ""
        fd = open_append(self.path)
        try:
            append_text(fd, prefix + line + "\n")
        finally:
            os.close(fd)
        return record

    def _tail_is_torn(self) -> bool:
        try:
            with open(self.path, "rb") as handle:
                handle.seek(0, os.SEEK_END)
                size = handle.tell()
                if size == 0:
                    return False
                handle.seek(-1, os.SEEK_END)
                return handle.read(1) != b"\n"
        except OSError:
            return False

    # ------------------------------------------------------------- reading

    def records(self, strict: bool = False) -> List[RunRecord]:
        """Every readable record, oldest first (file order).

        A damaged *final* line is always tolerated (the expected
        kill-mid-register signature); interior damage is skipped by
        default and raises :class:`CorruptResultError` under ``strict``.
        """
        if not self.path.exists():
            return []
        lines = self.path.read_text(encoding="utf-8", errors="replace").split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        last = len(lines) - 1
        records: List[RunRecord] = []
        for number, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                data = json.loads(line)
                records.append(RunRecord.from_dict(data))
            except (json.JSONDecodeError, CorruptResultError, ValueError) as exc:
                if strict and number != last:
                    raise CorruptResultError(
                        f"corrupt run record at {self.path}:{number + 1}: {exc}"
                    ) from exc
                continue
        return records

    def get(self, run_id: str) -> Optional[RunRecord]:
        """The record with exactly this id (latest wins on duplicates)."""
        found = None
        for record in self.records():
            if record.run_id == run_id:
                found = record
        return found

    def resolve(self, token: str) -> RunRecord:
        """A record from a user-supplied token.

        Accepts an exact run id, a unique id prefix, or the relative
        forms ``last`` (newest record) and ``prev`` (second newest).
        Raises :class:`KeyError` with a helpful message otherwise.
        """
        records = self.records()
        if not records:
            raise KeyError(f"registry {self.path} has no records")
        if token == "last":
            return records[-1]
        if token == "prev":
            if len(records) < 2:
                raise KeyError("registry has no previous run (only one record)")
            return records[-2]
        matches = [r for r in records if r.run_id == token]
        if not matches:
            matches = [r for r in records if r.run_id.startswith(token)]
        if not matches:
            raise KeyError(
                f"no run matching {token!r}; try 'runs list' "
                f"(ids look like {records[-1].run_id})"
            )
        unique_ids = {r.run_id for r in matches}
        if len(unique_ids) > 1:
            raise KeyError(
                f"run id prefix {token!r} is ambiguous: "
                + ", ".join(sorted(unique_ids)[:5])
            )
        return matches[-1]

    def latest(
        self, n: Optional[int] = None, command: Optional[str] = None
    ) -> List[RunRecord]:
        """The last ``n`` records (oldest first), optionally by command."""
        records = self.records()
        if command is not None:
            records = [r for r in records if r.command == command]
        if n is not None:
            records = records[-int(n):]
        return records

    def lookup(
        self,
        law: Optional[str] = None,
        geometry: Optional[Mapping[str, Any]] = None,
        max_ci: Optional[float] = None,
    ) -> Optional[RunRecord]:
        """The freshest record already answering an estimate query.

        This is the estimation service's warm-start seam (ROADMAP): a
        ``P(hit by t)`` query for ``(law, geometry)`` first asks the
        registry; a returned record's matching estimate is an instant
        answer whose 95% Wilson half-width is at most ``max_ci``.

        ``law`` matches the estimate's law string (e.g. ``"alpha=2.2"``);
        ``geometry`` is a params filter (e.g. ``{"l": 24, "k": 8}``);
        ``max_ci`` is the largest acceptable *absolute* half-width
        (``None`` accepts any interval).  Records are scanned newest
        first; the first with a matching, adequate estimate wins.
        """
        geometry = dict(geometry or {})
        for record in reversed(self.records()):
            for estimate in record.estimates:
                if law is not None and estimate.get("law") != law:
                    continue
                params = estimate.get("params") or {}
                if any(params.get(k) != v for k, v in geometry.items()):
                    continue
                if not estimate.get("trials"):
                    continue
                if max_ci is not None:
                    half_width = estimate.get("half_width")
                    if not isinstance(half_width, (int, float)) or half_width > max_ci:
                        continue
                return record
        return None

    # ----------------------------------------------------------------- gc

    def gc(
        self,
        keep: int = 50,
        max_age_days: Optional[float] = None,
        dry_run: bool = False,
    ) -> Tuple[List[RunRecord], List[RunRecord]]:
        """Compact the registry; returns ``(kept, dropped)``.

        Keeps the newest ``keep`` records (and, with ``max_age_days``,
        additionally drops older-than-cutoff ones from that tail), but
        NEVER drops a record whose ``artifacts.checkpoint_dir`` still
        exists on disk -- those runs are resumable, and deleting their
        registry entry would orphan the checkpoints.  The rewrite is
        atomic (tmp + rename), so a crash mid-gc leaves the old file.
        """
        records = self.records()
        cutoff: Optional[str] = None
        if max_age_days is not None:
            from datetime import timedelta

            cutoff = (
                datetime.now(timezone.utc) - timedelta(days=float(max_age_days))
            ).strftime("%Y-%m-%dT%H:%M:%SZ")
        kept: List[RunRecord] = []
        dropped: List[RunRecord] = []
        tail_start = max(0, len(records) - max(int(keep), 0))
        for index, record in enumerate(records):
            drop = index < tail_start
            if not drop and cutoff is not None and record.created_at:
                drop = record.created_at < cutoff
            if drop and self._references_live_checkpoint(record):
                drop = False
            (dropped if drop else kept).append(record)
        if not dry_run and dropped:
            body = "".join(
                json.dumps(
                    r.to_dict(), separators=(",", ":"), sort_keys=True, default=str
                )
                + "\n"
                for r in kept
            )
            atomic_write_bytes(body.encode("utf-8"), self.path)
        return kept, dropped

    @staticmethod
    def _references_live_checkpoint(record: RunRecord) -> bool:
        checkpoint_dir = record.artifacts.get("checkpoint_dir")
        if not checkpoint_dir:
            return False
        try:
            return Path(checkpoint_dir).exists()
        except OSError:
            return False


# --------------------------------------------------------- record construction


def build_run_record(
    *,
    command: str,
    label: str = "",
    run_id: Optional[str] = None,
    created_at: Optional[str] = None,
    seed: Optional[int] = None,
    scale: Optional[str] = None,
    config: Optional[Mapping[str, Any]] = None,
    exit_code: int = 0,
    outcome: Optional[str] = None,
    estimates: Sequence[Mapping[str, Any]] = (),
    recorder=None,
    walltime_seconds: Optional[float] = None,
    workers: Optional[int] = None,
    pool: Optional[Mapping[str, Any]] = None,
    artifacts: Optional[Mapping[str, Any]] = None,
    notes: Sequence[str] = (),
) -> RunRecord:
    """Assemble a :class:`RunRecord` from run state.

    Provenance fields are filled automatically: a fresh run id and
    timestamp unless supplied, the current git revision, the event
    schema version, and -- when a live recorder is passed -- the
    phase-seconds summary, IPC totals and incident counters straight
    from its metrics registry.
    """
    from repro.telemetry.events import SCHEMA_VERSION

    summaries = summary_from_recorder(recorder)
    return RunRecord(
        run_id=run_id if run_id is not None else new_run_id(),
        created_at=created_at if created_at is not None else utc_now_iso(),
        command=command,
        label=label,
        seed=seed,
        scale=scale,
        config_hash=config_hash(config) if config is not None else None,
        git_rev=git_revision(),
        event_schema=SCHEMA_VERSION,
        outcome=outcome if outcome is not None else outcome_for_exit_code(exit_code),
        exit_code=int(exit_code),
        estimates=[dict(e) for e in estimates],
        phases=summaries["phases"],
        walltime_seconds=(
            round(float(walltime_seconds), 3) if walltime_seconds is not None else None
        ),
        workers=workers,
        pool={k: v for k, v in dict(pool or {}).items() if v is not None},
        ipc=summaries["ipc"],
        incidents=summaries["incidents"],
        artifacts={
            str(k): str(v) for k, v in dict(artifacts or {}).items() if v is not None
        },
        notes=[str(n) for n in notes],
    )


# ------------------------------------------------------------- drift detection


@dataclass(frozen=True)
class EstimateDelta:
    """One grid point's statistical comparison between two runs."""

    key: str
    a: Optional[Mapping[str, Any]]
    b: Optional[Mapping[str, Any]]
    #: "drift" (disjoint CIs), "warn" (overlap shrank), "ok", or "n/a".
    verdict: str
    detail: str = ""


#: Matched intervals whose overlap fraction (relative to the narrower
#: interval) falls below this warn in ``runs compare``: the estimates
#: still touch, but most of the narrower interval has moved away.
OVERLAP_WARN_FRACTION = 0.5


def _interval(estimate: Mapping[str, Any]) -> Optional[Tuple[float, float]]:
    low, high = estimate.get("low"), estimate.get("high")
    if isinstance(low, (int, float)) and isinstance(high, (int, float)):
        return float(low), float(high)
    return None


def compare_estimates(
    a: Sequence[Mapping[str, Any]],
    b: Sequence[Mapping[str, Any]],
    overlap_warn: float = OVERLAP_WARN_FRACTION,
) -> List[EstimateDelta]:
    """CI-aware drift detection between two runs' estimate lists.

    Per matched key: **disjoint** 95% Wilson intervals are statistical
    drift (at 95% confidence the two runs did not measure the same
    proportion -- a seed-path, engine, or model change shifted the
    statistic); intervals that still overlap but whose overlap covers
    less than ``overlap_warn`` of the narrower interval warn.  Points
    present on only one side are reported as coverage changes, never
    drift.
    """
    by_key_a = {str(e.get("key")): e for e in a}
    by_key_b = {str(e.get("key")): e for e in b}
    deltas: List[EstimateDelta] = []
    for key in sorted(set(by_key_a) | set(by_key_b)):
        ea, eb = by_key_a.get(key), by_key_b.get(key)
        if ea is None or eb is None:
            deltas.append(
                EstimateDelta(
                    key, ea, eb, "n/a",
                    "only in B" if ea is None else "only in A",
                )
            )
            continue
        ia, ib = _interval(ea), _interval(eb)
        if ia is None or ib is None:
            deltas.append(
                EstimateDelta(key, ea, eb, "n/a", "no interval (empty sample)")
            )
            continue
        overlap = min(ia[1], ib[1]) - max(ia[0], ib[0])
        if overlap < 0:
            gap = -overlap
            deltas.append(
                EstimateDelta(
                    key, ea, eb, "drift",
                    f"disjoint 95% CIs (gap {gap:.3g})",
                )
            )
            continue
        narrower = min(ia[1] - ia[0], ib[1] - ib[0])
        if narrower > 0 and overlap / narrower < overlap_warn:
            deltas.append(
                EstimateDelta(
                    key, ea, eb, "warn",
                    f"CI overlap shrank to {overlap / narrower:.0%} "
                    f"of the narrower interval",
                )
            )
            continue
        deltas.append(EstimateDelta(key, ea, eb, "ok"))
    return deltas


def _fmt_estimate(estimate: Optional[Mapping[str, Any]]) -> str:
    if estimate is None:
        return "-"
    p = estimate.get("p")
    interval = _interval(estimate)
    if p is None or interval is None:
        return f"n={estimate.get('trials', 0)} (no interval)"
    return f"{p:.4g} [{interval[0]:.4g}, {interval[1]:.4g}]"


def compare_records(
    a: RunRecord, b: RunRecord, overlap_warn: float = OVERLAP_WARN_FRACTION
) -> Tuple[str, List[str], List[str]]:
    """Render the full A-vs-B comparison; returns ``(text, drifted, warned)``.

    Three sections, in the ``profile --diff`` style: the estimate drift
    table (the statistical heart), the phase-seconds diff, and headline
    walltime/IPC/incident rows.  ``drifted`` lists keys with disjoint
    CIs -- ``runs compare --strict`` exits non-zero when it is non-empty.
    """
    from repro.reporting.table import Table

    deltas = compare_estimates(a.estimates, b.estimates, overlap_warn)
    sections: List[str] = [
        f"A: {a.run_id}  ({a.created_at}, {a.command} {a.label}, "
        f"git {a.git_rev or '?'}, outcome {a.outcome})\n"
        f"B: {b.run_id}  ({b.created_at}, {b.command} {b.label}, "
        f"git {b.git_rev or '?'}, outcome {b.outcome})"
    ]
    if a.config_hash and b.config_hash and a.config_hash != b.config_hash:
        sections.append(
            f"warning: config hashes differ ({a.config_hash} vs {b.config_hash}) "
            "-- the runs executed different specs, so estimate drift may be "
            "configuration, not code"
        )
    drifted = [d.key for d in deltas if d.verdict == "drift"]
    warned = [d.key for d in deltas if d.verdict == "warn"]
    if deltas:
        table = Table(
            ["point", "A: p [95% CI]", "B: p [95% CI]", "verdict", "detail"],
            title="estimate drift (95% Wilson intervals)",
        )
        for delta in deltas:
            table.add_row(
                delta.key,
                _fmt_estimate(delta.a),
                _fmt_estimate(delta.b),
                delta.verdict.upper() if delta.verdict != "ok" else "ok",
                delta.detail,
            )
        sections.append(table.render())
        if drifted:
            sections.append(
                f"DRIFT: {len(drifted)} point(s) with disjoint 95% CIs: "
                + ", ".join(drifted)
            )
        elif warned:
            sections.append(
                f"warning: {len(warned)} point(s) with shrunken CI overlap: "
                + ", ".join(warned)
            )
        else:
            sections.append("no statistical drift detected")
    else:
        sections.append("no estimates recorded on either run -- nothing to compare")

    phase_names = sorted(
        set(a.phases) | set(b.phases),
        key=lambda name: b.phases.get(name, 0.0),
        reverse=True,
    )
    if phase_names:
        table = Table(
            ["phase", "A seconds", "B seconds", "change"],
            title="phase breakdown (A -> B)",
        )
        for name in phase_names:
            pa, pb = a.phases.get(name), b.phases.get(name)
            change = (
                f"{(pb - pa) / pa:+.1%}" if pa and pb and pa > 0 else "n/a"
            )
            table.add_row(
                name,
                round(pa, 4) if pa is not None else None,
                round(pb, 4) if pb is not None else None,
                change,
            )
        sections.append(table.render())

    headline = Table(["metric", "A", "B", "change"], title="headline")
    rows = [
        ("walltime seconds", a.walltime_seconds, b.walltime_seconds),
        ("workers", a.workers, b.workers),
        ("effective parallelism",
         a.pool.get("effective_parallelism"), b.pool.get("effective_parallelism")),
        ("IPC bytes", a.ipc.get("ipc_bytes"), b.ipc.get("ipc_bytes")),
        ("incidents", a.incidents.get("incidents"), b.incidents.get("incidents")),
        ("retries", a.incidents.get("retries"), b.incidents.get("retries")),
        ("quarantined points",
         a.incidents.get("points_quarantined"), b.incidents.get("points_quarantined")),
    ]
    any_row = False
    for name, va, vb in rows:
        if va is None and vb is None:
            continue
        any_row = True
        change = "n/a"
        if isinstance(va, (int, float)) and isinstance(vb, (int, float)) and va:
            change = f"{(vb - va) / va:+.1%}"
        headline.add_row(name, va, vb, change)
    if any_row:
        sections.append(headline.render())
    return "\n\n".join(sections), drifted, warned


# ------------------------------------------------------------------ rendering


def render_runs_table(records: Sequence[RunRecord]) -> str:
    """The ``runs list`` table: one row per record, oldest first."""
    from repro.reporting.table import Table

    table = Table(
        ["run id", "created (UTC)", "command", "label", "points",
         "outcome", "git", "walltime"],
        title=f"run registry ({len(records)} record(s))",
    )
    for record in records:
        table.add_row(
            record.run_id,
            record.created_at,
            record.command,
            record.label or "-",
            len(record.estimates),
            record.outcome,
            record.git_rev or "?",
            f"{record.walltime_seconds:.1f}s"
            if record.walltime_seconds is not None
            else "-",
        )
    return table.render()


def render_record(record: RunRecord) -> str:
    """The ``runs show`` detail view for one record."""
    from repro.reporting.table import Table

    lines = [
        f"run {record.run_id}",
        f"  created:      {record.created_at}",
        f"  command:      {record.command} {record.label}".rstrip(),
        f"  seed:         {record.seed}",
        f"  scale:        {record.scale or '-'}",
        f"  config hash:  {record.config_hash or '-'}",
        f"  git revision: {record.git_rev or '?'}",
        f"  event schema: v{record.event_schema}" if record.event_schema else
        "  event schema: ?",
        f"  outcome:      {record.outcome} (exit {record.exit_code})",
    ]
    if record.workers is not None:
        lines.append(f"  workers:      {record.workers}")
    if record.walltime_seconds is not None:
        lines.append(f"  walltime:     {record.walltime_seconds:.2f}s")
    for name, value in sorted(record.pool.items()):
        lines.append(f"  {name}: {value}")
    if record.artifacts:
        lines.append("  artifacts:")
        for name, value in sorted(record.artifacts.items()):
            lines.append(f"    {name}: {value}")
    text = "\n".join(lines)
    sections = [text]
    if record.estimates:
        table = Table(
            ["point", "law", "trials", "successes", "p", "95% CI", "status"],
            title="headline estimates",
        )
        for estimate in record.estimates:
            interval = _interval(estimate)
            table.add_row(
                estimate.get("key", "?"),
                estimate.get("law") or "-",
                estimate.get("trials", 0),
                estimate.get("successes", "-"),
                estimate.get("p", "-"),
                f"[{interval[0]:.4g}, {interval[1]:.4g}]" if interval else "-",
                estimate.get("status", "-"),
            )
        sections.append(table.render())
    if record.phases:
        table = Table(["phase", "seconds"], title="engine phase seconds")
        for name, seconds in sorted(
            record.phases.items(), key=lambda kv: kv[1], reverse=True
        ):
            table.add_row(name, round(seconds, 4))
        sections.append(table.render())
    if record.incidents:
        sections.append(
            "incidents: "
            + ", ".join(
                f"{name}={value}" for name, value in sorted(record.incidents.items())
            )
        )
    if record.notes:
        sections.append("\n".join(f"note: {note}" for note in record.notes))
    return "\n\n".join(sections)
