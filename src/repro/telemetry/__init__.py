"""Telemetry: structured event logs, metrics, span tracing, reporting.

The subsystem has four pieces (see docs/observability.md):

* **recorder seam** (:mod:`~repro.telemetry.recorder`) -- every layer
  (runner, checkpoints, fault injection, engines, experiment harnesses,
  CLI) emits through :func:`get_recorder`.  The default is a
  :class:`NullRecorder`, so the hot path pays nothing until
  :func:`configure` (CLI: ``--log-json`` / ``--metrics-out`` /
  ``--progress``) installs a live :class:`TelemetryRecorder`;
* **event log** (:mod:`~repro.telemetry.events`) -- append-only JSONL,
  one event per run/chunk/retry/checkpoint/quarantine/deadline/signal,
  each stamped with monotonic elapsed time and the recorder's bound
  context (experiment id, scale, seed);
* **metrics** (:mod:`~repro.telemetry.metrics`) -- process-local
  counters, gauges and fixed-bucket histograms with JSON snapshot export;
* **report** (:mod:`~repro.telemetry.report`) -- renders an event log
  into chunk timelines, retry and incident summaries, and throughput
  (CLI: ``repro-experiment report events.jsonl``);
* **profile** (:mod:`~repro.telemetry.profile`) -- phase-level engine
  timers (the :class:`PhaseAccumulator` the engines drive through
  ``recorder.profile``) plus the pure-log analysis behind
  ``repro-experiment profile events.jsonl``: phase breakdown, per-worker
  utilization/effective parallelism, IPC accounting, ``--diff``;
* **registry** (:mod:`~repro.telemetry.registry`) -- the cross-run
  layer: every run appends a :class:`RunRecord` (provenance, outcome,
  Wilson-CI estimates, phase/IPC summary) to an append-only JSONL
  registry; ``runs compare`` flags statistical drift between runs and
  ``repro-experiment dashboard`` renders the whole history as one
  static HTML file (:mod:`repro.reporting.dashboard`).

Import-cycle note: this ``__init__`` eagerly imports only the stdlib-only
``metrics`` and ``recorder`` modules (the engines import the recorder
from inside their hot paths); ``events``/``report`` symbols are provided
lazily because they pull in :mod:`repro.io_utils` and the reporting
stack.
"""

from repro.telemetry.metrics import (
    DECADE_BOUNDS,
    DURATION_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.recorder import (
    NullRecorder,
    TelemetryRecorder,
    configure,
    get_recorder,
    set_recorder,
    use_recorder,
)

#: Lazily resolved attribute -> providing submodule.
_LAZY = {
    "EventLogWriter": "repro.telemetry.events",
    "read_events": "repro.telemetry.events",
    "iter_events": "repro.telemetry.events",
    "SCHEMA_VERSION": "repro.telemetry.events",
    "render_report": "repro.telemetry.report",
    "render_file": "repro.telemetry.report",
    "summarize_events": "repro.telemetry.report",
    "ConvergenceConfig": "repro.telemetry.convergence",
    "ConvergenceMonitor": "repro.telemetry.convergence",
    "LogFollower": "repro.telemetry.watch",
    "WatchState": "repro.telemetry.watch",
    "render_watch": "repro.telemetry.watch",
    "compare_snapshots": "repro.telemetry.bench_history",
    "parse_threshold": "repro.telemetry.bench_history",
    "PHASES": "repro.telemetry.profile",
    "PhaseAccumulator": "repro.telemetry.profile",
    "summarize_profile": "repro.telemetry.profile",
    "render_profile": "repro.telemetry.profile",
    "render_profile_diff": "repro.telemetry.profile",
    "DEFAULT_REGISTRY_DIR": "repro.telemetry.registry",
    "RunRecord": "repro.telemetry.registry",
    "RunRegistry": "repro.telemetry.registry",
    "build_run_record": "repro.telemetry.registry",
    "compare_records": "repro.telemetry.registry",
    "new_run_id": "repro.telemetry.registry",
}

__all__ = [
    "ConvergenceConfig",
    "ConvergenceMonitor",
    "DECADE_BOUNDS",
    "DEFAULT_REGISTRY_DIR",
    "DURATION_BOUNDS",
    "Counter",
    "EventLogWriter",
    "RunRecord",
    "RunRegistry",
    "build_run_record",
    "compare_records",
    "new_run_id",
    "LogFollower",
    "WatchState",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRecorder",
    "PHASES",
    "PhaseAccumulator",
    "SCHEMA_VERSION",
    "TelemetryRecorder",
    "compare_snapshots",
    "configure",
    "get_recorder",
    "iter_events",
    "parse_threshold",
    "read_events",
    "render_file",
    "render_profile",
    "render_profile_diff",
    "render_report",
    "render_watch",
    "set_recorder",
    "summarize_events",
    "summarize_profile",
    "use_recorder",
]


def __getattr__(name: str):
    module_path = _LAZY.get(name)
    if module_path is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_path), name)
