"""Append-only JSONL event logs: the durable half of telemetry.

One event per line, schema documented in docs/observability.md.  The
format is deliberately boring: any ``jq``/pandas/grep pipeline can
consume it, and ``repro-experiment report`` renders it back into the
repository's text tables.

Durability model: events are serialized to ``\\n``-terminated lines,
buffered in memory, and flushed as *one* ``write`` on an ``O_APPEND``
descriptor (:func:`repro.io_utils.open_append` / :func:`append_text`).
The recorder flushes at every run/chunk boundary (and the writer
auto-flushes past a size threshold), so buffering amortizes the syscall
per chunk instead of paying it per event without changing the failure
mode: POSIX O_APPEND writes are non-interleaving on regular files under
every mainstream filesystem, so a crash can only truncate the *final
line of the last flushed block* -- never interleave or corrupt interior
records.  What buffering does change is the loss window: a hard kill
(SIGKILL, power loss) drops the not-yet-flushed tail of the current
chunk; a normal close -- including the ``finally`` paths of the CLI and
the test harnesses -- flushes everything.  :func:`read_events` tolerates
a garbled *final* line by default (that is the expected kill signature)
while ``strict=True`` turns interior damage into
:class:`repro.io_utils.CorruptResultError`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterator, List, Optional

from repro.io_utils import CorruptResultError, append_text, open_append

#: Stamped into the header event of every log this writer opens.
#: Version 2 (PR 3) added the ``estimate``/``incident``/``converged``
#: event types and the ``log_close`` trailer; version 3 (PR 7) added the
#: ``phase_profile`` event type plus ``worker_id`` and IPC fields
#: (``ipc_bytes``/``pickle_seconds``/``unpickle_seconds``) on chunk
#: events; version 4 (PR 8) added ``run_id`` and ``created_at`` to the
#: ``log_open`` header so a log joins its run-registry record
#: unambiguously.  Readers that ignore unknown types and fields can
#: consume any of these versions.
SCHEMA_VERSION = 4


def _encode(record: Dict) -> str:
    # Compact separators: event logs are written per chunk, not per step,
    # but long sweeps still produce thousands of lines.
    return json.dumps(record, separators=(",", ":"), sort_keys=True, default=str)


class EventLogWriter:
    """Appends JSON events to ``path``, one line per event, buffered.

    Opening the writer appends a ``log_open`` header event carrying the
    schema version (flushed immediately, so even a promptly-killed
    process leaves its process boundary in the log); closing appends a
    ``log_close`` trailer, which is how a follower (``repro-experiment
    watch``) knows the writing process finished cleanly.  Between those,
    events accumulate in memory until :meth:`flush` -- called by the
    recorder at run/chunk boundaries -- or until the buffer exceeds
    ``auto_flush_bytes``, and go to disk as a single O_APPEND write.
    """

    def __init__(
        self,
        path,
        auto_flush_bytes: int = 64 * 1024,
        run_id: Optional[str] = None,
    ) -> None:
        self.path = Path(path)
        self.run_id = run_id
        self._buffer: List[str] = []
        self._buffered_bytes = 0
        self._auto_flush_bytes = int(auto_flush_bytes)
        self._fd: Optional[int] = open_append(self.path)
        header = {"type": "log_open", "schema": SCHEMA_VERSION}
        if run_id is not None:
            # Join key into the run registry: the record with this run_id
            # (see repro.telemetry.registry) summarizes exactly this log.
            from datetime import datetime, timezone

            header["run_id"] = run_id
            header["created_at"] = datetime.now(timezone.utc).strftime(
                "%Y-%m-%dT%H:%M:%SZ"
            )
        self.write(header)
        self.flush()

    def write(self, record: Dict) -> None:
        if self._fd is None:
            raise ValueError(f"event log {self.path} is closed")
        line = _encode(record) + "\n"
        self._buffer.append(line)
        self._buffered_bytes += len(line)
        if self._buffered_bytes >= self._auto_flush_bytes:
            self.flush()

    def flush(self) -> None:
        """Write every buffered event in one O_APPEND ``write``."""
        if self._fd is None or not self._buffer:
            return
        block = "".join(self._buffer)
        self._buffer = []
        self._buffered_bytes = 0
        append_text(self._fd, block)

    def close(self) -> None:
        if self._fd is not None:
            import os

            self.write({"type": "log_close"})
            self.flush()
            os.close(self._fd)
            self._fd = None

    def __enter__(self) -> "EventLogWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def iter_events(path, strict: bool = False) -> Iterator[Dict]:
    """Yield events from a JSONL log in file order.

    Blank lines are skipped.  A line that fails to parse (or parses to a
    non-object) is skipped unless ``strict`` is true, in which case it
    raises :class:`CorruptResultError` -- except that a damaged *final*
    line is always tolerated, because that is precisely what a
    kill-while-appending leaves behind and resumability is the point.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(path)
    lines = path.read_text(encoding="utf-8", errors="replace").split("\n")
    # Trailing "" after a final newline is not a line.
    if lines and lines[-1] == "":
        lines.pop()
    last = len(lines) - 1
    for number, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
            if not isinstance(record, dict):
                raise ValueError(f"event is not an object: {record!r}")
        except (json.JSONDecodeError, ValueError) as exc:
            if strict and number != last:
                raise CorruptResultError(
                    f"corrupt event at {path}:{number + 1}: {exc}"
                ) from exc
            continue
        yield record


def read_events(path, strict: bool = False) -> List[Dict]:
    """Materialized :func:`iter_events`."""
    return list(iter_events(path, strict=strict))
