"""Append-only JSONL event logs: the durable half of telemetry.

One event per line, schema documented in docs/observability.md.  The
format is deliberately boring: any ``jq``/pandas/grep pipeline can
consume it, and ``repro-experiment report`` renders it back into the
repository's text tables.

Durability model: each event is serialized to one ``\\n``-terminated line
and written with a *single* ``write`` on an ``O_APPEND`` descriptor
(:func:`repro.io_utils.open_append` / :func:`append_line`).  POSIX makes
O_APPEND writes atomic with respect to concurrent appenders for writes up
to ``PIPE_BUF`` and -- on regular files under every mainstream filesystem
-- non-interleaving at any size, so the failure mode of a crash is "the
last line is truncated", never "two events interleave mid-record".
:func:`read_events` therefore tolerates a garbled *final* line by
default (that is the expected kill signature) while ``strict=True``
turns any damage into :class:`repro.io_utils.CorruptResultError`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterator, List, Optional

from repro.io_utils import CorruptResultError, append_line, open_append

#: Stamped into the header event of every log this writer opens.
SCHEMA_VERSION = 1


def _encode(record: Dict) -> str:
    # Compact separators: event logs are written per chunk, not per step,
    # but long sweeps still produce thousands of lines.
    return json.dumps(record, separators=(",", ":"), sort_keys=True, default=str)


class EventLogWriter:
    """Appends JSON events to ``path``, one line per event.

    Opening the writer appends a ``log_open`` header event carrying the
    schema version, so a reader can detect format drift and a log that
    was resumed across several processes shows each process boundary.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._fd: Optional[int] = open_append(self.path)
        self.write({"type": "log_open", "schema": SCHEMA_VERSION})

    def write(self, record: Dict) -> None:
        if self._fd is None:
            raise ValueError(f"event log {self.path} is closed")
        append_line(self._fd, _encode(record))

    def close(self) -> None:
        if self._fd is not None:
            import os

            os.close(self._fd)
            self._fd = None

    def __enter__(self) -> "EventLogWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def iter_events(path, strict: bool = False) -> Iterator[Dict]:
    """Yield events from a JSONL log in file order.

    Blank lines are skipped.  A line that fails to parse (or parses to a
    non-object) is skipped unless ``strict`` is true, in which case it
    raises :class:`CorruptResultError` -- except that a damaged *final*
    line is always tolerated, because that is precisely what a
    kill-while-appending leaves behind and resumability is the point.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(path)
    lines = path.read_text(encoding="utf-8", errors="replace").split("\n")
    # Trailing "" after a final newline is not a line.
    if lines and lines[-1] == "":
        lines.pop()
    last = len(lines) - 1
    for number, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
            if not isinstance(record, dict):
                raise ValueError(f"event is not an object: {record!r}")
        except (json.JSONDecodeError, ValueError) as exc:
            if strict and number != last:
                raise CorruptResultError(
                    f"corrupt event at {path}:{number + 1}: {exc}"
                ) from exc
            continue
        yield record


def read_events(path, strict: bool = False) -> List[Dict]:
    """Materialized :func:`iter_events`."""
    return list(iter_events(path, strict=strict))
