"""Deterministic ASCII renderings of the paper's illustrative figures.

The paper contains six figures, all of which are geometric illustrations
used by the proofs rather than experimental plots.  This module regenerates
each of them as text so that the reproduction covers every figure:

* Figure 1 -- the ring ``R_d(u)``, ball ``B_d(u)`` and box ``Q_d(u)``
  (:func:`render_ring`, :func:`render_ball`, :func:`render_box`,
  :func:`figure_1`);
* Figure 2 -- a segment ``uv`` and a direct path between ``u`` and ``v``
  (:func:`figure_2`);
* Figure 3 -- the four disjoint boxes, each at least as likely to be
  visited as ``Q_l(0)`` once the walk has reached distance ``5l/2``
  (:func:`figure_3`);
* Figure 4 -- the projection from ``R_d(u)`` to ``R_i(u)`` used by Lemma
  3.2 (:func:`figure_4`);
* Figure 6 -- the region of endpoints more likely than a node of
  ``B_{l/4}(u*)`` used in the proof of Lemma 4.7 (:func:`figure_6`).

(The paper's Figure 5 is part of the same appendix geometry as Figure 4
and is rendered by :func:`figure_4` with a different ring pair.)
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.lattice.direct_path import sample_direct_path
from repro.lattice.points import linf_norm
from repro.lattice.rings import iter_ring_offsets

IntPoint = Tuple[int, int]


def render_grid(
    marks: Dict[IntPoint, str],
    radius: int,
    background: str = ".",
) -> str:
    """Render the square window ``[-radius, radius]^2`` as text.

    ``marks`` maps lattice offsets to single characters; unmarked nodes get
    ``background``.  The y axis points up (row 0 is ``y = radius``).
    """
    rows = []
    for y in range(radius, -radius - 1, -1):
        row = [marks.get((x, y), background) for x in range(-radius, radius + 1)]
        rows.append(" ".join(row))
    return "\n".join(rows)


def _marks_for(nodes: Iterable[IntPoint], char: str) -> Dict[IntPoint, str]:
    return {node: char for node in nodes}


def render_ring(d: int) -> str:
    """ASCII picture of the ring ``R_d(0)`` (left panel of Figure 1)."""
    marks = _marks_for(iter_ring_offsets(d), "o")
    marks[(0, 0)] = "u"
    return render_grid(marks, d + 1)


def render_ball(d: int) -> str:
    """ASCII picture of the ball ``B_d(0)`` (middle panel of Figure 1)."""
    marks = {}
    for radius in range(d + 1):
        marks.update(_marks_for(iter_ring_offsets(radius), "o"))
    marks[(0, 0)] = "u"
    return render_grid(marks, d + 1)


def render_box(d: int) -> str:
    """ASCII picture of the box ``Q_d(0)`` (right panel of Figure 1)."""
    marks = {
        (x, y): "o"
        for x in range(-d, d + 1)
        for y in range(-d, d + 1)
    }
    marks[(0, 0)] = "u"
    return render_grid(marks, d + 1)


def figure_1(d: int = 4) -> str:
    """Reproduce Figure 1: ``R_d(u)``, ``B_d(u)`` and ``Q_d(u)`` side by side."""
    panels = [render_ring(d), render_ball(d), render_box(d)]
    labels = [f"R_{d}(u)", f"B_{d}(u)", f"Q_{d}(u)"]
    blocks = []
    for label, panel in zip(labels, panels):
        blocks.append(f"{label}:\n{panel}")
    return "\n\n".join(blocks)


def figure_2(u: IntPoint = (0, 0), v: IntPoint = (7, 4), seed: int = 0) -> str:
    """Reproduce Figure 2: a segment ``uv`` and one direct path between them."""
    rng = np.random.default_rng(seed)
    path = sample_direct_path(u, v, rng)
    radius = max(linf_norm(u), linf_norm(v)) + 1
    marks: Dict[IntPoint, str] = {node: "o" for node in path}
    marks[u] = "u"
    marks[v] = "v"
    header = " -> ".join(str(node) for node in path)
    return f"direct path: {header}\n\n{render_grid(marks, radius)}"


def figure_3(l: int = 2) -> str:
    """Reproduce Figure 3: four boxes as likely to be visited as ``Q_l(0)``.

    Once a walk has reached distance ``5l/2`` from the origin, the proof of
    Lemma 4.8 exhibits three boxes, disjoint from ``Q_l(0)``, that are each
    at least as likely to be visited afterwards; together with ``Q_l(0)``
    they tile a neighborhood of the walk's position.  We render ``Q_l(0)``
    (marked ``Q``) and three translates (marked ``1``, ``2``, ``3``).
    """
    radius = 4 * l + 2
    marks: Dict[IntPoint, str] = {}
    boxes = {
        "Q": (0, 0),
        "1": (2 * l + 1, 0),
        "2": (0, 2 * l + 1),
        "3": (2 * l + 1, 2 * l + 1),
    }
    for char, (cx, cy) in boxes.items():
        for x in range(-l, l + 1):
            for y in range(-l, l + 1):
                marks[(cx + x, cy + y)] = char
    return render_grid(marks, radius)


def figure_4(d: int = 5, i: int = 3) -> str:
    """Reproduce Figure 4: projecting ``R_d(u)`` onto ``R_i(u)``.

    Lemma 3.2's proof maps each node of the outer ring to the direct-path
    node of the inner ring; we render the two rings (outer ``O``, inner
    ``i``) with the origin marked ``u``.
    """
    marks: Dict[IntPoint, str] = {}
    marks.update(_marks_for(iter_ring_offsets(d), "O"))
    marks.update(_marks_for(iter_ring_offsets(i), "i"))
    marks[(0, 0)] = "u"
    return render_grid(marks, d + 1)


def figure_6(l: int = 8) -> str:
    """Reproduce Figure 6: the ball ``B_{l/4}(u*)`` and the far region.

    The proof of Lemma 4.7 compares, for every node ``v`` in
    ``B_{l/4}(u*)``, the probability that a jump ends at ``v`` with the
    probability that it ends at any of ``Theta(l^2)`` nodes at distance at
    least ``l/2`` from the origin.  We render the origin (``0``), the
    target ``u*`` (at ``(l, 0)``, marked ``T``), the ball around the target
    (``b``), and the boundary of ``B_{l/2}(0)`` (``#``).
    """
    quarter = max(1, l // 4)
    half = max(1, l // 2)
    marks: Dict[IntPoint, str] = {}
    for radius in range(quarter + 1):
        for ox, oy in iter_ring_offsets(radius):
            marks[(l + ox, oy)] = "b"
    marks.update(_marks_for(iter_ring_offsets(half), "#"))
    marks[(0, 0)] = "0"
    marks[(l, 0)] = "T"
    return render_grid(marks, l + quarter + 1)


def render_trajectory(
    path: Sequence[IntPoint],
    radius: int | None = None,
    target: IntPoint | None = None,
) -> str:
    """Render a walk trajectory (start ``S``, end ``E``, target ``T``)."""
    if not path:
        raise ValueError("path must contain at least one node")
    if radius is None:
        radius = max(max(linf_norm(node) for node in path), 1)
    marks: Dict[IntPoint, str] = {}
    for node in path:
        if linf_norm(node) <= radius:
            marks[node] = "*"
    start, end = path[0], path[-1]
    if linf_norm(start) <= radius:
        marks[start] = "S"
    if linf_norm(end) <= radius:
        marks[end] = "E"
    if target is not None and linf_norm(target) <= radius:
        marks[target] = "T"
    return render_grid(marks, radius)


def all_figures() -> List[Tuple[str, str]]:
    """Return ``(name, rendering)`` for every paper figure."""
    return [
        ("Figure 1 (rings, balls, boxes)", figure_1()),
        ("Figure 2 (direct path)", figure_2()),
        ("Figure 3 (disjoint boxes)", figure_3()),
        ("Figure 4 (ring projection)", figure_4()),
        ("Figure 5 (ring projection, coarse)", figure_4(d=6, i=2)),
        ("Figure 6 (target ball vs far region)", figure_6()),
    ]
