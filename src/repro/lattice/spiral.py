"""Square-spiral ordering of Z^2.

The Feinerman-Korman style search algorithms that the paper uses as a
reference point (Section 2, [14]) repeatedly "perform a spiral movement" of
a given radius: a unit-step lattice path that starts at a center and covers
every node of the Chebyshev box ``Q_r`` in Theta(r^2) steps.  This module
implements the classic square (Ulam) spiral as an explicit bijection
``index <-> offset`` with O(1) evaluation in both directions, so that a
spiral searcher's hitting time on any target can be computed without
simulating the spiral step by step.

Layout: index 0 is the center ``(0, 0)``; the L-infinity ring of radius
``r >= 1`` holds the ``8r`` indices ``[(2r-1)^2, (2r+1)^2)``, entered at
``(r, -r+1)`` and walked counter-clockwise (up, left, down, right), ending
at the corner ``(r, -r)``.  Consecutive indices are always lattice
neighbors, across ring boundaries too.
"""

from __future__ import annotations

import math
from typing import List, Tuple

IntPoint = Tuple[int, int]


def spiral_offset(index: int) -> IntPoint:
    """Return the offset of spiral position ``index`` (O(1))."""
    if index < 0:
        raise ValueError(f"spiral index must be non-negative, got {index}")
    if index == 0:
        return (0, 0)
    r = (math.isqrt(index) + 1) // 2
    j = index - (2 * r - 1) ** 2
    if j < 2 * r:  # up the right edge
        return (r, -r + 1 + j)
    if j < 4 * r:  # left along the top edge
        return (r - 1 - (j - 2 * r), r)
    if j < 6 * r:  # down the left edge
        return (-r, r - 1 - (j - 4 * r))
    return (-r + 1 + (j - 6 * r), -r)  # right along the bottom edge


def spiral_index(offset: IntPoint) -> int:
    """Return the spiral position of ``offset`` (O(1) inverse)."""
    x, y = offset
    r = max(abs(x), abs(y))
    if r == 0:
        return 0
    base = (2 * r - 1) ** 2
    if x == r and y >= -r + 1:
        j = y + r - 1
    elif y == r:
        j = 2 * r + (r - 1 - x)
    elif x == -r:
        j = 4 * r + (r - 1 - y)
    else:  # y == -r
        j = 6 * r + (x + r - 1)
    return base + j


def spiral_path(n_nodes: int, center: IntPoint = (0, 0)) -> List[IntPoint]:
    """Return the first ``n_nodes`` nodes of the spiral around ``center``."""
    cx, cy = center
    path = []
    for index in range(n_nodes):
        ox, oy = spiral_offset(index)
        path.append((cx + ox, cy + oy))
    return path


def steps_to_cover_box(radius: int) -> int:
    """Steps a spiral needs to cover every node of ``Q_radius``.

    The spiral visits node ``i`` at time ``i``, so covering ``Q_radius``
    (i.e. all indices below ``(2*radius + 1)^2``) takes
    ``(2*radius + 1)^2 - 1`` steps.
    """
    if radius < 0:
        raise ValueError(f"radius must be non-negative, got {radius}")
    return (2 * radius + 1) ** 2 - 1
