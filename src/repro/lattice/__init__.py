"""Discrete geometry of the infinite grid Z^2 under the Manhattan metric.

This subpackage implements the lattice substrate of the paper *Search via
Parallel Levy Walks on Z^2* (Clementi, d'Amore, Giakkoupis, Natale, PODC
2021):

* :mod:`repro.lattice.points` -- p-norms and distances on Z^2 (Section 3.1);
* :mod:`repro.lattice.rings` -- the rings ``R_d(u)``, balls ``B_d(u)`` and
  boxes ``Q_d(u)`` of Figure 1, with exact uniform sampling on rings;
* :mod:`repro.lattice.direct_path` -- *direct paths* (Definition 3.1), the
  shortest lattice paths that hug the straight segment between two nodes,
  including an O(1) exact sampler for the node a direct path occupies at a
  given intermediate ring (the workhorse of the fast simulation engine);
* :mod:`repro.lattice.spiral` -- the square-spiral space-filling order used
  by the Feinerman-Korman style baseline of the ANTS problem;
* :mod:`repro.lattice.ascii_art` -- deterministic renderings of the paper's
  illustrative figures.
"""

from repro.lattice.points import (
    ORIGIN,
    l1_distance,
    l1_norm,
    l2_distance,
    l2_norm,
    linf_distance,
    linf_norm,
)
from repro.lattice.rings import (
    ball_nodes,
    ball_size,
    box_nodes,
    box_size,
    offset_to_ring_index,
    ring_index_to_offset,
    ring_nodes,
    ring_size,
    sample_ring_offsets,
)
from repro.lattice.direct_path import (
    direct_path_node_candidates,
    enumerate_direct_paths,
    ring_marginal_exact,
    sample_direct_path,
    sample_direct_path_nodes,
)
from repro.lattice.spiral import spiral_index, spiral_offset, spiral_path

__all__ = [
    "ORIGIN",
    "l1_norm",
    "l1_distance",
    "l2_norm",
    "l2_distance",
    "linf_norm",
    "linf_distance",
    "ring_size",
    "ring_nodes",
    "ball_size",
    "ball_nodes",
    "box_size",
    "box_nodes",
    "ring_index_to_offset",
    "offset_to_ring_index",
    "sample_ring_offsets",
    "direct_path_node_candidates",
    "sample_direct_path",
    "sample_direct_path_nodes",
    "enumerate_direct_paths",
    "ring_marginal_exact",
    "spiral_index",
    "spiral_offset",
    "spiral_path",
]
