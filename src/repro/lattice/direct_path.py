"""Direct paths between lattice nodes (paper Definition 3.1, Figure 2).

A *direct path* from ``u`` to ``v`` is a shortest lattice path
``u = u_0, u_1, ..., u_d = v`` (``d = ||u - v||_1``) such that ``u_i`` lies
on the ring ``R_i(u)`` and is the node of that ring closest in Euclidean
distance to the point ``w_i`` of the real segment ``uv`` with
``||u - w_i||_1 = i``.  A Levy walk (Definition 3.4) traverses a direct
path chosen uniformly at random among all direct paths from ``u`` to ``v``.

Structure exploited throughout this package
-------------------------------------------

Write ``delta = v - u`` and ``d = |delta_x| + |delta_y|``.  Because the
Manhattan norm is linear along the segment, ``w_i = u + (i/d) * delta``
satisfies ``||w_i - u||_1 = i`` exactly.  In the (closed) quadrant of
``delta``, the ring nodes are ``{(x, i - x) : 0 <= x <= i}`` (in
quadrant-absolute coordinates), and the squared Euclidean distance from
``w_i`` to such a node is ``2 (x - i*|delta_x|/d)^2``.  Hence:

* the closest ring node is obtained by rounding ``i * |delta_x| / d`` to
  the nearest integer;
* a *tie* (two equidistant closest nodes) occurs iff the fractional part
  of ``i * |delta_x| / d`` equals exactly 1/2;
* ties at two consecutive rings are impossible: subtracting the tie
  conditions ``2 i |delta_x| = d (mod 2d)`` and
  ``2 (i+1) |delta_x| = d (mod 2d)`` forces ``|delta_x|`` to be ``0`` or
  ``d`` modulo ``d``, i.e. an axis-aligned jump, which has no ties at all;
* consequently every combination of per-ring tie choices forms a valid
  lattice path (adjacent consecutive nodes), so the uniform distribution
  over direct paths factorizes into independent fair coin flips, one per
  tie ring, and the *marginal* of ``u_i`` is "closest node, uniform over
  the (at most 2) ties".

The last point is what allows exact hit detection in O(1) per jump: a walk
jumping from ``u`` to ``v`` visits the target ``w`` iff
``m = ||w - u||_1 <= d`` and the ring-``m`` marginal sample equals ``w``,
in which case the visit happens exactly ``m`` steps into the jump phase.
These facts are verified by exhaustive enumeration in the test suite.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.lattice.points import l1_distance
from repro.lattice.rings import iter_ring_offsets, ring_size

IntPoint = Tuple[int, int]


def _sign(value: int) -> int:
    if value > 0:
        return 1
    if value < 0:
        return -1
    return 0


def direct_path_node_candidates(u: IntPoint, v: IntPoint, i: int) -> List[IntPoint]:
    """Return the nodes a direct path from ``u`` to ``v`` may occupy at ring ``i``.

    The result has one element (no tie) or two elements (tie); a uniformly
    random direct path occupies each candidate with equal probability
    (see the module docstring).  ``i`` must satisfy ``0 <= i <= d`` where
    ``d = ||u - v||_1``.
    """
    dx = v[0] - u[0]
    dy = v[1] - u[1]
    d = abs(dx) + abs(dy)
    if not 0 <= i <= d:
        raise ValueError(f"ring index {i} out of range [0, {d}]")
    if i == 0:
        return [u]
    if i == d:
        return [v]
    sx, sy = _sign(dx), _sign(dy)
    a = i * abs(dx)
    q, r = divmod(a, d)
    if 2 * r == d:
        xs = [q, q + 1]
    elif 2 * r > d:
        xs = [q + 1]
    else:
        xs = [q]
    return [(u[0] + sx * x, u[1] + sy * (i - x)) for x in xs]


def sample_direct_path(
    u: IntPoint, v: IntPoint, rng: np.random.Generator
) -> List[IntPoint]:
    """Sample a uniformly random direct path from ``u`` to ``v``.

    Returns the full node sequence ``[u, u_1, ..., u_d = v]``; consecutive
    nodes are lattice neighbors.  Runs in O(d).
    """
    d = l1_distance(u, v)
    path = [u]
    for i in range(1, d + 1):
        candidates = direct_path_node_candidates(u, v, i)
        if len(candidates) == 1:
            path.append(candidates[0])
        else:
            path.append(candidates[int(rng.integers(0, 2))])
    return path


def enumerate_direct_paths(
    u: IntPoint, v: IntPoint, max_paths: int = 1 << 20
) -> List[List[IntPoint]]:
    """Enumerate every direct path from ``u`` to ``v``.

    The number of direct paths is ``2^T`` where ``T`` is the number of tie
    rings; a :class:`ValueError` is raised if it would exceed ``max_paths``.
    Intended for exhaustive verification on small instances.
    """
    d = l1_distance(u, v)
    per_ring = [direct_path_node_candidates(u, v, i) for i in range(d + 1)]
    count = 1
    for candidates in per_ring:
        count *= len(candidates)
        if count > max_paths:
            raise ValueError(f"more than {max_paths} direct paths")
    paths = []
    for combo in product(*per_ring):
        path = list(combo)
        if all(l1_distance(path[j], path[j + 1]) == 1 for j in range(d)):
            paths.append(path)
    return paths


def ring_marginal_exact(d: int, i: int) -> Dict[IntPoint, float]:
    """Exact law of ``u_i`` for a jump of length ``d`` from the origin.

    This is the distribution analysed in Lemma 3.2: the endpoint ``v`` is
    uniform on ``R_d(0)`` and the direct path to it is uniform, and the
    returned dict maps each node ``w`` of ``R_i(0)`` to ``P(u_i = w)``.
    Runs in O(d) time; used to validate the Lemma 3.2 bounds

    ``(i/d) floor(d/i) / (4 i)  <=  P(u_i = w)  <=  (i/d) ceil(d/i) / (4 i)``.
    """
    if not 1 <= i <= d:
        raise ValueError("require 1 <= i <= d")
    marginal: Dict[IntPoint, float] = {}
    weight = 1.0 / ring_size(d)
    for offset in iter_ring_offsets(d):
        candidates = direct_path_node_candidates((0, 0), offset, i)
        share = weight / len(candidates)
        for node in candidates:
            marginal[node] = marginal.get(node, 0.0) + share
    return marginal


def sample_direct_path_nodes(
    starts: np.ndarray,
    ends: np.ndarray,
    rings: np.ndarray,
    rng: np.random.Generator,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Vectorized ring-marginal sampler (the fast engine's hit detector).

    For each row ``j``, returns the node occupied at ring ``rings[j]`` by a
    uniformly random direct path from ``starts[j]`` to ``ends[j]``.  Exact:
    the output follows precisely the marginal distribution of Definition
    3.1 (see the module docstring for why the marginal is "nearest node,
    fair coin on ties").

    Parameters
    ----------
    starts, ends:
        Integer arrays of shape ``(n, 2)``.
    rings:
        Integer array of shape ``(n,)``; entry ``j`` must lie in
        ``[0, ||ends[j] - starts[j]||_1]``.
    rng:
        Source of randomness for tie-breaking.
    out:
        Optional int64 destination buffer of shape ``(n, 2)``.
    """
    starts = np.asarray(starts, dtype=np.int64)
    ends = np.asarray(ends, dtype=np.int64)
    m = np.asarray(rings, dtype=np.int64)
    delta = ends - starts
    adx = np.abs(delta[:, 0])
    d = adx + np.abs(delta[:, 1])
    if np.any(m < 0) or np.any(m > d):
        raise ValueError("ring index out of range")
    if out is None:
        out = np.empty_like(starts)
    zero_jump = d == 0
    out[zero_jump] = starts[zero_jump]
    moving = ~zero_jump
    if not np.any(moving):
        return out
    dm = d[moving]
    mm = m[moving]
    a = mm * adx[moving]
    q, r = np.divmod(a, dm)
    two_r = 2 * r
    x_abs = q + (two_r > dm)
    tie = two_r == dm
    if np.any(tie):
        x_abs[tie] = q[tie] + rng.integers(0, 2, size=int(tie.sum()))
    y_abs = mm - x_abs
    sx = np.sign(delta[moving, 0])
    sy = np.sign(delta[moving, 1])
    out[moving, 0] = starts[moving, 0] + sx * x_abs
    out[moving, 1] = starts[moving, 1] + sy * y_abs
    return out
