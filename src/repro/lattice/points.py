"""p-norms and distances on the lattice Z^2 (paper Section 3.1).

Points are represented in one of two interchangeable ways:

* *scalar form*: a pair ``(x, y)`` of Python ints (or a length-2 sequence);
* *array form*: a numpy integer array of shape ``(..., 2)`` whose last axis
  holds the ``(x, y)`` coordinates.

All functions below accept both forms.  Scalar inputs produce Python
scalars; array inputs produce numpy arrays with the leading shape of the
input.  The paper measures distances with the 1-norm (shortest-path /
Manhattan distance on the grid graph ``G = (Z^2, E)``), uses the 2-norm to
define direct paths, and the infinity-norm for the boxes ``Q_d(u)`` and the
monotonicity property (Lemma 3.9).
"""

from __future__ import annotations

import math
from typing import Sequence, Union

import numpy as np

Point = Union[Sequence[int], np.ndarray]

#: The origin ``0 = (0, 0)`` from which every walk starts (paper Section 3.1).
ORIGIN = (0, 0)


def _as_xy(point: Point):
    """Split a point (scalar or array form) into its x and y components."""
    if isinstance(point, np.ndarray):
        return point[..., 0], point[..., 1]
    x, y = point
    return x, y


def l1_norm(point: Point):
    """Return ``|x| + |y|``, the Manhattan norm of ``point``.

    On the grid graph this equals the shortest-path distance from the
    origin, which is the notion of distance used throughout the paper.
    """
    x, y = _as_xy(point)
    return abs(x) + abs(y)


def l2_norm(point: Point):
    """Return the Euclidean norm of ``point``.

    Used only to define direct paths (Definition 3.1), where the lattice
    node closest *in Euclidean distance* to a point of the real segment is
    selected.
    """
    x, y = _as_xy(point)
    if isinstance(point, np.ndarray):
        return np.hypot(x, y)
    return math.hypot(x, y)


def linf_norm(point: Point):
    """Return ``max(|x|, |y|)``, the Chebyshev norm of ``point``.

    The boxes ``Q_d(u)`` of Figure 1 are balls of this norm, and the
    monotonicity property (Lemma 3.9) compares ``||v||_inf`` with
    ``||u||_1``.
    """
    x, y = _as_xy(point)
    if isinstance(point, np.ndarray):
        return np.maximum(np.abs(x), np.abs(y))
    return max(abs(x), abs(y))


def _difference(a: Point, b: Point):
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.asarray(a) - np.asarray(b)
    return (a[0] - b[0], a[1] - b[1])


def l1_distance(a: Point, b: Point):
    """Shortest-path (Manhattan) distance between nodes ``a`` and ``b``."""
    return l1_norm(_difference(a, b))


def l2_distance(a: Point, b: Point):
    """Euclidean distance between ``a`` and ``b``."""
    return l2_norm(_difference(a, b))


def linf_distance(a: Point, b: Point):
    """Chebyshev distance between ``a`` and ``b``."""
    return linf_norm(_difference(a, b))


def is_lattice_neighbor(a: Sequence[int], b: Sequence[int]) -> bool:
    """Return True iff ``{a, b}`` is an edge of the grid graph.

    Edges of ``G = (Z^2, E)`` connect nodes at Manhattan distance exactly 1
    (paper Section 3.1).
    """
    return l1_distance(tuple(a), tuple(b)) == 1
