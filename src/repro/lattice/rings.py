"""Rings ``R_d(u)``, balls ``B_d(u)`` and boxes ``Q_d(u)`` (paper Figure 1).

The paper defines, for a node ``u`` of Z^2 and an integer radius ``d``:

* ``R_d(u) = {v : ||u - v||_1 = d}`` -- the *ring* (a lattice diamond);
* ``B_d(u) = {v : ||u - v||_1 <= d}`` -- the *ball*;
* ``Q_d(u) = {v : ||u - v||_inf <= d}`` -- the *box* (a square).

Both the Levy flight and the Levy walk pick jump destinations uniformly at
random on a ring (Definitions 3.3 and 3.4), so exact, vectorized uniform
sampling on ``R_d`` is a core primitive of every simulation engine in this
package.  The sampling is implemented through an explicit bijection between
``{0, ..., 4d-1}`` and the ring, which is also exposed for testing
(:func:`ring_index_to_offset` / :func:`offset_to_ring_index`).

The bijection walks the diamond counter-clockwise starting from ``(d, 0)``:

* quadrant 0 (indices ``0..d-1``):   ``(d - r,  r)``
* quadrant 1 (indices ``d..2d-1``):  ``(-r,  d - r)``
* quadrant 2 (indices ``2d..3d-1``): ``(-(d - r), -r)``
* quadrant 3 (indices ``3d..4d-1``): ``(r, -(d - r))``

where ``r = index mod d``.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

import numpy as np

IntPoint = Tuple[int, int]


def ring_size(d: int) -> int:
    """Number of nodes at Manhattan distance exactly ``d`` from a node.

    ``|R_0| = 1`` (the node itself) and ``|R_d| = 4d`` for ``d >= 1``.
    """
    if d < 0:
        raise ValueError(f"radius must be non-negative, got {d}")
    return 1 if d == 0 else 4 * d


def ball_size(d: int) -> int:
    """Number of nodes in the Manhattan ball ``B_d``: ``2d^2 + 2d + 1``."""
    if d < 0:
        raise ValueError(f"radius must be non-negative, got {d}")
    return 2 * d * d + 2 * d + 1


def box_size(d: int) -> int:
    """Number of nodes in the Chebyshev box ``Q_d``: ``(2d + 1)^2``."""
    if d < 0:
        raise ValueError(f"radius must be non-negative, got {d}")
    return (2 * d + 1) ** 2


def ring_index_to_offset(d: int, index: int) -> IntPoint:
    """Map ``index`` in ``{0, ..., ring_size(d) - 1}`` to a ring offset.

    The map is a bijection onto ``R_d(0)``; adding the offset to a center
    node yields the corresponding element of ``R_d(center)``.
    """
    if d == 0:
        if index != 0:
            raise ValueError("ring of radius 0 has a single node")
        return (0, 0)
    if not 0 <= index < 4 * d:
        raise ValueError(f"index {index} out of range for ring of radius {d}")
    quadrant, r = divmod(index, d)
    if quadrant == 0:
        return (d - r, r)
    if quadrant == 1:
        return (-r, d - r)
    if quadrant == 2:
        return (-(d - r), -r)
    return (r, -(d - r))


def offset_to_ring_index(offset: IntPoint) -> int:
    """Inverse of :func:`ring_index_to_offset` (with ``d = |x| + |y|``)."""
    x, y = offset
    d = abs(x) + abs(y)
    if d == 0:
        return 0
    if x > 0 and y >= 0:
        return y
    if x <= 0 and y > 0:
        return d + (-x)
    if x < 0 and y <= 0:
        return 2 * d + (-y)
    return 3 * d + x


def ring_nodes(center: IntPoint, d: int) -> List[IntPoint]:
    """Return all nodes of ``R_d(center)`` in bijection order."""
    cx, cy = center
    nodes = []
    for index in range(ring_size(d)):
        ox, oy = ring_index_to_offset(d, index)
        nodes.append((cx + ox, cy + oy))
    return nodes


def ball_nodes(center: IntPoint, d: int) -> List[IntPoint]:
    """Return all nodes of the Manhattan ball ``B_d(center)``."""
    return [node for radius in range(d + 1) for node in ring_nodes(center, radius)]


def box_nodes(center: IntPoint, d: int) -> List[IntPoint]:
    """Return all nodes of the Chebyshev box ``Q_d(center)``."""
    cx, cy = center
    return [
        (cx + ox, cy + oy)
        for ox in range(-d, d + 1)
        for oy in range(-d, d + 1)
    ]


def iter_ring_offsets(d: int) -> Iterator[IntPoint]:
    """Iterate over the offsets of ``R_d(0)`` in bijection order."""
    for index in range(ring_size(d)):
        yield ring_index_to_offset(d, index)


def sample_ring_offsets(
    distances: np.ndarray,
    rng: np.random.Generator,
    u: Optional[np.ndarray] = None,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Sample, for each ``d`` in ``distances``, a uniform offset on ``R_d(0)``.

    This is the vectorized destination sampler used by Definitions 3.3/3.4:
    given the jump distance ``d``, the destination is uniform among the
    ``4d`` nodes at distance ``d`` (and is the node itself when ``d = 0``).

    Parameters
    ----------
    distances:
        Integer array of shape ``(n,)`` with non-negative entries.
    rng:
        Source of randomness.
    u:
        Optional pre-drawn uniforms of shape ``(n,)`` in ``[0, 1)``; the
        engines batch one ``rng.random`` call per round and hand each
        consumer its slice.
    out:
        Optional int64 destination buffer of shape ``(n, 2)``.

    Returns
    -------
    numpy.ndarray
        Integer array of shape ``(n, 2)``; row ``i`` is uniform on
        ``R_{distances[i]}(0)``.
    """
    d = np.asarray(distances, dtype=np.int64)
    if d.ndim != 1:
        raise ValueError("distances must be a 1-d array")
    if np.any(d < 0):
        raise ValueError("distances must be non-negative")
    n = d.shape[0]
    if u is None:
        u = rng.random(n)
    # Uniform index in [0, 4d): scale u ~ U[0,1), which is exact for int64
    # ranges well below 2**53; clip guards the measure-zero rounding case
    # index == 4d.  For d == 0 the index is 0 and the branch-free formulas
    # below yield (0, 0) via the final where.
    four_d = 4 * d
    index = np.minimum(
        (u * four_d).astype(np.int64), np.maximum(four_d - 1, 0)
    )
    # Branch-free diamond walk, counter-clockwise from (d, 0):
    # indices [0, 2d] sweep x from d down to -d on the y >= 0 side,
    # indices (2d, 4d) sweep x from -d+1 up to d-1 on the y < 0 side.
    upper = index <= 2 * d
    x = np.where(upper, d - index, index - 3 * d)
    y_mag = d - np.abs(x)
    y = np.where(upper, y_mag, -y_mag)
    if out is None:
        out = np.empty((n, 2), dtype=np.int64)
    out[:, 0] = x
    out[:, 1] = y
    return out
