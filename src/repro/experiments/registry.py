"""Registry mapping experiment ids to their modules.

Matches DESIGN.md's per-experiment index; the CLI
(:mod:`repro.cli`) and the benchmark suite both dispatch through it.
"""

from __future__ import annotations

import importlib
from typing import Dict, List

#: experiment id -> module path
_REGISTRY: Dict[str, str] = {
    "EXP-E4": "repro.experiments.exp_tail_eq4",
    "EXP-L3.2": "repro.experiments.exp_direct_path",
    "EXP-L3.9": "repro.experiments.exp_monotonicity",
    "EXP-L4.13": "repro.experiments.exp_origin_visits",
    "EXP-T1.1": "repro.experiments.exp_single_hitting_super",
    "EXP-T1.2": "repro.experiments.exp_single_hitting_diffusive",
    "EXP-T1.3": "repro.experiments.exp_single_hitting_ballistic",
    "EXP-T1.5": "repro.experiments.exp_optimal_exponent",
    "EXP-C1.4": "repro.experiments.exp_parallel_speedup",
    "EXP-T1.6": "repro.experiments.exp_random_exponent",
    "EXP-CMP": "repro.experiments.exp_strategy_comparison",
    "EXP-L4.12": "repro.experiments.exp_region_visits",
    "EXP-LC1": "repro.experiments.exp_projection",
    "EXP-MSD": "repro.experiments.exp_msd_regimes",
    "FIG-1..6": "repro.experiments.exp_figures",
    # Extensions beyond the paper (DESIGN.md Section 6):
    "EXT-SW": "repro.experiments.exp_smallworld",
    "EXT-DET": "repro.experiments.exp_ablation_detection",
    "EXT-TAIL": "repro.experiments.exp_ablation_tails",
    "EXT-LAZY": "repro.experiments.exp_ablation_laziness",
    "EXT-QUANT": "repro.experiments.exp_quantized_levels",
    "EXT-FORAGE": "repro.experiments.exp_foraging_field",
    "EXT-DIAM": "repro.experiments.exp_target_diameter",
    "EXT-1D": "repro.experiments.exp_line_foraging",
    "EXT-CCRW": "repro.experiments.exp_ccrw",
    "EXT-COVER": "repro.experiments.exp_distinct_nodes",
}


def experiment_ids() -> List[str]:
    """All registered experiment ids, in DESIGN.md order."""
    return list(_REGISTRY)


def get_experiment(experiment_id: str):
    """Import and return the experiment module for ``experiment_id``."""
    try:
        module_path = _REGISTRY[experiment_id]
    except KeyError:
        known = ", ".join(_REGISTRY)
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known ids: {known}"
        ) from None
    return importlib.import_module(module_path)


def run_experiment(experiment_id: str, scale: str = "small", seed: int = 0, runner=None):
    """Run one experiment and return its :class:`ExperimentResult`.

    ``runner`` (a :class:`repro.runner.Runner`) is forwarded to experiments
    whose ``run`` accepts it -- those sample through checkpointed, resumable
    chunks.  Experiments that have not grown runner support simply ignore it.
    """
    from repro.experiments.common import run_accepts_runner

    module = get_experiment(experiment_id)
    if runner is not None and run_accepts_runner(module.run):
        return module.run(scale=scale, seed=seed, runner=runner)
    return module.run(scale=scale, seed=seed)
