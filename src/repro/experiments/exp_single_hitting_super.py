"""EXP-T1.1: single-walk hitting bounds, super-diffusive regime (2 < alpha < 3).

Theorem 1.1 (and its refined form, Theorem 4.1) makes three claims about a
single Levy walk and a target at distance ``l``:

(a) within the characteristic time ``t_l ~ mu l^(alpha-1)`` the target is
    hit with probability ``~ 1/l^(3-alpha)`` (up to polylogs) -- so the
    log-log slope of the hit probability against ``l`` is ``-(3-alpha)``;
(b) for early deadlines ``l <= t << t_l``, ``P(tau <= t) = O(t^2 /
    l^(alpha+1))`` -- quadratic growth in ``t``;
(c) running past ``t_l`` gains at most a polylog factor -- the hit
    probability plateaus.

The harness measures all three shapes.
"""

from __future__ import annotations

import math

from repro.analysis.scaling import fit_power_law, geometric_grid
from repro.core.exponents import mu_factor
from repro.distributions.zeta import ZetaJumpDistribution
from repro.experiments.common import (
    Check,
    ExperimentResult,
    default_target,
    experiment_main,
    sample_hitting_times,
    validate_scale,
)
from repro.reporting.table import Table
from repro.reporting.text_plots import ascii_loglog
from repro.rng import as_generator
from repro.theory.horizons import early_time_grid
from repro.theory.predictions import predicted_hit_probability_slope

EXPERIMENT_ID = "EXP-T1.1"
TITLE = "Single-walk hitting probability, alpha in (2,3)  [Theorem 1.1 / 4.1]"

_CONFIG = {
    # (alphas, l grid, n_walks, n_walks for part (b), l for part (b))
    "smoke": ((2.3, 2.7), geometric_grid(8, 20, 3), 1_500, 8_000, 16),
    "small": ((2.2, 2.5, 2.8), geometric_grid(8, 40, 5), 5_000, 30_000, 24),
    "full": ((2.2, 2.4, 2.6, 2.8), geometric_grid(12, 96, 6), 20_000, 120_000, 48),
}
_SLOPE_TOLERANCE = 0.45  # absorbs the gamma/mu polylog corrections
_HORIZON_FACTOR = 4.0
_PLATEAU_FACTOR = 4  # part (c): extend the horizon by this much


def _characteristic_horizon(alpha: float, l: int) -> int:
    return max(l, int(math.ceil(_HORIZON_FACTOR * mu_factor(alpha, l) * l ** (alpha - 1.0))))


def run(scale: str = "small", seed: int = 0, runner=None) -> ExperimentResult:
    """Measure Theorem 1.1's three shapes for a grid of (alpha, l).

    ``runner`` (optional :class:`repro.runner.Runner`) makes every
    Monte-Carlo call below checkpointed and resumable -- the T1.1 sweep is
    the longest-running harness in the suite at full scale.
    """
    scale = validate_scale(scale)
    rng = as_generator(seed)
    alphas, l_grid, n_walks, n_walks_b, l_for_b = _CONFIG[scale]

    # -------------------------------------------------- part (a): slope in l
    table_a = Table(
        ["alpha", "l", "horizon", "P(tau <= horizon)", "hits"],
        title="(a) hit probability within the characteristic time",
    )
    checks = []
    series = {}
    for alpha in alphas:
        law = ZetaJumpDistribution(alpha)
        points = []
        for l in l_grid:
            horizon = _characteristic_horizon(alpha, l)
            sample = sample_hitting_times(
                law,
                default_target(l),
                horizon,
                n_walks,
                rng,
                runner=runner,
                label=f"a-alpha{alpha}-l{l}",
            )
            table_a.add_row(alpha, l, horizon, sample.hit_fraction, sample.n_hits)
            if sample.n_hits:
                points.append((float(l), sample.hit_fraction))
        series[f"alpha={alpha}"] = points
        if len(points) >= 3:
            fit = fit_power_law([p[0] for p in points], [p[1] for p in points])
            predicted = predicted_hit_probability_slope(alpha)
            checks.append(
                Check(
                    f"alpha={alpha}: P(hit) ~ l^-(3-alpha) "
                    f"(slope ~ {predicted:.2f})",
                    fit.compatible_with(predicted, tolerance=_SLOPE_TOLERANCE),
                    detail=str(fit),
                )
            )

    # ------------------------------------------- part (b): early-time growth
    alpha_b = alphas[len(alphas) // 2]
    law_b = ZetaJumpDistribution(alpha_b)
    horizon_b = _characteristic_horizon(alpha_b, l_for_b)
    sample_b = sample_hitting_times(
        law_b,
        default_target(l_for_b),
        horizon_b,
        n_walks_b,
        rng,
        runner=runner,
        label="b-early",
    )
    t_grid = early_time_grid(alpha_b, l_for_b, n_points=5)
    table_b = Table(
        ["t", "P(tau <= t)", "hits"],
        title=f"(b) early-deadline probability, alpha={alpha_b}, l={l_for_b}",
    )
    early_points = []
    for t in t_grid:
        p = sample_b.probability_by(min(t, horizon_b))
        hits = int(round(p * sample_b.n))
        table_b.add_row(t, p, hits)
        if hits >= 5:
            early_points.append((float(t), p))
    if len(early_points) >= 3:
        fit_b = fit_power_law(
            [p[0] for p in early_points], [p[1] for p in early_points]
        )
        checks.append(
            Check(
                f"alpha={alpha_b}: early P(tau <= t) grows ~ t^2",
                fit_b.compatible_with(2.0, tolerance=0.75),
                detail=str(fit_b),
            )
        )

    # --------------------------------------------------- part (c): plateau
    l_c = l_grid[len(l_grid) // 2]
    alpha_c = alphas[len(alphas) // 2]
    law_c = ZetaJumpDistribution(alpha_c)
    horizon_short = _characteristic_horizon(alpha_c, l_c)
    horizon_long = _PLATEAU_FACTOR * horizon_short
    sample_c = sample_hitting_times(
        law_c,
        default_target(l_c),
        horizon_long,
        n_walks,
        rng,
        runner=runner,
        label="c-plateau",
    )
    p_short = sample_c.probability_by(horizon_short)
    p_long = sample_c.hit_fraction
    table_c = Table(
        ["horizon", "P(tau <= horizon)"],
        title=f"(c) plateau beyond the characteristic time, alpha={alpha_c}, l={l_c}",
    )
    table_c.add_row(horizon_short, p_short)
    table_c.add_row(horizon_long, p_long)
    if p_short > 0:
        ratio = p_long / p_short
        checks.append(
            Check(
                f"alpha={alpha_c}, l={l_c}: {_PLATEAU_FACTOR}x more time gains "
                "only a small factor (Theorem 1.1(c) plateau)",
                ratio < 2.5,
                detail=f"p({horizon_long})/p({horizon_short}) = {ratio:.2f}",
            )
        )

    plot = ascii_loglog(series, title="P(hit within t_l) vs l (log-log)")
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        scale=scale,
        seed=seed,
        tables=[table_a, table_b, table_c],
        checks=checks,
        plots=[plot],
    )


def main(argv=None) -> int:
    return experiment_main(run, argv)


if __name__ == "__main__":
    raise SystemExit(main())
