"""EXP-T1.6: random exponents match the oracle at every distance at once.

Theorem 1.6 (the paper's headline): give each of the ``k`` walks an
exponent drawn independently and uniformly from ``(2, 3)``.  Then for
*every* target distance ``l`` (with ``k >= polylog l``), the parallel
hitting time is ``O((l^2/k) log^7 l + l log^3 l)`` w.h.p. -- within
polylog factors of the oracle that knows ``k`` and ``l``, and of the
universal lower bound ``Omega(l^2/k + l)``.

The harness runs the randomized strategy and the per-``(k, l)``-tuned
oracle across a geometric grid of distances (same ``k``), then across a
grid of ``k`` (same distance), and checks that the randomized strategy's
penalized mean time stays within a constant-ish factor of the oracle's
*everywhere* -- no retuning, no knowledge.
"""

from __future__ import annotations

import numpy as np

from repro.core.ants import universal_lower_bound
from repro.core.search import ParallelLevySearch
from repro.core.strategies import OracleExponentStrategy, UniformRandomExponentStrategy
from repro.experiments.common import (
    Check,
    ExperimentResult,
    default_target,
    experiment_main,
    validate_scale,
)
from repro.reporting.table import Table
from repro.rng import as_generator

EXPERIMENT_ID = "EXP-T1.6"
TITLE = "Uniform-random exponents are near-optimal for all l simultaneously  [Theorem 1.6]"

_CONFIG = {
    # (k, l grid, n_runs, k grid for the k-sweep, l for the k-sweep,
    #  allowed ratio to oracle)
    "smoke": (32, (16, 48), 12, (8, 64), 32, 5.0),
    "small": (48, (16, 32, 64, 128), 20, (12, 48, 192), 64, 4.0),
    "full": (64, (16, 32, 64, 128, 256), 60, (16, 64, 256, 1024), 96, 4.0),
}


def _penalized_mean(sample) -> float:
    return float(np.where(sample.times < 0, sample.horizon, sample.times).mean())


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    """Randomized vs oracle strategy across l (fixed k) and across k."""
    scale = validate_scale(scale)
    rng = as_generator(seed)
    k, l_grid, n_runs, k_grid, l_for_k, max_ratio = _CONFIG[scale]
    checks = []

    table_l = Table(
        [
            "l",
            "oracle alpha",
            "oracle mean time",
            "random mean time",
            "ratio",
            "LB l^2/k + l",
            "random / LB",
        ],
        title=f"(1) distance sweep at k={k} (penalized mean, horizon l^2)",
    )
    worst_ratio = 0.0
    for l in l_grid:
        target = default_target(l)
        horizon = l * l
        oracle_strategy = OracleExponentStrategy(l)
        oracle = ParallelLevySearch(k, oracle_strategy).sample_parallel_hitting_times(
            target, n_runs=n_runs, horizon=horizon, rng=rng
        )
        random = ParallelLevySearch(
            k, UniformRandomExponentStrategy()
        ).sample_parallel_hitting_times(target, n_runs=n_runs, horizon=horizon, rng=rng)
        oracle_mean = _penalized_mean(oracle)
        random_mean = _penalized_mean(random)
        ratio = random_mean / oracle_mean
        worst_ratio = max(worst_ratio, ratio)
        lb = universal_lower_bound(k, l) + l
        table_l.add_row(
            l,
            oracle_strategy.exponent_for(k),
            oracle_mean,
            random_mean,
            ratio,
            lb,
            random_mean / lb,
        )
    checks.append(
        Check(
            f"random exponents stay within {max_ratio}x of the oracle for "
            "EVERY distance in the sweep (no knowledge of l)",
            worst_ratio <= max_ratio,
            detail=f"worst ratio {worst_ratio:.2f}",
        )
    )

    table_k = Table(
        ["k", "oracle mean time", "random mean time", "ratio"],
        title=f"(2) k sweep at l={l_for_k} (penalized mean, horizon l^2)",
    )
    worst_ratio_k = 0.0
    target = default_target(l_for_k)
    horizon = l_for_k * l_for_k
    for k_value in k_grid:
        oracle_strategy = OracleExponentStrategy(l_for_k)
        oracle = ParallelLevySearch(
            k_value, oracle_strategy
        ).sample_parallel_hitting_times(target, n_runs=n_runs, horizon=horizon, rng=rng)
        random = ParallelLevySearch(
            k_value, UniformRandomExponentStrategy()
        ).sample_parallel_hitting_times(target, n_runs=n_runs, horizon=horizon, rng=rng)
        oracle_mean = _penalized_mean(oracle)
        random_mean = _penalized_mean(random)
        ratio = random_mean / oracle_mean
        worst_ratio_k = max(worst_ratio_k, ratio)
        table_k.add_row(k_value, oracle_mean, random_mean, ratio)
    checks.append(
        Check(
            f"random exponents stay within {max_ratio}x of the oracle for "
            "EVERY k in the sweep (no knowledge of k)",
            worst_ratio_k <= max_ratio,
            detail=f"worst ratio {worst_ratio_k:.2f}",
        )
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        scale=scale,
        seed=seed,
        tables=[table_l, table_k],
        checks=checks,
        notes=[
            "The oracle retunes its exponent per cell; the randomized "
            "strategy never changes.  Theorem 1.6's polylog gap shows up "
            "here as a small constant ratio at laptop scales.",
            "'penalized mean': groups that miss within the horizon pay the "
            "full horizon.",
        ],
    )


def main(argv=None) -> int:
    return experiment_main(run, argv)


if __name__ == "__main__":
    raise SystemExit(main())
