"""EXT-CCRW: composite correlated walks have a sweet spot; Levy walks don't.

The empirical Levy-walk literature's standing rival (see the [39] debate
cited in Section 2) is the composite correlated random walk: a two-mode
walk alternating local tortuous search with straight relocation bouts.
A CCRW's bout-length distribution is exponential, so it carries a
*characteristic relocation scale*; per target distance there is a best
bout length, and it moves with the distance -- whereas a power-law walk
(and a fortiori the paper's randomized-exponent ensemble) holds its own
at every scale without retuning.

The harness sweeps the CCRW's mean bout length per target distance to
find the *oracle CCRW*, then checks:

1. the oracle bout length grows with the target distance (the CCRW is
   scale-bound);
2. a CCRW tuned for the nearest band loses a constant factor at the
   farthest band;
3. an untuned ``alpha = 2.5`` Levy walk stays within a modest factor of
   the per-distance oracle CCRW everywhere.
"""

from __future__ import annotations

import math

from repro.experiments.common import (
    Check,
    ExperimentResult,
    experiment_main,
    validate_scale,
)
from repro.reporting.table import Table
from repro.rng import as_generator
from repro.sweep import SweepSpec, run_sweep

EXPERIMENT_ID = "EXT-CCRW"
TITLE = "Composite correlated walks are scale-bound; Levy walks are not  [cf. [39]]"

_ALPHA = 2.5
_CONFIG = {
    # (l grid, bout grid, n_walks, required mistuning penalty)
    # The penalty factor is noise-limited at small sample counts (the
    # oracle is a max over noisy cells), hence the per-scale values.
    "smoke": ((12, 128), (2, 8, 32, 128), 6_000, 1.15),
    "small": ((12, 48, 128), (2, 4, 8, 16, 32, 64, 128), 10_000, 1.3),
    "full": ((12, 48, 128, 256), (2, 4, 8, 16, 32, 64, 128, 256), 30_000, 1.4),
}


def _budget(params) -> int:
    """The shared step budget ~2 l^1.5 (between l and the l^2 regime)."""
    l = params["l"]
    return max(4 * l, int(math.ceil(2.0 * l**1.5)))


def run(scale: str = "small", seed: int = 0, runner=None) -> ExperimentResult:
    """Sweep CCRW bout lengths per distance; compare to an untuned Levy walk."""
    scale = validate_scale(scale)
    rng = as_generator(seed)
    l_grid, bout_grid, n_walks, penalty = _CONFIG[scale]
    # Two declarative grids sharing the distance axis and budget policy:
    # the CCRW over l x bout, and the untuned Levy walk over l alone.
    ccrw_spec = SweepSpec(
        axes={"l": list(l_grid), "bout": [float(b) for b in bout_grid]},
        n=n_walks,
        horizon=_budget,
    )
    levy_spec = SweepSpec(
        axes={"l": list(l_grid)},
        defaults={"alpha": _ALPHA},
        n=n_walks,
        horizon=_budget,
    )
    ccrw_sweep = run_sweep(
        ccrw_spec, seed=int(rng.integers(2**63 - 1)), runner=runner, label="ext-ccrw"
    )
    levy_sweep = run_sweep(
        levy_spec, seed=int(rng.integers(2**63 - 1)), runner=runner, label="ext-ccrw-levy"
    )
    table = Table(
        ["l", "budget"]
        + [f"CCRW bout={b}" for b in bout_grid]
        + ["oracle bout", f"Levy alpha={_ALPHA}"],
        title="P(hit within ~2 l^1.5 steps) per mean relocation-bout length",
    )
    oracle_bout = {}
    oracle_p = {}
    ccrw_p = {}
    levy_p = {}
    for l in l_grid:
        row = [
            point.sample.hit_fraction for point in ccrw_sweep.select(l=l)
        ]
        for bout, p in zip(bout_grid, row):
            ccrw_p[(l, bout)] = p
        best_index = max(range(len(row)), key=row.__getitem__)
        oracle_bout[l] = bout_grid[best_index]
        oracle_p[l] = row[best_index]
        levy_p[l] = levy_sweep.one(l=l).sample.hit_fraction
        table.add_row(l, _budget({"l": l}), *row, oracle_bout[l], levy_p[l])
    near, far = l_grid[0], l_grid[-1]
    checks = [
        Check(
            "the oracle bout length grows with the target distance "
            "(the CCRW is scale-bound)",
            oracle_bout[near] < oracle_bout[far],
            detail=" -> ".join(f"l={l}: bout {oracle_bout[l]}" for l in l_grid),
        ),
        Check(
            f"the CCRW tuned for l={near} loses >= {penalty}x at l={far} "
            "against the oracle CCRW",
            oracle_p[far] >= penalty * ccrw_p[(far, oracle_bout[near])],
            detail=(
                f"oracle {oracle_p[far]:.4f} vs near-tuned "
                f"{ccrw_p[(far, oracle_bout[near])]:.4f}"
            ),
        ),
        Check(
            "the untuned Levy walk stays within 4x of the oracle CCRW at "
            "EVERY distance (no retuning)",
            all(levy_p[l] >= 0.25 * oracle_p[l] for l in l_grid),
            detail=", ".join(
                f"l={l}: {levy_p[l] / oracle_p[l]:.2f}" for l in l_grid
            ),
        ),
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        scale=scale,
        seed=seed,
        tables=[table],
        checks=checks,
        notes=[
            "This is the functional version of the Levy-vs-CCRW model "
            "identification debate [39]: over one distance band the two "
            "are hard to tell apart, but the CCRW's exponential bouts tie "
            "it to a scale -- its optimum must be re-tuned as the distance "
            "changes, while the power-law walk is not, and the paper's "
            "randomized ensemble extends that scale-freeness to the "
            "parallel setting.",
        ],
    )


def main(argv=None) -> int:
    return experiment_main(run, argv)


if __name__ == "__main__":
    raise SystemExit(main())
