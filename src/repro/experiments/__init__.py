"""Experiment harnesses: one module per paper statement (see DESIGN.md).

Use the registry to run any experiment::

    from repro.experiments import run_experiment
    result = run_experiment("EXP-T1.6", scale="small", seed=0)
    print(result.render())

or from the command line::

    repro-experiment run EXP-T1.6 --scale small
    repro-experiment run all --scale smoke
"""

from repro.experiments.common import Check, ExperimentResult, default_target
from repro.experiments.registry import experiment_ids, get_experiment, run_experiment

__all__ = [
    "Check",
    "ExperimentResult",
    "default_target",
    "experiment_ids",
    "get_experiment",
    "run_experiment",
]
