"""EXT-DET: ablation -- detection during jumps vs only at jump endpoints.

The paper's Levy walk notices the target the instant it steps on it,
mid-jump included; the related "intermittent" model of [18] (Section 2)
only inspects jump endpoints, and that modelling choice changes which
exponents are optimal (in [18], alpha = 2 wins *because* detection is
intermittent and targets have diameter D).

This ablation quantifies the gap on our unit target: for each exponent,
the hit probability within the characteristic time under both detection
semantics.  Expected shape: during-jump detection strictly dominates,
and its advantage grows as alpha decreases (longer jumps fly over the
target more often, so endpoint-only detection forfeits more hits).
"""

from __future__ import annotations

import math

from repro.analysis.comparisons import two_proportion_z
from repro.core.exponents import mu_factor
from repro.distributions.zeta import ZetaJumpDistribution
from repro.engine.vectorized import walk_hitting_times
from repro.experiments.common import (
    Check,
    ExperimentResult,
    default_target,
    experiment_main,
    validate_scale,
)
from repro.reporting.table import Table
from repro.rng import as_generator

EXPERIMENT_ID = "EXT-DET"
TITLE = "Ablation: mid-jump vs endpoint-only (intermittent) target detection  [vs [18]]"

_CONFIG = {
    # (l, n_walks)
    "smoke": (24, 8_000),
    "small": (32, 30_000),
    "full": (48, 120_000),
}
_ALPHAS = (2.1, 2.5, 2.9)


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    """Hit probability under both detection semantics, per exponent."""
    scale = validate_scale(scale)
    rng = as_generator(seed)
    l, n_walks = _CONFIG[scale]
    target = default_target(l)
    table = Table(
        [
            "alpha",
            "horizon",
            "P(hit), mid-jump detection",
            "P(hit), endpoint-only",
            "advantage ratio",
        ],
        title=f"detection ablation at l={l}",
    )
    ratios = {}
    checks = []
    for alpha in _ALPHAS:
        law = ZetaJumpDistribution(alpha)
        horizon = max(l, int(math.ceil(4 * mu_factor(alpha, l) * l ** (alpha - 1.0))))
        full = walk_hitting_times(
            law, target, horizon=horizon, n=n_walks, rng=rng, detect_during_jump=True
        )
        endpoint = walk_hitting_times(
            law, target, horizon=horizon, n=n_walks, rng=rng, detect_during_jump=False
        )
        ratio = (
            full.hit_fraction / endpoint.hit_fraction
            if endpoint.hit_fraction > 0
            else float("inf")
        )
        ratios[alpha] = ratio
        table.add_row(alpha, horizon, full.hit_fraction, endpoint.hit_fraction, ratio)
        test = two_proportion_z(
            full.n_hits, full.n, endpoint.n_hits, endpoint.n
        )
        checks.append(
            Check(
                f"alpha={alpha}: mid-jump detection finds significantly more "
                "(two-proportion z, p < 0.01)",
                test.direction > 0 and test.significant(0.01),
                detail=(
                    f"{full.hit_fraction:.4f} vs {endpoint.hit_fraction:.4f}, "
                    f"p={test.p_value:.2e}"
                ),
            )
        )
    checks.append(
        Check(
            "the mid-jump advantage grows as alpha decreases (longer jumps "
            "fly over the target more often)",
            ratios[_ALPHAS[0]] > ratios[_ALPHAS[-1]],
            detail=" > ".join(f"{ratios[a]:.2f}" for a in _ALPHAS),
        )
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        scale=scale,
        seed=seed,
        tables=[table],
        checks=checks,
        notes=[
            "This is why the paper's model and [18]'s reach different "
            "optimal exponents: with endpoint-only (intermittent) detection "
            "and unit targets, long jumps waste their traversal, shifting "
            "the balance toward shorter-jump (larger alpha) walks.",
        ],
    )


def main(argv=None) -> int:
    return experiment_main(run, argv)


if __name__ == "__main__":
    raise SystemExit(main())
