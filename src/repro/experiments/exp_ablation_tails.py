"""EXT-TAIL: ablation -- the heavy tail itself, not the jumping, does the work.

A skeptic's question about the Levy foraging hypothesis: is the search
advantage due to the *power-law* tail, or merely to taking long jumps
now and then?  This ablation keeps everything about the Levy walk
(lazy step, uniform ring destination, direct-path traversal) and swaps
only the jump-length law: the paper's ``alpha = 2.5`` power law vs a
geometric law with the *same conditional mean jump length*.

Expected shape: within the super-diffusive characteristic budget
``~ 2 l^(alpha-1)``, the exponential-tail walk -- whose displacement is
diffusive, ``~ sqrt(t)`` -- is actually (slightly) better at *short*
range, where its reliable medium jumps beat the power law's wasted long
ones; but its hit probability decays much steeper in ``l``, so the
power-law walk takes over at long range and the gap keeps widening --
precisely the Levy-foraging trade-off the paper formalizes in
Theorem 1.1(a) (Section 1.2.1).
"""

from __future__ import annotations

import math

from repro.analysis.scaling import fit_power_law, geometric_grid
from repro.distributions.geometric import GeometricJumpDistribution
from repro.distributions.zeta import ZetaJumpDistribution
from repro.engine.vectorized import walk_hitting_times
from repro.experiments.common import (
    Check,
    ExperimentResult,
    default_target,
    experiment_main,
    validate_scale,
)
from repro.reporting.table import Table
from repro.rng import as_generator

EXPERIMENT_ID = "EXT-TAIL"
TITLE = "Ablation: power-law vs exponential jump tail at matched mean"

_ALPHA = 2.5
_CONFIG = {
    # (l grid, n_walks, required long-range advantage)
    # The budget 2 l^(alpha-1) sits well below l^2, so the crossover from
    # geometric-favored (small l) to power-law-favored lands around l ~ 32.
    "smoke": (geometric_grid(16, 64, 3), 10_000, 1.3),
    "small": (geometric_grid(16, 96, 4), 25_000, 1.7),
    "full": (geometric_grid(16, 192, 5), 80_000, 2.5),
}


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    """Hit probability vs distance for matched power-law/geometric walks."""
    scale = validate_scale(scale)
    rng = as_generator(seed)
    l_grid, n_walks, required_advantage = _CONFIG[scale]
    levy = ZetaJumpDistribution(_ALPHA)
    conditional_mean = levy.mean / (1.0 - levy.lazy_probability)
    geometric = GeometricJumpDistribution.with_mean(conditional_mean)
    table = Table(
        ["l", "horizon", "P(hit), power law", "P(hit), geometric", "ratio"],
        title=(
            f"alpha={_ALPHA} power law vs geometric with the same conditional "
            f"mean jump ({conditional_mean:.3f})"
        ),
    )
    levy_points = []
    geometric_points = []
    ratios = []
    for l in l_grid:
        horizon = max(l, int(math.ceil(2.0 * l ** (_ALPHA - 1.0))))
        target = default_target(l)
        p_levy = walk_hitting_times(
            levy, target, horizon=horizon, n=n_walks, rng=rng
        ).hit_fraction
        p_geom = walk_hitting_times(
            geometric, target, horizon=horizon, n=n_walks, rng=rng
        ).hit_fraction
        ratio = p_levy / p_geom if p_geom > 0 else float("inf")
        ratios.append(ratio)
        table.add_row(l, horizon, p_levy, p_geom, ratio)
        if p_levy > 0:
            levy_points.append((float(l), p_levy))
        if p_geom > 0:
            geometric_points.append((float(l), p_geom))
    checks = [
        Check(
            f"the power-law walk wins at long range "
            f"(ratio >= {required_advantage} at l={l_grid[-1]})",
            ratios[-1] >= required_advantage,
            detail=f"ratio {ratios[-1]:.2f}",
        ),
        Check(
            "the power-law advantage widens with distance",
            ratios[-1] > ratios[0],
            detail=" -> ".join(f"{r:.2f}" for r in ratios),
        ),
    ]
    if len(levy_points) >= 3 and len(geometric_points) >= 3:
        fit_levy = fit_power_law(*zip(*levy_points))
        fit_geom = fit_power_law(*zip(*geometric_points))
        checks.append(
            Check(
                "the geometric tail's hit probability decays steeper in l "
                "(slope gap >= 0.3)",
                fit_levy.slope - fit_geom.slope >= 0.3,
                detail=(
                    f"slope(power)={fit_levy.slope:.2f}, "
                    f"slope(geometric)={fit_geom.slope:.2f}"
                ),
            )
        )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        scale=scale,
        seed=seed,
        tables=[table],
        checks=checks,
        notes=[
            "Both walks take jumps of the same average length; only the "
            "tail differs.  The exponential-tail walk diffuses (~sqrt(t) "
            "displacement) and cannot reach distance l within the "
            "super-diffusive budget ~l^(alpha-1) once l is large, so the "
            "long-range advantage is attributable to the heavy tail itself "
            "(it may even lose slightly at short range, where reliable "
            "medium jumps beat occasional huge ones).",
        ],
    )


def main(argv=None) -> int:
    return experiment_main(run, argv)


if __name__ == "__main__":
    raise SystemExit(main())
