"""EXP-L4.13: expected visits to the origin of a capped Levy flight.

Lemma 4.13: conditioned on the cap event ``E_t`` (every jump shorter than
``(t log t)^(1/(alpha-1))``),

* for ``alpha in (2, 3)``: ``E[Z_0(t)] = O(1/(3 - alpha)^2)`` -- a
  constant in ``t`` that blows up as ``alpha`` approaches 3;
* for ``alpha = 3``: ``E[Z_0(t)] = O(log^2 t)``.

The harness estimates ``E[Z_0(t)]`` for increasing ``t`` and checks (i)
saturation in ``t`` for ``alpha < 3`` (the last doubling of ``t`` adds
little), (ii) growth for ``alpha = 3`` consistent with polylog, and
(iii) the cross-``alpha`` trend ``~ 1/(3-alpha)^2``.
"""

from __future__ import annotations

from repro.distributions.zeta import ZetaJumpDistribution
from repro.engine.visits import flight_visit_counts
from repro.experiments.common import Check, ExperimentResult, experiment_main, validate_scale
from repro.reporting.table import Table
from repro.rng import as_generator

EXPERIMENT_ID = "EXP-L4.13"
TITLE = "Visits to the origin of a capped Levy flight  [Lemma 4.13]"

_CONFIG = {
    # (n_flights, t grid)
    "smoke": (4_000, (128, 256, 512)),
    "small": (20_000, (128, 256, 512, 1024)),
    "full": (100_000, (256, 512, 1024, 2048, 4096)),
}
_ALPHAS = (2.2, 2.5, 2.8, 3.0)


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    """Estimate E[Z_0(t)] under the Lemma 4.5 cap, per alpha and t."""
    scale = validate_scale(scale)
    rng = as_generator(seed)
    n_flights, t_grid = _CONFIG[scale]
    table = Table(
        ["alpha"] + [f"E[Z_0({t})]" for t in t_grid] + ["1/(3-alpha)^2"],
        title="Expected origin visits (capped flights)",
    )
    results = {}
    for alpha in _ALPHAS:
        law = ZetaJumpDistribution(alpha)
        row = []
        for t in t_grid:
            capped = law.capped(law.lemma_4_5_cap(t))
            visits = flight_visit_counts(
                capped, [(0, 0)], horizon=t, n=n_flights, rng=rng
            )
            row.append(float(visits[0]))
        results[alpha] = row
        reference = float("inf") if alpha == 3.0 else 1.0 / (3.0 - alpha) ** 2
        table.add_row(alpha, *row, reference)
    checks = []
    for alpha in _ALPHAS[:-1]:
        row = results[alpha]
        # Saturation: the final doubling of t should grow the count by
        # clearly less than the doubling itself (sub-linear growth).
        growth = row[-1] / row[-2] if row[-2] > 0 else float("inf")
        checks.append(
            Check(
                f"alpha={alpha}: E[Z_0(t)] saturates (last doubling grows < 1.5x)",
                growth < 1.5,
                detail=f"growth factor {growth:.3f}",
            )
        )
    # Cross-alpha trend: counts increase toward alpha = 3.
    finals = [results[a][-1] for a in _ALPHAS]
    checks.append(
        Check(
            "E[Z_0(t)] increases with alpha toward the diffusive threshold",
            all(finals[i] <= finals[i + 1] * 1.25 for i in range(len(finals) - 1))
            and finals[-1] > finals[0],
            detail=" -> ".join(f"{v:.2f}" for v in finals),
        )
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        scale=scale,
        seed=seed,
        tables=[table],
        checks=checks,
        notes=[
            "Lemma 4.13 drives Theorem 4.1(a): the hitting probability is the "
            "mean number of target visits divided by (roughly) the mean number "
            "of origin visits, so bounded origin-revisiting is what makes "
            "super-diffusive walks efficient."
        ],
    )


def main(argv=None) -> int:
    return experiment_main(run, argv)


if __name__ == "__main__":
    raise SystemExit(main())
