"""EXP-L3.2: ring marginals of uniform direct paths obey Lemma 3.2.

Lemma 3.2: sample ``v`` uniformly on ``R_d(u)`` and a uniform direct path
``u .. v``; then for every ``1 <= i < d`` and every ``w`` on ``R_i(u)``,

    ``(i/d) floor(d/i) / (4 i) <= P(u_i = w) <= (i/d) ceil(d/i) / (4 i)``.

The check here is *exact*, not Monte-Carlo: the marginal is computed in
closed form from the tie-break structure (see
:func:`repro.lattice.direct_path.ring_marginal_exact`), then every node of
the inner ring is compared against both bounds.
"""

from __future__ import annotations

from repro.experiments.common import Check, ExperimentResult, experiment_main, validate_scale
from repro.lattice.direct_path import ring_marginal_exact
from repro.reporting.table import Table

EXPERIMENT_ID = "EXP-L3.2"
TITLE = "Direct-path ring marginals within Lemma 3.2 bounds (exact check)"

_PAIRS = {
    "smoke": [(8, 3), (12, 5), (16, 7)],
    "small": [(8, 3), (12, 5), (16, 7), (24, 11), (32, 13), (48, 17), (64, 31)],
    "full": [
        (8, 3),
        (12, 5),
        (16, 7),
        (24, 11),
        (32, 13),
        (48, 17),
        (64, 31),
        (96, 37),
        (128, 63),
        (192, 5),
        (256, 200),
    ],
}


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    """Exact verification of Lemma 3.2 on a grid of (d, i) pairs."""
    scale = validate_scale(scale)
    table = Table(
        [
            "d",
            "i",
            "lemma lower",
            "min P(u_i = w)",
            "max P(u_i = w)",
            "lemma upper",
            "ring mass",
        ],
        title="Lemma 3.2 exact ring marginals",
    )
    checks = []
    for d, i in _PAIRS[scale]:
        marginal = ring_marginal_exact(d, i)
        lower = (i / d) * (d // i) / (4 * i)
        upper = (i / d) * (-(-d // i)) / (4 * i)  # ceil via negative floor
        probabilities = list(marginal.values())
        observed_min = min(probabilities)
        observed_max = max(probabilities)
        mass = sum(probabilities)
        table.add_row(d, i, lower, observed_min, observed_max, upper, mass)
        ok = (
            observed_min >= lower - 1e-12
            and observed_max <= upper + 1e-12
            and abs(mass - 1.0) < 1e-9
            and len(marginal) == 4 * i
        )
        checks.append(
            Check(
                f"(d={d}, i={i}): all 4i marginals inside Lemma 3.2 bounds",
                ok,
                detail=f"[{observed_min:.3e}, {observed_max:.3e}] in [{lower:.3e}, {upper:.3e}]",
            )
        )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        scale=scale,
        seed=seed,
        tables=[table],
        checks=checks,
        notes=[
            "The marginal support is the full inner ring and the bounds hold "
            "node-by-node; this is the structural fact behind the O(1) hit "
            "detection of the vectorized engine."
        ],
    )


def main(argv=None) -> int:
    return experiment_main(run, argv)


if __name__ == "__main__":
    raise SystemExit(main())
