"""EXT-LAZY: ablation -- the lazy step P(d=0) = 1/2 is a harmless time dilation.

Eq. (3) gives the walk probability 1/2 of idling for a step at each phase
boundary.  This is an analytical convenience (it makes the embedded
flight aperiodic), not a modelling ingredient: idling only dilates time.
The ablation runs the same walk with laziness 0, 1/2 and 4/5 and checks

* with time budgets scaled by the *expected steps per real jump*
  (``E[d | d >= 1] + p0/(1 - p0)`` -- each nonzero jump drags along a
  Geometric(1 - p0) run of one-step idle phases), the hit probabilities
  coincide, because the embedded nonzero-jump sequence has the same law;
* in raw (unscaled) time, less laziness is simply faster.
"""

from __future__ import annotations

import math

from repro.core.exponents import mu_factor
from repro.distributions.zeta import ZetaJumpDistribution
from repro.engine.vectorized import walk_hitting_times
from repro.experiments.common import (
    Check,
    ExperimentResult,
    default_target,
    experiment_main,
    validate_scale,
)
from repro.reporting.table import Table
from repro.rng import as_generator

EXPERIMENT_ID = "EXT-LAZY"
TITLE = "Ablation: the lazy step of Eq. (3) only dilates time"

_ALPHA = 2.5
_LAZINESS = (0.0, 0.5, 0.8)
_CONFIG = {
    # (l, n_walks)
    "smoke": (24, 10_000),
    "small": (32, 40_000),
    "full": (64, 150_000),
}


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    """Hit probabilities at dilation-matched and raw budgets, per laziness."""
    scale = validate_scale(scale)
    rng = as_generator(seed)
    l, n_walks = _CONFIG[scale]
    target = default_target(l)
    base_budget = max(l, int(math.ceil(4 * mu_factor(_ALPHA, l) * l ** (_ALPHA - 1.0))))
    table = Table(
        [
            "laziness",
            "E[steps/phase]",
            "scaled budget",
            "P(hit <= scaled budget)",
            "P(hit <= raw budget)",
        ],
        title=f"laziness ablation: alpha={_ALPHA}, l={l}, raw budget {base_budget}",
    )
    scaled_probs = {}
    raw_probs = {}

    def steps_per_real_jump(p0: float) -> float:
        conditional_mean = ZetaJumpDistribution(
            _ALPHA, lazy_probability=0.0
        ).mean
        idles = p0 / (1.0 - p0)
        return conditional_mean + idles

    reference_cost = steps_per_real_jump(0.5)
    for laziness in _LAZINESS:
        law = ZetaJumpDistribution(_ALPHA, lazy_probability=laziness)
        cost = steps_per_real_jump(laziness)
        scaled_budget = int(math.ceil(base_budget * cost / reference_cost))
        horizon = max(scaled_budget, base_budget)
        sample = walk_hitting_times(law, target, horizon=horizon, n=n_walks, rng=rng)
        scaled_probs[laziness] = sample.probability_by(scaled_budget)
        raw_probs[laziness] = sample.probability_by(base_budget)
        table.add_row(
            laziness, cost, scaled_budget, scaled_probs[laziness], raw_probs[laziness]
        )
    spread = max(scaled_probs.values()) - min(scaled_probs.values())
    reference = max(scaled_probs.values())
    checks = [
        Check(
            "dilation-matched budgets equalize the hit probability "
            "(relative spread <= 25%)",
            spread <= 0.25 * reference,
            detail=f"probs {sorted(scaled_probs.values())}, spread {spread:.4f}",
        ),
        Check(
            "in raw time, less laziness is monotonically better",
            raw_probs[0.0] >= raw_probs[0.5] >= raw_probs[0.8],
            detail=" >= ".join(f"{raw_probs[p]:.4f}" for p in _LAZINESS),
        ),
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        scale=scale,
        seed=seed,
        tables=[table],
        checks=checks,
        notes=[
            "All three walks share the embedded jump sequence in "
            "distribution; laziness p0 just inserts Geometric(1-p0) idle "
            "steps.  None of the paper's shapes depend on the 1/2.",
        ],
    )


def main(argv=None) -> int:
    return experiment_main(run, argv)


if __name__ == "__main__":
    raise SystemExit(main())
