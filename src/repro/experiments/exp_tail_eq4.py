"""EXP-E4: the jump-length tail really is ``Theta(1/i^(alpha-1))`` (Eq. 4).

For a grid of exponents the harness samples jump distances from the
implemented law, fits the empirical survival slope on log-log axes, and
recovers the exponent with the discrete maximum-likelihood estimator.
Success criterion (DESIGN.md): fitted tail slope within 0.05 + statistics
of ``-(alpha - 1)``, MLE exponent within 0.05 of ``alpha``.
"""

from __future__ import annotations

from repro.analysis.powerlaw import fit_discrete_power_law, tail_exponent_from_survival
from repro.analysis.scaling import fit_power_law, geometric_grid
from repro.distributions.zeta import ZetaJumpDistribution
from repro.experiments.common import Check, ExperimentResult, experiment_main, validate_scale
from repro.reporting.table import Table
from repro.rng import as_generator

EXPERIMENT_ID = "EXP-E4"
TITLE = "Jump-length tail P(d >= i) = Theta(1/i^(alpha-1))  [Eq. (4)]"

_ALPHAS = (1.5, 2.0, 2.5, 3.0, 3.5)
_N_SAMPLES = {"smoke": 50_000, "small": 400_000, "full": 4_000_000}
_SLOPE_TOLERANCE = 0.12
_MLE_TOLERANCE = 0.05


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    """Validate Eq. (4): sample jumps, fit tail slope and MLE exponent."""
    scale = validate_scale(scale)
    rng = as_generator(seed)
    n = _N_SAMPLES[scale]
    table = Table(
        [
            "alpha",
            "tail slope",
            "predicted slope",
            "alpha MLE",
            "KS distance",
            "n tail samples",
        ],
        title="Eq. (4) tail check",
    )
    checks = []
    for alpha in _ALPHAS:
        law = ZetaJumpDistribution(alpha)
        samples = law.sample(rng, n)
        # Fit window: start at i = 8 (below that the Hurwitz-zeta survival
        # curves away from the pure power of Eq. (4)); stop where the
        # expected tail count drops under 50 (beyond that the surviving
        # grid points are conditioned on rare draws and bias the slope).
        hi = 8
        while hi < 400 and float(law.tail(2 * hi)) * n >= 50:
            hi *= 2
        grid = geometric_grid(8, max(hi, 16), 10)
        xs, survival = tail_exponent_from_survival(samples, grid)
        fit = fit_power_law(xs, survival)
        mle = fit_discrete_power_law(samples)
        table.add_row(
            alpha, fit.slope, -(alpha - 1.0), mle.alpha, mle.ks_distance, mle.n_samples
        )
        checks.append(
            Check(
                f"alpha={alpha}: survival slope ~ -(alpha-1)",
                fit.compatible_with(-(alpha - 1.0), tolerance=_SLOPE_TOLERANCE),
                detail=f"slope {fit.slope:.3f} vs {-(alpha - 1.0):.3f}",
            )
        )
        checks.append(
            Check(
                f"alpha={alpha}: MLE recovers the exponent",
                abs(mle.alpha - alpha) < _MLE_TOLERANCE,
                detail=f"alpha_hat {mle.alpha:.3f}",
            )
        )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        scale=scale,
        seed=seed,
        tables=[table],
        checks=checks,
    )


def main(argv=None) -> int:
    return experiment_main(run, argv)


if __name__ == "__main__":
    raise SystemExit(main())
