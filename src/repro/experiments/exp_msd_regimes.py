"""EXP-MSD: displacement growth identifies the three regimes.

Section 1.2.1 characterizes the regimes by spreading speed: after ``t``
steps a Levy walk's typical displacement grows like ``t`` (ballistic,
alpha <= 2), like ``t^(1/(alpha-1))`` (super-diffusive, 2 < alpha < 3;
"in the first t_l = Theta(l^(alpha-1)) steps the walk stays inside a ball
of radius t_l polylog"), and like ``sqrt(t)`` (diffusive, alpha >= 3).

The harness estimates the *median* L1 displacement (robust against the
heavy tail, whose raw second moment diverges) on a geometric time grid
and fits the growth exponent per regime.
"""

from __future__ import annotations

from repro.analysis.msd import displacement_profile
from repro.analysis.scaling import fit_power_law, geometric_grid
from repro.distributions.unit import UnitJumpDistribution
from repro.distributions.zeta import ZetaJumpDistribution
from repro.experiments.common import Check, ExperimentResult, experiment_main, validate_scale
from repro.reporting.table import Table
from repro.reporting.text_plots import ascii_loglog
from repro.rng import as_generator
from repro.theory.predictions import msd_exponent

EXPERIMENT_ID = "EXP-MSD"
TITLE = "Displacement growth per regime: t, t^(1/(alpha-1)), sqrt(t)  [Section 1.2.1]"

_CONFIG = {
    # (n_walks, max step)
    "smoke": (2_000, 1_024),
    "small": (8_000, 4_096),
    "full": (30_000, 16_384),
}
_ALPHAS = (1.5, 2.5, 3.5)
_TOLERANCE = 0.22


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    """Fit displacement growth exponents for one alpha per regime."""
    scale = validate_scale(scale)
    rng = as_generator(seed)
    n_walks, max_step = _CONFIG[scale]
    steps = geometric_grid(16, max_step, 7)
    table = Table(
        ["law", "predicted exponent", "fitted exponent", "stderr", "R^2"],
        title=f"median L1 displacement growth over steps {steps}",
    )
    checks = []
    series = {}
    laws = [(f"alpha={a}", ZetaJumpDistribution(a), msd_exponent(a)) for a in _ALPHAS]
    laws.append(("lazy SRW", UnitJumpDistribution(), 0.5))
    for label, law, predicted in laws:
        profile = displacement_profile(law, steps, n_walks, rng)
        points = [
            (float(t), float(d))
            for t, d in zip(profile.steps, profile.median_l1)
            if d > 0
        ]
        series[label] = points
        fit = fit_power_law([p[0] for p in points], [p[1] for p in points])
        table.add_row(label, predicted, fit.slope, fit.stderr, fit.r_squared)
        checks.append(
            Check(
                f"{label}: displacement ~ t^{predicted:.2f}",
                fit.compatible_with(predicted, tolerance=_TOLERANCE),
                detail=str(fit),
            )
        )
    plot = ascii_loglog(series, title="median displacement vs steps (log-log)")
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        scale=scale,
        seed=seed,
        tables=[table],
        checks=checks,
        plots=[plot],
        notes=[
            "The super-diffusive exponent 1/(alpha-1) is what makes alpha* "
            "work: a walk with alpha = alpha*(k, l) spends ~l^(alpha-1) "
            "steps exactly reaching the target scale l.",
        ],
    )


def main(argv=None) -> int:
    return experiment_main(run, argv)


if __name__ == "__main__":
    raise SystemExit(main())
