"""EXT-COVER: Levy walks barely re-visit -- the efficiency mechanism.

Why is a super-diffusive walk a good searcher per step?  Because almost
every step lands on a *new* node: Lemma 4.13 bounds the expected number
of returns to the origin by a constant (for ``alpha < 3``), and the same
geometry keeps the whole trajectory nearly self-avoiding.  A diffusive
walk, in contrast, re-covers its neighbourhood relentlessly (the classic
``t / log t`` distinct-sites law of 2D random walks), wasting most steps.

The harness records full exact trajectories and measures the fraction of
steps that discover a new node, per exponent and time budget:

* ballistic and super-diffusive walks keep the fraction near a constant;
* diffusive walks' fraction is lower and keeps *decaying* with the budget
  (the ``1 / log t`` signature);
* the ordering ballistic > super-diffusive > diffusive > SRW holds at
  every budget.
"""

from __future__ import annotations

import numpy as np

from repro.distributions.unit import UnitJumpDistribution
from repro.distributions.zeta import ZetaJumpDistribution
from repro.engine.trajectories import distinct_nodes_visited, walk_trajectories
from repro.experiments.common import Check, ExperimentResult, experiment_main, validate_scale
from repro.reporting.table import Table
from repro.rng import as_generator

EXPERIMENT_ID = "EXT-COVER"
TITLE = "Distinct nodes per step: Levy walks barely re-visit  [mechanism of Lemma 4.13]"

_CONFIG = {
    # (step budgets, n_walks)
    "smoke": ((256, 1024), 300),
    "small": ((256, 1024, 4096), 600),
    "full": ((256, 1024, 4096, 16384), 2_000),
}
_LAWS = (
    ("alpha=1.5 (ballistic)", ZetaJumpDistribution(1.5)),
    ("alpha=2.5 (super-diffusive)", ZetaJumpDistribution(2.5)),
    ("alpha=3.5 (diffusive)", ZetaJumpDistribution(3.5)),
    ("lazy SRW", UnitJumpDistribution()),
)


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    """Measure mean distinct-nodes-per-step across laws and budgets."""
    scale = validate_scale(scale)
    rng = as_generator(seed)
    budgets, n_walks = _CONFIG[scale]
    table = Table(
        ["law"] + [f"new-node fraction, t={t}" for t in budgets],
        title="mean (distinct nodes - 1) / steps",
    )
    fractions = {}
    for label, law in _LAWS:
        row = []
        for t in budgets:
            trajectories = walk_trajectories(law, horizon=t, n=n_walks, rng=rng)
            distinct = distinct_nodes_visited(trajectories)
            row.append(float(np.mean((distinct - 1) / t)))
        fractions[label] = row
        table.add_row(label, *row)
    labels = [label for label, _ in _LAWS]
    last = {label: fractions[label][-1] for label in labels}
    checks = [
        Check(
            "ordering at the largest budget: ballistic > super-diffusive > "
            "diffusive > SRW",
            last[labels[0]] > last[labels[1]] > last[labels[2]] > last[labels[3]],
            detail=" > ".join(f"{last[label]:.3f}" for label in labels),
        ),
        Check(
            "the super-diffusive walk keeps a near-constant new-node "
            "fraction as the budget grows (drop <= 25%)",
            fractions[labels[1]][-1] >= 0.75 * fractions[labels[1]][0],
            detail=" -> ".join(f"{v:.3f}" for v in fractions[labels[1]]),
        ),
        Check(
            "the SRW's new-node fraction keeps decaying with the budget "
            "(the 2D t/log t law)",
            fractions[labels[3]][-1] <= 0.9 * fractions[labels[3]][0],
            detail=" -> ".join(f"{v:.3f}" for v in fractions[labels[3]]),
        ),
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        scale=scale,
        seed=seed,
        tables=[table],
        checks=checks,
        notes=[
            "This is the per-trajectory face of Lemma 4.13: bounded "
            "re-visiting means visits spread over Theta(t) distinct nodes, "
            "which is exactly what the A2-annulus accounting of Lemma 4.12 "
            "converts into a hitting-probability lower bound.",
        ],
    )


def main(argv=None) -> int:
    return experiment_main(run, argv)


if __name__ == "__main__":
    raise SystemExit(main())
