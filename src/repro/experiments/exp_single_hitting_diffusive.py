"""EXP-T1.2: single-walk hitting bounds, diffusive regime (alpha >= 3).

Theorem 1.2: for ``alpha >= 3`` a single Levy walk behaves like a simple
random walk:

(a) ``P(tau = O(l^2 log^2 l)) = Omega(1/log^4 l)`` -- on a budget of
    ``~ l^2 polylog``, the hit probability decays only polylogarithmically
    in ``l`` (log-log slope ~ 0, in stark contrast to the polynomial decay
    of the other regimes);
(b) ``P(tau <= t) = O(t^2 log l / l^4)`` for ``l <= t = O(l^2)`` --
    quadratic early growth, as in the super-diffusive regime.

The harness measures both, for the threshold ``alpha = 3`` and a strictly
diffusive ``alpha``, plus the lazy SRW as the ``alpha -> inf`` limit.
"""

from __future__ import annotations

import math

from repro.analysis.scaling import fit_power_law, geometric_grid
from repro.distributions.unit import UnitJumpDistribution
from repro.distributions.zeta import ZetaJumpDistribution
from repro.experiments.common import (
    Check,
    ExperimentResult,
    default_target,
    experiment_main,
    sample_hitting_times,
    validate_scale,
)
from repro.reporting.table import Table
from repro.rng import as_generator
from repro.theory.horizons import early_time_grid

EXPERIMENT_ID = "EXP-T1.2"
TITLE = "Single-walk hitting probability, alpha >= 3  [Theorem 1.2 / 4.3]"

_CONFIG = {
    # (alphas, l grid, n_walks, n_walks part (b), l part (b))
    "smoke": ((3.0,), geometric_grid(6, 16, 3), 1_200, 6_000, 10),
    "small": ((3.0, 3.5), geometric_grid(8, 32, 4), 3_000, 20_000, 16),
    "full": ((3.0, 3.5, 4.0), geometric_grid(8, 64, 5), 10_000, 60_000, 24),
}
#: Diffusive budgets: c * l^2 * log(l)^2 steps (Theorem 1.2(a)).
_HORIZON_FACTOR = 1.0


def _diffusive_horizon(l: int) -> int:
    return max(4 * l, int(math.ceil(_HORIZON_FACTOR * l * l * math.log(l) ** 2)))


def run(scale: str = "small", seed: int = 0, runner=None) -> ExperimentResult:
    """Measure Theorem 1.2's flat-in-l plateau and quadratic early growth.

    ``runner`` optionally routes the sampling through the checkpointed,
    resumable chunk runner (see :mod:`repro.runner`).
    """
    scale = validate_scale(scale)
    rng = as_generator(seed)
    alphas, l_grid, n_walks, n_walks_b, l_for_b = _CONFIG[scale]

    table_a = Table(
        ["law", "l", "horizon", "P(tau <= horizon)", "hits"],
        title="(a) hit probability within l^2 log^2 l steps",
    )
    checks = []
    laws = [(f"alpha={a}", ZetaJumpDistribution(a)) for a in alphas]
    laws.append(("lazy SRW", UnitJumpDistribution()))
    for label, law in laws:
        points = []
        for l in l_grid:
            horizon = _diffusive_horizon(l)
            sample = sample_hitting_times(
                law,
                default_target(l),
                horizon,
                n_walks,
                rng,
                runner=runner,
                label=f"a-{label.replace(' ', '_')}-l{l}",
            )
            table_a.add_row(label, l, horizon, sample.hit_fraction, sample.n_hits)
            if sample.n_hits:
                points.append((float(l), sample.hit_fraction))
        if len(points) >= 3:
            fit = fit_power_law([p[0] for p in points], [p[1] for p in points])
            checks.append(
                Check(
                    f"{label}: hit probability is flat in l up to polylogs "
                    "(|slope| well below the super-diffusive decay)",
                    fit.compatible_with(0.0, tolerance=0.6),
                    detail=str(fit),
                )
            )

    # Part (b): early-time quadratic growth at the threshold alpha = 3.
    law_b = ZetaJumpDistribution(3.0)
    horizon_b = _diffusive_horizon(l_for_b)
    sample_b = sample_hitting_times(
        law_b,
        default_target(l_for_b),
        horizon_b,
        n_walks_b,
        rng,
        runner=runner,
        label="b-early",
    )
    t_grid = early_time_grid(3.0, l_for_b, n_points=5)
    table_b = Table(
        ["t", "P(tau <= t)", "hits"],
        title=f"(b) early-deadline probability, alpha=3, l={l_for_b}",
    )
    early_points = []
    for t in t_grid:
        p = sample_b.probability_by(min(t, horizon_b))
        hits = int(round(p * sample_b.n))
        table_b.add_row(t, p, hits)
        if hits >= 5:
            early_points.append((float(t), p))
    if len(early_points) >= 3:
        fit_b = fit_power_law(
            [p[0] for p in early_points], [p[1] for p in early_points]
        )
        checks.append(
            Check(
                "alpha=3: early P(tau <= t) grows ~ t^2",
                fit_b.compatible_with(2.0, tolerance=0.75),
                detail=str(fit_b),
            )
        )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        scale=scale,
        seed=seed,
        tables=[table_a, table_b],
        checks=checks,
        notes=[
            "The lazy simple random walk row is the alpha -> infinity limit; "
            "its numbers should bracket the large-alpha Levy rows."
        ],
    )


def main(argv=None) -> int:
    return experiment_main(run, argv)


if __name__ == "__main__":
    raise SystemExit(main())
