"""EXP-C1.4: how parallelism speeds up the search, regime by regime.

Three corollaries quantify the value of adding walks:

* Corollary 1.4 (fixed ``alpha`` in (2,3)): within the characteristic
  time ``O(l^(alpha-1))``, the parallel success probability is
  ``1 - exp(-Theta(k / l^(3-alpha) log^2 l))`` -- i.e. it matches the
  independent-trials formula ``1 - (1-p)^k`` built from the single-walk
  probability ``p``;
* Theorem 1.5 / Eq. (1) (tuned ``alpha`` per ``k``): the parallel time
  scales as ``~ l^2 / k`` until the distance floor ``l`` bites;
* Corollary 5.3 (ballistic): ``k = omega(l log^2 l)`` walks make the
  spray strategy succeed w.h.p., fewer leave it failing -- the threshold
  is linear in ``l``.
"""

from __future__ import annotations


import numpy as np

from repro.analysis.scaling import fit_power_law
from repro.baselines.ballistic_search import BallisticSpraySearch
from repro.core.exponents import mu_factor
from repro.core.strategies import OracleExponentStrategy
from repro.distributions.zeta import ZetaJumpDistribution
from repro.experiments.common import (
    Check,
    ExperimentResult,
    default_target,
    experiment_main,
    validate_scale,
)
from repro.reporting.table import Table
from repro.rng import as_generator
from repro.runner.tasks import HittingTimeTask
from repro.sweep import SweepSpec, run_sweep

EXPERIMENT_ID = "EXP-C1.4"
TITLE = "Parallel speedup: fixed, tuned and ballistic exponents  [Cor 1.4 / Eq.(1) / Cor 5.3]"

_CONFIG = {
    # (l, k grid, n_single pool, n_groups, n_runs oracle, n ballistic
    #  agents, part-2 slope window)
    #
    # The slope window is per scale: groups that miss the target within
    # H=l^2 pay the full deadline, and that penalty mass flattens the
    # penalized-mean decay well above the asymptotic -1 -- measured
    # slopes across seeds are ~-0.3 at l=32, ~-0.33 +- 0.09 at l=64 and
    # ~-0.42 +- 0.11 at l=96, so each scale's upper edge sits ~2 sigma
    # above its typical estimate.
    "smoke": (32, (4, 8, 16, 32), 4_000, 500, 40, 40_000, (-1.3, -0.1)),
    "small": (64, (4, 8, 16, 32, 64, 256), 8_000, 800, 25, 100_000, (-1.3, -0.15)),
    "full": (96, (4, 8, 16, 32, 96, 384, 1024), 20_000, 2_000, 60, 400_000, (-1.3, -0.2)),
}
_FIXED_ALPHA = 2.5


def run(scale: str = "small", seed: int = 0, runner=None) -> ExperimentResult:
    """Measure success-vs-k (fixed alpha), time-vs-k (oracle), and the
    ballistic k threshold."""
    scale = validate_scale(scale)
    rng = as_generator(seed)
    l, k_grid, n_single, n_groups, n_runs, n_ballistic, slope_window = _CONFIG[scale]
    target = default_target(l)
    checks = []

    # ------------------------- part 1: fixed alpha, success prob vs k
    # One single-point sweep draws the shared single-walk pool; each k is
    # a bootstrap regrouping of that pool (the k walks of a group are
    # i.i.d., so resampling is exact in distribution).
    deadline = max(l, int(4 * mu_factor(_FIXED_ALPHA, l) * l ** (_FIXED_ALPHA - 1.0)))
    pool_spec = SweepSpec(
        axes={"alpha": (_FIXED_ALPHA,)},
        defaults={"l": l},
        n=n_single,
        horizon=deadline,
    )
    pool_sweep = run_sweep(
        pool_spec, seed=int(rng.integers(2**63 - 1)), runner=runner,
        label="exp-c14-pool",
    )
    pool_point = pool_sweep.one(alpha=_FIXED_ALPHA)
    p_single = pool_point.sample.hit_fraction
    table1 = Table(
        ["k", "measured success", "1-(1-p)^k from single p"],
        title=(
            f"(1) fixed alpha={_FIXED_ALPHA}, l={l}: parallel success within "
            f"t_l={deadline} (single-walk p={p_single:.4f})"
        ),
    )
    max_err = 0.0
    for k in k_grid:
        parallel = pool_point.bootstrap(k, n_groups)
        measured = float((parallel >= 0).mean())
        predicted = 1.0 - (1.0 - p_single) ** k
        max_err = max(max_err, abs(measured - predicted))
        table1.add_row(k, measured, predicted)
    checks.append(
        Check(
            "fixed alpha: success matches the independent-trials formula "
            "1-(1-p)^k (Cor 1.4 mechanism)",
            max_err < 0.08,
            detail=f"max |measured - predicted| = {max_err:.3f}",
        )
    )

    # ------------------------- part 2: oracle alpha per k, time vs k
    # The k axis with an oracle-tuned law per point: n_runs groups of k
    # walks each, reduced exactly (consecutive blocks) to parallel times.
    oracle_spec = SweepSpec(
        axes={"k": list(k_grid)},
        defaults={"l": l},
        n=lambda p: n_runs * p["k"],
        horizon=l * l,
        k=lambda p: p["k"],
        task=lambda p, horizon: HittingTimeTask(
            jumps=ZetaJumpDistribution(
                OracleExponentStrategy(p["l"]).exponent_for(p["k"])
            ),
            target=default_target(p["l"]),
            horizon=horizon,
        ),
    )
    oracle_sweep = run_sweep(
        oracle_spec, seed=int(rng.integers(2**63 - 1)), runner=runner,
        label="exp-c14-oracle",
    )
    table2 = Table(
        ["k", "oracle alpha", "success", "penalized mean parallel time"],
        title=f"(2) tuned exponent per k (Theorem 1.5), l={l}, horizon l^2={l*l}",
    )
    points = []
    for point in oracle_sweep:
        k = int(point.params["k"])
        parallel = point.parallel
        mean_capped = float(
            np.where(parallel < 0, point.point.horizon, parallel).mean()
        )
        table2.add_row(
            k,
            OracleExponentStrategy(l).exponent_for(k),
            point.group_success,
            mean_capped,
        )
        points.append((float(k), mean_capped))
    # Fit only where l^2/k still dominates the distance floor l (k <= l):
    # beyond that Eq. (1) predicts the flat l-floor, not a -1 slope.
    fit_points = [p for p in points if p[0] <= l]
    fit = fit_power_law([p[0] for p in fit_points], [p[1] for p in fit_points])
    low, high = slope_window
    checks.append(
        Check(
            "tuned exponent: parallel time decays polynomially in k for "
            f"k <= l (slope in [{low}, {high}]; -1 pure, bent by polylogs "
            "and the deadline penalty)",
            low <= fit.slope <= high,
            detail=str(fit),
        )
    )

    # ------------------------- part 3: ballistic threshold in k (Cor 5.3)
    spray = BallisticSpraySearch(k=1)
    agents = spray.agent_hitting_times(target, horizon=4 * l, n_agents=n_ballistic, rng=rng)
    p_ray = agents.hit_fraction
    table3 = Table(
        ["k", "success = 1-(1-p)^k"],
        title=f"(3) ballistic spray, l={l}: per-ray p={p_ray:.5f} (~ {p_ray * l:.2f}/l)",
    )
    k_small = max(1, l // 4)
    k_large = 16 * l  # per-ray p ~ 1/(4l), so 16l rays give 1 - e^-4
    for k in sorted({k_small, l, 4 * l, k_large}):
        table3.add_row(k, 1.0 - (1.0 - p_ray) ** k)
    success_small = 1.0 - (1.0 - p_ray) ** k_small
    success_large = 1.0 - (1.0 - p_ray) ** k_large
    checks.append(
        Check(
            "ballistic spray: k ~ l/4 fails often, k ~ 16l succeeds w.h.p. "
            "(Cor 5.3's linear-in-l threshold)",
            success_small < 0.6 and success_large > 0.9,
            detail=f"success(k={k_small})={success_small:.3f}, success(k={k_large})={success_large:.3f}",
        )
    )
    checks.append(
        Check(
            "ballistic per-ray hit probability is Theta(1/l)",
            0.2 < p_ray * l < 3.0,
            detail=f"p * l = {p_ray * l:.2f}",
        )
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        scale=scale,
        seed=seed,
        tables=[table1, table2, table3],
        checks=checks,
        notes=[
            "Part (2)'s slope flattens toward the right once l^2/k drops "
            "below the universal distance floor l -- exactly Eq. (1)'s "
            "l^2/k + l shape.",
        ],
    )


def main(argv=None) -> int:
    return experiment_main(run, argv)


if __name__ == "__main__":
    raise SystemExit(main())
