"""EXP-T1.5: the optimal exponent is ``alpha* = 3 - log k / log l``.

Theorem 1.5 / Corollary 4.2: for ``k`` parallel walks and a target at
distance ``l`` (with ``polylog l <= k <= l polylog l``) there is a unique
optimal common exponent ``alpha*(k, l) = 3 - log k / log l`` (plus an
``O(log log l / log l)`` nudge upward):

* at ``alpha ~ alpha*`` the parallel hitting time is ``~ (l^2/k) polylog``
  w.h.p. (Corollary 4.2(a));
* over-shooting by a constant multiplies the time by ``poly(l)``
  (Corollary 4.2(b));
* under-shooting leaves the target unfound *forever* with probability
  ``1 - o(1)`` (Corollary 4.2(c)) -- walks fly past the target scale.

The harness sweeps ``alpha`` for several ``(k, l)`` cells, estimates the
median parallel hitting time (via a single-walk pool and bootstrap
grouping -- valid because the ``k`` walks are i.i.d.), and locates the
empirical optimum.  The expected picture is a U-shaped (in fact
checkmark-shaped) curve whose argmin tracks ``alpha*`` as ``(k, l)``
varies -- the paper's "no universally optimal exponent" message.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.estimators import censored_median
from repro.core.exponents import optimal_exponent
from repro.experiments.common import (
    Check,
    ExperimentResult,
    experiment_main,
    validate_scale,
)
from repro.reporting.table import Table
from repro.sweep import SweepSpec, run_sweep

EXPERIMENT_ID = "EXP-T1.5"
TITLE = "Unique optimal exponent alpha* = 3 - log k / log l  [Theorem 1.5 / Cor 4.2]"

_ALPHA_SWEEP = tuple(np.round(np.arange(2.0, 3.01, 0.2), 3))
_ALPHA_SWEEP_FINE = tuple(np.round(np.arange(2.0, 3.01, 0.125), 3))

_CONFIG = {
    # (cells [(k, l), ...], alpha sweep, n_single, n_groups, edge factor,
    #  check right edge too?)
    #
    # Cell choice: the unique-alpha* window needs k clearly above the
    # polylog floor yet at most ~l (Theorem 1.5's window); at small l the
    # polylog floor swallows everything, so cells use l >= 64.
    #
    # The right-edge (overshoot) check only runs at full scale: capping
    # penalized times at H=l^2 compresses the alpha=3 penalty to ~1.0-1.2x
    # for l <= 96, which straddles any usable threshold seed to seed.
    "smoke": ([(32, 64)], _ALPHA_SWEEP, 2_500, 500, 1.5, False),
    "small": ([(48, 96)], _ALPHA_SWEEP_FINE, 5_000, 800, 1.2, False),
    "full": (
        [(32, 64), (48, 96), (24, 128), (96, 128)],
        _ALPHA_SWEEP_FINE,
        12_000,
        2_000,
        1.3,
        True,
    ),
}
#: Where the empirical argmin must fall relative to alpha*: the theorem's
#: own optimum is alpha* + 5 log log l / log l, which at finite l is a
#: substantial upward shift, so the window is asymmetric.
_WINDOW_BELOW = 0.2
_WINDOW_ABOVE = 0.85


def run(scale: str = "small", seed: int = 0, runner=None) -> ExperimentResult:
    """Sweep alpha per (k, l) cell and locate the empirical optimum."""
    scale = validate_scale(scale)
    cells, alpha_sweep, n_single, n_groups, edge_factor, check_right = _CONFIG[scale]
    # The whole experiment is ONE declarative grid: (k, l) cells crossed
    # with the alpha axis, a single-walk pool per point, bootstrap
    # parallel groups of the cell's k.  The pool horizon must comfortably
    # exceed the *worst* strategy's median parallel time; l^2 does (a
    # single diffusive walk already hits within ~l^2 polylog with
    # 1/polylog probability, and we run k of them).
    spec = SweepSpec(
        axes={
            "cell": [{"k": k, "l": l} for k, l in cells],
            "alpha": [float(a) for a in alpha_sweep],
        },
        n=n_single,
        horizon=lambda p: p["l"] * p["l"],
        k=lambda p: p["k"],
        n_groups=n_groups,
    )
    sweep = run_sweep(spec, seed=seed, runner=runner, label="exp-t15")
    tables = []
    checks = []
    notes = []
    for k, l in cells:
        alpha_star = optimal_exponent(k, l)
        horizon = l * l
        table = Table(
            [
                "alpha",
                "single-walk P(tau <= H)",
                "group success rate",
                "median parallel time",
                "penalized mean time",
            ],
            title=(
                f"k={k}, l={l}: alpha sweep "
                f"(alpha*={alpha_star:.3f}, horizon H={horizon})"
            ),
        )
        success_rates = {}
        penalized = {}
        for point in sweep.select(k=k, l=l):
            alpha = float(point.params["alpha"])
            parallel = point.parallel
            success = point.group_success
            median = censored_median(parallel, horizon)
            # Penalized mean: a group that never finds the target "pays"
            # the full deadline H.  Smooth in alpha, integrates both the
            # never-found mass (Cor 4.2(c)) and the slowdown (Cor 4.2(b)).
            mean_capped = float(np.where(parallel < 0, horizon, parallel).mean())
            success_rates[alpha] = success
            penalized[alpha] = mean_capped
            table.add_row(
                alpha, point.sample.hit_fraction, success, median, mean_capped
            )
        tables.append(table)
        best_alpha = min(penalized, key=penalized.get)
        best_time = penalized[best_alpha]
        checks.append(
            Check(
                f"k={k}, l={l}: empirical optimum tracks alpha* "
                f"(within [-{_WINDOW_BELOW}, +{_WINDOW_ABOVE}])",
                alpha_star - _WINDOW_BELOW <= best_alpha <= alpha_star + _WINDOW_ABOVE,
                detail=f"argmin {best_alpha:.3f} vs alpha* {alpha_star:.3f}",
            )
        )
        # Left edge (alpha below alpha*): Corollary 4.2(c)'s never-found
        # regime -- the group success rate must drop markedly.
        best_success = max(success_rates.values())
        left_success = success_rates[float(alpha_sweep[0])]
        checks.append(
            Check(
                f"k={k}, l={l}: undershooting to alpha={alpha_sweep[0]} leaves "
                "many groups empty-handed (Cor 4.2(c))",
                left_success <= best_success - 0.10,
                detail=f"success {left_success:.2f} vs best {best_success:.2f}",
            )
        )
        if check_right:
            right_time = penalized[float(alpha_sweep[-1])]
            checks.append(
                Check(
                    f"k={k}, l={l}: overshooting to alpha={alpha_sweep[-1]} "
                    f"costs >= {edge_factor}x in penalized mean (Cor 4.2(b))",
                    right_time >= edge_factor * best_time,
                    detail=f"{right_time:.0f} vs best {best_time:.0f}",
                )
            )
    notes.append(
        "Medians are over bootstrap groups of k single walks (the k walks of "
        "a group are i.i.d., so grouping resampled walks is exact in "
        "distribution up to pool-reuse correlation)."
    )
    notes.append(
        "'inf' medians mean that fewer than half of the k-walk groups found "
        "the target within H at all -- for alpha below alpha* this is "
        "Corollary 4.2(c)'s never-found regime, not slow convergence."
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        scale=scale,
        seed=seed,
        tables=tables,
        checks=checks,
        notes=notes,
    )


def main(argv=None) -> int:
    return experiment_main(run, argv)


if __name__ == "__main__":
    raise SystemExit(main())
