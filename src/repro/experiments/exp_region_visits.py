"""EXP-L4.12: where a capped flight spends its time (A1 / A2 / A3).

The engine room of Theorem 4.1(a)'s proof is an accounting argument
(Lemmas 4.8, 4.11, 4.12): run a capped Levy flight for ``t =
Theta(l^(alpha-1))`` jumps and split its ``t`` endpoint visits between

* ``A1 = Q_l(0)``            -- at most ``c t`` visits, ``c < 1`` (Lemma 4.8:
  once the walk has moved distance ``5l/2`` away, three disjoint boxes are
  each at least as likely as ``Q_l(0)``, Figure 3);
* ``A3`` (distance >= ``2 (t log t)^(1/(alpha-1))``) -- ``O(t / ((3 -
  alpha) log t))`` visits (Lemma 4.11, Chebyshev on the capped jumps);
* the annulus ``A2`` in between -- everything else, i.e. ``Omega(t)``
  visits land at distance between ``l`` and ``l polylog``, where each node
  is at most as likely as the target (monotonicity), which lower-bounds
  the target's hitting probability.

The harness measures the three visit counts and checks the fractions.
"""

from __future__ import annotations

import math

from repro.distributions.zeta import ZetaJumpDistribution
from repro.engine.visits import flight_region_visits
from repro.experiments.common import Check, ExperimentResult, experiment_main, validate_scale
from repro.reporting.table import Table
from repro.rng import as_generator

EXPERIMENT_ID = "EXP-L4.12"
TITLE = "Visit accounting A1/A2/A3 of a capped flight  [Lemmas 4.8, 4.11, 4.12]"

_CONFIG = {
    # (l grid, n_flights)
    "smoke": ((16, 32), 3_000),
    "small": ((16, 32, 64), 10_000),
    "full": ((24, 48, 96, 160), 40_000),
}
_ALPHAS = (2.3, 2.6)


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    """Measure the A1/A2/A3 visit split for a grid of (alpha, l)."""
    scale = validate_scale(scale)
    rng = as_generator(seed)
    l_grid, n_flights = _CONFIG[scale]
    table = Table(
        [
            "alpha",
            "l",
            "t jumps",
            "cap",
            "A1 fraction (box)",
            "A2 fraction (annulus)",
            "A3 fraction (far)",
        ],
        title="visit fractions per region (fractions of t)",
    )
    checks = []
    for alpha in _ALPHAS:
        for l in l_grid:
            # Lemma 4.8 needs t = C l^(alpha-1) with C large enough that a
            # jump of length >= 5l occurs early; C = 8 suffices empirically
            # at these scales (the paper's constant is larger still).
            t = max(8, int(math.ceil(8.0 * l ** (alpha - 1.0))))
            law = ZetaJumpDistribution(alpha)
            cap = law.lemma_4_5_cap(t)
            far_radius = 2 * cap
            visits = flight_region_visits(
                law.capped(cap),
                box_radius=l,
                far_radius=far_radius,
                horizon=t,
                n=n_flights,
                rng=rng,
            )
            fractions = visits / t
            table.add_row(alpha, l, t, cap, *fractions)
            checks.append(
                Check(
                    f"alpha={alpha}, l={l}: visits to the box A1 stay below "
                    "Lemma 4.8's 37/64 fraction",
                    fractions[0] <= 37.0 / 64.0,
                    detail=f"A1 fraction {fractions[0]:.3f} vs 0.578",
                )
            )
            checks.append(
                Check(
                    f"alpha={alpha}, l={l}: a constant fraction of visits "
                    "lands in the annulus A2 (>= 30%)",
                    fractions[1] >= 0.30,
                    detail=f"A2 fraction {fractions[1]:.3f}",
                )
            )
            checks.append(
                Check(
                    f"alpha={alpha}, l={l}: the far region A3 absorbs almost "
                    "nothing (< 10%, Lemma 4.11)",
                    fractions[2] < 0.10,
                    detail=f"A3 fraction {fractions[2]:.3f}",
                )
            )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        scale=scale,
        seed=seed,
        tables=[table],
        checks=checks,
        notes=[
            "A2's share is what turns into the hitting-probability lower "
            "bound: |A2| ~ (t log t)^(2/(alpha-1)) nodes, each at most as "
            "likely as the target, so P(hit) >= Omega(t / |A2|) -- Theorem "
            "4.1(a)'s 1/(gamma l^(3-alpha)).",
        ],
    )


def main(argv=None) -> int:
    return experiment_main(run, argv)


if __name__ == "__main__":
    raise SystemExit(main())
