"""EXP-L3.9: the monotonicity property of monotone radial processes.

Lemma 3.9: for a Levy flight (a monotone radial process) and any step
``t``, ``P(J_t = u) >= P(J_t = v)`` whenever ``||v||_inf >= ||u||_1``.
In words: any node of the box-boundary at L-infinity radius ``r`` is at
most as likely to be occupied as any node within L1 radius ``r``.

Monte-Carlo estimates are noisy node-by-node, so the harness aggregates:
it estimates ``P(J_t = .)`` on a grid, then compares the *minimum* over
nodes with ``||u||_1 <= r`` (the quantity the lemma lower-bounds) against
the *maximum* over nodes with ``||v||_inf >= r`` inside the observation
window, requiring the lemma's inequality to hold up to binomial noise.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.estimators import wilson_bounds
from repro.distributions.zeta import ZetaJumpDistribution
from repro.engine.exact_occupation import flight_occupation_exact
from repro.engine.visits import flight_occupation_grid
from repro.experiments.common import Check, ExperimentResult, experiment_main, validate_scale
from repro.reporting.table import Table
from repro.rng import as_generator

EXPERIMENT_ID = "EXP-L3.9"
TITLE = "Monotonicity of the Levy flight occupation law  [Lemma 3.9]"

_CONFIG = {
    # (n_flights, n_jumps, window_radius, radii to compare)
    "smoke": (60_000, 8, 12, (2, 4, 6)),
    "small": (400_000, 12, 16, (2, 4, 6, 8)),
    "full": (4_000_000, 16, 24, (2, 4, 6, 8, 12)),
}


def _l1_grid(radius: int) -> np.ndarray:
    coords = np.arange(-radius, radius + 1)
    xs, ys = np.meshgrid(coords, coords, indexing="ij")
    return np.abs(xs) + np.abs(ys)


def _linf_grid(radius: int) -> np.ndarray:
    coords = np.arange(-radius, radius + 1)
    xs, ys = np.meshgrid(coords, coords, indexing="ij")
    return np.maximum(np.abs(xs), np.abs(ys))


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    """Estimate P(J_t = .) for a flight and check Lemma 3.9's inequality."""
    scale = validate_scale(scale)
    rng = as_generator(seed)
    n_flights, n_jumps, radius, compare_radii = _CONFIG[scale]
    alpha = 2.5
    law = ZetaJumpDistribution(alpha)
    # Raw counts, not frequencies: the Wilson bounds below need the exact
    # success counts (rebuilding them as round(p * n) is lossy).
    count_grid = flight_occupation_grid(
        law, horizon=n_jumps, n=n_flights, radius=radius, rng=rng,
        at_time_only=True, return_counts=True,
    )
    l1 = _l1_grid(radius)
    linf = _linf_grid(radius)
    table = Table(
        [
            "r",
            "min P over ||u||_1 <= r",
            "max P over ||v||_inf >= r",
            "inequality holds",
        ],
        title=f"Lemma 3.9 at t={n_jumps} jumps, alpha={alpha}, {n_flights} flights",
    )
    checks = []
    for r in compare_radii:
        inner_counts = count_grid[l1 <= r]
        outer_counts = count_grid[linf >= r]
        inner_min = float(inner_counts.min()) / n_flights
        outer_max = float(outer_counts.max()) / n_flights
        # Allow binomial noise: the lemma lower-bounds every inner cell by
        # every outer cell, so compare the smallest inner *upper* Wilson
        # bound against the largest outer *lower* bound, each built from
        # the cell's exact count.
        _, inner_high = wilson_bounds(inner_counts.ravel(), n_flights)
        outer_low, _ = wilson_bounds(outer_counts.ravel(), n_flights)
        holds = bool(inner_high.min() >= outer_low.max())
        table.add_row(r, inner_min, outer_max, holds)
        checks.append(
            Check(
                f"r={r}: min_(||u||_1<=r) P >= max_(||v||_inf>=r) P (up to CI)",
                holds,
                detail=f"{inner_min:.3e} vs {outer_max:.3e}",
            )
        )
    # Exact sub-check: for a small capped flight the full law of J_t is
    # computable by convolution, so Lemma 3.9 can be verified node-by-node
    # with no Monte-Carlo slack at all.
    exact = flight_occupation_exact(
        ZetaJumpDistribution(alpha, cap=6), n_jumps=5
    )
    worst_slack = exact.check_monotonicity(max_radius=10)
    checks.append(
        Check(
            "EXACT: Lemma 3.9 holds node-by-node for a capped flight "
            "(convolution computation, zero MC error)",
            worst_slack >= -1e-12,
            detail=f"worst (min inner - max outer) = {worst_slack:.3e}",
        )
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        scale=scale,
        seed=seed,
        tables=[table],
        checks=checks,
        notes=[
            "Lemma 3.9 applies to the Levy *flight* (monotone radial); the "
            "mid-jump positions of a Levy walk do not satisfy it, which is "
            "why the paper analyses walks through their embedded flights."
        ],
    )


def main(argv=None) -> int:
    return experiment_main(run, argv)


if __name__ == "__main__":
    raise SystemExit(main())
