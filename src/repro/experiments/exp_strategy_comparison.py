"""EXP-CMP: strategy shoot-out against baselines and the lower bound.

The cross-strategy picture the paper paints (Sections 1.2.3-1.2.4, 2):

* the randomized Levy strategy and the tuned-oracle Levy strategy sit
  within polylog factors of the universal lower bound ``l^2/k + l``;
* the Feinerman-Korman style spiral search (which *knows* k) is the
  near-optimal centralized reference -- Levy search matches it without
  any coordination or knowledge;
* parallel simple random walks (Brownian foraging) lose ground as ``l``
  grows -- they keep re-covering the same neighbourhood;
* ballistic spray is an all-or-nothing gamble that needs ``k ~ l`` rays;
* single fixed exponents (e.g. the Cauchy walk alpha=2 celebrated by the
  classical Levy foraging literature) are good at the distances they
  happen to be tuned for and poor elsewhere.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.ballistic_search import BallisticSpraySearch
from repro.baselines.spiral_search import SpiralSearch
from repro.baselines.srw_search import SRWSearch
from repro.core.ants import universal_lower_bound
from repro.core.search import ParallelLevySearch
from repro.core.strategies import (
    FixedExponentStrategy,
    OracleExponentStrategy,
    UniformRandomExponentStrategy,
    cauchy_strategy,
)
from repro.experiments.common import (
    Check,
    ExperimentResult,
    default_target,
    experiment_main,
    validate_scale,
)
from repro.reporting.table import Table
from repro.analysis.estimators import censored_median
from repro.rng import as_generator

EXPERIMENT_ID = "EXP-CMP"
TITLE = "Strategy shoot-out: Levy strategies vs spiral, SRW, ballistic, and the lower bound"

_CONFIG = {
    # (k, l grid, n_runs, srw_median_factor, random_success_floor)
    # The SRW-vs-Levy separation and success floors strengthen with l and
    # with the number of runs, so smaller scales use looser thresholds.
    "smoke": (32, (24, 48), 25, 1.1, 0.6),
    "small": (32, (24, 48, 96), 40, 1.4, 0.6),
    "full": (48, (24, 48, 96, 192), 60, 1.8, 0.7),
}


def _penalized_mean(sample) -> float:
    return float(np.where(sample.times < 0, sample.horizon, sample.times).mean())


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    """Compare all strategies' penalized mean times and success rates."""
    scale = validate_scale(scale)
    rng = as_generator(seed)
    k, l_grid, n_runs, srw_factor, success_floor = _CONFIG[scale]
    tables = []
    checks = []
    summary = {}
    for l in l_grid:
        target = default_target(l)
        horizon = 2 * l * l
        lb = universal_lower_bound(k, l) + l
        contenders = {
            "random-levy": ParallelLevySearch(k, UniformRandomExponentStrategy()),
            "oracle-levy": ParallelLevySearch(k, OracleExponentStrategy(l)),
            "cauchy(a=2)": ParallelLevySearch(k, cauchy_strategy()),
            "fixed(a=2.5)": ParallelLevySearch(k, FixedExponentStrategy(2.5)),
            "spiral(FK)": SpiralSearch(k),
            "srw": SRWSearch(k),
            "ballistic": BallisticSpraySearch(k),
        }
        table = Table(
            ["strategy", "success", "median time", "penalized mean", "mean / LB"],
            title=f"k={k}, l={l} (horizon 2 l^2 = {horizon}, LB = {lb:.0f})",
        )
        cell = {}
        for name, searcher in contenders.items():
            sample = searcher.sample_parallel_hitting_times(
                target, n_runs=n_runs, horizon=horizon, rng=rng
            )
            mean = _penalized_mean(sample)
            median = censored_median(sample.times, horizon)
            cell[name] = (sample.hit_fraction, mean, median)
            table.add_row(name, sample.hit_fraction, median, mean, mean / lb)
        tables.append(table)
        summary[l] = cell

    largest = l_grid[-1]
    random_mean = summary[largest]["random-levy"][1]
    spiral_mean = summary[largest]["spiral(FK)"][1]
    random_median = summary[largest]["random-levy"][2]
    srw_median = summary[largest]["srw"][2]
    ballistic_success = summary[largest]["ballistic"][0]
    random_success = summary[largest]["random-levy"][0]
    checks.append(
        Check(
            f"l={largest}: random-Levy stays within 6x of the knows-k spiral "
            "reference",
            random_mean <= 6.0 * spiral_mean,
            detail=f"random {random_mean:.0f} vs spiral {spiral_mean:.0f}",
        )
    )
    checks.append(
        Check(
            f"l={largest}: parallel SRW's median time is >= {srw_factor}x "
            "random-Levy's (Brownian foraging loses at long range)",
            srw_median >= srw_factor * random_median,
            detail=f"srw median {srw_median} vs random median {random_median}",
        )
    )
    checks.append(
        Check(
            f"l={largest}: ballistic spray with k={k} << l rays mostly fails "
            "while random-Levy mostly succeeds",
            ballistic_success <= 0.6 and random_success >= success_floor,
            detail=(
                f"ballistic success {ballistic_success:.2f}, "
                f"random-levy success {random_success:.2f}"
            ),
        )
    )
    # Sanity: nobody beats the universal lower bound.
    lb_violated = []
    for l, cell in summary.items():
        lb = universal_lower_bound(k, l)
        for name, (success, mean, _median) in cell.items():
            if success > 0.5 and mean < 0.5 * lb:
                lb_violated.append((l, name, mean, lb))
    checks.append(
        Check(
            "no strategy beats the universal lower bound l^2/k + l "
            "(sanity check on the simulator)",
            not lb_violated,
            detail=str(lb_violated) if lb_violated else "",
        )
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        scale=scale,
        seed=seed,
        tables=tables,
        checks=checks,
        notes=[
            "spiral(FK) knows k and uses coordinated-scale probes; the Levy "
            "strategies know nothing -- matching it up to small factors is "
            "the paper's point.",
        ],
    )


def main(argv=None) -> int:
    return experiment_main(run, argv)


if __name__ == "__main__":
    raise SystemExit(main())
