"""EXT-QUANT: how many jump scales does the Levy advantage need?

Section 2 cites [2, 19]: the cover-time-optimal ``m``-length walk on the
cycle approximates a Levy walk with ``m`` geometric levels.  This
extension asks the analogous question for our hitting problem: restrict
the walk's jump lengths to ``m`` dyadic levels ``1, 2, ..., 2^(m-1)``
(band-mass-matched to the true ``alpha = 2.5`` law) and measure the hit
probability within the super-diffusive budget as ``m`` grows.

Expected shape: ``m = 1`` (a simple random walk) is far below the true
walk; the probability climbs as levels are added and converges once
``2^(m-1)`` reaches the target scale ``l`` -- a walker only needs jump
scales up to its search radius, log2(l) levels in total.
"""

from __future__ import annotations

import math

from repro.distributions.quantized import QuantizedZetaJumpDistribution
from repro.distributions.zeta import ZetaJumpDistribution
from repro.engine.vectorized import walk_hitting_times
from repro.experiments.common import (
    Check,
    ExperimentResult,
    default_target,
    experiment_main,
    validate_scale,
)
from repro.reporting.table import Table
from repro.rng import as_generator

EXPERIMENT_ID = "EXT-QUANT"
TITLE = "Quantized jump scales: log2(l) dyadic levels recover the Levy advantage  [cf. [2,19]]"

_ALPHA = 2.5
_CONFIG = {
    # (l, n_walks, levels grid)
    "smoke": (48, 15_000, (1, 2, 4, 7, 9)),
    "small": (64, 40_000, (1, 2, 3, 4, 6, 8, 10)),
    "full": (128, 120_000, (1, 2, 3, 4, 5, 6, 8, 10, 12)),
}


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    """Hit probability of the m-level walk vs the true Levy walk."""
    scale = validate_scale(scale)
    rng = as_generator(seed)
    l, n_walks, levels_grid = _CONFIG[scale]
    target = default_target(l)
    # Tight super-diffusive budget (well below l^2), so that walks with
    # no long scales cannot compensate by diffusing.
    horizon = max(l, int(math.ceil(2.0 * l ** (_ALPHA - 1.0))))
    truth = walk_hitting_times(
        ZetaJumpDistribution(_ALPHA), target, horizon=horizon, n=n_walks, rng=rng
    ).hit_fraction
    table = Table(
        ["levels m", "max jump 2^(m-1)", "P(hit)", "fraction of true walk"],
        title=f"alpha={_ALPHA}, l={l}, budget {horizon}; true Levy walk: {truth:.4f}",
    )
    fractions = {}
    for m in levels_grid:
        law = QuantizedZetaJumpDistribution(_ALPHA, m)
        p = walk_hitting_times(law, target, horizon=horizon, n=n_walks, rng=rng).hit_fraction
        fractions[m] = p / truth if truth > 0 else float("nan")
        table.add_row(m, 2 ** (m - 1), p, fractions[m])
    enough = [m for m in levels_grid if 2 ** (m - 1) >= l]
    checks = [
        Check(
            "one level (an SRW-like walk) loses most of the advantage "
            "(< 50% of the true hit probability)",
            fractions[levels_grid[0]] < 0.5,
            detail=f"fraction {fractions[levels_grid[0]]:.2f}",
        ),
        Check(
            "hit probability grows with the number of levels",
            fractions[levels_grid[-1]] > fractions[levels_grid[0]],
            detail=" -> ".join(f"{fractions[m]:.2f}" for m in levels_grid),
        ),
    ]
    if enough:
        checks.append(
            Check(
                f"~log2(l) levels recover the true walk (>= 75% once "
                f"2^(m-1) >= l, i.e. m >= {enough[0]})",
                all(fractions[m] >= 0.75 for m in enough),
                detail=", ".join(f"m={m}: {fractions[m]:.2f}" for m in enough),
            )
        )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        scale=scale,
        seed=seed,
        tables=[table],
        checks=checks,
        notes=[
            "Practical reading: a forager that can only produce a handful "
            "of distinct step lengths still collects nearly the full Levy "
            "search advantage, provided its largest step reaches its "
            "search radius -- the hitting-time analogue of [2,19]'s "
            "cover-time result.",
            "Fractions slightly above 1 are real: truncating the tail at "
            "the search radius removes overshoot waste, so a well-chosen "
            "finite level set can even edge out the pure power law.",
        ],
    )


def main(argv=None) -> int:
    return experiment_main(run, argv)


if __name__ == "__main__":
    raise SystemExit(main())
