"""FIG-1..6: regenerate every illustrative figure of the paper.

The paper's six figures are geometric illustrations (rings/balls/boxes,
a direct path, the disjoint-boxes argument, ring projections, and the
target-ball-vs-far-region comparison).  This harness renders each one as
ASCII (deterministically) and checks the underlying geometric facts the
figure illustrates.
"""

from __future__ import annotations

from repro.experiments.common import Check, ExperimentResult, experiment_main, validate_scale
from repro.lattice.ascii_art import all_figures
from repro.lattice.direct_path import sample_direct_path
from repro.lattice.points import l1_distance
from repro.lattice.rings import ball_size, box_size, ring_size
from repro.reporting.table import Table
from repro.rng import as_generator

EXPERIMENT_ID = "FIG-1..6"
TITLE = "Deterministic re-renderings of the paper's Figures 1-6"


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    """Render the figures and verify the facts they illustrate."""
    scale = validate_scale(scale)
    rng = as_generator(seed)
    plots = []
    for name, rendering in all_figures():
        plots.append(f"--- {name} ---\n{rendering}")
    table = Table(
        ["figure", "fact", "value"],
        title="Geometric facts behind the figures",
    )
    d = 4
    table.add_row("Fig 1", f"|R_{d}(u)| = 4d", ring_size(d))
    table.add_row("Fig 1", f"|B_{d}(u)| = 2d^2+2d+1", ball_size(d))
    table.add_row("Fig 1", f"|Q_{d}(u)| = (2d+1)^2", box_size(d))
    path = sample_direct_path((0, 0), (7, 4), rng)
    table.add_row("Fig 2", "direct path length = ||u-v||_1", len(path) - 1)
    checks = [
        Check("Figure 1 cardinalities", ring_size(d) == 16 and ball_size(d) == 41
              and box_size(d) == 81),
        Check(
            "Figure 2 path is a shortest path of adjacent nodes",
            len(path) - 1 == 11
            and all(l1_distance(path[i], path[i + 1]) == 1 for i in range(len(path) - 1))
            and all(l1_distance((0, 0), node) == i for i, node in enumerate(path)),
        ),
        Check("every figure rendered non-trivially", all(len(p) > 80 for p in plots)),
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        scale=scale,
        seed=seed,
        tables=[table],
        checks=checks,
        plots=plots,
    )


def main(argv=None) -> int:
    return experiment_main(run, argv)


if __name__ == "__main__":
    raise SystemExit(main())
