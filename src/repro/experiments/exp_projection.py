"""EXP-LC1: the jump's axis projection keeps the power-law tail.

Appendix C of the paper (Lemma C.1) estimates the law of a jump's
projection on the x-axis: if the two-dimensional jump has length law
``P(d = i) = c_alpha / i^alpha`` with a uniform ring destination, then the
signed projection ``S^x`` satisfies ``P(S^x = +-d) = Theta(1 / d^alpha)``
-- projecting preserves the exponent.  (The proof decomposes over the
original jump length ``k >= d``: each contributes ``~ 1/k^(alpha+1)`` to
the projection mass at ``d``.)

The harness samples jumps-with-destinations, extracts the projection, and
fits the tail exponent of ``|S^x|``, which must match ``alpha - 1`` in
survival form -- the same exponent as the jump length itself.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.powerlaw import tail_exponent_from_survival
from repro.analysis.scaling import fit_power_law, geometric_grid
from repro.distributions.zeta import ZetaJumpDistribution
from repro.experiments.common import Check, ExperimentResult, experiment_main, validate_scale
from repro.lattice.rings import sample_ring_offsets
from repro.reporting.table import Table
from repro.rng import as_generator

EXPERIMENT_ID = "EXP-LC1"
TITLE = "Axis projection of a jump keeps the power-law tail  [Lemma C.1]"

_CONFIG = {
    # (n samples, alphas) -- alpha = 3 needs a wide fit window, so it only
    # enters at scales with enough samples to populate the deep tail.
    "smoke": (150_000, (1.5, 2.0, 2.5)),
    "small": (800_000, (1.5, 2.0, 2.5, 3.0)),
    "full": (6_000_000, (1.5, 2.0, 2.5, 3.0)),
}
_TOLERANCE = 0.15


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    """Fit the projection's tail exponent for a grid of alphas."""
    scale = validate_scale(scale)
    rng = as_generator(seed)
    n, alphas = _CONFIG[scale]
    table = Table(
        [
            "alpha",
            "projection tail slope",
            "predicted -(alpha-1)",
            "P(S_x = 0)",
        ],
        title="tail of |S_x| where S_x is the x-coordinate of a jump",
    )
    checks = []
    for alpha in alphas:
        law = ZetaJumpDistribution(alpha)
        d = law.sample(rng, n)
        offsets = sample_ring_offsets(d, rng)
        projection = np.abs(offsets[:, 0])
        # Fit window as in EXP-E4: start past the curvature, stop while
        # expected counts stay healthy.
        hi = 8
        while hi < 400 and float((projection >= 2 * hi).mean()) * 1.0 >= 50.0 / n:
            hi *= 2
        grid = geometric_grid(8, max(hi, 16), 10)
        xs, survival = tail_exponent_from_survival(projection, grid)
        fit = fit_power_law(xs, survival)
        p_zero = float((offsets[:, 0] == 0).mean())
        table.add_row(alpha, fit.slope, -(alpha - 1.0), p_zero)
        checks.append(
            Check(
                f"alpha={alpha}: projection tail slope ~ -(alpha-1) "
                "(Lemma C.1: projecting preserves the exponent)",
                fit.compatible_with(-(alpha - 1.0), tolerance=_TOLERANCE),
                detail=str(fit),
            )
        )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        scale=scale,
        seed=seed,
        tables=[table],
        checks=checks,
        notes=[
            "This is what makes the Chebyshev displacement bounds of "
            "Lemmas 4.7 and 4.11 work coordinate-by-coordinate: each "
            "axis projection is itself a (one-dimensional) power-law "
            "jump with the same exponent.",
        ],
    )


def main(argv=None) -> int:
    return experiment_main(run, argv)


if __name__ == "__main__":
    raise SystemExit(main())
