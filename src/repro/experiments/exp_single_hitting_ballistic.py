"""EXP-T1.3: single-walk hitting bounds, ballistic regime (1 < alpha <= 2).

Theorem 1.3: for ``alpha in (1, 2]`` a Levy walk behaves like a straight
walk in a random direction:

(a) ``P(tau = O(l)) = Omega(1/(l log l))`` -- within a linear budget the
    walk hits the target with probability ``~ 1/l`` (log-log slope -1);
(b) ``P(tau < inf) = O(log^2 l / l)`` -- running (much) longer barely
    helps: the walk escapes to infinity, so the linear-budget probability
    is already within polylogs of the infinite-horizon one.

The harness measures the slope of (a) across ``l``, and for (b) compares
the linear-budget probability with a ``l^2/4``-budget one (the gain must
be a small polylog-like factor, unlike the diffusive regime where long
budgets are essential).  The exact straight-walk spray probability is
reported alongside as the ``alpha -> 1`` idealization.
"""

from __future__ import annotations

from repro.analysis.scaling import fit_power_law, geometric_grid
from repro.baselines.ballistic_search import BallisticSpraySearch
from repro.distributions.zeta import ZetaJumpDistribution
from repro.experiments.common import (
    Check,
    ExperimentResult,
    default_target,
    experiment_main,
    sample_hitting_times,
    validate_scale,
)
from repro.reporting.table import Table
from repro.rng import as_generator
from repro.theory.predictions import predicted_hit_probability_slope

EXPERIMENT_ID = "EXP-T1.3"
TITLE = "Single-walk hitting probability, alpha in (1,2]  [Theorem 1.3 / 5.1 / 5.2]"

_CONFIG = {
    # (alphas, l grid, n_walks, l for part (b), n_walks part (b))
    "smoke": ((1.5, 2.0), geometric_grid(8, 32, 3), 6_000, 16, 10_000),
    "small": ((1.5, 2.0), geometric_grid(8, 64, 5), 20_000, 32, 40_000),
    "full": ((1.2, 1.5, 1.8, 2.0), geometric_grid(16, 256, 6), 100_000, 64, 200_000),
}
_LINEAR_BUDGET = 4  # part (a) deadline: 4 l steps


def run(scale: str = "small", seed: int = 0, runner=None) -> ExperimentResult:
    """Measure Theorem 1.3's 1/l decay and its no-gain-from-patience tail.

    ``runner`` optionally routes the sampling through the checkpointed,
    resumable chunk runner (see :mod:`repro.runner`).
    """
    scale = validate_scale(scale)
    rng = as_generator(seed)
    alphas, l_grid, n_walks, l_for_b, n_walks_b = _CONFIG[scale]

    table_a = Table(
        ["law", "l", "horizon", "P(tau <= horizon)", "hits"],
        title=f"(a) hit probability within {_LINEAR_BUDGET}*l steps",
    )
    checks = []
    for alpha in alphas:
        law = ZetaJumpDistribution(alpha)
        points = []
        for l in l_grid:
            horizon = _LINEAR_BUDGET * l
            sample = sample_hitting_times(
                law,
                default_target(l),
                horizon,
                n_walks,
                rng,
                runner=runner,
                label=f"a-alpha{alpha}-l{l}",
            )
            table_a.add_row(f"alpha={alpha}", l, horizon, sample.hit_fraction, sample.n_hits)
            if sample.n_hits >= 5:
                points.append((float(l), sample.hit_fraction))
        if len(points) >= 3:
            fit = fit_power_law([p[0] for p in points], [p[1] for p in points])
            predicted = predicted_hit_probability_slope(alpha)
            checks.append(
                Check(
                    f"alpha={alpha}: P(hit within O(l)) ~ 1/l (slope ~ -1)",
                    fit.compatible_with(predicted, tolerance=0.4),
                    detail=str(fit),
                )
            )
    # The alpha -> 1 idealization: exact straight-spray hit probability.
    spray = BallisticSpraySearch(k=1)
    for l in l_grid:
        sample = spray.agent_hitting_times(
            default_target(l), horizon=_LINEAR_BUDGET * l, n_agents=n_walks, rng=rng
        )
        table_a.add_row("straight walk", l, _LINEAR_BUDGET * l, sample.hit_fraction, sample.n_hits)

    # Part (b): patience buys only polylog.  Compare the 4l-budget hit
    # probability with a l^2/4-budget one for the same law.
    table_b = Table(
        ["alpha", "P(tau <= 4l)", "P(tau <= l^2/4)", "gain factor"],
        title=f"(b) no gain from patience, l={l_for_b}",
    )
    for alpha in alphas:
        law = ZetaJumpDistribution(alpha)
        long_horizon = max(_LINEAR_BUDGET * l_for_b + 1, l_for_b * l_for_b // 4)
        sample = sample_hitting_times(
            law,
            default_target(l_for_b),
            long_horizon,
            n_walks_b,
            rng,
            runner=runner,
            label=f"b-alpha{alpha}",
        )
        p_short = sample.probability_by(_LINEAR_BUDGET * l_for_b)
        p_long = sample.hit_fraction
        gain = p_long / p_short if p_short > 0 else float("inf")
        table_b.add_row(alpha, p_short, p_long, gain)
        checks.append(
            Check(
                f"alpha={alpha}: extending the budget from 4l to l^2/4 gains "
                "only a small factor (Theorem 1.3(b))",
                gain < 4.0,
                detail=f"gain {gain:.2f}",
            )
        )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        scale=scale,
        seed=seed,
        tables=[table_a, table_b],
        checks=checks,
        notes=[
            "Contrast part (b) with the diffusive regime: an SRW's hit "
            "probability keeps growing with budget up to ~l^2 polylog, while "
            "a ballistic walk that misses on the way out is gone for good."
        ],
    )


def main(argv=None) -> int:
    return experiment_main(run, argv)


if __name__ == "__main__":
    raise SystemExit(main())
