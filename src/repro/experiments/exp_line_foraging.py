"""EXT-1D: on the line, the Cauchy exponent wins -- unlike on Z^2.

Section 1.1: "Levy walks with exponent parameter alpha = 2 are optimal
for searching sparse randomly distributed revisitable targets [38].
However, these results were formally shown just for one-dimensional
spaces [4], and do not carry over to higher dimensions."

This extension reproduces the classical 1D result with the paper's exact
jump law: searchers forage over sparse revisitable target sites on Z
(flights truncate at targets, [38]'s non-destructive model) and the
efficiency (encounters per step) is measured across exponents and target
spacings.  Expected shape, straight from [4]:

* at large spacing the efficiency peaks at ``alpha ~ 2``;
* the peak location drifts *toward* 2 from the ballistic side as the
  field gets sparser, and does not move past it;
* both extremes (strongly ballistic, strongly diffusive) lose by a
  constant factor at every sparse spacing.

The contrast with EXP-T1.5 is the paper's starting point: the same jump
law on Z^2, searched in parallel, has an optimal exponent that moves with
``(k, l)`` across the whole super-diffusive range -- the 1D scale-free
argument does not survive the extra dimension.
"""

from __future__ import annotations

from repro.distributions.zeta import ZetaJumpDistribution
from repro.experiments.common import Check, ExperimentResult, experiment_main, validate_scale
from repro.line.foraging_1d import line_encounter_rate
from repro.reporting.table import Table
from repro.rng import as_generator

EXPERIMENT_ID = "EXT-1D"
TITLE = "1D revisitable-target foraging peaks at alpha ~ 2  [Section 1.1, [4], [38]]"

_CONFIG = {
    # (spacings, alpha grid, total steps, n walkers)
    "smoke": (
        (50, 400),
        (1.25, 1.5, 2.0, 2.5, 3.0),
        25_000,
        250,
    ),
    "small": (
        (50, 200, 1000),
        (1.25, 1.5, 1.75, 2.0, 2.25, 2.5, 3.0, 3.5),
        40_000,
        400,
    ),
    "full": (
        (50, 200, 1000, 4000),
        (1.25, 1.5, 1.75, 2.0, 2.25, 2.5, 3.0, 3.5),
        150_000,
        1_000,
    ),
}


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    """Efficiency vs exponent across target spacings on Z."""
    scale = validate_scale(scale)
    rng = as_generator(seed)
    spacings, alpha_grid, total_steps, n_walkers = _CONFIG[scale]
    table = Table(
        ["spacing L"] + [f"eta*L (alpha={a})" for a in alpha_grid],
        title="normalized efficiency (encounters per step, scaled by L)",
    )
    argmax = {}
    efficiency = {}
    for spacing in spacings:
        row = []
        for alpha in alpha_grid:
            stats = line_encounter_rate(
                ZetaJumpDistribution(alpha), spacing, total_steps, n_walkers, rng
            )
            value = stats.efficiency * spacing
            efficiency[(spacing, alpha)] = value
            row.append(value)
        argmax[spacing] = alpha_grid[int(max(range(len(row)), key=row.__getitem__))]
        table.add_row(spacing, *row)
    sparsest = spacings[-1]
    checks = [
        Check(
            f"at the sparsest spacing (L={sparsest}) the efficiency peaks "
            "near the Cauchy exponent (argmax within [1.75, 2.5])",
            1.75 <= argmax[sparsest] <= 2.5,
            detail=f"argmax alpha = {argmax[sparsest]}",
        ),
        Check(
            "the peak drifts toward alpha = 2 (never away) as the field "
            "gets sparser",
            all(
                argmax[a] <= argmax[b] + 0.26
                for a, b in zip(spacings, spacings[1:])
            )
            and argmax[sparsest] >= argmax[spacings[0]] - 0.26,
            detail=" -> ".join(f"L={s}: {argmax[s]}" for s in spacings),
        ),
        Check(
            f"both extremes lose at L={sparsest} (>= 20% below the peak)",
            efficiency[(sparsest, alpha_grid[0])]
            <= 0.8 * efficiency[(sparsest, argmax[sparsest])]
            and efficiency[(sparsest, alpha_grid[-1])]
            <= 0.8 * efficiency[(sparsest, argmax[sparsest])],
            detail=(
                f"eta*L: {efficiency[(sparsest, alpha_grid[0])]:.2f} "
                f"(alpha={alpha_grid[0]}) vs peak "
                f"{efficiency[(sparsest, argmax[sparsest])]:.2f} vs "
                f"{efficiency[(sparsest, alpha_grid[-1])]:.2f} "
                f"(alpha={alpha_grid[-1]})"
            ),
        ),
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        scale=scale,
        seed=seed,
        tables=[table],
        checks=checks,
        notes=[
            "Contrast with EXP-T1.5: identical jump law on Z^2, searched "
            "by k parallel walks for a single target, has its optimum at "
            "alpha*(k, l) = 3 - log k / log l -- there is no distance-free "
            "optimal exponent in the plane, which is what motivates the "
            "paper's randomized strategy.",
            "The 1D model here is [38]'s: revisitable targets, flights "
            "truncated at the first target met, searcher restarting from "
            "the found target.  Both ingredients matter; see [26] and "
            "footnote 3 for how dropping them changes the optimum.",
        ],
    )


def main(argv=None) -> int:
    return experiment_main(run, argv)


if __name__ == "__main__":
    raise SystemExit(main())
