"""EXT-SW: Kleinberg greedy routing -- the Section 2 cousin of alpha*.

Extension experiment (paper Section 2, [24]): on Kleinberg's small-world
torus, greedy routing is ``O(log^2 n)`` only when long-range link lengths
obey ``P(d) ∝ 1/d`` (length exponent ``alpha = 1``, node exponent
``beta = alpha + 1 = 2``); other exponents are polynomially slower.  The
paper cites this as "of similar nature as our result ... exactly one
exponent is optimal".

What is observable at laptop ``n``: the *steep* side's polynomial penalty
(exponent ``(beta - 2)/(beta - 1)``, large) shows up immediately, while
the *flat* side's penalty (exponent ``(2 - beta)/3``, tiny for ``beta``
slightly below 2) needs astronomically large ``n`` -- a well-documented
phenomenon in replications of Kleinberg's experiment, where the empirical
optimum drifts toward ``beta = 2`` from below as ``n`` grows.  The checks
therefore target (i) the steep-side blow-up at fixed ``n``, (ii) the
growth-rate contrast in ``n`` (near-polylog at ``alpha = 1`` vs clearly
polynomial at ``alpha = 2``), and (iii) the flat side's drift: its
*advantage* over ``alpha = 1`` must shrink as ``n`` grows.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.scaling import fit_power_law
from repro.experiments.common import Check, ExperimentResult, experiment_main, validate_scale
from repro.reporting.table import Table
from repro.rng import as_generator
from repro.smallworld.kleinberg import greedy_routing_trial

EXPERIMENT_ID = "EXT-SW"
TITLE = "Kleinberg greedy routing: one exponent wins  [Section 2, [24]]"

_CONFIG = {
    # (n grid, routes per cell)
    "smoke": ((128, 256, 512), 60),
    "small": ((128, 256, 512, 1024), 150),
    "full": ((256, 512, 1024, 2048, 4096), 300),
}
_EXPONENTS = (0.5, 1.0, 2.0)


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    """Median greedy-routing steps across (alpha, n)."""
    scale = validate_scale(scale)
    rng = as_generator(seed)
    n_grid, n_routes = _CONFIG[scale]
    table = Table(
        ["length exponent alpha", "node exponent beta"]
        + [f"median steps (n={n})" for n in n_grid],
        title=f"greedy routing medians ({n_routes} routes per cell)",
    )
    medians = {}
    for alpha in _EXPONENTS:
        row = []
        for n in n_grid:
            steps = greedy_routing_trial(n, alpha, n_routes, rng)
            row.append(float(np.median(steps)))
        medians[alpha] = row
        table.add_row(alpha, alpha + 1.0, *row)
    largest = n_grid[-1]
    checks = []
    # (i) Steep side blows up at fixed n.
    checks.append(
        Check(
            f"n={largest}: alpha=2 routes >= 2.5x slower than alpha=1 "
            "(steep tails lose long-range shortcuts)",
            medians[2.0][-1] >= 2.5 * medians[1.0][-1],
            detail=f"{medians[2.0][-1]:.0f} vs {medians[1.0][-1]:.0f}",
        )
    )
    # (ii) Growth-rate contrast in n.
    fit_opt = fit_power_law([float(n) for n in n_grid], medians[1.0])
    fit_steep = fit_power_law([float(n) for n in n_grid], medians[2.0])
    checks.append(
        Check(
            "routing time grows much faster in n at alpha=2 than at alpha=1 "
            "(polynomial vs polylog; slope gap >= 0.2)",
            fit_steep.slope - fit_opt.slope >= 0.2,
            detail=f"slope(alpha=2)={fit_steep.slope:.2f}, slope(alpha=1)={fit_opt.slope:.2f}",
        )
    )
    # (iii) Flat side: its advantage over alpha=1 shrinks with n.
    first_ratio = medians[0.5][0] / medians[1.0][0]
    last_ratio = medians[0.5][-1] / medians[1.0][-1]
    checks.append(
        Check(
            "the flat tail's (alpha=0.5) edge over alpha=1 does not grow "
            "with n (the documented slow drift toward Kleinberg's optimum)",
            last_ratio >= first_ratio - 0.25,
            detail=f"ratio at n={n_grid[0]}: {first_ratio:.2f}, at n={largest}: {last_ratio:.2f}",
        )
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        scale=scale,
        seed=seed,
        tables=[table],
        checks=checks,
        notes=[
            "Kleinberg's flat-side lower bound ~ n^((2-beta)/3) is far too "
            "small to bite at simulateable n (for beta=1.5 and n=4096 it is "
            "~4), so alpha slightly below 1 still looks good here; the "
            "steep side and the growth-rate contrast are the observable "
            "signatures, as in published replications.",
            "Unlike parallel search, routing cannot be rescued by a random "
            "exponent per query: one route chains many links and needs most "
            "of them at the right scale -- the paper's randomization trick "
            "works because each *walk* is an independent trial.",
        ],
    )


def main(argv=None) -> int:
    return experiment_main(run, argv)


if __name__ == "__main__":
    raise SystemExit(main())
