"""Shared scaffolding for the experiment harnesses.

Every experiment module exposes::

    EXPERIMENT_ID  -- short id matching DESIGN.md's per-experiment index
    TITLE          -- one-line description
    run(scale="small", seed=0) -> ExperimentResult
    main(argv=None)            -- CLI entry point

``scale`` selects a preset size: ``smoke`` (seconds; used by the pytest
benchmarks and CI), ``small`` (tens of seconds; the default), ``full``
(minutes; the numbers recorded in EXPERIMENTS.md).  Every run is seeded
and prints its seed, so any figure in EXPERIMENTS.md can be regenerated
exactly.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.reporting.table import Table

SCALES = ("smoke", "small", "full")


def default_target(l: int) -> tuple[int, int]:
    """A generic target node at Manhattan distance ``l`` from the origin.

    The theorems hold for *any* node of ``R_l(0)``; we pick an off-axis,
    off-diagonal direction (roughly one third of the way around the ring)
    so results are not accidentally flattered by the extra symmetry of
    axis or diagonal targets.
    """
    if l < 1:
        raise ValueError(f"target distance must be positive, got {l}")
    x = l - l // 3
    return (x, l - x)


@dataclass(frozen=True)
class Check:
    """One pass/fail comparison between measurement and theory."""

    description: str
    passed: bool
    detail: str = ""

    def render(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        suffix = f" ({self.detail})" if self.detail else ""
        return f"[{status}] {self.description}{suffix}"


@dataclass
class ExperimentResult:
    """Everything an experiment produced."""

    experiment_id: str
    title: str
    scale: str
    seed: int
    tables: List[Table] = field(default_factory=list)
    checks: List[Check] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    plots: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """True when every check passed (vacuously true with no checks)."""
        return all(check.passed for check in self.checks)

    def render(self) -> str:
        lines = [
            f"=== {self.experiment_id}: {self.title} ===",
            f"scale={self.scale} seed={self.seed}",
            "",
        ]
        for table in self.tables:
            lines.append(table.render())
            lines.append("")
        for plot in self.plots:
            lines.append(plot)
            lines.append("")
        for note in self.notes:
            lines.append(f"note: {note}")
        if self.checks:
            lines.append("")
            for check in self.checks:
                lines.append(check.render())
            verdict = "ALL CHECKS PASSED" if self.passed else "SOME CHECKS FAILED"
            lines.append(verdict)
        return "\n".join(lines)


def validate_scale(scale: str) -> str:
    if scale not in SCALES:
        raise ValueError(f"scale must be one of {SCALES}, got {scale!r}")
    return scale


def experiment_main(run, argv: Optional[Sequence[str]] = None) -> int:
    """Standard CLI wrapper used by every experiment's ``main``."""
    parser = argparse.ArgumentParser(description=run.__doc__)
    parser.add_argument("--scale", choices=SCALES, default="small")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    result = run(scale=args.scale, seed=args.seed)
    print(result.render())
    return 0 if result.passed else 1
