"""Shared scaffolding for the experiment harnesses.

Every experiment module exposes::

    EXPERIMENT_ID  -- short id matching DESIGN.md's per-experiment index
    TITLE          -- one-line description
    run(scale="small", seed=0) -> ExperimentResult
    main(argv=None)            -- CLI entry point

``scale`` selects a preset size: ``smoke`` (seconds; used by the pytest
benchmarks and CI), ``small`` (tens of seconds; the default), ``full``
(minutes; the numbers recorded in EXPERIMENTS.md).  Every run is seeded
and prints its seed, so any figure in EXPERIMENTS.md can be regenerated
exactly.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence

from repro.reporting.table import Table
from repro.rng import SeedLike, as_generator
from repro.telemetry.recorder import get_recorder

SCALES = ("smoke", "small", "full")


def default_target(l: int) -> tuple[int, int]:
    """A generic target node at Manhattan distance ``l`` from the origin.

    The theorems hold for *any* node of ``R_l(0)``; we pick an off-axis,
    off-diagonal direction (roughly one third of the way around the ring)
    so results are not accidentally flattered by the extra symmetry of
    axis or diagonal targets.
    """
    if l < 1:
        raise ValueError(f"target distance must be positive, got {l}")
    x = l - l // 3
    return (x, l - x)


@dataclass(frozen=True)
class Check:
    """One pass/fail comparison between measurement and theory."""

    description: str
    passed: bool
    detail: str = ""

    def render(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        suffix = f" ({self.detail})" if self.detail else ""
        return f"[{status}] {self.description}{suffix}"


@dataclass
class ExperimentResult:
    """Everything an experiment produced."""

    experiment_id: str
    title: str
    scale: str
    seed: int
    tables: List[Table] = field(default_factory=list)
    checks: List[Check] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    plots: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """True when every check passed (vacuously true with no checks)."""
        return all(check.passed for check in self.checks)

    def render(self) -> str:
        lines = [
            f"=== {self.experiment_id}: {self.title} ===",
            f"scale={self.scale} seed={self.seed}",
            "",
        ]
        for table in self.tables:
            lines.append(table.render())
            lines.append("")
        for plot in self.plots:
            lines.append(plot)
            lines.append("")
        for note in self.notes:
            lines.append(f"note: {note}")
        if self.checks:
            lines.append("")
            for check in self.checks:
                lines.append(check.render())
            verdict = "ALL CHECKS PASSED" if self.passed else "SOME CHECKS FAILED"
            lines.append(verdict)
        return "\n".join(lines)


def sample_hitting_times(
    jumps,
    target,
    horizon: int,
    n_walks: int,
    rng: SeedLike,
    runner=None,
    label: str = "hitting",
    detect_during_jump: bool = True,
    flight: bool = False,
):
    """Engine call that optionally routes through a fault-tolerant runner.

    With ``runner=None`` this is exactly
    :func:`repro.engine.vectorized.walk_hitting_times` (or the flight
    variant).  With a :class:`repro.runner.Runner`, the sample is drawn in
    checkpointed chunks under ``label``; the call then consumes exactly one
    integer from ``rng`` (the chunk-plan root seed), so a resumed
    experiment re-derives identical seeds for every sampling call.  A
    deadline-expired or interrupted runner yields a *partial* (still valid,
    censored) sample; the runner records the degradation for the CLI.
    """
    rng = as_generator(rng)
    with get_recorder().span("task", task=label, kind="hitting", n_walks=int(n_walks)):
        if runner is None:
            from repro.engine.vectorized import flight_hitting_times, walk_hitting_times

            if flight:
                return flight_hitting_times(jumps, target, horizon=horizon, n=n_walks, rng=rng)
            return walk_hitting_times(
                jumps,
                target,
                horizon=horizon,
                n=n_walks,
                rng=rng,
                detect_during_jump=detect_during_jump,
            )
        from repro.runner.tasks import HittingTimeTask

        task = HittingTimeTask(
            jumps=jumps,
            target=(int(target[0]), int(target[1])),
            horizon=int(horizon),
            detect_during_jump=detect_during_jump,
            flight=flight,
        )
        seed = int(rng.integers(0, 2**63 - 1))
        return runner.run(task, n_walks, seed, label=label).payload


def sample_foraging(
    jumps,
    targets,
    horizon: int,
    n_walks: int,
    rng: SeedLike,
    runner=None,
    label: str = "foraging",
):
    """Multi-target search that optionally routes through a runner.

    Same contract as :func:`sample_hitting_times`, for
    :func:`repro.engine.multi_target.multi_target_search`.
    """
    rng = as_generator(rng)
    with get_recorder().span("task", task=label, kind="foraging", n_walks=int(n_walks)):
        if runner is None:
            from repro.engine.multi_target import multi_target_search

            return multi_target_search(jumps, targets, horizon=horizon, n=n_walks, rng=rng)
        from repro.runner.tasks import ForagingTask

        task = ForagingTask.with_targets(jumps, targets, int(horizon))
        seed = int(rng.integers(0, 2**63 - 1))
        return runner.run(task, n_walks, seed, label=label).payload


def validate_scale(scale: str) -> str:
    if scale not in SCALES:
        raise ValueError(f"scale must be one of {SCALES}, got {scale!r}")
    return scale


def add_runner_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the fault-tolerant runner's CLI flags on ``parser``."""
    parser.add_argument(
        "--checkpoint-dir",
        type=Path,
        default=None,
        help="directory for durable per-chunk checkpoints (enables resume)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="continue a previous run from --checkpoint-dir, skipping valid chunks",
    )
    parser.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        help="walltime budget; expiry returns partial (degraded) samples",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="run chunks in a process pool of this size (0 = in-process)",
    )
    parser.add_argument(
        "--chunks",
        type=int,
        default=None,
        help="chunks per sampling call (default 8 when a runner is active)",
    )
    parser.add_argument(
        "--stop-when-ci",
        type=float,
        default=None,
        metavar="REL",
        dest="stop_when_ci",
        help="sequential stopping: finish each sampling call early once its "
        "95%% Wilson CI half-width is below REL times the point estimate "
        "(e.g. 0.1 = +/-10%%); the run reports converged, not degraded",
    )
    parser.add_argument(
        "--min-chunks",
        type=int,
        default=3,
        dest="min_chunks",
        help="never stop before this many chunks completed (with --stop-when-ci)",
    )
    parser.add_argument(
        "--chunk-timeout",
        type=float,
        default=None,
        dest="chunk_timeout",
        help="hung-chunk watchdog: kill and reschedule any pooled chunk "
        "whose worker heartbeat goes silent for this many seconds",
    )
    parser.add_argument(
        "--max-attempts",
        type=int,
        default=None,
        dest="max_attempts",
        help="retry budget per chunk including the first try (default 4); "
        "backoff between attempts is exponential with seeded jitter",
    )
    parser.add_argument(
        "--quarantine-after",
        type=int,
        default=None,
        dest="quarantine_after",
        metavar="N",
        help="circuit breaker: quarantine a grid point after N chunk "
        "failures instead of failing the whole run (exit code 4)",
    )
    parser.add_argument(
        "--min-disk-mb",
        type=float,
        default=None,
        dest="min_disk_mb",
        metavar="MB",
        help="degrade checkpointing to manifest-only mode when free disk "
        "in the checkpoint directory drops below MB",
    )
    parser.add_argument(
        "--min-memory-mb",
        type=float,
        default=None,
        dest="min_memory_mb",
        metavar="MB",
        help="degrade checkpointing to manifest-only mode when available "
        "memory drops below MB",
    )
    parser.add_argument(
        "--pool-transport",
        choices=("shm", "pickle", "auto"),
        default="auto",
        dest="pool_transport",
        help="how pooled chunks move data: 'shm' publishes CDF tables and "
        "result slabs through POSIX shared memory (zero-copy, falls back "
        "per-chunk for non-slab payloads), 'pickle' forces the classic "
        "pipe transport, 'auto' (default) uses shm when /dev/shm works",
    )
    parser.add_argument(
        "--ring-rounds",
        type=int,
        default=0,
        dest="ring_rounds",
        metavar="R",
        help="run engines with the interleaved walker-ring loop staging R "
        "rounds per pass (0 = legacy per-round loop; ring mode changes "
        "RNG consumption order, so samples are equivalent in law but not "
        "bit-identical to the legacy loop)",
    )


def add_telemetry_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the telemetry CLI flags (see docs/observability.md)."""
    parser.add_argument(
        "--log-json",
        type=Path,
        default=None,
        metavar="PATH",
        help="append structured run events (JSONL) to PATH; render later "
        "with 'repro-experiment report PATH'",
    )
    parser.add_argument(
        "--metrics-out",
        type=Path,
        default=None,
        metavar="PATH",
        help="write a JSON metrics snapshot (counters/gauges/histograms) to "
        "PATH at the end of the run",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print a live one-line heartbeat to stderr per chunk/retry/run event",
    )


def add_registry_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the run-registry CLI flags (see docs/observability.md)."""
    from repro.telemetry.registry import DEFAULT_REGISTRY_DIR

    parser.add_argument(
        "--registry-dir",
        type=Path,
        default=Path(DEFAULT_REGISTRY_DIR),
        metavar="DIR",
        help="run-registry directory; every run appends a RunRecord to "
        f"DIR/runs.jsonl (default {DEFAULT_REGISTRY_DIR}/); inspect with "
        "'repro-experiment runs list'",
    )
    parser.add_argument(
        "--no-registry",
        action="store_true",
        dest="no_registry",
        help="do not register this run in the run registry",
    )


def registry_from_args(args: argparse.Namespace):
    """The :class:`~repro.telemetry.registry.RunRegistry` for this run.

    Returns ``None`` when registration is disabled (``--no-registry``)
    or the parser never grew the registry flags.
    """
    if getattr(args, "no_registry", False):
        return None
    registry_dir = getattr(args, "registry_dir", None)
    if registry_dir is None:
        return None
    from repro.telemetry.registry import RunRegistry

    return RunRegistry(registry_dir)


def telemetry_from_args(args: argparse.Namespace, run_id: Optional[str] = None):
    """Install a live recorder from parsed telemetry flags.

    Returns ``(recorder, previous)`` -- ``(None, None)`` when no
    telemetry flag was used, so plain runs keep the no-op recorder.  The
    caller must call :func:`finish_telemetry` with the pair when done.
    ``run_id`` is stamped into the event log's ``log_open`` header and
    the ``--metrics-out`` snapshot, joining both artifacts to the run's
    registry record.
    """
    wants = (
        args.log_json is not None
        or args.metrics_out is not None
        or getattr(args, "progress", False)
    )
    if not wants:
        return None, None
    from repro import telemetry

    previous = telemetry.get_recorder()
    recorder = telemetry.configure(
        log_path=args.log_json,
        progress=sys.stderr if args.progress else None,
        run_id=run_id,
    )
    return recorder, previous


def finish_telemetry(
    args: argparse.Namespace,
    recorder,
    previous,
    run_id: Optional[str] = None,
) -> None:
    """Export the metrics snapshot, close the event log, restore the seam."""
    if recorder is None:
        return
    from repro import telemetry

    try:
        if args.metrics_out is not None:
            meta = None
            if run_id is not None:
                from repro.telemetry.registry import utc_now_iso

                meta = {"run_id": run_id, "created_at": utc_now_iso()}
            recorder.metrics.write_json(args.metrics_out, meta=meta)
    finally:
        recorder.close()
        telemetry.set_recorder(previous)


def runner_from_args(args: argparse.Namespace):
    """Build a :class:`repro.runner.Runner` from parsed runner flags.

    Returns ``None`` when no runner-related flag was used, so plain runs
    keep the zero-overhead direct engine path.
    """
    stop_when_ci = getattr(args, "stop_when_ci", None)
    chunk_timeout = getattr(args, "chunk_timeout", None)
    max_attempts = getattr(args, "max_attempts", None)
    quarantine_after = getattr(args, "quarantine_after", None)
    min_disk_mb = getattr(args, "min_disk_mb", None)
    min_memory_mb = getattr(args, "min_memory_mb", None)
    pool_transport = getattr(args, "pool_transport", "auto")
    ring_rounds = getattr(args, "ring_rounds", 0)
    wants_runner = (
        args.checkpoint_dir is not None
        or args.resume
        or args.max_seconds is not None
        or args.workers
        or args.chunks is not None
        or stop_when_ci is not None
        or chunk_timeout is not None
        or max_attempts is not None
        or quarantine_after is not None
        or min_disk_mb is not None
        or min_memory_mb is not None
        or pool_transport != "auto"
        or ring_rounds
    )
    if not wants_runner:
        return None
    from repro.runner import Runner

    convergence = None
    if stop_when_ci is not None:
        from repro.telemetry.convergence import ConvergenceConfig

        convergence = ConvergenceConfig(
            rel_ci_width=stop_when_ci,
            min_chunks=getattr(args, "min_chunks", 3),
        )
    retry_policy = None
    if max_attempts is not None or quarantine_after is not None:
        from repro.runner import RetryPolicy

        retry_policy = RetryPolicy(
            max_attempts=max_attempts if max_attempts is not None else 4,
            quarantine_after=quarantine_after,
        )
    resource_guards = None
    if min_disk_mb is not None or min_memory_mb is not None:
        from repro.runner import ResourceGuards

        resource_guards = ResourceGuards(
            min_disk_mb=min_disk_mb or 0.0,
            min_memory_mb=min_memory_mb or 0.0,
        )
    return Runner(
        checkpoint_dir=args.checkpoint_dir,
        n_chunks=args.chunks if args.chunks is not None else 8,
        workers=args.workers,
        max_seconds=args.max_seconds,
        chunk_timeout=chunk_timeout,
        resume=args.resume,
        convergence=convergence,
        retry_policy=retry_policy,
        resource_guards=resource_guards,
        pool_transport=pool_transport,
        ring_rounds=ring_rounds,
    )


def run_accepts_runner(run) -> bool:
    """True when an experiment's ``run`` has grown a ``runner`` parameter."""
    import inspect

    try:
        return "runner" in inspect.signature(run).parameters
    except (TypeError, ValueError):
        return False


def register_run(
    args: argparse.Namespace,
    *,
    command: str,
    label: str,
    run_id: str,
    exit_code: int,
    recorder=None,
    estimates: Sequence = (),
    walltime_seconds: Optional[float] = None,
    config: Optional[dict] = None,
    notes: Sequence[str] = (),
) -> None:
    """Append this run's :class:`RunRecord` to the configured registry.

    Registration is best-effort bookkeeping: a full disk or read-only
    registry directory must never turn a finished run into a failure, so
    every OSError is reported as a warning and swallowed.
    """
    registry = registry_from_args(args)
    if registry is None:
        return
    from repro.telemetry.registry import build_run_record

    artifacts = {
        "events": getattr(args, "log_json", None),
        "metrics": getattr(args, "metrics_out", None),
        "checkpoint_dir": getattr(args, "checkpoint_dir", None),
        "json": getattr(args, "json_out", None),
    }
    # Pool effectiveness comes from the closed event log's worker
    # intervals (the same analysis `profile` renders); no log, no number.
    pool = {}
    log_path = getattr(args, "log_json", None)
    if log_path is not None and Path(log_path).exists():
        try:
            from repro.telemetry.events import read_events
            from repro.telemetry.profile import summarize_profile

            profile = summarize_profile(read_events(log_path))
            if profile.effective_parallelism is not None:
                pool["effective_parallelism"] = round(
                    profile.effective_parallelism, 3
                )
                workers = getattr(args, "workers", 0) or 0
                if workers > 0:
                    pool["pool_speedup"] = round(
                        profile.effective_parallelism, 3
                    )
        except (OSError, ValueError):
            pass
    record = build_run_record(
        command=command,
        label=label,
        run_id=run_id,
        seed=getattr(args, "seed", None),
        scale=getattr(args, "scale", None),
        config=config,
        exit_code=exit_code,
        estimates=estimates,
        recorder=recorder,
        walltime_seconds=walltime_seconds,
        workers=getattr(args, "workers", None) or None,
        pool=pool,
        artifacts=artifacts,
        notes=notes,
    )
    try:
        registry.register(record)
    except OSError as exc:
        print(f"warning: could not register run in {registry.path}: {exc}",
              file=sys.stderr)


def experiment_main(run, argv: Optional[Sequence[str]] = None) -> int:
    """Standard CLI wrapper used by every experiment's ``main``."""
    import time

    from repro.telemetry.registry import new_run_id

    parser = argparse.ArgumentParser(description=run.__doc__)
    parser.add_argument("--scale", choices=SCALES, default="small")
    parser.add_argument("--seed", type=int, default=0)
    add_runner_arguments(parser)
    add_telemetry_arguments(parser)
    add_registry_arguments(parser)
    args = parser.parse_args(argv)
    run_id = new_run_id()
    recorder, previous = telemetry_from_args(args, run_id=run_id)
    if recorder is not None:
        recorder.bind(scale=args.scale, seed=args.seed)
    started = time.monotonic()
    try:
        runner = runner_from_args(args)
        if runner is not None and run_accepts_runner(run):
            result = run(scale=args.scale, seed=args.seed, runner=runner)
        else:
            if runner is not None:
                # Diagnostics go to stderr: stdout is the experiment report
                # and may be piped into CSV/markdown tooling.
                print(
                    "note: this experiment does not support the chunked runner; "
                    "runner flags ignored",
                    file=sys.stderr,
                )
            result = run(scale=args.scale, seed=args.seed)
        exit_code = 0 if result.passed else 1
        register_run(
            args,
            command="experiment",
            label=result.experiment_id,
            run_id=run_id,
            exit_code=exit_code,
            recorder=recorder,
            walltime_seconds=time.monotonic() - started,
            config={"scale": args.scale, "seed": args.seed},
            notes=[c.description for c in result.checks if not c.passed],
        )
    finally:
        finish_telemetry(args, recorder, previous, run_id=run_id)
    print(result.render())
    return exit_code
