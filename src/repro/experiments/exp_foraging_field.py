"""EXT-FORAGE: collective foraging over a scattered food field.

The Levy foraging hypothesis literature ([38], Section 2) studies sparse,
uniformly distributed targets; the paper's contribution is the parallel,
central-place version.  This extension runs full multi-target foraging:
food items are scattered uniformly over a ball (a Bernoulli field), ``k``
walks leave the nest, and every item's first discovery -- mid-jump
included -- is recorded exactly.

Measured claims:

* the mixed-exponent colony (Theorem 1.6's strategy) collects close to
  the best fixed-exponent colony *overall* while no fixed colony is
  strong on every distance band;
* robustness check: the mixed colony is never far behind the best
  fixed colony on EITHER distance band, while each fixed colony has a
  weak band -- the multi-target face of Theorem 1.6.

The per-item discoverer exponents are also reported (the paper's closing
prediction is exponent variation *within* a group), but at laptop field
radii the near/far discoverer-exponent gap sits below sampling noise --
the optimal exponents for l = R/2 and l = R differ only by
``O(log log / log)`` -- so it is an observation here, not a pass/fail
check; distances spanning several orders of magnitude would be needed.
"""

from __future__ import annotations

import numpy as np

from repro.engine.multi_target import multi_target_search, scatter_poisson_field
from repro.engine.samplers import HeterogeneousZetaSampler
from repro.experiments.common import Check, ExperimentResult, experiment_main, validate_scale
from repro.reporting.table import Table
from repro.rng import as_generator

EXPERIMENT_ID = "EXT-FORAGE"
TITLE = "Collective foraging over a uniform food field  [Section 1.2.4, cf. [38]]"

_CONFIG = {
    # (k walks, field radius, item density, horizon factor, n fields)
    "smoke": (24, 64, 0.004, 1.0, 4),
    "small": (32, 96, 0.003, 1.0, 6),
    "full": (48, 160, 0.002, 1.5, 10),
}
_FIXED = (2.1, 2.9)


def _collect(alphas: np.ndarray, field, horizon, rng):
    sampler = HeterogeneousZetaSampler(alphas)
    return multi_target_search(
        sampler, field, horizon=horizon, n=alphas.shape[0], rng=rng
    )


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    """Compare colonies over one shared food field."""
    scale = validate_scale(scale)
    rng = as_generator(seed)
    k, radius, density, horizon_factor, n_fields = _CONFIG[scale]
    horizon = int(horizon_factor * 2 * radius * radius)
    near_limit = radius // 2
    # Aggregate everything over n_fields independent fields (and fresh
    # colonies); single fields are far too noisy to rank strategies.
    totals = {name: 0 for name in [f"fixed({a})" for a in _FIXED] + ["random(2,3)"]}
    near_counts = dict(totals)
    far_counts = dict(totals)
    n_items_total = 0
    far_exponents: list[float] = []
    near_exponents: list[float] = []
    for _ in range(n_fields):
        field = scatter_poisson_field(density, radius, rng)
        if field.shape[0] == 0:
            continue
        n_items_total += field.shape[0]
        distances = np.abs(field[:, 0]) + np.abs(field[:, 1])
        near = distances <= near_limit
        for alpha in _FIXED:
            outcome = _collect(np.full(k, alpha), field, horizon, rng)
            found = outcome.discovery_times >= 0
            name = f"fixed({alpha})"
            totals[name] += int(found.sum())
            near_counts[name] += int((found & near).sum())
            far_counts[name] += int((found & ~near).sum())
        random_alphas = rng.uniform(2.0, 3.0, size=k)
        outcome = _collect(random_alphas, field, horizon, rng)
        found = outcome.discovery_times >= 0
        totals["random(2,3)"] += int(found.sum())
        near_counts["random(2,3)"] += int((found & near).sum())
        far_counts["random(2,3)"] += int((found & ~near).sum())
        far_exponents.extend(random_alphas[outcome.discoverer[found & ~near]])
        near_exponents.extend(random_alphas[outcome.discoverer[found & near]])
    table = Table(
        [
            "colony",
            "items collected",
            f"near (<= {near_limit})",
            f"far (> {near_limit})",
        ],
        title=(
            f"{n_items_total} items over {n_fields} fields in B_{radius}(0), "
            f"k={k} walks, horizon {horizon}"
        ),
    )
    for name, total in totals.items():
        table.add_row(name, total, near_counts[name], far_counts[name])
    best_fixed = max(totals[f"fixed({a})"] for a in _FIXED)
    checks = [
        Check(
            "every colony collects something",
            all(v > 0 for v in totals.values()),
            detail=str(totals),
        ),
        Check(
            "the mixed colony collects >= 75% of the best fixed colony",
            totals["random(2,3)"] >= 0.75 * best_fixed,
            detail=f"random {totals['random(2,3)']} vs best fixed {best_fixed}",
        ),
    ]
    best_fixed_near = max(near_counts[f"fixed({a})"] for a in _FIXED)
    best_fixed_far = max(far_counts[f"fixed({a})"] for a in _FIXED)
    checks.append(
        Check(
            "the mixed colony holds >= 60% of the best fixed colony on "
            "BOTH distance bands (no weak band)",
            near_counts["random(2,3)"] >= 0.6 * best_fixed_near
            and far_counts["random(2,3)"] >= 0.6 * best_fixed_far,
            detail=(
                f"near {near_counts['random(2,3)']}/{best_fixed_near}, "
                f"far {far_counts['random(2,3)']}/{best_fixed_far}"
            ),
        )
    )
    notes = [
        "Trajectories do not react to pickups, so each item's first "
        "discovery is exact for both destructive and revisitable "
        "semantics (see repro.engine.multi_target).",
    ]
    if far_exponents and near_exponents:
        notes.append(
            "observed discoverer exponents in the mixed colony: far items "
            f"mean alpha {float(np.mean(far_exponents)):.3f} "
            f"(n={len(far_exponents)}), near items mean alpha "
            f"{float(np.mean(near_exponents)):.3f} (n={len(near_exponents)}) "
            "-- the within-group division of labour the paper predicts is "
            "below noise at this field radius (see module docstring)."
        )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        scale=scale,
        seed=seed,
        tables=[table],
        checks=checks,
        notes=notes,
    )


def main(argv=None) -> int:
    return experiment_main(run, argv)


if __name__ == "__main__":
    raise SystemExit(main())
