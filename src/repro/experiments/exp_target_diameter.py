"""EXT-DIAM: target diameter + intermittent detection shift the landscape.

Footnote 3 of the paper is a precise modelling claim about why its
conclusions differ from [18]'s "the Cauchy walk (alpha = 2) is optimal":
[18] needs BOTH a target of arbitrary diameter ``D`` AND intermittent
(jump-endpoint-only) detection; with a unit target or continuous
detection, whole ranges of exponents become optimal and the Cauchy
uniqueness disappears.

This experiment measures both mechanisms on the ball-target engine:

1. growing the target's radius boosts every exponent, but it boosts the
   *ballistic-leaning* ``alpha = 2`` disproportionately -- long jumps
   stop skipping over the target once it is wide (the [18] direction);
2. the value of detecting during jumps (non-intermittence) shrinks as the
   target grows, for every exponent -- with a wide target, endpoints
   alone see it, so [18]'s intermittence assumption is only binding for
   small targets.
"""

from __future__ import annotations

import math

from repro.distributions.zeta import ZetaJumpDistribution
from repro.engine.ball_targets import ball_hitting_times
from repro.experiments.common import (
    Check,
    ExperimentResult,
    default_target,
    experiment_main,
    validate_scale,
)
from repro.reporting.table import Table
from repro.rng import as_generator

EXPERIMENT_ID = "EXT-DIAM"
TITLE = "Target diameter and intermittent detection  [footnote 3, vs [18]]"

_CONFIG = {
    # (l, n_walks, radii)
    "smoke": (48, 10_000, (0, 2, 6)),
    "small": (64, 30_000, (0, 2, 4, 8)),
    "full": (128, 100_000, (0, 2, 4, 8, 16)),
}
_ALPHAS = (2.0, 2.5, 3.0)


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    """Hit probabilities across (alpha, target radius, detection mode)."""
    scale = validate_scale(scale)
    rng = as_generator(seed)
    l, n_walks, radii = _CONFIG[scale]
    target = default_target(l)
    budget = max(l, int(math.ceil(2.0 * l**1.5)))
    table = Table(
        ["alpha", "detection"] + [f"P(hit), r={r}" for r in radii],
        title=f"ball-target hit probability, center distance l={l}, budget {budget}",
    )
    endpoint = {}
    midjump = {}
    for alpha in _ALPHAS:
        law = ZetaJumpDistribution(alpha)
        endpoint[alpha] = {}
        midjump[alpha] = {}
        for r in radii:
            endpoint[alpha][r] = ball_hitting_times(
                law, target, radius=r, horizon=budget, n=n_walks, rng=rng,
                detect_during_jump=False,
            ).hit_fraction
            midjump[alpha][r] = ball_hitting_times(
                law, target, radius=r, horizon=budget, n=n_walks, rng=rng,
                detect_during_jump=True,
            ).hit_fraction
        table.add_row(alpha, "endpoint-only", *[endpoint[alpha][r] for r in radii])
        table.add_row(alpha, "mid-jump", *[midjump[alpha][r] for r in radii])
    r_max = radii[-1]
    checks = []
    for alpha in _ALPHAS:
        values = [endpoint[alpha][r] for r in radii]
        checks.append(
            Check(
                f"alpha={alpha}: bigger targets are easier (monotone in r)",
                all(a <= b * 1.1 for a, b in zip(values, values[1:])),
                detail=" -> ".join(f"{v:.4f}" for v in values),
            )
        )
    boost_cauchy = endpoint[2.0][r_max] / max(endpoint[2.0][0], 1e-12)
    boost_diffusive = endpoint[3.0][r_max] / max(endpoint[3.0][0], 1e-12)
    checks.append(
        Check(
            "under intermittent detection, widening the target boosts "
            "alpha=2 more than alpha=3 (the [18] mechanism)",
            boost_cauchy > boost_diffusive,
            detail=f"boost(alpha=2)={boost_cauchy:.1f} vs boost(alpha=3)={boost_diffusive:.1f}",
        )
    )
    advantage_gaps = []
    for alpha in _ALPHAS:
        gap_small = midjump[alpha][0] / max(endpoint[alpha][0], 1e-12)
        gap_large = midjump[alpha][r_max] / max(endpoint[alpha][r_max], 1e-12)
        advantage_gaps.append((alpha, gap_small, gap_large))
    # For alpha = 3 the walk's jumps are short, so mid-jump detection adds
    # almost nothing at ANY target size (ratio ~ 1, within noise); the
    # shrink check is meaningful only where the advantage is material.
    heavy = [(a, gs, gl) for a, gs, gl in advantage_gaps if a <= 2.5]
    checks.append(
        Check(
            "where mid-jump detection matters (alpha <= 2.5), its advantage "
            "shrinks as the target grows",
            all(gs > gl for _, gs, gl in heavy),
            detail="; ".join(
                f"alpha={a}: {gs:.2f} -> {gl:.2f}" for a, gs, gl in advantage_gaps
            ),
        )
    )
    diffusive_gaps = [
        (gs, gl) for a, gs, gl in advantage_gaps if a == 3.0
    ]
    checks.append(
        Check(
            "for alpha=3 the mid-jump advantage is negligible at every "
            "target size (short jumps already inspect almost every node)",
            all(0.75 <= g <= 1.7 for pair in diffusive_gaps for g in pair),
            detail=str(diffusive_gaps),
        )
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        scale=scale,
        seed=seed,
        tables=[table],
        checks=checks,
        notes=[
            "Together these reproduce footnote 3: [18]'s unique-Cauchy "
            "conclusion needs both a wide target and intermittent "
            "detection; the paper's unit-target continuous-detection model "
            "lands at a different (k, l)-dependent optimum instead.",
        ],
    )


def main(argv=None) -> int:
    return experiment_main(run, argv)


if __name__ == "__main__":
    raise SystemExit(main())
