"""repro -- reproduction of *Search via Parallel Levy Walks on Z^2*.

(Clementi, d'Amore, Giakkoupis, Natale; PODC 2021 / HAL hal-02530253v4.)

The package implements, from scratch:

* the discrete lattice geometry and *direct paths* of the paper's model
  (:mod:`repro.lattice`);
* the exact power-law jump distribution of Eq. (3)
  (:mod:`repro.distributions`);
* Levy flights, Levy walks, and the baseline processes
  (:mod:`repro.walks`), with exact vectorized Monte-Carlo engines
  (:mod:`repro.engine`);
* the paper's contribution -- parallel Levy walk search, the optimal
  exponent ``alpha* = 3 - log k / log l``, and the uniform-random-exponent
  strategy of Theorem 1.6 (:mod:`repro.core`);
* comparison baselines (spiral search, parallel SRW, ballistic spray;
  :mod:`repro.baselines`), executable theorem predictions
  (:mod:`repro.theory`), statistics (:mod:`repro.analysis`), and one
  experiment harness per paper statement (:mod:`repro.experiments`).

Quick start::

    from repro import ParallelLevySearch

    search = ParallelLevySearch(k=64)     # random exponents (Theorem 1.6)
    result = search.find(target=(40, 30), rng=0)
    print(result.found, result.time, result.finder_exponent)
"""

from repro.core import (
    FixedExponentStrategy,
    OracleExponentStrategy,
    ParallelLevySearch,
    SearchResult,
    UniformANTSAlgorithm,
    UniformRandomExponentStrategy,
    optimal_exponent,
    universal_lower_bound,
)
from repro.distributions import ZetaJumpDistribution
from repro.walks import BallisticWalk, LevyFlight, LevyWalk, SimpleRandomWalk

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ParallelLevySearch",
    "SearchResult",
    "UniformANTSAlgorithm",
    "UniformRandomExponentStrategy",
    "OracleExponentStrategy",
    "FixedExponentStrategy",
    "optimal_exponent",
    "universal_lower_bound",
    "ZetaJumpDistribution",
    "LevyWalk",
    "LevyFlight",
    "SimpleRandomWalk",
    "BallisticWalk",
]
