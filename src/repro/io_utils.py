"""Persistence for Monte-Carlo results (npz + JSON sidecars).

Full-scale runs are expensive; this module lets experiment drivers save
raw censored samples and reload them for re-analysis without re-running
the simulation.  Formats:

* :class:`~repro.engine.results.HittingTimeSample` -> a single ``.npz``
  with the times array and horizon;
* :class:`~repro.engine.multi_target.ForagingResult` -> a single ``.npz``
  with targets, discovery times, discoverers and horizon;
* arbitrary experiment metadata -> JSON (seeds, parameters, scale), kept
  next to the arrays so a directory of results is self-describing.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict

import numpy as np

from repro.engine.multi_target import ForagingResult
from repro.engine.results import HittingTimeSample

_SAMPLE_KIND = "repro.HittingTimeSample.v1"
_FORAGING_KIND = "repro.ForagingResult.v1"


def save_hitting_sample(sample: HittingTimeSample, path) -> Path:
    """Write a censored hitting-time sample to ``path`` (``.npz``)."""
    path = Path(path)
    np.savez_compressed(
        path,
        kind=np.array(_SAMPLE_KIND),
        times=sample.times,
        horizon=np.array(sample.horizon, dtype=np.int64),
    )
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_hitting_sample(path) -> HittingTimeSample:
    """Load a sample written by :func:`save_hitting_sample`."""
    with np.load(Path(path)) as data:
        kind = str(data["kind"])
        if kind != _SAMPLE_KIND:
            raise ValueError(f"not a hitting-time sample file (kind={kind!r})")
        return HittingTimeSample(
            times=data["times"].astype(np.int64),
            horizon=int(data["horizon"]),
        )


def save_foraging_result(result: ForagingResult, path) -> Path:
    """Write a multi-target foraging result to ``path`` (``.npz``)."""
    path = Path(path)
    np.savez_compressed(
        path,
        kind=np.array(_FORAGING_KIND),
        targets=result.targets,
        discovery_times=result.discovery_times,
        discoverer=result.discoverer,
        horizon=np.array(result.horizon, dtype=np.int64),
    )
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_foraging_result(path) -> ForagingResult:
    """Load a result written by :func:`save_foraging_result`."""
    with np.load(Path(path)) as data:
        kind = str(data["kind"])
        if kind != _FORAGING_KIND:
            raise ValueError(f"not a foraging result file (kind={kind!r})")
        return ForagingResult(
            targets=data["targets"].astype(np.int64),
            discovery_times=data["discovery_times"].astype(np.int64),
            discoverer=data["discoverer"].astype(np.int64),
            horizon=int(data["horizon"]),
        )


def save_metadata(metadata: Dict[str, Any], path) -> Path:
    """Write a JSON metadata sidecar (seeds, parameters, provenance)."""
    path = Path(path)
    path.write_text(json.dumps(metadata, indent=2, sort_keys=True) + "\n")
    return path


def load_metadata(path) -> Dict[str, Any]:
    """Read a JSON metadata sidecar."""
    return json.loads(Path(path).read_text())
