"""Persistence for Monte-Carlo results (npz + JSON sidecars).

Full-scale runs are expensive; this module lets experiment drivers save
raw censored samples and reload them for re-analysis without re-running
the simulation.  Formats:

* :class:`~repro.engine.results.HittingTimeSample` -> a single ``.npz``
  with the times array and horizon;
* :class:`~repro.engine.multi_target.ForagingResult` -> a single ``.npz``
  with targets, discovery times, discoverers and horizon;
* arbitrary experiment metadata -> JSON (seeds, parameters, scale), kept
  next to the arrays so a directory of results is self-describing.

All writers are *atomic* (tmp file + :func:`os.replace` in the target
directory), so a crash mid-write can never leave a half-written file under
the final name -- the checkpointing runner (:mod:`repro.runner`) relies on
this.  All loaders convert the zoo of low-level decoding failures
(truncated zip, garbage JSON, missing keys) into a single
:class:`CorruptResultError` so callers can quarantine bad files without
enumerating stdlib exception types.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import tempfile
import zipfile
from pathlib import Path
from typing import Any, Dict, Union

import numpy as np

from repro.engine.multi_target import ForagingResult
from repro.engine.results import HittingTimeSample

_SAMPLE_KIND = "repro.HittingTimeSample.v1"
_FORAGING_KIND = "repro.ForagingResult.v1"

#: Exceptions that mean "this file is damaged", re-raised as CorruptResultError.
_DECODE_ERRORS = (
    ValueError,
    KeyError,
    EOFError,
    OSError,
    zipfile.BadZipFile,
    json.JSONDecodeError,
)


class CorruptResultError(ValueError):
    """A result/metadata file is truncated, garbled, or of the wrong kind."""


# ------------------------------------------------------------ atomic writers


def atomic_write_bytes(data: bytes, path) -> Path:
    """Write ``data`` to ``path`` atomically (tmp file + ``os.replace``).

    The temporary file lives in the destination directory so the final
    rename never crosses filesystems; readers either see the old content
    or the complete new content, never a prefix.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=f".{path.name}.", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def atomic_write_json(obj: Any, path) -> Path:
    """Serialize ``obj`` as pretty JSON and write it atomically."""
    text = json.dumps(obj, indent=2, sort_keys=True) + "\n"
    return atomic_write_bytes(text.encode("utf-8"), path)


def open_append(path) -> int:
    """Open ``path`` for appending (created if absent); returns the fd.

    The descriptor carries ``O_APPEND``, so every ``os.write`` lands at
    the then-current end of file regardless of other appenders -- the
    contract the telemetry event log (:mod:`repro.telemetry.events`)
    builds its one-line-per-write durability on.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    return os.open(path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)


def append_text(fd: int, text: str) -> None:
    """Append ``text`` (one or more ``\\n``-terminated lines) to an
    :func:`open_append` fd.

    The whole block goes down in a single ``os.write`` call so concurrent
    appenders never interleave mid-record; a crash can only truncate the
    final line of the block.  This is what lets the telemetry event log
    buffer many events and flush them in one atomic append.
    """
    data = text.encode("utf-8")
    written = os.write(fd, data)
    while written < len(data):  # pragma: no cover - short writes are rare
        written += os.write(fd, data[written:])


def append_line(fd: int, line: str) -> None:
    """Append ``line`` (newline added) to an :func:`open_append` fd."""
    append_text(fd, line + "\n")


def sha256_hex(data: bytes) -> str:
    """Hex digest used to checksum checkpoint payloads."""
    return hashlib.sha256(data).hexdigest()


def _npz_bytes(**arrays: np.ndarray) -> bytes:
    buffer = io.BytesIO()
    np.savez_compressed(buffer, **arrays)
    return buffer.getvalue()


def _npz_path(path) -> Path:
    """Mirror ``np.savez``'s suffix behaviour: append ``.npz`` if absent."""
    path = Path(path)
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


# ----------------------------------------------------------- hitting samples


def hitting_sample_bytes(sample: HittingTimeSample) -> bytes:
    """The ``.npz`` byte serialization of a censored hitting-time sample."""
    return _npz_bytes(
        kind=np.array(_SAMPLE_KIND),
        times=np.asarray(sample.times, dtype=np.int64),
        horizon=np.array(sample.horizon, dtype=np.int64),
    )


def save_hitting_sample(sample: HittingTimeSample, path) -> Path:
    """Atomically write a censored hitting-time sample to ``path`` (``.npz``)."""
    return atomic_write_bytes(hitting_sample_bytes(sample), _npz_path(path))


def load_hitting_sample(path) -> HittingTimeSample:
    """Load a sample written by :func:`save_hitting_sample`.

    Raises :class:`CorruptResultError` on truncated/garbage files or a
    wrong ``kind`` tag; :class:`FileNotFoundError` if the file is absent.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(path)
    try:
        with np.load(path) as data:
            kind = str(data["kind"])
            if kind != _SAMPLE_KIND:
                raise CorruptResultError(
                    f"not a hitting-time sample file (kind={kind!r})"
                )
            return HittingTimeSample(
                times=data["times"].astype(np.int64),
                horizon=int(data["horizon"]),
            )
    except CorruptResultError:
        raise
    except _DECODE_ERRORS as exc:
        raise CorruptResultError(f"unreadable hitting-time sample {path}: {exc}") from exc


# ----------------------------------------------------------- foraging results


def foraging_result_bytes(result: ForagingResult) -> bytes:
    """The ``.npz`` byte serialization of a multi-target foraging result."""
    return _npz_bytes(
        kind=np.array(_FORAGING_KIND),
        targets=np.asarray(result.targets, dtype=np.int64),
        discovery_times=np.asarray(result.discovery_times, dtype=np.int64),
        discoverer=np.asarray(result.discoverer, dtype=np.int64),
        horizon=np.array(result.horizon, dtype=np.int64),
    )


def save_foraging_result(result: ForagingResult, path) -> Path:
    """Atomically write a multi-target foraging result to ``path`` (``.npz``)."""
    return atomic_write_bytes(foraging_result_bytes(result), _npz_path(path))


def load_foraging_result(path) -> ForagingResult:
    """Load a result written by :func:`save_foraging_result`.

    Raises :class:`CorruptResultError` on damaged files (see
    :func:`load_hitting_sample`).
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(path)
    try:
        with np.load(path) as data:
            kind = str(data["kind"])
            if kind != _FORAGING_KIND:
                raise CorruptResultError(f"not a foraging result file (kind={kind!r})")
            return ForagingResult(
                targets=data["targets"].astype(np.int64),
                discovery_times=data["discovery_times"].astype(np.int64),
                discoverer=data["discoverer"].astype(np.int64),
                horizon=int(data["horizon"]),
            )
    except CorruptResultError:
        raise
    except _DECODE_ERRORS as exc:
        raise CorruptResultError(f"unreadable foraging result {path}: {exc}") from exc


# ------------------------------------------------------------------ dispatch

ResultPayload = Union[HittingTimeSample, ForagingResult]

#: result-kind tag (as used by the runner's manifests) -> (to_bytes, load)
_PAYLOAD_CODECS = {
    "hitting": (hitting_sample_bytes, load_hitting_sample),
    "foraging": (foraging_result_bytes, load_foraging_result),
}


def payload_bytes(kind: str, payload: ResultPayload) -> bytes:
    """Serialize a result payload of the given kind tag (``hitting``/``foraging``)."""
    try:
        to_bytes, _ = _PAYLOAD_CODECS[kind]
    except KeyError:
        raise ValueError(f"unknown payload kind {kind!r}") from None
    return to_bytes(payload)


def load_payload(kind: str, path) -> ResultPayload:
    """Load a result payload of the given kind tag (``hitting``/``foraging``)."""
    try:
        _, load = _PAYLOAD_CODECS[kind]
    except KeyError:
        raise ValueError(f"unknown payload kind {kind!r}") from None
    return load(path)


# ------------------------------------------------------------------ metadata


def save_metadata(metadata: Dict[str, Any], path) -> Path:
    """Atomically write a JSON metadata sidecar (seeds, parameters, provenance)."""
    return atomic_write_json(metadata, Path(path))


def load_metadata(path) -> Dict[str, Any]:
    """Read a JSON metadata sidecar.

    Raises :class:`CorruptResultError` if the file is not valid JSON.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(path)
    try:
        return json.loads(path.read_text())
    except _DECODE_ERRORS as exc:
        raise CorruptResultError(f"unreadable metadata file {path}: {exc}") from exc
