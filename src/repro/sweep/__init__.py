"""Declarative parameter sweeps over the paper's grids.

A sweep is declared once as a :class:`~repro.sweep.spec.SweepSpec` --
axes over the exponent law, target distance, group size and detection
mode, plus per-point sample-size and horizon policies -- and executed by
:func:`~repro.sweep.scheduler.run_sweep`, which shards every grid
point's chunks across ONE shared :class:`repro.runner.Runner` pool: one
deadline, one checkpoint store, one telemetry stream, and per-point
sequential stopping (``--stop-when-ci``) so resolved points free their
workers for unresolved ones.

Seeding contract (see ``docs/sweep.md``): grid point ``i`` draws its
simulation seed from ``SeedSequence(seed).spawn(n_points)[i]`` -- a pure
function of ``(seed, i)`` -- so per-point samples are bit-identical
across ``workers=0``, ``workers=N`` and checkpoint-resumed executions.
"""

from repro.sweep.result import PointResult, SweepResult
from repro.sweep.scheduler import run_sweep
from repro.sweep.spec import GridPoint, SweepSpec

__all__ = [
    "GridPoint",
    "PointResult",
    "SweepResult",
    "SweepSpec",
    "run_sweep",
]
