"""The declarative sweep specification: axes, policies, task expansion.

A :class:`SweepSpec` describes a parameter grid *as data*: named axes
whose cartesian product (in declaration order) enumerates the grid, an
optional ``where`` predicate to drop cells, per-point policies for the
sample size and horizon, and optional aggregation parameters (``k``,
``n_groups``) for parallel-time estimates.  ``expand()`` turns the spec
into an ordered list of :class:`GridPoint`; ``build_task(point)`` turns
one point into a picklable runner task
(:class:`~repro.runner.tasks.HittingTimeTask` or
:class:`~repro.runner.tasks.CCRWTask` by default).

Reserved axis names understood by the default task builder:

``alpha``
    Levy exponent; the point samples a ``ZetaJumpDistribution(alpha)``.
``law``
    An explicit :class:`~repro.distributions.base.JumpDistribution`
    (overrides ``alpha`` for the simulation; ``alpha`` stays in the
    point's params for reporting).
``l``
    Target distance; the target node is ``default_target(l)`` unless a
    ``target`` param is given.
``detect``
    ``True`` for the paper's during-jump detection, ``False`` for
    endpoint-only (the intermittent model).
``flight``
    ``True`` to count jumps instead of steps (flight semantics).
``bout``
    Mean relocation-bout length; the point samples the CCRW baseline
    (:class:`~repro.runner.tasks.CCRWTask`) instead of a Levy walk.
``k`` / ``n_groups``
    Aggregation-only: never passed to the engine, consumed by the
    scheduler to reduce single-walk samples to parallel estimates.

An axis *value* that is a mapping is merged into the point's params
instead of being bound to the axis name -- this declares zipped
sub-grids, e.g. ``axes={"cell": [{"k": 32, "l": 64}, {"k": 48, "l":
96}], "alpha": (2.0, 2.5)}`` sweeps alpha within each (k, l) cell.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

IntPoint = Tuple[int, int]
#: A per-point policy: either a constant or a function of the point's params.
Policy = Union[int, float, Callable[[Mapping[str, Any]], Any]]

#: Axis names consumed by the sweep machinery itself (aggregation), never
#: forwarded to the simulation task.
AGGREGATION_KEYS = ("k", "n_groups")


def resolve(policy: Optional[Policy], params: Mapping[str, Any]) -> Any:
    """Evaluate a policy for one point (constants pass through)."""
    if callable(policy):
        return policy(params)
    return policy


@dataclass(frozen=True)
class GridPoint:
    """One fully resolved cell of a sweep grid.

    ``index`` is the point's position in the spec's expansion order --
    the seeding key, so a point's sample depends only on ``(sweep seed,
    index)``, never on how workers interleave chunks.
    """

    index: int
    params: Mapping[str, Any]
    n: int
    horizon: int
    k: Optional[int] = None
    n_groups: Optional[int] = None

    @property
    def label(self) -> str:
        return f"point-{self.index:04d}"

    def describe(self) -> str:
        """Compact ``axis=value`` rendering for tables and logs."""
        parts = []
        for key, value in self.params.items():
            if isinstance(value, float):
                parts.append(f"{key}={value:g}")
            else:
                parts.append(f"{key}={value}")
        return " ".join(parts)


@dataclass(frozen=True)
class SweepSpec:
    """A declarative parameter sweep.

    Parameters
    ----------
    axes:
        Ordered mapping ``name -> values``; the grid is the cartesian
        product in declaration order (last axis varies fastest).  Mapping
        values are merged into the point's params (zipped sub-grids).
    n:
        Sample-size policy: walks simulated per point.
    horizon:
        Horizon policy: censoring step (or jump) budget per point.
    defaults:
        Params merged under every point (overridden by axes).
    where:
        Optional predicate on the merged params; cells where it returns
        False are dropped *before* indices are assigned.
    k:
        Optional group-size policy; points with ``k`` get parallel-time
        estimates (see :class:`~repro.sweep.result.PointResult`).
    n_groups:
        Optional bootstrap-resample count policy.  With ``n_groups`` the
        parallel estimate resamples groups from the single-walk pool;
        without it, consecutive blocks of ``k`` walks are reduced exactly
        (:func:`~repro.engine.results.group_minimum`).
    task:
        Optional override ``(params, horizon) -> picklable task`` for
        grids the reserved axes cannot express.
    """

    axes: Mapping[str, Sequence[Any]]
    n: Policy
    horizon: Policy
    defaults: Mapping[str, Any] = field(default_factory=dict)
    where: Optional[Callable[[Mapping[str, Any]], bool]] = None
    k: Optional[Policy] = None
    n_groups: Optional[Policy] = None
    task: Optional[Callable[[Mapping[str, Any], int], Any]] = None

    # ---------------------------------------------------------- expansion

    def _cells(self) -> List[Dict[str, Any]]:
        cells: List[Dict[str, Any]] = [dict(self.defaults)]
        for name, values in self.axes.items():
            if not values:
                raise ValueError(f"axis {name!r} has no values")
            expanded = []
            for cell in cells:
                for value in values:
                    merged = dict(cell)
                    if isinstance(value, Mapping):
                        merged.update(value)
                    else:
                        merged[name] = value
                    expanded.append(merged)
            cells = expanded
        return cells

    def expand(self) -> List[GridPoint]:
        """Enumerate the grid in declaration order, indices assigned after
        ``where`` filtering."""
        points: List[GridPoint] = []
        for cell in self._cells():
            if self.where is not None and not self.where(cell):
                continue
            n = int(resolve(self.n, cell))
            horizon = int(resolve(self.horizon, cell))
            if n < 1:
                raise ValueError(f"n policy produced {n} for params {cell}")
            if horizon < 0:
                raise ValueError(
                    f"horizon policy produced {horizon} for params {cell}"
                )
            k = resolve(self.k, cell)
            n_groups = resolve(self.n_groups, cell)
            points.append(
                GridPoint(
                    index=len(points),
                    params=cell,
                    n=n,
                    horizon=horizon,
                    k=None if k is None else int(k),
                    n_groups=None if n_groups is None else int(n_groups),
                )
            )
        return points

    # ------------------------------------------------------------- tasks

    def build_task(self, point: GridPoint) -> Any:
        """Expand one grid point into a picklable runner task."""
        if self.task is not None:
            return self.task(point.params, point.horizon)
        return default_task(point.params, point.horizon)


def default_task(params: Mapping[str, Any], horizon: int) -> Any:
    """The reserved-axis task builder (see the module docstring)."""
    from repro.experiments.common import default_target

    target = params.get("target")
    if target is None:
        if "l" not in params:
            raise ValueError(
                "point needs an 'l' or 'target' param to place the target; "
                f"got {dict(params)}"
            )
        target = default_target(int(params["l"]))
    target = (int(target[0]), int(target[1]))

    if "bout" in params:
        from repro.runner.tasks import CCRWTask

        return CCRWTask(
            target=target,
            horizon=int(horizon),
            extensive_bout_mean=float(params["bout"]),
        )

    law = params.get("law")
    if law is None:
        if "alpha" not in params:
            raise ValueError(
                "point needs an 'alpha', 'law' or 'bout' param to pick the "
                f"walk; got {dict(params)}"
            )
        from repro.distributions.zeta import ZetaJumpDistribution

        law = ZetaJumpDistribution(float(params["alpha"]))

    from repro.runner.tasks import HittingTimeTask

    return HittingTimeTask(
        jumps=law,
        target=target,
        horizon=int(horizon),
        detect_during_jump=bool(params.get("detect", True)),
        flight=bool(params.get("flight", False)),
    )
