"""Sweep results: per-point samples, parallel estimates, provenance.

A :class:`SweepResult` keeps the grid's :class:`PointResult` objects in
expansion order.  Each point carries its censored single-walk
:class:`~repro.engine.results.HittingTimeSample`, the runner's
:class:`~repro.runner.runner.RunOutcome` (resume/retry/convergence
provenance), and -- when the spec declared a group size ``k`` -- the
derived parallel hitting-time estimates
(:func:`~repro.engine.results.group_minimum` over consecutive blocks, or
:func:`~repro.engine.results.bootstrap_parallel` resamples when
``n_groups`` was set).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, List, Mapping, Optional

import numpy as np

from repro.engine.results import bootstrap_parallel, group_minimum
from repro.reporting.table import Table


@dataclass(frozen=True)
class PointResult:
    """Everything one grid point produced.

    ``analysis_seed`` is the point's second spawned seed (the first
    drives the simulation), so derived estimates -- e.g. bootstrap
    groupings at a different ``k`` -- are reproducible per point without
    threading generators through the scheduler.
    """

    point: Any  # GridPoint
    sample: Any  # HittingTimeSample
    outcome: Any  # RunOutcome
    parallel: Optional[np.ndarray]
    analysis_seed: int

    @property
    def params(self) -> Mapping[str, Any]:
        return self.point.params

    @property
    def group_success(self) -> float:
        """Fraction of parallel groups that found the target (nan if no k)."""
        if self.parallel is None or self.parallel.size == 0:
            return float("nan")
        return float((self.parallel >= 0).mean())

    def bootstrap(self, k: int, n_groups: int, rng=None) -> np.ndarray:
        """Resampled parallel times at an arbitrary group size ``k``.

        With ``rng=None`` the point's own analysis seed drives the
        resampling, so repeated calls with the same arguments are
        deterministic.
        """
        if rng is None:
            rng = np.random.default_rng(self.analysis_seed)
        return bootstrap_parallel(self.sample.times, k, n_groups, rng)

    def group_minimum(self, k: int) -> np.ndarray:
        """Exact parallel times over consecutive blocks of ``k`` walks."""
        times = np.asarray(self.sample.times)
        usable = (times.shape[0] // k) * k
        return group_minimum(times[:usable], k)


@dataclass(frozen=True)
class SweepResult:
    """An executed sweep: point results in grid-expansion order."""

    seed: int
    label: str
    results: List[PointResult]

    def __iter__(self) -> Iterator[PointResult]:
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    @property
    def degraded(self) -> bool:
        return any(r.outcome.degraded for r in self.results)

    @property
    def interrupted(self) -> bool:
        return any(r.outcome.interrupted for r in self.results)

    @property
    def converged(self) -> int:
        """Number of points that stopped early on their CI target."""
        return sum(1 for r in self.results if r.outcome.converged)

    @property
    def quarantined_points(self) -> int:
        """Number of poison points the circuit breaker quarantined."""
        return sum(1 for r in self.results if r.outcome.quarantined_point)

    def select(self, **fixed: Any) -> List[PointResult]:
        """Points whose params match every ``fixed`` item, in grid order."""
        return [
            r
            for r in self.results
            if all(r.params.get(key) == value for key, value in fixed.items())
        ]

    def one(self, **fixed: Any) -> PointResult:
        """The unique point matching ``fixed``; raises otherwise."""
        matches = self.select(**fixed)
        if len(matches) != 1:
            raise KeyError(
                f"expected exactly one point matching {fixed}, found {len(matches)}"
            )
        return matches[0]

    def summary_table(self) -> Table:
        """One row per point: params, hit fraction, group success, status."""
        table = Table(
            [
                "point",
                "params",
                "n",
                "horizon",
                "P(hit)",
                "group success",
                "chunks",
                "status",
            ],
            title=f"sweep {self.label!r} (seed {self.seed}, {len(self.results)} points)",
        )
        for r in self.results:
            out = r.outcome
            if out.interrupted:
                status = "interrupted"
            elif out.quarantined_point:
                status = "quarantined"
            elif out.converged:
                status = "converged"
            elif out.degraded:
                status = "degraded"
            else:
                status = "complete"
            table.add_row(
                r.point.index,
                r.point.describe(),
                r.sample.n,
                r.point.horizon,
                r.sample.hit_fraction if r.sample.n else float("nan"),
                r.group_success,
                f"{out.completed_chunks}/{out.total_chunks}",
                status,
            )
        return table

    def to_dict(self) -> dict:
        """JSON-serializable summary (samples reduced to statistics)."""
        points = []
        for r in self.results:
            points.append(
                {
                    "index": r.point.index,
                    "params": {
                        key: value
                        for key, value in r.params.items()
                        if isinstance(value, (int, float, str, bool))
                    },
                    "n": r.sample.n,
                    "horizon": r.point.horizon,
                    "hit_fraction": r.sample.hit_fraction if r.sample.n else None,
                    "group_success": (
                        None if r.parallel is None else r.group_success
                    ),
                    "completed_chunks": r.outcome.completed_chunks,
                    "total_chunks": r.outcome.total_chunks,
                    "degraded": r.outcome.degraded,
                    "interrupted": r.outcome.interrupted,
                    "converged": r.outcome.converged,
                    "quarantined": r.outcome.quarantined_point,
                    "retries": r.outcome.retries,
                }
            )
        return {
            "label": self.label,
            "seed": self.seed,
            "n_points": len(self.results),
            "points": points,
        }
