"""Execute a sweep spec over one shared runner pool.

:func:`run_sweep` expands the spec, derives one ``SeedSequence`` child
per grid point, wraps every point as a :class:`repro.runner.Job`, and
hands the whole batch to :meth:`repro.runner.Runner.run_many` -- the
grid scheduler.  All points therefore share ONE process pool, walltime
deadline, checkpoint root, convergence monitor family and telemetry
stream; the runner interleaves chunks round-robin so every point makes
early progress, and a point whose CI target converges releases its
remaining chunks' worker slots to unresolved points.

Seeding contract
----------------
Point ``i``'s simulation seed and analysis seed are the two words of
``SeedSequence(seed).spawn(n_points)[i].generate_state(2)`` -- a pure
function of ``(seed, i)``.  Adding, removing or reordering points
changes indices (and therefore samples); changing worker counts,
resuming from checkpoints, or interleaving differently does not.  When
every chunk of every point completes, results are bit-identical across
``workers=0``, ``workers=N`` and resumed executions.  A sweep stopped
early (convergence, deadline, signal) returns the chunks that finished
-- still valid censored samples, but *which* chunks finished does
depend on scheduling, so determinism claims apply to complete runs.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.runner import Job, Runner
from repro.sweep.result import PointResult, SweepResult
from repro.sweep.spec import SweepSpec
from repro.telemetry.recorder import get_recorder


def point_seeds(seed: int, n_points: int) -> List[Tuple[int, int]]:
    """Per-point ``(simulation seed, analysis seed)`` pairs.

    Pure in ``(seed, index)``: the sweep scheduler, worker count and
    resume history never touch the seed path.
    """
    children = np.random.SeedSequence(int(seed)).spawn(n_points)
    pairs = []
    for child in children:
        words = child.generate_state(2, dtype=np.uint64)
        pairs.append((int(words[0] >> 1), int(words[1] >> 1)))
    return pairs


def run_sweep(
    spec: SweepSpec,
    seed: int = 0,
    runner: Optional[Runner] = None,
    label: str = "sweep",
    quarantine_after: Optional[int] = None,
) -> SweepResult:
    """Execute every grid point of ``spec`` and aggregate the results.

    With ``runner=None`` a plain in-process :class:`Runner` is used (no
    checkpoints, no pool) -- the zero-infrastructure path.  Passing a
    configured runner adds checkpointing/resume, a process pool, a
    shared deadline and per-point sequential stopping, without changing
    any point's sample (complete runs are bit-identical; see the module
    docstring).

    Sweeps always run with the per-point circuit breaker armed: a poison
    grid point (a task that keeps failing) is quarantined after
    ``quarantine_after`` chunk failures (default: the retry policy's own
    setting, else its attempt budget) and the rest of the grid completes
    -- the point comes back with ``outcome.quarantined_point`` set and an
    empty censored sample instead of sinking the whole sweep.
    """
    points = spec.expand()
    rec = get_recorder()
    if runner is None:
        runner = Runner()
    if quarantine_after is None:
        quarantine_after = (
            runner.retry_policy.quarantine_after
            if runner.retry_policy.quarantine_after is not None
            else runner.retry_policy.max_attempts
        )
    rec.event(
        "sweep_start",
        label=label,
        points=len(points),
        seed=int(seed),
        workers=runner.workers,
    )
    if not points:
        rec.event("sweep_end", label=label, points=0, converged=0)
        return SweepResult(seed=int(seed), label=label, results=[])
    seeds = point_seeds(seed, len(points))
    jobs = [
        Job(
            task=spec.build_task(point),
            n_total=point.n,
            seed=sim_seed,
            label=f"{label}-{point.label}",
        )
        for point, (sim_seed, _) in zip(points, seeds)
    ]
    outcomes = runner.run_many(jobs, quarantine_after=quarantine_after)
    results = []
    for point, (_, analysis_seed), outcome in zip(points, seeds, outcomes):
        sample = outcome.payload
        parallel = None
        if point.k is not None and sample.n:
            rng = np.random.default_rng(analysis_seed)
            if point.n_groups is not None:
                from repro.engine.results import bootstrap_parallel

                parallel = bootstrap_parallel(
                    sample.times, point.k, point.n_groups, rng
                )
            else:
                from repro.engine.results import group_minimum

                usable = (sample.n // point.k) * point.k
                if usable:
                    parallel = group_minimum(sample.times[:usable], point.k)
        results.append(
            PointResult(
                point=point,
                sample=sample,
                outcome=outcome,
                parallel=parallel,
                analysis_seed=analysis_seed,
            )
        )
    rec.event(
        "sweep_end",
        label=label,
        points=len(points),
        converged=sum(1 for r in results if r.outcome.converged),
        degraded=sum(1 for r in results if r.outcome.degraded),
        interrupted=sum(1 for r in results if r.outcome.interrupted),
        quarantined=sum(1 for r in results if r.outcome.quarantined_point),
    )
    return SweepResult(seed=int(seed), label=label, results=results)
