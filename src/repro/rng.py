"""Randomness plumbing shared by every stochastic component.

All stochastic APIs in this package accept either an integer seed, ``None``
(fresh OS entropy) or an existing :class:`numpy.random.Generator`; this
module provides the single conversion point plus independent-stream
spawning for parallel walkers, so that experiments are reproducible from a
single printed seed.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Passing a generator returns it unchanged (no copy), so sequential calls
    share one stream; passing an int always yields the same stream.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, n: int) -> List[np.random.Generator]:
    """Derive ``n`` statistically independent child generators from ``rng``.

    Used to give each of the ``k`` parallel walks of the paper its own
    stream: the walks are independent by construction (Section 1.1), and
    independent streams keep them independent regardless of the order in
    which the simulation advances them.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    return [np.random.Generator(bit_gen) for bit_gen in rng.bit_generator.spawn(n)]


def random_seed(rng: Optional[np.random.Generator] = None) -> int:
    """Draw a printable 63-bit seed (for experiment logging)."""
    source = rng if rng is not None else np.random.default_rng()
    return int(source.integers(0, 2**63 - 1))
