"""A blocking NDJSON client for the estimation daemon.

Used by the ``repro-experiment query`` subcommand and by tests/CI
(`scripts/serve_smoke.py`); deliberately dependency-free and
synchronous -- a caller that wants async can speak the protocol
directly (it is one JSON object per line, see
:mod:`repro.serve.protocol`).
"""

from __future__ import annotations

import socket
from pathlib import Path
from typing import Dict, Iterator, Optional

from repro.api.query import EstimateRequest, EstimateResponse
from repro.serve.protocol import Address, decode_line, encode_line


class ServeClient:
    """One connection to a running daemon; context-manager friendly."""

    def __init__(self, address: Address, timeout: Optional[float] = 60.0) -> None:
        self.address = address
        if isinstance(address, Path):
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout)
            self._sock.connect(str(address))
        else:
            self._sock = socket.create_connection(address, timeout=timeout)
        self._buffer = b""

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    # ------------------------------------------------------------- plumbing

    def _send(self, payload: Dict) -> None:
        self._sock.sendall(encode_line(payload))

    def _read_line(self) -> Dict:
        while b"\n" not in self._buffer:
            chunk = self._sock.recv(65536)
            if not chunk:
                raise ConnectionError("daemon closed the connection")
            self._buffer += chunk
        line, _, self._buffer = self._buffer.partition(b"\n")
        return decode_line(line)

    def _roundtrip(self, payload: Dict) -> Dict:
        self._send(payload)
        reply = self._read_line()
        if not reply.get("ok", False):
            raise RuntimeError(reply.get("error", "daemon error"))
        return reply

    # ------------------------------------------------------------------ ops

    def ping(self) -> bool:
        return bool(self._roundtrip({"op": "ping"}).get("ok"))

    def stats(self) -> Dict:
        return self._roundtrip({"op": "stats"})

    def shutdown(self) -> bool:
        return bool(self._roundtrip({"op": "shutdown"}).get("ok"))

    def estimate(
        self, request: EstimateRequest, stream: bool = True
    ) -> Iterator[EstimateResponse]:
        """Issue one query; yields responses until the final one.

        With ``stream=False`` the daemon suppresses progressive lines
        and exactly one (final) response is yielded.
        """
        payload = {"op": "estimate", "stream": stream, **request.to_dict()}
        self._send(payload)
        while True:
            reply = self._read_line()
            if not reply.get("ok", False):
                raise RuntimeError(reply.get("error", "daemon error"))
            response = EstimateResponse.from_dict(reply)
            yield response
            if response.final:
                return

    def query(
        self, request: EstimateRequest, stream: bool = True
    ) -> EstimateResponse:
        """Like :meth:`estimate` but returns only the final response."""
        final = None
        for final in self.estimate(request, stream=stream):
            pass
        assert final is not None  # estimate() always ends with a final line
        return final
