"""The estimation service: daemon, result cache, batching, client.

``repro-experiment serve`` runs a long-lived asyncio daemon that
answers typed ``P(hit by t)?`` queries (:class:`~repro.api.query
.EstimateRequest`) over a unix or TCP socket, newline-delimited JSON,
in three tiers: persistent result-cache hit, instant theory surrogate,
and background Monte-Carlo refinement streaming progressive responses.
Concurrent requests for the same canonical key coalesce into one
shared engine call.  See docs/serve.md for the protocol and tiers.

Layering: this package imports :mod:`repro.api.query` (the shared
typed contract) and the runner/telemetry stack; nothing outside it
imports it at module level (the facade's :func:`repro.api.estimate`
pulls the cache and refinement lazily).
"""

from repro.serve.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.serve.daemon import DEFAULT_SOCKET, EstimationService, serve_forever
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    EstimateRequest,
    EstimateResponse,
    decode_line,
    encode_line,
    parse_address,
)

__all__ = [
    "DEFAULT_CACHE_DIR",
    "DEFAULT_SOCKET",
    "EstimateRequest",
    "EstimateResponse",
    "EstimationService",
    "PROTOCOL_VERSION",
    "ResultCache",
    "decode_line",
    "encode_line",
    "parse_address",
    "serve_forever",
]
