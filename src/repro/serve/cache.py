"""The persistent result cache: one JSONL store of served estimates.

PR 5's CDF-table LRU memoized *inputs* (inverse-CDF jump tables per
law); this store generalizes the idea to *outputs*: every final
estimate the service produces lands here, keyed by the canonical
``(law, geometry, horizon)`` string from
:func:`repro.api.query.canonical_key`, so a repeated query -- even
after a daemon restart -- is answered without touching an engine.

Durability contract (shared with the event log and run registry):

* one entry per line, appended in a single ``O_APPEND`` write, so
  concurrent writers never interleave mid-record;
* a kill can only tear the *final* line; readers skip a torn tail and
  :meth:`ResultCache.put` heals one by starting the next entry on a
  fresh line (the leading newline goes down in the same write);
* the in-memory index is newest-wins per key with a bounded LRU, so a
  long-lived daemon cannot grow without bound even while the on-disk
  log stays append-only (:meth:`gc` compacts it atomically).

Warm start: :meth:`warm_start` imports a run registry's headline
estimates as in-memory entries (not re-appended to disk -- the
registry already persists them), which is how a fresh daemon answers
from last week's sweeps immediately.
"""

from __future__ import annotations

import json
import os
from collections import OrderedDict
from pathlib import Path
from typing import Iterator, Optional

from repro.api.query import (
    EstimateRequest,
    EstimateResponse,
    response_from_registry_estimate,
)
from repro.io_utils import append_text, atomic_write_bytes, open_append

#: Default cache location (CLI: ``--cache-dir``).
DEFAULT_CACHE_DIR = ".repro-cache"

#: The append-only entry file inside the cache directory.
CACHE_FILENAME = "estimates.jsonl"

#: Default in-memory index bound (newest-used entries win).
DEFAULT_MAX_ENTRIES = 4096


class ResultCache:
    """Append-only JSONL store of final :class:`EstimateResponse` entries."""

    def __init__(
        self, directory=DEFAULT_CACHE_DIR, max_entries: int = DEFAULT_MAX_ENTRIES
    ) -> None:
        self.directory = Path(directory if directory is not None else DEFAULT_CACHE_DIR)
        self.max_entries = int(max_entries)
        self._index: "OrderedDict[str, EstimateResponse]" = OrderedDict()
        self._loaded = False

    @property
    def path(self) -> Path:
        return self.directory / CACHE_FILENAME

    def __len__(self) -> int:
        self._ensure_loaded()
        return len(self._index)

    # ------------------------------------------------------------- reading

    def _ensure_loaded(self) -> None:
        if self._loaded:
            return
        self._loaded = True
        if not self.path.exists():
            return
        lines = self.path.read_text(encoding="utf-8", errors="replace").split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        for line in lines:
            if not line.strip():
                continue
            try:
                entry = EstimateResponse.from_dict(json.loads(line))
            except (json.JSONDecodeError, ValueError):
                # Torn tail (kill-mid-write) or interior damage: a cache
                # miss re-derives the answer, so skipping is always safe.
                continue
            self._remember(entry)

    def _remember(self, entry: EstimateResponse) -> None:
        existing = self._index.pop(entry.key, None)
        if existing is not None and existing.half_width < entry.half_width:
            # Keep the tighter answer when both are final (a re-served
            # warm start must not loosen what refinement already earned).
            entry = existing
        self._index[entry.key] = entry
        while len(self._index) > self.max_entries:
            self._index.popitem(last=False)

    def get(
        self, key: str, max_ci: Optional[float] = None
    ) -> Optional[EstimateResponse]:
        """The cached final answer for ``key``, if tight enough.

        ``max_ci`` is the largest acceptable absolute Wilson half-width
        (``None`` accepts any).  A hit is marked recently-used.
        """
        self._ensure_loaded()
        entry = self._index.get(key)
        if entry is None:
            return None
        if max_ci is not None and entry.half_width > max_ci:
            return None
        self._index.move_to_end(key)
        return entry

    def entries(self) -> Iterator[EstimateResponse]:
        """Every indexed entry, least-recently-used first."""
        self._ensure_loaded()
        return iter(list(self._index.values()))

    # ------------------------------------------------------------- writing

    def put(self, response: EstimateResponse, persist: bool = True) -> EstimateResponse:
        """Index (and by default append) one final answer.

        ``persist=False`` keeps the entry in memory only -- used for
        registry warm starts, which the registry already persists.
        """
        self._ensure_loaded()
        self._remember(response)
        if not persist:
            return response
        line = json.dumps(
            response.to_dict(), separators=(",", ":"), sort_keys=True, default=str
        )
        prefix = "\n" if self._tail_is_torn() else ""
        self.directory.mkdir(parents=True, exist_ok=True)
        fd = open_append(self.path)
        try:
            append_text(fd, prefix + line + "\n")
        finally:
            os.close(fd)
        return response

    def _tail_is_torn(self) -> bool:
        try:
            with open(self.path, "rb") as handle:
                handle.seek(0, os.SEEK_END)
                if handle.tell() == 0:
                    return False
                handle.seek(-1, os.SEEK_END)
                return handle.read(1) != b"\n"
        except OSError:
            return False

    # ---------------------------------------------------------- warm start

    def warm_start(self, registry) -> int:
        """Import a run registry's headline estimates; returns the count.

        Walks every record oldest-first (so newer records overwrite
        older entries for the same key) and indexes each per-walk
        Bernoulli estimate row under its canonical key.  In-memory
        only: the registry persists these already.
        """
        imported = 0
        for record in registry.records():
            for row in record.estimates:
                params = row.get("params") or {}
                alpha, l = params.get("alpha"), params.get("l")
                horizon = row.get("horizon")
                if not isinstance(alpha, (int, float)) or not isinstance(l, int):
                    continue
                if not isinstance(horizon, int):
                    continue
                try:
                    request = EstimateRequest(
                        alpha=float(alpha),
                        l=l,
                        horizon=horizon,
                        detect=bool(params.get("detect", True)),
                    )
                except ValueError:
                    continue
                response = response_from_registry_estimate(
                    row, request, record.run_id
                )
                if response is None:
                    continue
                self.put(response, persist=False)
                imported += 1
        return imported

    # ----------------------------------------------------------------- gc

    def gc(self) -> int:
        """Atomically compact the on-disk log to the indexed entries.

        Returns the number of entries written.  A crash mid-gc leaves
        the old file (tmp + rename, like the registry's gc).
        """
        self._ensure_loaded()
        body = "".join(
            json.dumps(e.to_dict(), separators=(",", ":"), sort_keys=True) + "\n"
            for e in self._index.values()
        )
        atomic_write_bytes(body.encode("utf-8"), self.path)
        return len(self._index)
