"""Monte-Carlo refinement for the estimation service.

The simulation tier: when neither the result cache nor the theory
surrogate can meet a request's CI target, this module drives the
existing fault-tolerant :class:`~repro.runner.Runner` in rounds of
walks until the k-walker Wilson half-width drops below ``max_ci`` (or
a walk budget runs out).  Progressive answers stream off the runner's
v4 ``estimate`` events: a private :class:`~repro.telemetry.recorder
.TelemetryRecorder` with an event *tap* as its writer is handed to the
runner, so every per-chunk convergence event becomes one progressive
:class:`~repro.api.query.EstimateResponse` without touching the
process-global recorder seam (the daemon's own telemetry keeps
flowing through :func:`repro.telemetry.get_recorder` untouched).

Rounds double in size (bounded by the remaining budget), so the total
overshoot past the CI target is at most 2x, while early rounds stay
cheap for easy queries.  Seeds derive deterministically from the
request's canonical key, so the same query refined twice produces the
same sample path.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Optional

from repro.api.query import EstimateRequest, EstimateResponse, parallel_interval
from repro.telemetry.convergence import ConvergenceConfig
from repro.telemetry.recorder import TelemetryRecorder

#: Walks in the first refinement round (rounds double after that).
DEFAULT_ROUND_WALKS = 2_000

#: Hard per-query walk budget; a query that cannot converge within it
#: returns its best (non-converged) estimate rather than running forever.
DEFAULT_MAX_WALKS = 200_000

#: Chunks per round: enough that the convergence monitor streams several
#: progressive ``estimate`` events per round.
DEFAULT_CHUNKS = 8


def request_seed(request: EstimateRequest) -> int:
    """A deterministic 63-bit seed derived from the canonical key."""
    digest = hashlib.sha256(request.key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


class _EstimateTap:
    """An event-log *writer* that forwards ``estimate`` events to a callback.

    Duck-types :class:`repro.telemetry.events.EventLogWriter` (``write``
    / ``flush`` / ``close``) so a :class:`TelemetryRecorder` accepts it;
    every other event type is dropped.
    """

    def __init__(self, on_estimate: Callable[[dict], None]) -> None:
        self._on_estimate = on_estimate

    def write(self, record: dict) -> None:
        if record.get("type") == "estimate":
            self._on_estimate(record)

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


@dataclass
class _Progress:
    """Cumulative counts across rounds (estimate events are per-round)."""

    successes: int = 0
    trials: int = 0
    seq: int = 0


def refine_estimate(
    request: EstimateRequest,
    publish: Optional[Callable[[EstimateResponse], None]] = None,
    *,
    seed: Optional[int] = None,
    round_walks: int = DEFAULT_ROUND_WALKS,
    max_walks: int = DEFAULT_MAX_WALKS,
    chunks: int = DEFAULT_CHUNKS,
    first_seq: int = 1,
) -> EstimateResponse:
    """Simulate until the request's CI target is met; returns the final answer.

    Blocking -- the daemon calls it from a worker thread, the in-process
    :func:`repro.api.estimate` directly.  ``publish`` (when given)
    receives one progressive non-final :class:`EstimateResponse` per
    runner ``estimate`` event, cumulative across rounds and already
    lifted to k-walker space.
    """
    from repro.distributions.zeta import ZetaJumpDistribution
    from repro.experiments.common import default_target
    from repro.runner import Runner
    from repro.runner.tasks import HittingTimeTask

    if seed is None:
        seed = request_seed(request)
    target_ci = request.max_ci
    progress = _Progress(seq=int(first_seq))

    def _response(successes: int, trials: int, final: bool) -> EstimateResponse:
        interval = parallel_interval(successes, trials, request.k)
        half = 0.5 * (interval["high"] - interval["low"])
        response = EstimateResponse(
            key=request.key,
            tier="simulation",
            trials=trials,
            successes=successes,
            final=final,
            converged=target_ci is not None and half <= target_ci,
            seq=progress.seq,
            source="monte-carlo",
            **interval,
        )
        progress.seq += 1
        return response

    def _on_estimate(event: dict) -> None:
        if publish is None:
            return
        # Event counts are cumulative within the current round only.
        successes = progress.successes + int(event.get("successes", 0))
        trials = progress.trials + int(event.get("trials", 0))
        publish(_response(successes, trials, final=False))

    recorder = TelemetryRecorder(writer=_EstimateTap(_on_estimate), profile=False)
    task = HittingTimeTask(
        jumps=ZetaJumpDistribution(request.alpha),
        target=default_target(request.l),
        horizon=request.resolved_horizon,
        detect_during_jump=request.detect,
    )
    runner = Runner(
        n_chunks=int(chunks),
        convergence=ConvergenceConfig(),
        recorder=recorder,
    )

    n_round = max(1, int(round_walks))
    round_index = 0
    while True:
        n_this = min(n_round, max(1, int(max_walks) - progress.trials))
        outcome = runner.run(
            task,
            n_this,
            seed + round_index,
            label=f"serve-{round_index}",
        )
        payload = outcome.payload
        progress.successes += int(payload.n_hits)
        progress.trials += int(payload.n)
        interval = parallel_interval(progress.successes, progress.trials, request.k)
        half = 0.5 * (interval["high"] - interval["low"])
        round_index += 1
        if target_ci is None or half <= target_ci or progress.trials >= max_walks:
            break
        n_round *= 2
    return _response(progress.successes, progress.trials, final=True)
