"""The serve wire protocol: newline-delimited JSON over a socket.

One request per line, one or more response lines per request (a
streaming query yields progressive lines, the last with
``"final": true``).  The typed contract is *re-exported* from
:mod:`repro.api.query` -- daemon, client, and the in-process
:func:`repro.api.estimate` path share one schema by construction.

Request lines are objects with an ``op``:

* ``{"op": "estimate", "alpha": 2.5, "l": 24, ...}`` -- the
  :class:`EstimateRequest` fields, plus optional ``"stream": false``
  to suppress progressive lines (only the final answer comes back);
* ``{"op": "stats"}`` -- daemon counters, cache size, uptime;
* ``{"op": "ping"}`` -- liveness probe;
* ``{"op": "shutdown"}`` -- graceful stop (same path as SIGTERM).

Response lines always carry ``"ok"``; an estimate response embeds the
:class:`EstimateResponse` fields.  Unknown fields are ignored on both
sides, so old clients survive new daemons and vice versa.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Tuple, Union

from repro.api.query import (  # noqa: F401  (re-exported schema)
    QUERY_SCHEMA_VERSION,
    EstimateRequest,
    EstimateResponse,
)

#: Bumped when the framing (not the payload schema) changes.
PROTOCOL_VERSION = 1

#: An address is a unix-socket path or a ``(host, port)`` pair.
Address = Union[Path, Tuple[str, int]]


def encode_line(payload: Dict[str, Any]) -> bytes:
    """One protocol line: compact JSON + newline, UTF-8."""
    return (
        json.dumps(payload, separators=(",", ":"), default=str) + "\n"
    ).encode("utf-8")


def decode_line(line: bytes) -> Dict[str, Any]:
    """Parse one protocol line; raises ValueError on non-object payloads."""
    payload = json.loads(line.decode("utf-8"))
    if not isinstance(payload, dict):
        raise ValueError(f"protocol line is not an object: {payload!r}")
    return payload


def parse_address(text: Union[str, Path]) -> Address:
    """``"host:port"`` -> a TCP pair; anything else -> a unix-socket path.

    A lone ``":8123"`` binds/connects on localhost.  Windows-style
    drive letters are not a concern on the supported platforms.
    """
    text = str(text)
    if ":" in text and "/" not in text:
        host, _, port = text.rpartition(":")
        return (host or "127.0.0.1", int(port))
    return Path(text)
