"""The ``repro-serve`` daemon: an asyncio estimation service.

One long-lived process answers typed hitting-probability queries at
interactive latency (ROADMAP's millions-of-users story): most traffic
is a persistent-cache hit or an instant theory surrogate; only novel
``(law, l, k, horizon)`` points pay for simulation -- and concurrent
requests for the same canonical key *coalesce* into one shared engine
call through a batching map, so a thundering herd of identical queries
costs one refinement.

Concurrency model: the event loop handles sockets and tier
resolution; each refinement job runs in a worker thread
(:func:`asyncio.to_thread`) with its own private recorder
(:mod:`repro.serve.refine`), publishing progressive responses back
through ``loop.call_soon_threadsafe``.  A new job waits
``batch_window`` seconds before starting the engine so near-
simultaneous duplicates join it (the coalescing the ``serve-smoke``
CI job asserts via the ``serve.batch_coalesced`` counter).

Telemetry (docs/observability.md): every request is wrapped in a
``query`` span on the process recorder, and the daemon maintains the
``serve.*`` counters -- requests, cache_hits, warm_hits,
theory_answers, engine_calls, batch_coalesced, responses_streamed,
errors.  SIGTERM/SIGINT stop the server gracefully: in-flight jobs
finish, their finals land in the cache, and the process exits 0.
"""

from __future__ import annotations

import asyncio
import time
from pathlib import Path
from typing import AsyncIterator, Dict, List, Optional

from repro.api.query import EstimateRequest, EstimateResponse, theory_estimate
from repro.serve.cache import ResultCache
from repro.serve.protocol import Address, decode_line, encode_line
from repro.telemetry.recorder import get_recorder

#: Default unix-socket path (CLI: ``serve --socket``).
DEFAULT_SOCKET = ".repro-serve.sock"

#: Seconds a fresh refinement job waits for duplicates before starting.
DEFAULT_BATCH_WINDOW = 0.05

#: Longest accepted request line (a typed request is ~200 bytes; this
#: bound keeps a garbage client from buffering unbounded input).
_MAX_LINE = 64 * 1024


class _Job:
    """One in-flight refinement shared by every subscriber of a key."""

    def __init__(self) -> None:
        self.queues: List[asyncio.Queue] = []
        self.final: Optional[EstimateResponse] = None
        self.done = asyncio.Event()

    def subscribe(self) -> asyncio.Queue:
        queue: asyncio.Queue = asyncio.Queue()
        self.queues.append(queue)
        return queue

    def publish(self, response: EstimateResponse) -> None:
        for queue in self.queues:
            queue.put_nowait(response)

    def finish(self, final: Optional[EstimateResponse]) -> None:
        self.final = final
        for queue in self.queues:
            queue.put_nowait(None)
        self.done.set()


class EstimationService:
    """Tier resolution + request coalescing, socket-agnostic.

    The daemon wraps it in an asyncio server; tests drive it directly.
    """

    def __init__(
        self,
        cache: Optional[ResultCache] = None,
        registry=None,
        *,
        recorder=None,
        batch_window: float = DEFAULT_BATCH_WINDOW,
        round_walks: int = 2_000,
        max_walks: int = 200_000,
        chunks: int = 8,
        seed: Optional[int] = None,
    ) -> None:
        self.cache = cache if cache is not None else ResultCache()
        self.registry = registry
        self._recorder = recorder
        self.batch_window = float(batch_window)
        self.round_walks = int(round_walks)
        self.max_walks = int(max_walks)
        self.chunks = int(chunks)
        self.seed = seed
        self._jobs: Dict[str, _Job] = {}
        self._started = time.monotonic()

    @property
    def recorder(self):
        return self._recorder if self._recorder is not None else get_recorder()

    @property
    def metrics(self):
        return self.recorder.metrics

    def warm_start(self) -> int:
        """Import the run registry's estimates into the cache (see ROADMAP:
        prior sweeps answer future queries without re-simulating)."""
        if self.registry is None:
            return 0
        imported = self.cache.warm_start(self.registry)
        if imported:
            self.metrics.gauge("serve.warm_entries").set(imported)
        return imported

    # -------------------------------------------------------- tier resolution

    async def estimate(
        self, request: EstimateRequest
    ) -> AsyncIterator[EstimateResponse]:
        """Answer one request as a (possibly progressive) response stream.

        Yields: a single final cache-tier response on a hit; otherwise
        a theory surrogate first, then -- when the request asks for a
        real CI -- progressive simulation responses off the shared
        refinement job, ending with the final one.
        """
        metrics = self.metrics
        metrics.counter("serve.requests").add()
        key = request.key

        cached = self.cache.get(key, max_ci=request.max_ci)
        if cached is not None:
            metrics.counter("serve.cache_hits").add()
            yield _as_tier(cached, "cache")
            return

        if self.registry is not None:
            warm = self._registry_lookup(request)
            if warm is not None:
                metrics.counter("serve.warm_hits").add()
                self.cache.put(warm)
                yield warm
                return

        surrogate = theory_estimate(request)
        metrics.counter("serve.theory_answers").add()
        yield surrogate
        if request.max_ci is None:
            return

        job = self._jobs.get(key)
        if job is not None:
            metrics.counter("serve.batch_coalesced").add()
        else:
            job = _Job()
            self._jobs[key] = job
            asyncio.get_running_loop().create_task(self._run_job(key, request, job))
        queue = job.subscribe()
        while True:
            update = await queue.get()
            if update is None:
                break
            metrics.counter("serve.responses_streamed").add()
            yield update
        if job.final is not None:
            yield job.final

    def _registry_lookup(self, request: EstimateRequest) -> Optional[EstimateResponse]:
        from repro.api.query import response_from_registry_estimate

        record = self.registry.lookup(
            law=request.law, geometry=request.geometry, max_ci=request.max_ci
        )
        if record is None:
            return None
        for row in record.estimates:
            if row.get("law") != request.law:
                continue
            params = row.get("params") or {}
            if any(params.get(k) != v for k, v in request.geometry.items()):
                continue
            response = response_from_registry_estimate(row, request, record.run_id)
            if response is not None and (
                request.max_ci is None or response.half_width <= request.max_ci
            ):
                return response
        return None

    # ------------------------------------------------------------ refinement

    async def _run_job(self, key: str, request: EstimateRequest, job: _Job) -> None:
        from repro.serve.refine import refine_estimate

        loop = asyncio.get_running_loop()
        try:
            # The coalescing window: duplicates arriving now share this job.
            if self.batch_window > 0:
                await asyncio.sleep(self.batch_window)
            self.metrics.counter("serve.engine_calls").add()

            def _publish(response: EstimateResponse) -> None:
                loop.call_soon_threadsafe(job.publish, response)

            final = await asyncio.to_thread(
                refine_estimate,
                request,
                _publish,
                seed=self.seed,
                round_walks=self.round_walks,
                max_walks=self.max_walks,
                chunks=self.chunks,
            )
            self.cache.put(final)
        except Exception:
            self.metrics.counter("serve.errors").add()
            final = None
        finally:
            self._jobs.pop(key, None)
            job.finish(final)

    # ----------------------------------------------------------------- stats

    def stats(self) -> Dict:
        """The ``stats`` op payload: counters, cache size, uptime."""
        counters = {}
        for name, snap in self.metrics.snapshot().items():
            if not name.startswith("serve."):
                continue
            if snap.get("type") == "histogram":
                # Summarize: the full bucket layout stays in metrics.json.
                total = snap.get("total") or 0
                counters[name] = {
                    "total": total,
                    "mean": (snap.get("sum") / total) if total else None,
                    "max": snap.get("max"),
                }
            else:
                counters[name] = snap.get("value")
        return {
            "ok": True,
            "op": "stats",
            "uptime_seconds": round(time.monotonic() - self._started, 3),
            "cache_entries": len(self.cache),
            "inflight_jobs": len(self._jobs),
            "counters": counters,
        }


def _as_tier(response: EstimateResponse, tier: str) -> EstimateResponse:
    from dataclasses import replace

    if response.tier == tier:
        return response
    return replace(response, tier=tier)


# ------------------------------------------------------------------ the server


async def _handle_connection(
    service: EstimationService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    stop: asyncio.Event,
) -> None:
    recorder = service.recorder
    try:
        while True:
            try:
                line = await reader.readline()
            except (ConnectionResetError, asyncio.LimitOverrunError):
                break
            if not line:
                break
            if not line.strip():
                continue
            try:
                payload = decode_line(line)
            except ValueError as exc:
                service.metrics.counter("serve.errors").add()
                writer.write(encode_line({"ok": False, "error": str(exc)}))
                await writer.drain()
                continue
            op = payload.get("op", "estimate")
            if op == "ping":
                writer.write(encode_line({"ok": True, "op": "ping"}))
            elif op == "stats":
                writer.write(encode_line(service.stats()))
            elif op == "shutdown":
                writer.write(encode_line({"ok": True, "op": "shutdown"}))
                await writer.drain()
                stop.set()
                break
            elif op == "estimate":
                await _handle_estimate(service, recorder, payload, writer)
            else:
                service.metrics.counter("serve.errors").add()
                writer.write(
                    encode_line({"ok": False, "error": f"unknown op {op!r}"})
                )
            await writer.drain()
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (OSError, ConnectionResetError):
            pass


async def _handle_estimate(
    service: EstimationService, recorder, payload: Dict, writer: asyncio.StreamWriter
) -> None:
    stream = bool(payload.get("stream", True))
    try:
        request = EstimateRequest.from_dict(payload)
    except (ValueError, TypeError) as exc:
        service.metrics.counter("serve.errors").add()
        writer.write(encode_line({"ok": False, "error": str(exc)}))
        return
    started = time.monotonic()
    recorder.event("query", key=request.key, max_ci=request.max_ci)
    last: Optional[EstimateResponse] = None
    async for response in service.estimate(request):
        last = response
        if stream or response.final:
            writer.write(encode_line({"ok": True, **response.to_dict()}))
            await writer.drain()
    seconds = time.monotonic() - started
    service.metrics.histogram("serve.query_seconds").observe(seconds)
    recorder.event(
        "query_end",
        key=request.key,
        tier=last.tier if last is not None else None,
        seconds=round(seconds, 6),
    )


async def serve_forever(
    address: Address,
    service: EstimationService,
    *,
    ready: Optional[asyncio.Event] = None,
) -> None:
    """Run the daemon until SIGTERM/SIGINT or a ``shutdown`` op.

    ``address`` is a unix-socket path or a ``(host, port)`` pair.  A
    stale unix socket from a dead daemon is unlinked before binding.
    The socket is removed on the way out; pending connections finish
    their current response line.
    """
    import contextlib
    import signal

    stop = asyncio.Event()

    loop = asyncio.get_running_loop()
    installed = []
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
            installed.append(signum)
        except (NotImplementedError, RuntimeError):
            pass

    async def handler(reader, writer):
        await _handle_connection(service, reader, writer, stop)

    unix_path: Optional[Path] = None
    if isinstance(address, Path):
        unix_path = address
        if unix_path.exists():
            unix_path.unlink()
        server = await asyncio.start_unix_server(handler, path=str(unix_path), limit=_MAX_LINE)
    else:
        host, port = address
        server = await asyncio.start_server(handler, host=host, port=port, limit=_MAX_LINE)

    service.recorder.event(
        "serve_start",
        address=str(address),
        cache_entries=len(service.cache),
    )
    if ready is not None:
        ready.set()
    try:
        async with server:
            await stop.wait()
    finally:
        for signum in installed:
            with contextlib.suppress(ValueError, RuntimeError):
                loop.remove_signal_handler(signum)
        if unix_path is not None:
            with contextlib.suppress(OSError):
                unix_path.unlink()
        service.recorder.event("serve_end", address=str(address))
