"""High-throughput Monte-Carlo engines (exact, vectorized).

The engines reproduce the laws of the object-level processes in
:mod:`repro.walks` with O(1) work per jump phase; see
:mod:`repro.engine.vectorized` for the hit-detection trick.
"""

from repro.engine.ball_targets import ball_hitting_times
from repro.engine.exact_occupation import (
    ExactOccupation,
    flight_hitting_probability_exact,
    flight_occupation_exact,
    jump_kernel,
)
from repro.engine.multi_target import (
    ForagingResult,
    multi_target_search,
    scatter_poisson_field,
)
from repro.engine.results import (
    CENSORED,
    HittingTimeSample,
    bootstrap_parallel,
    group_minimum,
)
from repro.engine.reference import reference_hitting_times
from repro.engine.trajectories import distinct_nodes_visited, walk_trajectories
from repro.engine.samplers import (
    BatchJumpSampler,
    HeterogeneousZetaSampler,
    HomogeneousSampler,
)
from repro.engine.vectorized import flight_hitting_times, walk_hitting_times
from repro.engine.visits import (
    flight_occupation_grid,
    flight_positions_after,
    flight_region_visits,
    flight_visit_counts,
    walk_displacement_snapshots,
)

__all__ = [
    "CENSORED",
    "HittingTimeSample",
    "group_minimum",
    "bootstrap_parallel",
    "walk_hitting_times",
    "flight_hitting_times",
    "reference_hitting_times",
    "BatchJumpSampler",
    "HomogeneousSampler",
    "HeterogeneousZetaSampler",
    "flight_visit_counts",
    "flight_occupation_grid",
    "flight_positions_after",
    "flight_region_visits",
    "walk_displacement_snapshots",
    "ball_hitting_times",
    "multi_target_search",
    "scatter_poisson_field",
    "ForagingResult",
    "flight_occupation_exact",
    "flight_hitting_probability_exact",
    "jump_kernel",
    "ExactOccupation",
    "walk_trajectories",
    "distinct_nodes_visited",
]
