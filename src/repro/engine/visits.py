"""Occupation statistics of flights and walks.

Several of the paper's lemmas are statements about *visit counts* rather
than hitting times:

* Lemma 3.9 (monotonicity): for a monotone radial process,
  ``P(J_t = u) >= P(J_t = v)`` whenever ``||v||_inf >= ||u||_1``;
* Lemma 4.13: the expected number of visits of a (capped) Levy flight to
  the origin within ``t`` jumps is ``O(1/(3 - alpha)^2)`` for
  ``alpha in (2, 3)`` and ``O(log^2 t)`` at ``alpha = 3``;
* the ``A_1 / A_2 / A_3`` decomposition of Lemma 4.12 counts visits to a
  box, an annulus and a far region.

This module provides vectorized estimators for those quantities, plus the
displacement-snapshot machinery behind the mean-squared-displacement
regime figure (ballistic vs super-diffusive vs diffusive spreading).
"""

from __future__ import annotations

from typing import Sequence, Tuple, Union

import numpy as np

from repro.distributions.base import JumpDistribution
from repro.engine._compat import legacy_api
from repro.engine.samplers import BatchJumpSampler
from repro.engine.vectorized import _as_sampler
from repro.lattice.direct_path import sample_direct_path_nodes
from repro.lattice.rings import sample_ring_offsets
from repro.rng import SeedLike, as_generator

IntPoint = Tuple[int, int]

#: Legacy keyword spellings shared by the flight-statistics entry points.
_FLIGHT_RENAMES = {"n_jumps": "horizon", "n_flights": "n"}


@legacy_api(positional=("horizon", "n", "rng", "start"), renames=_FLIGHT_RENAMES)
def flight_visit_counts(
    jumps: Union[BatchJumpSampler, JumpDistribution],
    nodes: Sequence[IntPoint],
    *,
    horizon: int,
    n: int,
    rng: SeedLike = None,
    start: IntPoint = (0, 0),
) -> np.ndarray:
    """Visit counts ``Z_u^f(t)`` of a Levy flight for a few nodes.

    Returns an array of shape ``(len(nodes),)`` whose entry ``j`` is the
    *average over flights* of the number of jumps ``1..horizon`` that land
    on ``nodes[j]`` -- a Monte-Carlo estimate of ``E[Z_u^f(horizon)]``
    (paper Section 3.1 notation; a flight's time unit is one jump).
    """
    sampler = _as_sampler(jumps)
    rng = as_generator(rng)
    n_jumps, n_flights = int(horizon), int(n)
    node_array = np.asarray(nodes, dtype=np.int64)
    if node_array.ndim != 2 or node_array.shape[1] != 2:
        raise ValueError("nodes must be a sequence of (x, y) pairs")
    pos = np.empty((n_flights, 2), dtype=np.int64)
    pos[:, 0] = int(start[0])
    pos[:, 1] = int(start[1])
    counts = np.zeros(node_array.shape[0], dtype=np.int64)
    indices = np.arange(n_flights)
    for _ in range(n_jumps):
        d = sampler.sample(rng, indices)
        pos += sample_ring_offsets(d, rng)
        for j in range(node_array.shape[0]):
            counts[j] += np.count_nonzero(
                (pos[:, 0] == node_array[j, 0]) & (pos[:, 1] == node_array[j, 1])
            )
    sampler.flush_jump_accounting()
    return counts / float(n_flights)


@legacy_api(
    positional=("horizon", "n", "radius", "rng", "at_time_only", "return_counts"),
    renames=_FLIGHT_RENAMES,
)
def flight_occupation_grid(
    jumps: Union[BatchJumpSampler, JumpDistribution],
    *,
    horizon: int,
    n: int,
    radius: int,
    rng: SeedLike = None,
    at_time_only: bool = False,
    return_counts: bool = False,
) -> np.ndarray:
    """Occupation histogram of a Levy flight inside the box ``Q_radius(0)``.

    Returns a float array ``grid`` of shape ``(2 radius + 1, 2 radius + 1)``
    where ``grid[x + radius, y + radius]`` estimates either the expected
    number of visits to ``(x, y)`` within ``horizon`` jumps (default), or
    ``P(J_horizon = (x, y))`` when ``at_time_only`` is True.  The latter
    is what Lemma 3.9's monotonicity property constrains.

    With ``return_counts=True`` the raw int64 *count* grid is returned
    instead of the per-flight average.  Counts are what interval
    estimators need: a Wilson CI rebuilt from a rounded frequency times
    ``n`` is lossy, whereas the count grid feeds
    :func:`repro.analysis.estimators.wilson_bounds` exactly.
    """
    sampler = _as_sampler(jumps)
    rng = as_generator(rng)
    n_jumps, n_flights = int(horizon), int(n)
    side = 2 * radius + 1
    grid = np.zeros((side, side), dtype=np.int64)
    pos = np.zeros((n_flights, 2), dtype=np.int64)
    indices = np.arange(n_flights)
    for jump_index in range(1, n_jumps + 1):
        d = sampler.sample(rng, indices)
        pos += sample_ring_offsets(d, rng)
        if at_time_only and jump_index < n_jumps:
            continue
        inside = (np.abs(pos[:, 0]) <= radius) & (np.abs(pos[:, 1]) <= radius)
        np.add.at(
            grid,
            (pos[inside, 0] + radius, pos[inside, 1] + radius),
            1,
        )
    sampler.flush_jump_accounting()
    if return_counts:
        return grid
    return grid / float(n_flights)


@legacy_api(positional=("horizon", "n", "rng"), renames=_FLIGHT_RENAMES)
def flight_positions_after(
    jumps: Union[BatchJumpSampler, JumpDistribution],
    *,
    horizon: int,
    n: int,
    rng: SeedLike = None,
) -> np.ndarray:
    """Positions of ``n`` independent flights after ``horizon`` jumps."""
    sampler = _as_sampler(jumps)
    rng = as_generator(rng)
    n_jumps, n_flights = int(horizon), int(n)
    pos = np.zeros((n_flights, 2), dtype=np.int64)
    indices = np.arange(n_flights)
    for _ in range(n_jumps):
        d = sampler.sample(rng, indices)
        pos += sample_ring_offsets(d, rng)
    sampler.flush_jump_accounting()
    return pos


@legacy_api(
    positional=("box_radius", "far_radius", "horizon", "n", "rng"),
    renames=_FLIGHT_RENAMES,
)
def flight_region_visits(
    jumps: Union[BatchJumpSampler, JumpDistribution],
    *,
    box_radius: int,
    far_radius: int,
    horizon: int,
    n: int,
    rng: SeedLike = None,
) -> np.ndarray:
    """Average visits to the ``A1 / A2 / A3`` regions of Lemma 4.12.

    The proof of Lemma 4.5 splits Z^2 into ``A1 = Q_box_radius(0)`` (the
    box around the origin), ``A3`` (nodes with L1 norm at least
    ``far_radius``), and the annulus ``A2`` in between, then accounts for
    the flight's ``horizon`` visits across them: at most a constant
    fraction falls in ``A1`` (Lemma 4.8), a vanishing fraction in ``A3``
    (Lemma 4.11), so a constant fraction must land in ``A2`` -- the
    annulus containing the target, which yields the hitting-probability
    lower bound.

    Returns ``[visits_A1, visits_A2, visits_A3]`` averaged over flights
    (their sum is ``horizon``).
    """
    if far_radius <= box_radius:
        raise ValueError("far_radius must exceed box_radius")
    sampler = _as_sampler(jumps)
    rng = as_generator(rng)
    n_jumps, n_flights = int(horizon), int(n)
    pos = np.zeros((n_flights, 2), dtype=np.int64)
    indices = np.arange(n_flights)
    counts = np.zeros(3, dtype=np.int64)
    for _ in range(n_jumps):
        d = sampler.sample(rng, indices)
        pos += sample_ring_offsets(d, rng)
        linf = np.maximum(np.abs(pos[:, 0]), np.abs(pos[:, 1]))
        l1 = np.abs(pos[:, 0]) + np.abs(pos[:, 1])
        in_box = linf <= box_radius
        far = l1 >= far_radius
        counts[0] += int(np.count_nonzero(in_box))
        counts[2] += int(np.count_nonzero(far & ~in_box))
        counts[1] += int(np.count_nonzero(~in_box & ~far))
    sampler.flush_jump_accounting()
    return counts / float(n_flights)


@legacy_api(positional=("n", "rng"), renames={"n_walks": "n"})
def walk_displacement_snapshots(
    jumps: Union[BatchJumpSampler, JumpDistribution],
    snapshot_steps: Sequence[int],
    *,
    n: int,
    rng: SeedLike = None,
) -> np.ndarray:
    """Positions of Levy *walks* at the given step counts.

    Returns an int64 array of shape ``(len(snapshot_steps), n, 2)``:
    slice ``s`` holds each walk's position at step ``snapshot_steps[s]``.

    The engine advances whole jump phases and, when a snapshot step falls
    strictly inside a phase, samples the position from the direct path's
    exact ring marginal.  Each snapshot therefore has exactly the right
    *marginal* law (which is all that time-indexed statistics like the
    mean-squared displacement use); the joint law across snapshots inside
    one phase is not preserved.
    """
    sampler = _as_sampler(jumps)
    rng = as_generator(rng)
    n_walks = int(n)
    snaps = np.asarray(sorted(int(s) for s in snapshot_steps), dtype=np.int64)
    if snaps.size and snaps[0] < 0:
        raise ValueError("snapshot steps must be non-negative")
    out = np.zeros((snaps.size, n_walks, 2), dtype=np.int64)
    if snaps.size == 0:
        return out
    pos = np.zeros((n_walks, 2), dtype=np.int64)
    elapsed = np.zeros(n_walks, dtype=np.int64)
    # Snapshots at step 0 are the origin, which `out` already holds; start
    # every walk's snapshot pointer past them.
    n_zero_snaps = int(np.count_nonzero(snaps == 0))
    pointer = np.full(n_walks, n_zero_snaps, dtype=np.int64)
    active = np.flatnonzero(pointer < snaps.size)
    while active.size:
        d = sampler.sample(rng, active)
        offsets = sample_ring_offsets(d, rng)
        u = pos[active]
        v = u + offsets
        phase = np.maximum(d, 1)
        end = elapsed[active] + phase
        # Record every snapshot that this phase reaches or passes.
        while True:
            ptr = pointer[active]
            in_range = ptr < snaps.size
            due = np.zeros(active.shape[0], dtype=bool)
            due[in_range] = snaps[ptr[in_range]] <= end[in_range]
            if not np.any(due):
                break
            snap_steps = snaps[pointer[active[due]]]
            rings = np.minimum(snap_steps - elapsed[active[due]], d[due])
            nodes = sample_direct_path_nodes(u[due], v[due], rings, rng)
            out[pointer[active[due]], active[due]] = nodes
            pointer[active[due]] += 1
        pos[active] = v
        elapsed[active] = end
        active = active[pointer[active] < snaps.size]
    sampler.flush_jump_accounting()
    return out
