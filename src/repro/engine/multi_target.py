"""Multi-target search: many walks, many food items, exact mid-jump pickup.

The paper motivates its single-target analysis with collective foraging
(Section 1.1) and contrasts it with the classical Levy-foraging setting of
"sparse randomly distributed revisitable targets" [38].  This engine
simulates that richer scenario exactly: ``n_walks`` Levy walks move over a
*field* of target nodes, and for every item the engine reports the first
time any walk steps on it (mid-jump included) and which walk did.

A modelling observation makes one engine serve both classic semantics.
Walks in this model do not react to finding food (no communication, no
behaviour change), so trajectories are independent of the field; hence

* *revisitable* items ([38]): an item's first-discovery time is just the
  parallel hitting time of its node; and
* *destructive* items (foraging): the collector of an item is exactly the
  walk achieving that same earliest crossing -- later crossings find the
  node empty but nothing else changes.

The engine therefore records, per item, the earliest crossing over all
walks and phases.  Items are pruned from detection only once they are no
longer *contestable* (their recorded time is at or below every active
walk's elapsed time), which keeps the pruning exact even though walks
drift apart in elapsed time.

Exactness of mid-jump detection: conditioned on a phase ``(u, v)``, the
direct path's positions at different rings are independent uniform
tie-breaks (see :mod:`repro.lattice.direct_path`), so per-ring marginal
samples ARE the joint law -- but two items at the *same* ring of the same
phase must be tested against a *single* sampled crossing node, which the
engine enforces by deduplicating ``(walk, ring)`` pairs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence, Tuple, Union

import numpy as np

from repro.distributions.base import JumpDistribution
from repro.engine._compat import legacy_api
from repro.engine.results import CENSORED
from repro.engine.samplers import BatchJumpSampler
from repro.engine.vectorized import _as_sampler, _record_engine_sample
from repro.lattice.direct_path import sample_direct_path_nodes
from repro.lattice.rings import sample_ring_offsets
from repro.rng import SeedLike, as_generator
from repro.telemetry.recorder import get_recorder

IntPoint = Tuple[int, int]


@dataclass(frozen=True)
class ForagingResult:
    """Outcome of a multi-target run.

    Attributes
    ----------
    targets:
        The item coordinates, shape ``(n_items, 2)`` (as passed in).
    discovery_times:
        int64 array of shape ``(n_items,)``: the step at which each item
        was first reached, or ``CENSORED``.
    discoverer:
        int64 array of shape ``(n_items,)``: index of the earliest-crossing
        walk (``-1`` where never reached) -- the collector under
        destructive semantics.
    horizon:
        The step deadline used.
    """

    targets: np.ndarray
    discovery_times: np.ndarray
    discoverer: np.ndarray
    horizon: int

    @property
    def n_items(self) -> int:
        return int(self.targets.shape[0])

    @property
    def n_collected(self) -> int:
        return int(np.count_nonzero(self.discovery_times != CENSORED))

    @property
    def collected_fraction(self) -> float:
        return self.n_collected / self.n_items if self.n_items else float("nan")

    def collection_curve(self, grid: Sequence[int]) -> np.ndarray:
        """Number of items collected by each step in ``grid``."""
        times = self.discovery_times
        valid = times[times != CENSORED]
        return np.array([int(np.count_nonzero(valid <= g)) for g in grid])

    def collections_per_walk(self, n_walks: int) -> np.ndarray:
        """Items collected by each walk (destructive attribution)."""
        counts = np.zeros(n_walks, dtype=np.int64)
        for walk in self.discoverer[self.discovery_times != CENSORED]:
            counts[int(walk)] += 1
        return counts


@legacy_api(
    positional=("horizon", "n", "rng", "start"),
    renames={"n_walks": "n"},
)
def multi_target_search(
    jumps: Union[BatchJumpSampler, JumpDistribution],
    targets: Sequence[IntPoint],
    *,
    horizon: int,
    n: int,
    rng: SeedLike = None,
    start: IntPoint = (0, 0),
) -> ForagingResult:
    """Run ``n`` Levy walks over a field of targets.

    Returns per-item first-discovery times and discoverers (see the module
    docstring for why this covers destructive and revisitable semantics at
    once).  Work per phase round is O(active walks + crossings tested).
    """
    sampler = _as_sampler(jumps)
    rng = as_generator(rng)
    target_array = np.asarray(targets, dtype=np.int64)
    if target_array.ndim != 2 or target_array.shape[1] != 2:
        raise ValueError("targets must be a sequence of (x, y) pairs")
    n_items = target_array.shape[0]
    if horizon < 0:
        raise ValueError(f"horizon must be non-negative, got {horizon}")
    if n < 1:
        raise ValueError(f"n must be positive, got {n}")
    n_walks = int(n)

    never = np.iinfo(np.int64).max
    best_time = np.full(n_items, never, dtype=np.int64)
    best_walk = np.full(n_items, -1, dtype=np.int64)

    at_start = (target_array[:, 0] == start[0]) & (target_array[:, 1] == start[1])
    best_time[at_start] = 0
    best_walk[at_start] = 0

    # Same compacted state machine and preallocated round buffers as
    # `walk_hitting_times`; `idx` stays sorted, so row order is walk-id
    # order (the tie-attribution below relies on it).
    idx = np.arange(n_walks)
    pos_buf = np.empty((n_walks, 2), dtype=np.int64)
    end_buf = np.empty((n_walks, 2), dtype=np.int64)
    d_buf = np.empty(n_walks, dtype=np.int64)
    off_buf = np.empty((n_walks, 2), dtype=np.int64)
    u_buf = np.empty(2 * n_walks, dtype=np.float64)
    pos = pos_buf[:n_walks]
    pos[:, 0] = int(start[0])
    pos[:, 1] = int(start[1])
    elapsed = np.zeros(n_walks, dtype=np.int64)
    alive = np.ones(n_walks, dtype=bool)
    n_dead = 0
    recorder = get_recorder()
    track = recorder.enabled
    tick = recorder.tick
    prof = recorder.profile
    steps_simulated = 0
    started = time.perf_counter() if track else 0.0

    while idx.size:
        tick()
        if prof is not None:
            prof.start()
        # An item is contestable while some live walk might still cross
        # it earlier than the recorded time.
        frontier = int(elapsed[alive].min())
        contestable = np.flatnonzero(best_time > frontier)
        if contestable.size == 0:
            break
        if prof is not None:
            # The contestable-pruning scan is part of target bookkeeping.
            prof.lap("target_check")
        k = idx.size
        uniforms = u_buf[: 2 * k]
        rng.random(out=uniforms)
        if prof is not None:
            prof.lap("rng")
        d = sampler.sample(rng, idx, u=uniforms[:k], out=d_buf[:k])
        d[~alive] = 0  # dead rows are carried until the next compaction
        if track:
            steps_simulated += int(np.maximum(d, 1)[alive].sum())
        if prof is not None:
            prof.lap("cdf_lookup")
        off = sample_ring_offsets(d, rng, u=uniforms[k:], out=off_buf[:k])
        v = np.add(pos, off, out=end_buf[:k])
        if prof is not None:
            prof.lap("state_update")
        tx = target_array[contestable, 0]
        ty = target_array[contestable, 1]
        m = np.abs(tx[None, :] - pos[:, 0:1]) + np.abs(ty[None, :] - pos[:, 1:2])
        # Dead rows are frozen on their last node with d = 0; without the
        # `alive` mask one parked on an item would re-detect it.
        reach_w, reach_i = np.nonzero((m <= d[:, None]) & alive[:, None])
        if reach_w.size:
            rings = m[reach_w, reach_i]
            # One crossing node per distinct (walk, ring) pair.
            pairs = np.stack([reach_w, rings], axis=1)
            unique_pairs, inverse = np.unique(pairs, axis=0, return_inverse=True)
            unique_nodes = sample_direct_path_nodes(
                pos[unique_pairs[:, 0]],
                v[unique_pairs[:, 0]],
                unique_pairs[:, 1],
                rng,
            )
            nodes = unique_nodes[inverse]
            hit = (nodes[:, 0] == tx[reach_i]) & (nodes[:, 1] == ty[reach_i])
            if np.any(hit):
                hit_steps = elapsed[reach_w[hit]] + rings[hit]
                hit_items = contestable[reach_i[hit]]
                hit_walks = idx[reach_w[hit]]
                in_time = hit_steps <= horizon
                if np.any(in_time):
                    cand_items = hit_items[in_time]
                    cand_steps = hit_steps[in_time]
                    cand_walks = hit_walks[in_time]
                    # Per item keep the earliest step, lowest walk id on
                    # ties -- the same attribution as updating in
                    # walk-major order with a strict `<`.
                    order = np.lexsort((cand_walks, cand_steps, cand_items))
                    items_sorted = cand_items[order]
                    first = np.ones(items_sorted.shape[0], dtype=bool)
                    first[1:] = items_sorted[1:] != items_sorted[:-1]
                    winners = order[first]
                    w_items = cand_items[winners]
                    better = cand_steps[winners] < best_time[w_items]
                    w_items = w_items[better]
                    best_time[w_items] = cand_steps[winners][better]
                    best_walk[w_items] = cand_walks[winners][better]
        if prof is not None:
            prof.lap("target_check")
        elapsed += np.maximum(d, 1)
        pos_buf, end_buf = end_buf, pos_buf
        pos = v
        died = alive & (elapsed >= horizon)
        if np.any(died):
            alive &= ~died
            n_dead += int(died.sum())
            if n_dead * 8 >= idx.size:
                idx = idx[alive]
                survivors = pos[alive]
                pos = pos_buf[: idx.size]
                pos[:] = survivors
                elapsed = elapsed[alive]
                alive = np.ones(idx.size, dtype=bool)
                n_dead = 0
        if prof is not None:
            prof.lap("compaction")

    times = np.where(best_time == never, CENSORED, best_time)
    if track:
        sampler.flush_jump_accounting()
        _record_engine_sample(
            "multi_target", n_walks, steps_simulated, time.perf_counter() - started
        )
    if prof is not None:
        prof.finish("multi_target")
    return ForagingResult(
        targets=target_array,
        discovery_times=times,
        discoverer=best_walk,
        horizon=horizon,
    )


def scatter_poisson_field(
    density: float,
    radius: int,
    rng: SeedLike = None,
    exclude_origin: bool = True,
) -> np.ndarray:
    """Scatter items uniformly at random over the ball ``B_radius(0)``.

    The classical Levy-foraging setting [38] assumes sparse, uniformly
    distributed targets; this helper produces such a field with expected
    ``density * |B_radius|`` items (each ball node included independently
    -- a Bernoulli field, the lattice analogue of a Poisson process).
    """
    if not 0.0 < density <= 1.0:
        raise ValueError(f"density must be in (0, 1], got {density}")
    if radius < 1:
        raise ValueError(f"radius must be positive, got {radius}")
    rng = as_generator(rng)
    coords = np.arange(-radius, radius + 1)
    xs, ys = np.meshgrid(coords, coords, indexing="ij")
    inside = np.abs(xs) + np.abs(ys) <= radius
    if exclude_origin:
        inside &= ~((xs == 0) & (ys == 0))
    candidates = np.stack([xs[inside], ys[inside]], axis=1)
    keep = rng.random(candidates.shape[0]) < density
    return candidates[keep].astype(np.int64)
