"""Result containers for Monte-Carlo hitting-time estimation.

Hitting times are right-censored: a finite simulation can only observe
``tau <= horizon``.  The containers below keep the raw censored sample
(``-1`` marks "not hit by the horizon") together with the horizon, so that
downstream estimators can treat censoring correctly -- important because
the paper's regimes differ exactly in how much probability mass sits at
``tau = inf`` (e.g. Theorem 1.3(b): a ballistic walk never hits the target
with probability ``1 - O(log^2 l / l)``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Sentinel stored in hitting-time arrays for "not hit by the horizon".
CENSORED = -1


@dataclass(frozen=True)
class HittingTimeSample:
    """A censored i.i.d. sample of hitting times.

    Attributes
    ----------
    times:
        int64 array; entry ``i`` is walk ``i``'s hitting time, or
        :data:`CENSORED` if the walk had not hit the target by ``horizon``.
    horizon:
        The censoring step (inclusive: a hit at exactly ``horizon`` counts).
    """

    times: np.ndarray
    horizon: int

    def __post_init__(self) -> None:
        times = np.asarray(self.times)
        if times.ndim != 1:
            raise ValueError("times must be one-dimensional")
        valid = (times == CENSORED) | ((times >= 0) & (times <= self.horizon))
        if not np.all(valid):
            raise ValueError("hitting times must lie in [0, horizon] or be CENSORED")

    @property
    def n(self) -> int:
        """Sample size."""
        return int(self.times.shape[0])

    @property
    def hit_mask(self) -> np.ndarray:
        """Boolean mask of walks that hit the target by the horizon."""
        return self.times != CENSORED

    @property
    def n_hits(self) -> int:
        """Number of walks that hit the target by the horizon."""
        return int(self.hit_mask.sum())

    @property
    def hit_fraction(self) -> float:
        """Empirical ``P(tau <= horizon)``."""
        return self.n_hits / self.n if self.n else float("nan")

    def hit_times(self) -> np.ndarray:
        """The observed (uncensored) hitting times."""
        return self.times[self.hit_mask]

    def probability_by(self, t: int) -> float:
        """Empirical ``P(tau <= t)`` for ``t <= horizon``."""
        if t > self.horizon:
            raise ValueError(f"t={t} exceeds the horizon {self.horizon}")
        return float(np.count_nonzero(self.hit_mask & (self.times <= t)) / self.n)

    def restricted(self, t: int) -> "HittingTimeSample":
        """Re-censor the sample at an earlier horizon ``t``."""
        if t > self.horizon:
            raise ValueError(f"t={t} exceeds the horizon {self.horizon}")
        times = np.where(self.hit_mask & (self.times <= t), self.times, CENSORED)
        return HittingTimeSample(times=times, horizon=t)


def group_minimum(times: np.ndarray, k: int) -> np.ndarray:
    """Parallel hitting times from single-walk hitting times.

    The parallel hitting time of ``k`` independent walks (Definition 3.7)
    is the minimum of their ``k`` individual hitting times.  Given a flat
    sample of single-walk times (``CENSORED`` for misses) whose length is
    a multiple of ``k``, consecutive blocks of ``k`` walks are treated as
    one parallel group and the per-group minimum is returned (``CENSORED``
    where every group member missed).
    """
    times = np.asarray(times)
    if k < 1:
        raise ValueError(f"k must be positive, got {k}")
    if times.shape[0] % k != 0:
        raise ValueError(f"sample size {times.shape[0]} is not a multiple of k={k}")
    grouped = times.reshape(-1, k).astype(np.int64)
    masked = np.where(grouped == CENSORED, np.iinfo(np.int64).max, grouped)
    minima = masked.min(axis=1)
    return np.where(minima == np.iinfo(np.int64).max, CENSORED, minima)


def bootstrap_parallel(
    times: np.ndarray, k: int, n_groups: int, rng: np.random.Generator
) -> np.ndarray:
    """Resampled parallel hitting times from a pool of single-walk times.

    Because the ``k`` walks of a group are i.i.d. when they share a
    strategy, groups can be formed by resampling from a (large) pool of
    single-walk hitting times instead of simulating ``k * n_groups`` fresh
    walks.  Returns ``n_groups`` parallel times (``CENSORED`` where every
    resampled member missed).
    """
    times = np.asarray(times)
    picks = rng.integers(0, times.shape[0], size=(n_groups, k))
    return group_minimum(times[picks].reshape(-1), k)
