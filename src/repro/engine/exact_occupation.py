"""Exact occupation law of a capped Levy flight, by convolution.

For a Levy flight whose jump law is capped at ``cap`` (e.g. the Lemma 4.5
event ``E_t``), the position after ``t`` jumps is a sum of ``t`` i.i.d.
bounded displacements, so its exact distribution is the ``t``-fold
convolution of the single-jump kernel -- computable on a grid of radius
``t * cap`` with FFTs, with no Monte-Carlo error at all.

This gives *exact* verification of two paper statements that the
Monte-Carlo harnesses can only check statistically:

* Lemma 3.9 (monotonicity): ``P(J_t = u) >= P(J_t = v)`` whenever
  ``||v||_inf >= ||u||_1`` -- checked node-by-node on the full support;
* Lemma 4.13 (origin visits): ``E[Z_0(t)] = sum_j P(J_j = 0)`` evaluated
  exactly.

Complexity: each convolution costs ``O(W^2 log W)`` with ``W = 2 t cap``,
so the tool is for small ``t``/``cap`` (the regime where exactness is
worth more than scale).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np
from scipy import signal

from repro.distributions.base import JumpDistribution


def jump_kernel(law: JumpDistribution, cap: int | None = None) -> np.ndarray:
    """Single-jump displacement distribution as a ``(2c+1, 2c+1)`` grid.

    Entry ``[dx + c, dy + c]`` is ``P(jump displacement = (dx, dy)) =
    pmf(|dx|+|dy|) / |R_(|dx|+|dy|)|``.  ``cap`` defaults to the law's
    ``support_max`` (required: the kernel must be finite).
    """
    if cap is None:
        cap = law.support_max
    if cap is None:
        raise ValueError("jump law must be bounded (capped) for an exact kernel")
    c = int(cap)
    coords = np.arange(-c, c + 1)
    dx, dy = np.meshgrid(coords, coords, indexing="ij")
    distance = np.abs(dx) + np.abs(dy)
    pmf = np.asarray(law.pmf(distance), dtype=float)
    ring = np.where(distance == 0, 1, 4 * distance)
    kernel = np.where(distance <= c, pmf / ring, 0.0)
    total = kernel.sum()
    if not 0.999999 <= total <= 1.000001:
        raise ValueError(f"kernel mass {total} != 1; is the law properly capped?")
    return kernel / total


@dataclass(frozen=True)
class ExactOccupation:
    """Exact law of ``J_t`` plus the running origin-visit expectation."""

    grid: np.ndarray  # (2W+1, 2W+1) probabilities of J_t
    radius: int  # W
    n_jumps: int
    origin_visits: float  # sum_{j=1..t} P(J_j = 0)

    def probability_at(self, node: Tuple[int, int]) -> float:
        """``P(J_t = node)`` (0 outside the support)."""
        x, y = int(node[0]), int(node[1])
        if abs(x) > self.radius or abs(y) > self.radius:
            return 0.0
        return float(self.grid[x + self.radius, y + self.radius])

    def check_monotonicity(self, max_radius: int | None = None) -> float:
        """Verify Lemma 3.9 exactly on the grid.

        For each ``r`` up to ``max_radius``, compares the minimum of
        ``P(J_t = u)`` over ``||u||_1 <= r`` with the maximum over
        ``||v||_inf >= r`` (within the support).  Returns the worst slack
        ``min_inner - max_outer`` (non-negative iff the lemma holds; tiny
        negative values are float roundoff).
        """
        w = self.radius
        coords = np.arange(-w, w + 1)
        xs, ys = np.meshgrid(coords, coords, indexing="ij")
        l1 = np.abs(xs) + np.abs(ys)
        linf = np.maximum(np.abs(xs), np.abs(ys))
        limit = max_radius if max_radius is not None else w
        worst = np.inf
        for r in range(1, limit + 1):
            inner = self.grid[l1 <= r]
            outer = self.grid[linf >= r]
            if inner.size == 0 or outer.size == 0:
                continue
            worst = min(worst, float(inner.min() - outer.max()))
        return worst


def flight_hitting_probability_exact(
    law: JumpDistribution,
    target: Tuple[int, int],
    n_jumps: int,
    cap: int | None = None,
) -> list[float]:
    """Exact ``P(h_f <= j)`` for ``j = 0..n_jumps`` of a capped flight.

    Treats the target as absorbing: after each convolution step the mass
    sitting on the target node is moved to the absorbed tally and removed
    from the live grid, which is precisely the first-passage decomposition
    of the Markov chain.  Entirely deterministic -- the strongest possible
    cross-check for the Monte-Carlo flight engine.

    Cost grows like the occupation computation (grid radius ``n_jumps *
    cap``), so keep ``n_jumps * cap`` modest.
    """
    if n_jumps < 0:
        raise ValueError(f"n_jumps must be non-negative, got {n_jumps}")
    kernel = jump_kernel(law, cap)
    c = (kernel.shape[0] - 1) // 2
    w = max(c * n_jumps, 1)
    tx, ty = int(target[0]), int(target[1])
    if abs(tx) > w or abs(ty) > w:
        # Unreachable within n_jumps capped jumps.
        return [0.0] * (n_jumps + 1)
    size = 2 * w + 1
    grid = np.zeros((size, size))
    grid[w, w] = 1.0
    cumulative = [0.0]
    absorbed = 0.0
    if (tx, ty) == (0, 0):
        return [1.0] * (n_jumps + 1)
    for _ in range(n_jumps):
        grid = signal.fftconvolve(grid, kernel, mode="same")
        np.clip(grid, 0.0, None, out=grid)
        absorbed += float(grid[tx + w, ty + w])
        grid[tx + w, ty + w] = 0.0
        cumulative.append(absorbed)
    return cumulative


def flight_occupation_exact(
    law: JumpDistribution,
    n_jumps: int,
    cap: int | None = None,
) -> ExactOccupation:
    """Exact distribution of a capped flight's position after ``n_jumps``."""
    if n_jumps < 0:
        raise ValueError(f"n_jumps must be non-negative, got {n_jumps}")
    kernel = jump_kernel(law, cap)
    c = (kernel.shape[0] - 1) // 2
    w = max(c * n_jumps, 1)
    size = 2 * w + 1
    grid = np.zeros((size, size))
    grid[w, w] = 1.0
    origin_visits = 0.0
    for _ in range(n_jumps):
        grid = signal.fftconvolve(grid, kernel, mode="same")
        # fftconvolve introduces tiny negative ripple; clamp and renorm.
        np.clip(grid, 0.0, None, out=grid)
        grid /= grid.sum()
        origin_visits += float(grid[w, w])
    return ExactOccupation(
        grid=grid, radius=w, n_jumps=n_jumps, origin_visits=origin_visits
    )
