"""Batch jump-length samplers for the vectorized engines.

The engines simulate many walks at once and need, at every round, one jump
distance per *active* walk.  Two situations arise:

* every walk uses the same jump law (fixed-exponent strategies, baselines):
  :class:`HomogeneousSampler` simply delegates to the law's vectorized
  ``sample``;
* every walk has its *own* exponent (the paper's randomized strategy of
  Theorem 1.6 draws each walk's ``alpha`` uniformly from ``(2, 3)``):
  :class:`HeterogeneousZetaSampler` runs the exact inverse-CDF bisection
  of :class:`~repro.distributions.zeta.ZetaJumpDistribution` with a
  *per-element* exponent, which the Hurwitz zeta implementation
  vectorizes natively.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np
from scipy import special

from repro.distributions.base import JumpDistribution
from repro.distributions.zipf_sampler import rejection_conditional_zipf
from repro.telemetry.metrics import DECADE_BOUNDS
from repro.telemetry.recorder import get_recorder


#: Decade edges as an int64 array: ``searchsorted(d, side="right")`` on it
#: is the same bucketing as ``np.digitize(d, DECADE_BOUNDS)`` without
#: digitize's per-call monotonicity re-checks -- measurable when called
#: once per simulation round.
_DECADE_EDGES = np.asarray(DECADE_BOUNDS, dtype=np.int64)


class BatchJumpSampler(abc.ABC):
    """Produces one jump distance per requested walk index.

    Telemetry contract: with a live recorder, each ``sample`` call
    accumulates its jump-length decade counts into a per-sampler numpy
    buffer (:meth:`_account_jumps`), and the *engines* push the buffer
    into the metrics registry once per engine call
    (:meth:`flush_jump_accounting`).  Batching per engine call instead of
    per round keeps the enabled-path overhead to one registry touch per
    call -- a round-level touch dominated the telemetry overhead in
    ``BENCH_runner.json`` before.
    """

    #: Pending decade counts (lazily created; None when nothing pending).
    _pending_decades: Optional[np.ndarray] = None

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator, walk_indices: np.ndarray) -> np.ndarray:
        """Return an int64 array of jump distances, one per index."""

    def _account_jumps(self, distances: np.ndarray) -> None:
        """Accumulate one batch of jump distances by length decade.

        Called only when telemetry is enabled (guard at the call sites
        keeps the disabled hot path at a single attribute check per
        round).  Bucket 0 counts lazy phases (``d < 1``); bucket k counts
        ``10^(k-1) <= d < 10^k`` -- the heavy tail makes these decades
        span orders of magnitude of walltime, which is exactly what we
        want to see.
        """
        counts = np.bincount(
            _DECADE_EDGES.searchsorted(distances, side="right"),
            minlength=_DECADE_EDGES.shape[0] + 1,
        )
        if self._pending_decades is None:
            self._pending_decades = counts.astype(np.int64)
        else:
            self._pending_decades += counts

    def flush_jump_accounting(self) -> None:
        """Push accumulated decade counts into the live metrics registry.

        Engines call this once per engine invocation (inside their
        telemetry epilogue); a no-op when nothing was accumulated, so
        unconditional calls are safe with telemetry disabled.
        """
        pending = self._pending_decades
        if pending is None:
            return
        self._pending_decades = None
        metrics = get_recorder().metrics
        metrics.histogram(
            "engine.jump_length_decades", bounds=DECADE_BOUNDS
        ).add_bucket_counts(pending.tolist())
        metrics.counter("engine.jumps_sampled").add(int(pending.sum()))


class HomogeneousSampler(BatchJumpSampler):
    """All walks share one :class:`JumpDistribution`."""

    def __init__(self, distribution: JumpDistribution) -> None:
        self.distribution = distribution

    def sample(self, rng: np.random.Generator, walk_indices: np.ndarray) -> np.ndarray:
        out = self.distribution.sample(rng, int(walk_indices.shape[0]))
        if get_recorder().enabled:
            self._account_jumps(out)
        return out


class HeterogeneousZetaSampler(BatchJumpSampler):
    """Each walk has its own power-law exponent (Eq. 3 law per walk).

    Parameters
    ----------
    alphas:
        Array of shape ``(n_walks,)``; entry ``i`` is walk ``i``'s
        exponent.  Exponents must exceed 1 (Remark 3.5).
    lazy_probability:
        Common ``P(d = 0)`` (the paper fixes 1/2).
    """

    def __init__(self, alphas: np.ndarray, lazy_probability: float = 0.5) -> None:
        alphas = np.asarray(alphas, dtype=float)
        if alphas.ndim != 1:
            raise ValueError("alphas must be one-dimensional")
        if np.any(alphas <= 1.0):
            raise ValueError("every exponent must exceed 1 (Remark 3.5)")
        if not 0.0 <= lazy_probability < 1.0:
            raise ValueError(f"lazy probability must be in [0, 1), got {lazy_probability}")
        self.alphas = alphas
        self.lazy_probability = float(lazy_probability)
        # zeta(alpha) per walk: the conditional tail is zeta(a, i)/zeta(a, 1).
        self._series_mass = special.zeta(alphas, 1.0)

    def sample(self, rng: np.random.Generator, walk_indices: np.ndarray) -> np.ndarray:
        n = int(walk_indices.shape[0])
        out = np.zeros(n, dtype=np.int64)
        lazy = rng.random(n) < self.lazy_probability
        moving = ~lazy
        n_moving = int(moving.sum())
        if n_moving == 0:
            if get_recorder().enabled:
                self._account_jumps(out)
            return out
        a = self.alphas[walk_indices[moving]]
        out[moving] = rejection_conditional_zipf(a, rng, n_moving)
        if get_recorder().enabled:
            self._account_jumps(out)
        return out
