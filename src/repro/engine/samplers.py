"""Batch jump-length samplers for the vectorized engines.

The engines simulate many walks at once and need, at every round, one jump
distance per *active* walk.  Two situations arise:

* every walk uses the same jump law (fixed-exponent strategies, baselines):
  :class:`HomogeneousSampler` simply delegates to the law's vectorized
  ``sample``;
* every walk has its *own* exponent (the paper's randomized strategy of
  Theorem 1.6 draws each walk's ``alpha`` uniformly from ``(2, 3)``):
  :class:`HeterogeneousZetaSampler` keeps a per-walk bulk CDF matrix
  covering the first :data:`_BULK_CDF_COLUMNS` distances and falls back
  to exact tail rejection for the few percent of draws beyond it.

Both samplers accept the engines' batched per-round uniforms (``u=``) so
one ``rng.random`` call per round feeds the lazy phase and the in-table
inversion; see :mod:`repro.distributions.cdf_table`.  The
:func:`~repro.distributions.cdf_table.legacy_sampling` escape hatch
restores the original per-call samplers for ground-truth tests.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np
from scipy import special

from repro.distributions.base import JumpDistribution
from repro.distributions.cdf_table import table_sampling_enabled
from repro.distributions.zeta import ZetaJumpDistribution
from repro.distributions.zipf_sampler import (
    rejection_conditional_zipf,
    rejection_conditional_zipf_tail,
)
from repro.telemetry.metrics import DECADE_BOUNDS
from repro.telemetry.recorder import get_recorder


#: Decade edges as an int64 array: ``searchsorted(d, side="right")`` on it
#: is the same bucketing as ``np.digitize(d, DECADE_BOUNDS)`` without
#: digitize's per-call monotonicity re-checks -- measurable when called
#: once per simulation round.
_DECADE_EDGES = np.asarray(DECADE_BOUNDS, dtype=np.int64)


class BatchJumpSampler(abc.ABC):
    """Produces one jump distance per requested walk index.

    Telemetry contract: with a live recorder, each ``sample`` call
    accumulates its jump-length decade counts into a per-sampler numpy
    buffer (:meth:`_account_jumps`), and the *engines* push the buffer
    into the metrics registry once per engine call
    (:meth:`flush_jump_accounting`).  Batching per engine call instead of
    per round keeps the enabled-path overhead to one registry touch per
    call -- a round-level touch dominated the telemetry overhead in
    ``BENCH_runner.json`` before.
    """

    #: Pending decade counts (lazily created; None when nothing pending).
    _pending_decades: Optional[np.ndarray] = None

    @abc.abstractmethod
    def sample(
        self,
        rng: np.random.Generator,
        walk_indices: np.ndarray,
        u: Optional[np.ndarray] = None,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Return an int64 array of jump distances, one per index.

        ``u``, when given, supplies one uniform per index from the
        engine's batched per-round draw; samplers that cannot consume it
        (arbitrary :class:`JumpDistribution` laws) may ignore it -- the
        uniforms are i.i.d. and unused elsewhere, so dropping them is
        distributionally harmless.  ``out``, when given, is a preallocated
        int64 destination buffer; implementations may ignore it, so
        callers must use the *returned* array.
        """

    def _account_jumps(self, distances: np.ndarray) -> None:
        """Accumulate one batch of jump distances by length decade.

        Called only when telemetry is enabled (guard at the call sites
        keeps the disabled hot path at a single attribute check per
        round).  Bucket 0 counts lazy phases (``d < 1``); bucket k counts
        ``10^(k-1) <= d < 10^k`` -- the heavy tail makes these decades
        span orders of magnitude of walltime, which is exactly what we
        want to see.
        """
        counts = np.bincount(
            _DECADE_EDGES.searchsorted(distances, side="right"),
            minlength=_DECADE_EDGES.shape[0] + 1,
        )
        if self._pending_decades is None:
            self._pending_decades = counts.astype(np.int64)
        else:
            self._pending_decades += counts

    def flush_jump_accounting(self) -> None:
        """Push accumulated decade counts into the live metrics registry.

        Engines call this once per engine invocation (inside their
        telemetry epilogue); a no-op when nothing was accumulated, so
        unconditional calls are safe with telemetry disabled.
        """
        pending = self._pending_decades
        if pending is None:
            return
        self._pending_decades = None
        metrics = get_recorder().metrics
        metrics.histogram(
            "engine.jump_length_decades", bounds=DECADE_BOUNDS
        ).add_bucket_counts(pending.tolist())
        metrics.counter("engine.jumps_sampled").add(int(pending.sum()))


class HomogeneousSampler(BatchJumpSampler):
    """All walks share one :class:`JumpDistribution`."""

    def __init__(self, distribution: JumpDistribution) -> None:
        self.distribution = distribution
        # Only the zeta law knows how to consume pre-drawn uniforms (its
        # table fuses the lazy phase into them); other laws draw their own.
        self._accepts_uniforms = isinstance(distribution, ZetaJumpDistribution)

    def sample(
        self,
        rng: np.random.Generator,
        walk_indices: np.ndarray,
        u: Optional[np.ndarray] = None,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        n = int(walk_indices.shape[0])
        if self._accepts_uniforms:
            out = self.distribution.sample(rng, n, u=u, out=out)
        else:
            out = self.distribution.sample(rng, n)
        if get_recorder().enabled:
            self._account_jumps(out)
        return out


#: Columns of the per-walk bulk CDF matrix: enough that only the few
#: percent of draws beyond distance 32 need the exact tail rejection
#: (for ``alpha = 2`` the escape mass is ``zeta(2, 33)/zeta(2) ~ 1.9%``).
_BULK_CDF_COLUMNS = 32


class HeterogeneousZetaSampler(BatchJumpSampler):
    """Each walk has its own power-law exponent (Eq. 3 law per walk).

    The fast path precomputes (lazily, on first sample) an
    ``(n_walks, 32)`` matrix of per-walk conditional CDFs and inverts it
    with one vectorized comparison per round; the draws escaping the
    matrix use the exact tail rejection sampler.  The matrix is derived
    state -- it is excluded from pickling so pooled Runner workers and
    task fingerprints see only the law parameters, and rebuilt on first
    use in each process.

    Parameters
    ----------
    alphas:
        Array of shape ``(n_walks,)``; entry ``i`` is walk ``i``'s
        exponent.  Exponents must exceed 1 (Remark 3.5).
    lazy_probability:
        Common ``P(d = 0)`` (the paper fixes 1/2).
    """

    def __init__(self, alphas: np.ndarray, lazy_probability: float = 0.5) -> None:
        alphas = np.asarray(alphas, dtype=float)
        if alphas.ndim != 1:
            raise ValueError("alphas must be one-dimensional")
        if np.any(alphas <= 1.0):
            raise ValueError("every exponent must exceed 1 (Remark 3.5)")
        if not 0.0 <= lazy_probability < 1.0:
            raise ValueError(f"lazy probability must be in [0, 1), got {lazy_probability}")
        self.alphas = alphas
        self.lazy_probability = float(lazy_probability)
        # zeta(alpha) per walk: the conditional tail is zeta(a, i)/zeta(a, 1).
        self._series_mass = special.zeta(alphas, 1.0)
        self._bulk_cdf: Optional[np.ndarray] = None

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_bulk_cdf"] = None
        return state

    def _bulk(self) -> np.ndarray:
        """``bulk[w, k] = P(d <= k + 1 | d >= 1)`` for walk ``w``."""
        if self._bulk_cdf is None:
            k = np.arange(1, _BULK_CDF_COLUMNS + 1, dtype=float)
            weights = k[None, :] ** (-self.alphas[:, None])
            self._bulk_cdf = np.cumsum(weights, axis=1) / self._series_mass[:, None]
        return self._bulk_cdf

    def sample(
        self,
        rng: np.random.Generator,
        walk_indices: np.ndarray,
        u: Optional[np.ndarray] = None,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        n = int(walk_indices.shape[0])
        if out is None:
            out = np.zeros(n, dtype=np.int64)
        else:
            out[:] = 0
        if table_sampling_enabled():
            if u is None:
                u = rng.random(n)
            p = self.lazy_probability
            moving = u >= p
            # u | u >= p rescaled to [0, 1); independent of the lazy mask.
            v = (u[moving] - p) / (1.0 - p) if p > 0.0 else u
            rows = walk_indices[moving]
            bulk = self._bulk()
            # First column with cdf >= v, per row (rows are sorted
            # ascending, so this is a vectorized searchsorted).
            idx = (bulk[rows] < v[:, None]).sum(axis=1)
            drawn = idx.astype(np.int64) + 1
            tail = idx >= _BULK_CDF_COLUMNS
            n_tail = int(tail.sum())
            if n_tail:
                drawn[tail] = rejection_conditional_zipf_tail(
                    self.alphas[rows[tail]], _BULK_CDF_COLUMNS, rng, n_tail
                )
            out[moving] = drawn
            if get_recorder().enabled:
                self._account_jumps(out)
            return out
        lazy = rng.random(n) < self.lazy_probability
        moving = ~lazy
        n_moving = int(moving.sum())
        if n_moving == 0:
            if get_recorder().enabled:
                self._account_jumps(out)
            return out
        a = self.alphas[walk_indices[moving]]
        out[moving] = rejection_conditional_zipf(a, rng, n_moving)
        if get_recorder().enabled:
            self._account_jumps(out)
        return out
