"""Zero-copy shared-memory transport for the pooled Runner.

Two independent costs gate pool scaling (BENCH_sweep.json records a
near-1x pool speedup): every worker re-derives the inverse-CDF jump
tables of :mod:`repro.distributions.cdf_table` per process, and every
chunk result crosses the pool boundary as a pickle.  This module removes
both with ``multiprocessing.shared_memory``:

* a :class:`SharedTableRegistry` (parent side) publishes each
  ``(alpha, lazy_probability, cap)`` table -- the same key as the
  process-global LRU cache -- into a named segment once per run.  Workers
  :func:`attach_tables` zero-copy at pool-initializer time and install
  read-only shared-backed :class:`~repro.distributions.cdf_table.JumpCdfTable`
  objects into their local cache, so a pool rebuild after a hung chunk
  re-attaches the *same* segments instead of re-deriving zeta sums;
* chunk results encode into fixed-layout *slabs*
  (:func:`encode_payload` / :func:`decode_slab`): a 32-byte header, the
  int64 hitting times, and the uint8 hit flags.  The parent attaches,
  copies out, and unlinks -- no pickling of the payload arrays in either
  direction.  Payload kinds without a slab layout (e.g. foraging results)
  return ``None`` from :func:`encode_payload` and fall back to the pickle
  transport, which stays fully supported (``--pool-transport pickle``).

Both directions are bit-exact: a slab round-trip reproduces the payload
arrays exactly, so the Runner's determinism contracts (workers=0 vs N,
resume) are unchanged by transport choice.

Lifetime rules (who unlinks what):

* table segments: created and unlinked by the parent registry
  (:meth:`SharedTableRegistry.close`); workers only ever attach;
* result slabs: created by the worker under a parent-chosen name,
  unlinked by the parent after decoding -- or by the parent's cleanup
  path (:func:`unlink_if_exists` / :func:`cleanup_segments`) when the
  worker died before the slab could be consumed (SIGKILL, hung-chunk
  watchdog, broken pool).

Resource-tracker note (CPython < 3.13, python/cpython#82300): attaching
a segment registers it with the ``resource_tracker`` as if the attacher
owned it.  Within one multiprocessing family -- which is the only way
this module is used: pool workers inherit the parent's tracker fd under
both fork and spawn -- the tracker's per-name cache is a *set*, so the
duplicate registrations from attaches are idempotent and the single
``unlink()`` (which unregisters internally) balances them all.  We
therefore deliberately do **not** call ``resource_tracker.unregister``
by hand: doing so would clobber the creator's registration and make the
eventual unlink's unregister fail.  Anything still registered when the
whole family exits is unlinked by the tracker -- a last-ditch backstop
behind :func:`cleanup_segments`, not a leak.
"""

from __future__ import annotations

import os
import re
import threading
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.distributions.cdf_table import JumpCdfTable, get_table, install_table
from repro.engine.results import CENSORED, HittingTimeSample

_Key = Tuple[float, float, Optional[int]]

#: Slab header magic ("RPRS" little-endian) -- catches a decode of a
#: foreign or torn segment before any array is interpreted.
SLAB_MAGIC = 0x53525052

#: Slab payload kinds.
KIND_HITTING = 1

#: Header layout: ``int64[4] = (magic, kind, n, horizon)`` = 32 bytes.
_HEADER_WORDS = 4
_HEADER_BYTES = _HEADER_WORDS * 8

_SAFE_NAME = re.compile(r"[^A-Za-z0-9_.-]+")

_availability_lock = threading.Lock()
_availability: Optional[bool] = None

#: Worker-side handles of attached table segments.  Kept for the process
#: lifetime so the numpy views into their buffers stay valid.
_ATTACHED: List[shared_memory.SharedMemory] = []
_ATTACHED_KEYS: set = set()


def shm_available() -> bool:
    """True when named shared memory works on this host (cached probe)."""
    global _availability
    with _availability_lock:
        if _availability is None:
            try:
                probe = shared_memory.SharedMemory(create=True, size=8)
                probe.close()
                probe.unlink()
                _availability = True
            except Exception:
                _availability = False
        return _availability


def segment_prefix() -> str:
    """A fresh per-run segment-name prefix (parent pid + random token)."""
    return f"repro-{os.getpid()}-{os.urandom(4).hex()}"


def slab_name(prefix: str, label: str, chunk: int, attempt: int) -> str:
    """Deterministic slab name for a chunk attempt, chosen by the parent.

    The parent picks the name *before* submitting the chunk, so it can
    always unlink the slab of a worker that died mid-write.
    """
    safe = _SAFE_NAME.sub("_", str(label))[:80]
    return f"{prefix}-s-{safe}-{chunk}-{attempt}"


@dataclass(frozen=True)
class TableSegment:
    """Picklable descriptor of one published CDF-table segment."""

    alpha: float
    lazy_probability: float
    cap: Optional[int]
    name: str
    length: int
    top: float

    @property
    def key(self) -> _Key:
        return (float(self.alpha), float(self.lazy_probability), self.cap)

    @property
    def nbytes(self) -> int:
        return int(self.length) * 8


@dataclass(frozen=True)
class SlabRef:
    """Picklable handle to a result slab (what actually crosses the pipe)."""

    name: str
    nbytes: int
    kind: int = KIND_HITTING


class SharedTableRegistry:
    """Parent-side owner of the published CDF-table segments.

    Keyed exactly like the process-global LRU
    (``(alpha, lazy_probability, cap)``); publishing the same law twice
    reuses the existing segment.  ``close()`` unlinks everything; the
    registry is also a context manager.  Instances are fork- and
    spawn-safe because workers never receive the registry itself -- only
    the picklable :class:`TableSegment` descriptors.
    """

    def __init__(self, prefix: Optional[str] = None) -> None:
        self.prefix = prefix or segment_prefix()
        self._segments: Dict[_Key, shared_memory.SharedMemory] = {}
        self._descriptors: Dict[_Key, TableSegment] = {}
        self._closed = False

    def publish(
        self,
        alpha: float,
        lazy_probability: float = 0.5,
        cap: Optional[int] = None,
    ) -> Optional[TableSegment]:
        """Publish one law's table; ``None`` if the law is untabulated."""
        key: _Key = (float(alpha), float(lazy_probability), cap)
        if key in self._descriptors:
            return self._descriptors[key]
        table = get_table(alpha, lazy_probability, cap)
        if table is None:
            return None
        name = f"{self.prefix}-t{len(self._segments)}"
        cdf = np.ascontiguousarray(table.cdf, dtype=np.float64)
        segment = shared_memory.SharedMemory(
            create=True, size=int(cdf.nbytes), name=name
        )
        np.frombuffer(segment.buf, dtype=np.float64, count=cdf.shape[0])[:] = cdf
        descriptor = TableSegment(
            alpha=float(alpha),
            lazy_probability=float(lazy_probability),
            cap=cap,
            name=name,
            length=int(cdf.shape[0]),
            top=float(table.top),
        )
        self._segments[key] = segment
        self._descriptors[key] = descriptor
        return descriptor

    def publish_for_tasks(self, tasks: Sequence[object]) -> List[TableSegment]:
        """Publish the tables of every tabulable jump law used by ``tasks``.

        Duck-typed on the ``jumps`` attribute carrying ``alpha`` /
        ``lazy_probability`` / ``cap`` (i.e.
        :class:`~repro.distributions.zeta.ZetaJumpDistribution`); tasks
        with other laws simply publish nothing and their workers derive
        tables locally as before.
        """
        published: List[TableSegment] = []
        for task in tasks:
            law = getattr(task, "jumps", None)
            alpha = getattr(law, "alpha", None)
            lazy = getattr(law, "lazy_probability", None)
            if alpha is None or lazy is None:
                continue
            descriptor = self.publish(float(alpha), float(lazy), getattr(law, "cap", None))
            if descriptor is not None:
                published.append(descriptor)
        return published

    def descriptors(self) -> Tuple[TableSegment, ...]:
        return tuple(self._descriptors.values())

    @property
    def nbytes(self) -> int:
        """Total bytes of table data currently published."""
        return sum(d.nbytes for d in self._descriptors.values())

    def close(self) -> None:
        """Close and unlink every published segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for segment in self._segments.values():
            try:
                segment.close()
                segment.unlink()
            except FileNotFoundError:
                pass
            except Exception:
                pass
        self._segments.clear()
        self._descriptors.clear()

    def __enter__(self) -> "SharedTableRegistry":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def attach_tables(descriptors: Sequence[TableSegment]) -> int:
    """Worker side: attach published tables and install them in the cache.

    Returns the number of tables newly attached.  A descriptor whose
    segment has vanished (parent already cleaned up -- e.g. a straggler
    worker of a rebuilt pool) is skipped silently: the worker then
    derives that table locally exactly as on the pickle path, so the
    result is unchanged either way.
    """
    attached = 0
    for descriptor in descriptors:
        if descriptor.key in _ATTACHED_KEYS:
            continue
        try:
            segment = shared_memory.SharedMemory(name=descriptor.name)
        except (FileNotFoundError, OSError, ValueError):
            continue
        cdf = np.frombuffer(
            segment.buf, dtype=np.float64, count=descriptor.length
        )
        cdf.flags.writeable = False
        # The mapping must outlive every view (the installed table keeps
        # one), so closing is the OS's job at process exit.  Shadow the
        # bound method so ``__del__``'s courtesy close() cannot raise
        # BufferError("exported pointers exist") during teardown.
        segment.close = lambda: None  # type: ignore[method-assign]
        table = JumpCdfTable.from_cdf(
            descriptor.alpha, descriptor.lazy_probability, descriptor.cap, cdf
        )
        install_table(table)
        _ATTACHED.append(segment)
        _ATTACHED_KEYS.add(descriptor.key)
        attached += 1
    return attached


def attached_table_count() -> int:
    """How many shared tables this process has attached (tests)."""
    return len(_ATTACHED_KEYS)


def encode_payload(payload: object, name: str) -> Optional[SlabRef]:
    """Worker side: write a chunk payload into a named slab.

    Returns ``None`` (caller falls back to pickle) when the payload kind
    has no slab layout or the segment cannot be created (exhausted
    ``/dev/shm``, unsupported platform).  Layout for
    :class:`HittingTimeSample` (``kind == KIND_HITTING``)::

        int64[4]  header   (magic, kind, n, horizon)
        int64[n]  times    (CENSORED where the walk missed)
        uint8[n]  hits     (redundant flags; decode validates them)
    """
    if not isinstance(payload, HittingTimeSample):
        return None
    times = np.ascontiguousarray(payload.times, dtype=np.int64)
    n = int(times.shape[0])
    size = _HEADER_BYTES + 8 * n + n
    try:
        segment = shared_memory.SharedMemory(create=True, size=size, name=name)
    except Exception:
        return None
    try:
        header = np.frombuffer(segment.buf, dtype=np.int64, count=_HEADER_WORDS)
        header[:] = (SLAB_MAGIC, KIND_HITTING, n, int(payload.horizon))
        np.frombuffer(
            segment.buf, dtype=np.int64, count=n, offset=_HEADER_BYTES
        )[:] = times
        np.frombuffer(
            segment.buf, dtype=np.uint8, count=n, offset=_HEADER_BYTES + 8 * n
        )[:] = (times != CENSORED).view(np.uint8)
        del header
    except Exception:
        segment.close()
        try:
            segment.unlink()
        except Exception:
            pass
        return None
    # Ownership transfers to the parent: drop this process's mapping but
    # do NOT unlink -- the parent decodes and unlinks.
    segment.close()
    return SlabRef(name=name, nbytes=size, kind=KIND_HITTING)


def decode_slab(ref: SlabRef) -> HittingTimeSample:
    """Parent side: copy a slab out into a payload, then unlink it."""
    segment = shared_memory.SharedMemory(name=ref.name)
    try:
        # Copy, never view: a raised exception would pin any live view of
        # segment.buf in its traceback frame and make the close() below
        # fail with "cannot close exported pointers exist".
        header = np.frombuffer(
            bytes(segment.buf[:_HEADER_BYTES]), dtype=np.int64
        )
        magic, kind, n, horizon = (int(x) for x in header)
        if magic != SLAB_MAGIC:
            raise ValueError(f"slab {ref.name}: bad magic 0x{magic:x}")
        if kind != KIND_HITTING:
            raise ValueError(f"slab {ref.name}: unsupported kind {kind}")
        times = np.frombuffer(
            bytes(segment.buf[_HEADER_BYTES:_HEADER_BYTES + 8 * n]),
            dtype=np.int64,
        ).copy()  # frombuffer(bytes) is read-only; payloads must be writable
        hits = np.frombuffer(
            bytes(
                segment.buf[_HEADER_BYTES + 8 * n:_HEADER_BYTES + 9 * n]
            ),
            dtype=np.uint8,
        )
        if not np.array_equal(hits.astype(bool), times != CENSORED):
            raise ValueError(f"slab {ref.name}: hit flags disagree with times")
    finally:
        segment.close()
        try:
            segment.unlink()
        except FileNotFoundError:
            pass
    return HittingTimeSample(times=times, horizon=horizon)


def unlink_if_exists(name: str) -> bool:
    """Best-effort unlink of one segment; True if it existed."""
    try:
        segment = shared_memory.SharedMemory(name=name)
    except (FileNotFoundError, OSError):
        return False
    except ValueError:
        # The creator won the O_CREX race but has not ftruncated yet:
        # the file exists with size 0 and cannot be mapped.  Remove the
        # backing file directly -- the (dying) creator's own handle
        # stays valid, and the resource tracker tolerates a vanished
        # name at family exit.
        return _unlink_backing_file(name)
    segment.close()
    try:
        segment.unlink()
    except FileNotFoundError:
        return False
    return True


def _unlink_backing_file(name: str) -> bool:
    path = os.path.join("/dev/shm", name)
    try:
        os.unlink(path)
    except OSError:
        return False
    return True


def list_segments(prefix: str) -> List[str]:
    """Names of live ``/dev/shm`` segments under ``prefix`` (Linux only;
    other platforms report none and rely on per-name unlinks)."""
    root = "/dev/shm"
    if not os.path.isdir(root):
        return []
    try:
        entries = os.listdir(root)
    except OSError:
        return []
    return sorted(e for e in entries if e.startswith(prefix))


def cleanup_segments(prefix: str) -> List[str]:
    """Unlink every leftover segment under ``prefix``; returns the names.

    The Runner calls this after a pooled run as a belt-and-braces sweep:
    anything still live here belonged to a worker that died before its
    slab was consumed (and was already counted failed/retried).
    """
    removed: List[str] = []
    for name in list_segments(prefix):
        if unlink_if_exists(name):
            removed.append(name)
    return removed
