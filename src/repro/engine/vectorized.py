"""Vectorized Monte-Carlo engines for hitting times.

These engines simulate thousands of independent walks simultaneously and
are *exact*: they produce hitting times with precisely the law of the
object-level processes in :mod:`repro.walks`, but at a cost of O(1) work
per jump phase instead of O(d) work per phase.

The key trick (derived and verified in
:mod:`repro.lattice.direct_path`) is that a Levy walk jumping from ``u``
to ``v`` can visit a target ``w`` only while crossing the ring
``R_m(u)`` with ``m = ||w - u||_1``, it crosses that ring exactly once,
and the node it occupies there has an explicitly samplable marginal
("nearest node to the segment point, fair coin on ties").  So per phase
the engine samples the distance, the endpoint, and -- only if the target
is within reach -- one ring-marginal node, and never materializes paths.

Two detection semantics are supported (Section 2 discusses the contrast
with the "intermittent" model of [18]):

* ``detect_during_jump=True`` (the paper's Levy *walk*): the target is
  found the moment the walk steps on it, mid-jump included;
* ``detect_during_jump=False`` (intermittent / Levy-flight semantics):
  only jump endpoints are inspected.
"""

from __future__ import annotations

import time
from typing import Tuple, Union

import numpy as np

from repro.distributions.base import JumpDistribution
from repro.engine._compat import legacy_api
from repro.engine.results import CENSORED, HittingTimeSample
from repro.engine.ring import (
    flight_hitting_times_ring,
    ring_rounds,
    walk_hitting_times_ring,
)
from repro.engine.samplers import BatchJumpSampler, HomogeneousSampler
from repro.lattice.direct_path import sample_direct_path_nodes
from repro.lattice.rings import sample_ring_offsets
from repro.rng import SeedLike, as_generator
from repro.telemetry.recorder import get_recorder

IntPoint = Tuple[int, int]


def _record_engine_sample(engine: str, n: int, steps: int, seconds: float) -> None:
    """Metrics for one engine invocation (telemetry enabled only)."""
    metrics = get_recorder().metrics
    metrics.counter(f"engine.{engine}.samples").add(n)
    metrics.counter("engine.steps_simulated").add(steps)
    if seconds > 0:
        metrics.gauge("engine.samples_per_sec").set(round(n / seconds, 3))
        metrics.gauge("engine.steps_per_sec").set(round(steps / seconds, 3))


def _as_sampler(source: Union[BatchJumpSampler, JumpDistribution]) -> BatchJumpSampler:
    if isinstance(source, BatchJumpSampler):
        return source
    return HomogeneousSampler(source)


@legacy_api(
    positional=("horizon", "n", "rng", "start", "detect_during_jump"),
    renames={"n_walks": "n"},
)
def walk_hitting_times(
    jumps: Union[BatchJumpSampler, JumpDistribution],
    target: IntPoint,
    *,
    horizon: int,
    n: int,
    rng: SeedLike = None,
    start: IntPoint = (0, 0),
    detect_during_jump: bool = True,
) -> HittingTimeSample:
    """Hitting times of ``n`` independent Levy walks for one target.

    Each walk starts at ``start`` at time 0 and runs until it hits
    ``target`` or its elapsed *steps* (not jumps) exceed ``horizon``.
    Time is counted exactly as in Definition 3.4: a phase with distance
    ``d >= 1`` lasts ``d`` steps, a phase with ``d = 0`` lasts 1 step, and
    a mid-phase hit at ring ``m`` is recorded at ``t_phase_start + m``.

    Parameters
    ----------
    jumps:
        Jump-length law: a :class:`JumpDistribution` shared by all walks,
        or a :class:`BatchJumpSampler` (e.g. per-walk exponents).
    target:
        The target node ``u*``.
    horizon:
        Censoring step; hits at exactly ``horizon`` count.
    n:
        Number of independent walks.
    rng:
        Seed or generator.
    start:
        Common start node (the origin in the paper).
    detect_during_jump:
        If False, only phase endpoints are checked (intermittent model).

    Returns
    -------
    HittingTimeSample
        Censored sample of the ``n`` hitting times.
    """
    sampler = _as_sampler(jumps)
    rng = as_generator(rng)
    if horizon < 0:
        raise ValueError(f"horizon must be non-negative, got {horizon}")
    if n < 1:
        raise ValueError(f"n must be positive, got {n}")
    n_walks = int(n)
    tx, ty = int(target[0]), int(target[1])
    times = np.full(n_walks, CENSORED, dtype=np.int64)
    if (int(start[0]), int(start[1])) == (tx, ty):
        # Definition 3.7: the hitting time is the first step t >= 0 with
        # J_t = u*, so starting on the target means tau = 0.
        return HittingTimeSample(times=np.zeros(n_walks, dtype=np.int64), horizon=horizon)
    rounds = ring_rounds()
    if rounds > 1:
        # Interleaved walker-ring mode (see repro.engine.ring): staged
        # blocks of `rounds` rounds, statistically equivalent to the
        # loop below but with a different RNG consumption order.
        return walk_hitting_times_ring(
            sampler,
            (tx, ty),
            horizon=horizon,
            n=n_walks,
            rng=rng,
            start=(int(start[0]), int(start[1])),
            detect_during_jump=detect_during_jump,
            rounds=rounds,
        )

    # Compacted state: row j of `pos`/`elapsed` belongs to walk `idx[j]`.
    # Finished walks are dropped lazily (only when >= 1/8 of rows died),
    # so the common all-survive round costs no gather/scatter.
    idx = np.arange(n_walks)
    # Preallocated round buffers: positions ping-pong between two (n, 2)
    # blocks (current round reads `pos`, writes endpoints into the other
    # block), jump distances/ring offsets write into fixed buffers, and
    # the round's uniforms -- one per walk for the fused lazy+distance
    # draw, one for the ring index -- come from a single `rng.random`
    # call into a flat slice.  Compaction shrinks the live views.
    pos_buf = np.empty((n_walks, 2), dtype=np.int64)
    end_buf = np.empty((n_walks, 2), dtype=np.int64)
    d_buf = np.empty(n_walks, dtype=np.int64)
    off_buf = np.empty((n_walks, 2), dtype=np.int64)
    u_buf = np.empty(2 * n_walks, dtype=np.float64)
    pos = pos_buf[:n_walks]
    pos[:, 0] = int(start[0])
    pos[:, 1] = int(start[1])
    elapsed = np.zeros(n_walks, dtype=np.int64)
    alive = np.ones(n_walks, dtype=bool)
    n_dead = 0
    # Telemetry: one flag check per call when disabled; step accounting
    # only accumulates when a live recorder is installed.  `tick` is the
    # per-round liveness pulse -- a no-op everywhere except inside pool
    # workers, where it touches the chunk's heartbeat file.  `prof` is
    # the phase accumulator (or None): each round is tiled into laps
    # charged to the named hot-loop stages, at the cost of one `is None`
    # test per stage per *round* when profiling is off.
    recorder = get_recorder()
    track = recorder.enabled
    tick = recorder.tick
    prof = recorder.profile
    steps_simulated = 0
    started = time.perf_counter() if track else 0.0

    while idx.size:
        tick()
        if prof is not None:
            prof.start()
        k = idx.size
        u = u_buf[: 2 * k]
        rng.random(out=u)
        if prof is not None:
            prof.lap("rng")
        d = sampler.sample(rng, idx, u=u[:k], out=d_buf[:k])
        d[~alive] = 0  # dead rows are carried until the next compaction
        if track:
            steps_simulated += int(np.maximum(d, 1)[alive].sum())
        if prof is not None:
            prof.lap("cdf_lookup")
        off = sample_ring_offsets(d, rng, u=u[k:], out=off_buf[:k])
        v = np.add(pos, off, out=end_buf[:k])
        if prof is not None:
            prof.lap("state_update")
        m = np.abs(tx - pos[:, 0]) + np.abs(ty - pos[:, 1])
        if detect_during_jump:
            reach = alive & (m <= d)
            hit = np.zeros(k, dtype=bool)
            if np.any(reach):
                nodes = sample_direct_path_nodes(pos[reach], v[reach], m[reach], rng)
                hit[reach] = (nodes[:, 0] == tx) & (nodes[:, 1] == ty)
            hit_step = elapsed + m
        else:
            hit = alive & (v[:, 0] == tx) & (v[:, 1] == ty)
            hit_step = elapsed + np.maximum(d, 1)
        success = hit & (hit_step <= horizon)
        if np.any(success):
            times[idx[success]] = hit_step[success]
        if prof is not None:
            prof.lap("target_check")
        elapsed += np.maximum(d, 1)
        pos_buf, end_buf = end_buf, pos_buf
        pos = v
        died = alive & (success | (elapsed >= horizon))
        if np.any(died):
            alive &= ~died
            n_dead += int(died.sum())
            if n_dead * 8 >= idx.size:
                idx = idx[alive]
                survivors = pos[alive]
                pos = pos_buf[: idx.size]
                pos[:] = survivors
                elapsed = elapsed[alive]
                alive = np.ones(idx.size, dtype=bool)
                n_dead = 0
        if prof is not None:
            prof.lap("compaction")

    if track:
        sampler.flush_jump_accounting()
        _record_engine_sample(
            "walk", n_walks, steps_simulated, time.perf_counter() - started
        )
    if prof is not None:
        prof.finish("walk")
    return HittingTimeSample(times=times, horizon=horizon)


@legacy_api(
    positional=("horizon", "n", "rng", "start"),
    renames={"horizon_jumps": "horizon", "n_flights": "n"},
)
def flight_hitting_times(
    jumps: Union[BatchJumpSampler, JumpDistribution],
    target: IntPoint,
    *,
    horizon: int,
    n: int,
    rng: SeedLike = None,
    start: IntPoint = (0, 0),
) -> HittingTimeSample:
    """Hitting times (in *jumps*) of independent Levy flights.

    A flight's time unit is one jump (Definition 3.3): ``horizon`` and
    the returned times count jumps, and a flight only detects the target
    when a jump lands on it.  Used for the flight-level lemmas (4.5,
    4.13) and as the intermittent-detection comparator.
    """
    sampler = _as_sampler(jumps)
    rng = as_generator(rng)
    if horizon < 0:
        raise ValueError(f"horizon must be non-negative, got {horizon}")
    if n < 1:
        raise ValueError(f"n must be positive, got {n}")
    n_flights = int(n)
    horizon_jumps = int(horizon)
    tx, ty = int(target[0]), int(target[1])
    times = np.full(n_flights, CENSORED, dtype=np.int64)
    if (int(start[0]), int(start[1])) == (tx, ty):
        return HittingTimeSample(
            times=np.zeros(n_flights, dtype=np.int64), horizon=horizon_jumps
        )
    rounds = ring_rounds()
    if rounds > 1:
        return flight_hitting_times_ring(
            sampler,
            (tx, ty),
            horizon=horizon_jumps,
            n=n_flights,
            rng=rng,
            start=(int(start[0]), int(start[1])),
            rounds=rounds,
        )
    # Same compacted state machine and preallocated round buffers as
    # `walk_hitting_times`: dead rows jump with d = 0 (so their position
    # is frozen) until >= 1/8 of rows died, then the live views shrink.
    idx = np.arange(n_flights)
    pos = np.empty((n_flights, 2), dtype=np.int64)
    pos[:, 0] = int(start[0])
    pos[:, 1] = int(start[1])
    d_buf = np.empty(n_flights, dtype=np.int64)
    off_buf = np.empty((n_flights, 2), dtype=np.int64)
    u_buf = np.empty(2 * n_flights, dtype=np.float64)
    alive = np.ones(n_flights, dtype=bool)
    n_dead = 0
    recorder = get_recorder()
    track = recorder.enabled
    tick = recorder.tick
    prof = recorder.profile
    jumps_simulated = 0
    started = time.perf_counter() if track else 0.0
    for jump_index in range(1, horizon_jumps + 1):
        if not idx.size:
            break
        tick()
        if prof is not None:
            prof.start()
        k = idx.size
        u = u_buf[: 2 * k]
        rng.random(out=u)
        if prof is not None:
            prof.lap("rng")
        d = sampler.sample(rng, idx, u=u[:k], out=d_buf[:k])
        d[~alive] = 0  # dead rows are carried until the next compaction
        if track:
            jumps_simulated += int(alive.sum())
        if prof is not None:
            prof.lap("cdf_lookup")
        off = sample_ring_offsets(d, rng, u=u[k:], out=off_buf[:k])
        pos += off
        if prof is not None:
            prof.lap("state_update")
        # A dead row sits on the target with d = 0; mask by `alive` so it
        # is not re-detected.
        hit = alive & (pos[:, 0] == tx) & (pos[:, 1] == ty)
        if prof is not None:
            prof.lap("target_check")
        if np.any(hit):
            times[idx[hit]] = jump_index
            alive &= ~hit
            n_dead += int(hit.sum())
            if n_dead * 8 >= idx.size:
                idx = idx[alive]
                pos = pos[alive]
                alive = np.ones(idx.size, dtype=bool)
                n_dead = 0
        if prof is not None:
            prof.lap("compaction")
    if track:
        sampler.flush_jump_accounting()
        _record_engine_sample(
            "flight", n_flights, jumps_simulated, time.perf_counter() - started
        )
    if prof is not None:
        prof.finish("flight")
    return HittingTimeSample(times=times, horizon=horizon_jumps)
