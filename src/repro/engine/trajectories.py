"""Exact step-level trajectory recording, vectorized.

Most engines avoid materializing paths; this one does the opposite: it
returns every position of every walk for the first ``n_steps`` steps,
with exactly the joint law of Definition 3.4.  Within a phase, the path
node at each ring is the nearest-node marginal with independent fair
tie-breaks, which IS the uniform-direct-path joint law (see
:mod:`repro.lattice.direct_path`), so sampling rings one at a time is
exact *jointly*, not just marginally.

Cost is O(n_walks * n_steps) -- the price of full trajectories -- so this
engine is for statistics that genuinely need every step, e.g. the number
of *distinct* nodes visited (experiment EXT-COVER: Levy walks barely
re-visit, which is the mechanism behind their search efficiency and the
content of Lemma 4.13's bounded origin-visit count).
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

from repro.distributions.base import JumpDistribution
from repro.engine._compat import legacy_api
from repro.engine.samplers import BatchJumpSampler
from repro.engine.vectorized import _as_sampler
from repro.lattice.direct_path import sample_direct_path_nodes
from repro.lattice.rings import sample_ring_offsets
from repro.rng import SeedLike, as_generator

IntPoint = Tuple[int, int]


@legacy_api(
    positional=("horizon", "n", "rng", "start"),
    renames={"n_steps": "horizon", "n_walks": "n"},
)
def walk_trajectories(
    jumps: Union[BatchJumpSampler, JumpDistribution],
    *,
    horizon: int,
    n: int,
    rng: SeedLike = None,
    start: IntPoint = (0, 0),
) -> np.ndarray:
    """Record full trajectories: returns int64 ``(n, horizon+1, 2)``.

    ``out[w, t]`` is walk ``w``'s position at step ``t`` (``out[:, 0]`` is
    the start node).  Phases that cross ``horizon`` are truncated there;
    the truncation does not disturb the law of the recorded prefix.
    """
    sampler = _as_sampler(jumps)
    rng = as_generator(rng)
    if horizon < 0:
        raise ValueError(f"horizon must be non-negative, got {horizon}")
    if n < 1:
        raise ValueError(f"n must be positive, got {n}")
    n_steps, n_walks = int(horizon), int(n)
    out = np.empty((n_walks, n_steps + 1, 2), dtype=np.int64)
    out[:, 0, 0] = int(start[0])
    out[:, 0, 1] = int(start[1])
    pos = np.tile(np.array(start, dtype=np.int64), (n_walks, 1))
    elapsed = np.zeros(n_walks, dtype=np.int64)
    walk_index = np.arange(n_walks)
    while True:
        active = walk_index[elapsed < n_steps]
        if active.size == 0:
            break
        d = sampler.sample(rng, active)
        offsets = sample_ring_offsets(d, rng)
        u = pos[active]
        v = u + offsets
        # Lazy phases (d = 0) occupy one step in place.
        lazy = d == 0
        if np.any(lazy):
            rows = active[lazy]
            out[rows, elapsed[rows] + 1] = u[lazy]
            elapsed[rows] += 1
        moving = ~lazy
        if np.any(moving):
            rows = active[moving]
            um = u[moving]
            vm = v[moving]
            dm = d[moving]
            budget = np.minimum(dm, n_steps - elapsed[rows])
            max_ring = int(budget.max())
            for ring in range(1, max_ring + 1):
                sub = budget >= ring
                nodes = sample_direct_path_nodes(
                    um[sub], vm[sub], np.full(int(sub.sum()), ring, dtype=np.int64), rng
                )
                out[rows[sub], elapsed[rows[sub]] + ring] = nodes
            # Walks whose phase was truncated stand at the truncation node;
            # completed phases stand at the endpoint v.
            final_step = elapsed[rows] + budget
            pos[rows] = out[rows, final_step]
            elapsed[rows] = final_step
    sampler.flush_jump_accounting()
    return out


def distinct_nodes_visited(trajectories: np.ndarray) -> np.ndarray:
    """Distinct nodes per trajectory (including the start node).

    ``trajectories`` is the output of :func:`walk_trajectories`; returns an
    int64 array of shape ``(n_walks,)``.
    """
    trajectories = np.asarray(trajectories)
    if trajectories.ndim != 3 or trajectories.shape[2] != 2:
        raise ValueError("expected an (n_walks, n_steps+1, 2) array")
    counts = np.empty(trajectories.shape[0], dtype=np.int64)
    for w in range(trajectories.shape[0]):
        # Pack (x, y) into one int64 key for fast uniqueness.
        xy = trajectories[w]
        key = (xy[:, 0] << np.int64(32)) ^ (xy[:, 1] & np.int64(0xFFFFFFFF))
        counts[w] = np.unique(key).size
    return counts
